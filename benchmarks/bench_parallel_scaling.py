"""Benchmark: real wall-clock scaling of the multi-core engine.

Unlike every other benchmark in this directory (which report the paper's
*modeled* GPU kernel time), this one measures **wall-clock seconds** —
the repo's first real performance trajectory.  The workload is the
paper's Figure 2 shape (mesh data graph x chain query) scaled up until
the serial engine takes seconds, then sharded with
:class:`repro.parallel.ParallelMatcher` at increasing worker counts.

Run as a script to produce ``BENCH_parallel.json``::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_parallel_scaling.py \
        --out BENCH_parallel.json

The script **always** verifies that every parallel run's embedding count
is bit-identical to the serial run and exits non-zero on divergence.
The >= 2x speedup gate at 4 workers only applies where it physically
can: when the host has at least 4 CPUs (``--min-speedup 0`` disables
it); on smaller hosts the measured (non-)speedup is still recorded.

Also collected by ``pytest benchmarks/`` as a tiny-scale smoke test.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import pytest

from repro.core import CuTSMatcher
from repro.core.config import CuTSConfig
from repro.graph import chain_graph, mesh_graph
from repro.hostinfo import detect_cpus
from repro.parallel import ParallelMatcher

from conftest import bench_scale

CHAIN_LENGTH = 8
DEFAULT_WORKERS = (1, 2, 4)


def figure2_workload(scale: float):
    """The Figure 2 shape (mesh + chain), scaled so vertex count grows
    linearly with ``scale`` (side grows with its square root)."""
    side = max(12, int(round(64 * math.sqrt(scale))))
    return mesh_graph(side, side), chain_graph(CHAIN_LENGTH)


def _best_of(repeats: int, fn) -> tuple[float, object]:
    best, result = math.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_scaling(
    scale: float,
    worker_counts=DEFAULT_WORKERS,
    repeats: int = 1,
) -> dict:
    """Serial vs. parallel wall-clock on the scaled Figure 2 workload."""
    data, query = figure2_workload(scale)
    config = CuTSConfig()

    # Build (and warm) the serial matcher outside the timed region, the
    # same footing the parallel pool gets from its prewarm query.
    serial_matcher = CuTSMatcher(data, config)
    serial_matcher.match(chain_graph(2))
    serial_s, serial_res = _best_of(
        repeats, lambda: serial_matcher.match(query)
    )

    runs = []
    for workers in worker_counts:
        with ParallelMatcher(data, config, workers=workers) as matcher:
            # Prewarm: pay pool start + shared-memory attach once, the
            # way a served deployment would; the measured figure is the
            # steady-state per-query latency.
            matcher.match(chain_graph(2))
            wall_s, res = _best_of(repeats, lambda: matcher.match(query))
        runs.append(
            {
                "workers": workers,
                "intervals": matcher.num_intervals(query),
                "wall_s": round(wall_s, 4),
                "speedup": round(serial_s / wall_s, 3) if wall_s else None,
                "count": res.count,
                "modeled_time_ms": res.time_ms,
            }
        )

    cpus, logical, affinity = detect_cpus()
    return {
        "benchmark": "parallel_scaling",
        "workload": {
            "data": data.name,
            "num_vertices": data.num_vertices,
            "num_edges": data.num_edges,
            "query": query.name,
            "scale": scale,
        },
        "cpu_count": cpus,
        "cpu_logical": logical,
        "cpu_affinity": affinity,
        "serial": {
            "wall_s": round(serial_s, 4),
            "count": serial_res.count,
            "modeled_time_ms": serial_res.time_ms,
        },
        "runs": runs,
    }


def check_report(
    report: dict,
    min_speedup: float = 2.0,
    max_serial_wall: float = 0.0,
) -> list[str]:
    """Hard failures in a scaling report (count divergence, serial
    wall-clock regression, missed speedup gate where the hardware can
    express one)."""
    errors = []
    serial_count = report["serial"]["count"]
    if max_serial_wall > 0 and report["serial"]["wall_s"] > max_serial_wall:
        errors.append(
            f"serial wall {report['serial']['wall_s']} s exceeds the "
            f"{max_serial_wall} s regression guard "
            f"(scale {report['workload']['scale']})"
        )
    for run in report["runs"]:
        if run["count"] != serial_count:
            errors.append(
                f"parallel count diverged at {run['workers']} workers: "
                f"{run['count']} != serial {serial_count}"
            )
    cpus = report["cpu_count"] or 1
    for run in report["runs"]:
        gated = (
            min_speedup > 0
            and run["workers"] >= 4
            and cpus >= run["workers"]
        )
        if gated and run["speedup"] < min_speedup:
            errors.append(
                f"speedup {run['speedup']}x at {run['workers']} workers "
                f"below the {min_speedup}x gate ({cpus} CPUs available)"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_parallel.json", help="JSON report path"
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(DEFAULT_WORKERS)
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail below this speedup at >=4 workers (0 disables; "
        "auto-skipped when the host has fewer CPUs than workers)",
    )
    parser.add_argument(
        "--max-serial-wall", type=float, default=0.0,
        help="fail if the serial best-of wall exceeds this many seconds "
        "(0 disables; CI's columnar-regression guard)",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    report = run_scaling(scale, tuple(args.workers), repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    serial = report["serial"]
    print(
        f"workload {report['workload']['data']} x "
        f"{report['workload']['query']} (scale {scale}, "
        f"{report['cpu_count']} usable CPUs, "
        f"logical={report['cpu_logical']}, "
        f"affinity={report['cpu_affinity']})"
    )
    print(f"serial  : {serial['wall_s']:8.3f} s  count={serial['count']:,}")
    for run in report["runs"]:
        print(
            f"workers={run['workers']:<3}: {run['wall_s']:8.3f} s  "
            f"speedup={run['speedup']:.2f}x  intervals={run['intervals']}"
        )
    print(f"wrote {args.out}")

    errors = check_report(report, args.min_speedup, args.max_serial_wall)
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1 if errors else 0


# ---------------------------------------------------------------- pytest
@pytest.mark.benchmark(group="parallel")
def test_parallel_scaling_smoke(benchmark):
    """Tiny-scale smoke: bit-identical counts at every worker count (the
    speedup gate is exercised by the script/CI where CPUs exist)."""
    report = benchmark.pedantic(
        run_scaling, args=(0.05, (1, 2)), rounds=1, iterations=1
    )
    assert check_report(report, min_speedup=0) == []
    assert all(r["count"] == report["serial"]["count"] for r in report["runs"])


if __name__ == "__main__":
    sys.exit(main())
