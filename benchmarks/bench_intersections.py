"""Benchmark: §4.1.3 — intersection micro-kernel comparison.

Times the three Algorithm-2 kernels on degree-controlled inputs and
checks the paper's cost ordering: SV is movement-optimal but its space
is per-worker O(|V|); c- wins on balanced degrees; p- wins when the
co-constraint vertices are hubs.
"""

import numpy as np
import pytest

from repro.core import (
    adaptive_intersection,
    c_intersection,
    estimate_c_cost,
    estimate_p_cost,
    p_intersection,
    scatter_vector_intersection,
)
from repro.gpusim import CostModel, V100
from repro.graph import from_edges, random_graph


def hub_graph(num_leaves=400):
    """Directed hub 0 -> every leaf; a small bidirected clique on 1..4.

    Intersecting children(1) with children(0) makes vertex 0 the huge
    co-constraint while the candidates (children of 1) stay low
    in-degree — the regime where p-intersection wins (§4.1.3).
    """
    edges = [(0, i) for i in range(1, num_leaves)]  # hub out-edges only
    clique = [(1, 2), (2, 3), (1, 3), (1, 4), (2, 4), (3, 4)]
    return from_edges(edges + clique + [(b, a) for a, b in clique])


@pytest.mark.benchmark(group="intersections")
@pytest.mark.parametrize(
    "kernel",
    [scatter_vector_intersection, c_intersection, p_intersection, adaptive_intersection],
    ids=["sv", "c", "p", "adaptive"],
)
def test_kernel_throughput(benchmark, kernel):
    g = random_graph(400, 0.08, seed=3)
    verts = np.array([0, 1, 2])
    out = benchmark(kernel, g, verts)
    ref = set(g.children(0).tolist())
    ref &= set(g.children(1).tolist())
    ref &= set(g.children(2).tolist())
    assert sorted(out.tolist()) == sorted(ref)


def _sv_reference_add_at(graph, vertices, cost=None):
    """The per-vertex ``np.add.at`` scatter loop that the bincount SV
    kernel replaced — kept here as the equivalence oracle."""
    verts = np.asarray(vertices, dtype=np.int64).ravel()
    chi = len(verts)
    scatter = np.zeros(graph.num_vertices, dtype=np.int64)
    moved = 0
    for a in verts:
        kids = graph.children(a)
        moved += len(kids)
        np.add.at(scatter, kids, 1)
    first = graph.children(verts[0])
    result = first[scatter[first] == chi]
    if cost is not None:
        cost.charge_dram_read(moved, segments=chi)
        cost.charge_dram_write(moved, segments=max(1, moved))
        cost.charge_dram_read(len(first))
        cost.charge_dram_write(len(result))
        cost.charge_instructions(2 * moved + len(first))
    return result


@pytest.mark.benchmark(group="intersections")
def test_sv_bincount_matches_add_at_loop(benchmark):
    """The bincount rewrite of the SV kernel must be a pure speedup:
    identical survivors and identical cost charges on every input."""
    cases = [
        (random_graph(400, 0.08, seed=3), np.array([0, 1, 2])),
        (random_graph(200, 0.15, seed=7), np.array([5])),
        (hub_graph(), np.array([1, 0])),
    ]
    for g, verts in cases:
        cost_new, cost_ref = CostModel(V100), CostModel(V100)
        got = scatter_vector_intersection(g, verts, cost_new)
        want = _sv_reference_add_at(g, verts, cost_ref)
        assert np.array_equal(got, want)
        assert cost_new.snapshot() == cost_ref.snapshot()
    g, verts = cases[0]
    benchmark(scatter_vector_intersection, g, verts)


@pytest.mark.benchmark(group="intersections")
def test_modeled_costs_follow_paper_complexities(benchmark):
    g = benchmark.pedantic(hub_graph, rounds=1, iterations=1)
    low_deg_anchor = np.array([1, 0])  # anchor deg ~5, co-vertex is the hub
    # c must stream the hub's entire children list; p probes only the
    # anchor's few children's parent lists.
    assert estimate_p_cost(g, low_deg_anchor) < estimate_c_cost(g, low_deg_anchor)
    balanced = random_graph(200, 0.1, seed=1)
    verts = np.array([0, 1])
    # on balanced degrees c's streaming is no worse than p's probing
    assert estimate_c_cost(balanced, verts) <= 4 * estimate_p_cost(balanced, verts)


@pytest.mark.benchmark(group="intersections")
def test_sv_space_rules_it_out_on_gpu(benchmark):
    """The paper's §4.1.3 argument: SV space is O(|V| x workers)."""
    g = benchmark.pedantic(random_graph, args=(300, 0.1), kwargs={"seed": 2}, rounds=1, iterations=1)
    cost_sv, cost_c = CostModel(V100), CostModel(V100)
    verts = np.array([0, 1, 2])
    scatter_vector_intersection(g, verts, cost_sv)
    c_intersection(g, verts, cost_c)
    per_worker_sv_words = g.num_vertices
    per_worker_c_words = int(g.out_degrees.max())
    workers = V100.max_resident_warps
    # per-worker space ratio |V| / delta is what rules SV out
    assert per_worker_sv_words > 5 * per_worker_c_words
    # at the evaluation datasets' scale the SV buffers alone exceed the
    # simulated device memory (wikiTalk-sim has |V| = 6400)
    assert 6400 * workers > V100.memory_words
    assert per_worker_c_words * workers < V100.memory_words
    # and SV's scattered writes dominate transactions
    assert cost_sv.dram_write_transactions > cost_c.dram_write_transactions
