"""Benchmark: incremental re-matching vs full re-match across a commit.

The workload is the Figure 2 scaling shape (mesh data graph x chain
query, the same generator :mod:`bench_parallel_scaling` uses) extended
with a disjoint degree-6 circulant component whose vertices are the
only ones that can root high-degree queries — the degree segregation
that makes cache promotion provable (DESIGN.md §16).

One commit applies a <= 1% edge delta confined to a corner of the mesh,
then three figures are measured:

* **incremental speedup** — wall-clock of the delta-aware re-match
  (dirty-ball re-execution + arithmetic merge) vs a full re-match of
  the chain query on the child version, at **exact count parity**
  (hard failure on divergence, the equivalence oracle);
* **cache survival** — a battery of circulant-rooted queries is cached
  pre-commit; post-commit every one must be answered from the promoted
  cache (gate: hit rate >= 90%) with unchanged counts;
* **service parity** — the served post-commit chain count must equal a
  fresh full match, and the dispatcher must report the incremental
  path actually ran.

Run as a script to produce ``BENCH_incremental.json``::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_incremental.py \
        --out BENCH_incremental.json

Also collected by ``pytest benchmarks/`` as a tiny-scale smoke test
(the speedup gate needs real problem sizes; parity and promotion gates
hold at every scale).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.core.config import CuTSConfig
from repro.core.matcher import CuTSMatcher
from repro.graph import chain_graph, from_edges, star_graph
from repro.service import MatchingService
from repro.storage.overlay import spliced_graph
from repro.versioning import EdgeDelta

from bench_parallel_scaling import figure2_workload
from conftest import bench_scale

DENSE_M = 24      # circulant vertices
DENSE_SPAN = 3    # connected to +-1..3 -> degree 6, no K5


def _circulant_edges(m: int, span: int, offset: int) -> np.ndarray:
    pairs = [
        [offset + i, offset + (i + d) % m]
        for i in range(m)
        for d in range(1, span + 1)
    ]
    arr = np.asarray(pairs, dtype=np.int64)
    return np.concatenate([arr, arr[:, ::-1]], axis=0)


def build_workload(scale: float):
    """Figure 2 mesh + chain, plus the disjoint circulant component."""
    mesh, query = figure2_workload(scale)
    edges = np.concatenate(
        [mesh.edge_list(), _circulant_edges(DENSE_M, DENSE_SPAN,
                                            mesh.num_vertices)],
        axis=0,
    )
    side = int(round(math.sqrt(mesh.num_vertices)))
    data = from_edges(edges, num_vertices=mesh.num_vertices + DENSE_M)
    return data, query, side


def corner_delta(parent, side: int) -> EdgeDelta:
    """<= 1% of edges, confined to one mesh corner, degree-preserving:
    no mesh vertex reaches degree 5, so the battery's root sets stay
    disjoint from the dirty ball in both versions."""
    return EdgeDelta.build(
        inserts=[[0, 2], [1, 3]],
        deletes=[[0, 1], [side, side + 1]],
        parent=parent,
        directed=False,
    )


def _with_extra_edges(base, extra):
    extra = np.asarray(extra, dtype=np.int64)
    edges = np.concatenate([base.edge_list(), extra, extra[:, ::-1]], axis=0)
    n = max(base.num_vertices, int(extra.max()) + 1)
    return from_edges(edges, num_vertices=n)


def query_battery() -> dict[str, object]:
    """Ten distinct queries whose max-degree vertex (the root) needs
    degree >= 5: only the circulant component can host them."""
    s5, s6 = star_graph(5), star_graph(6)
    return {
        "S5": s5,
        "S6": s6,
        "S5+fan": _with_extra_edges(s5, [[1, 2]]),
        "S6+fan": _with_extra_edges(s6, [[1, 2]]),
        "S5+fan2": _with_extra_edges(s5, [[1, 2], [3, 4]]),
        "S6+fan2": _with_extra_edges(s6, [[1, 2], [3, 4]]),
        "S5+tail": _with_extra_edges(s5, [[1, 6]]),
        "S6+tail": _with_extra_edges(s6, [[1, 7]]),
        "S5+fan+tail": _with_extra_edges(s5, [[1, 2], [3, 6]]),
        "S6+fan+tail": _with_extra_edges(s6, [[1, 2], [3, 7]]),
    }


def _best_of(repeats: int, fn) -> tuple[float, object]:
    best, result = math.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_incremental(scale: float, repeats: int = 3) -> dict:
    config = CuTSConfig()
    parent, query, side = build_workload(scale)
    delta = corner_delta(parent, side)
    child = spliced_graph(parent, delta.inserts, delta.deletes)
    delta_arcs = len(delta.inserts) + len(delta.deletes)
    delta_fraction = delta_arcs / parent.num_edges

    # -- direct engine: full re-match vs incremental, same child graph.
    old_matcher = CuTSMatcher(parent, config)
    base = old_matcher.match(query)
    new_matcher = CuTSMatcher(child, config)
    new_matcher.match(chain_graph(2))  # warm, same footing for both
    full_s, full_res = _best_of(repeats, lambda: new_matcher.match(query))
    inc_s, inc_res = _best_of(
        repeats,
        lambda: new_matcher.match(query, base_result=base, delta=delta),
    )

    # -- served path: battery cached, one commit, battery re-served.
    battery = query_battery()
    with tempfile.TemporaryDirectory() as state_dir:
        service = MatchingService(config, state_dir=state_dir)
        try:
            service.register_graph(parent, "bench")
            cold = {
                name: service.match("bench", q, timeout=300).count
                for name, q in battery.items()
            }
            service.match("bench", query, timeout=300)  # incremental base
            summary = service.mutate_graph(
                "bench",
                inserts=delta.inserts.tolist(),
                deletes=delta.deletes.tolist(),
            )
            hits_before = service.metrics()["result_cache"]["hits"]
            warm = {
                name: service.match("bench", q, timeout=300).count
                for name, q in battery.items()
            }
            battery_hits = (
                service.metrics()["result_cache"]["hits"] - hits_before
            )
            served = service.match("bench", query, timeout=300)
            incremental_matches = service.metrics()["dispatcher"][
                "incremental_matches"
            ]
        finally:
            service.close()

    return {
        "benchmark": "incremental_rematch",
        "workload": {
            "num_vertices": parent.num_vertices,
            "num_edges": parent.num_edges,
            "query": query.name,
            "scale": scale,
            "delta_arcs": delta_arcs,
            "delta_fraction": round(delta_fraction, 6),
        },
        "full": {"wall_s": round(full_s, 4), "count": full_res.count},
        "incremental": {"wall_s": round(inc_s, 4), "count": inc_res.count},
        "speedup": round(full_s / inc_s, 3) if inc_s else None,
        "cache": {
            "battery": len(battery),
            "battery_hits": battery_hits,
            "hit_rate": round(battery_hits / len(battery), 3),
            "promoted": summary["promoted"],
            "counts_stable": warm == cold,
        },
        "service": {
            "count": served.count,
            "incremental_matches": incremental_matches,
        },
    }


def check_report(
    report: dict,
    min_speedup: float = 5.0,
    min_hit_rate: float = 0.9,
) -> list[str]:
    """Hard failures: count divergence anywhere, an oversized delta,
    a missed speedup gate, or a missed cache-survival gate."""
    errors = []
    full = report["full"]
    if report["incremental"]["count"] != full["count"]:
        errors.append(
            f"incremental count {report['incremental']['count']} != "
            f"full re-match {full['count']} (equivalence oracle)"
        )
    if report["service"]["count"] != full["count"]:
        errors.append(
            f"served post-commit count {report['service']['count']} != "
            f"full re-match {full['count']}"
        )
    if not report["cache"]["counts_stable"]:
        errors.append("a promoted cache entry changed its count")
    if report["workload"]["delta_fraction"] > 0.01:
        errors.append(
            f"delta fraction {report['workload']['delta_fraction']} "
            f"exceeds the 1% contract"
        )
    if min_speedup > 0 and report["speedup"] < min_speedup:
        errors.append(
            f"incremental speedup {report['speedup']}x below the "
            f"{min_speedup}x gate"
        )
    if report["cache"]["hit_rate"] < min_hit_rate:
        errors.append(
            f"post-commit hit rate {report['cache']['hit_rate']} below "
            f"the {min_hit_rate} gate "
            f"({report['cache']['battery_hits']}/"
            f"{report['cache']['battery']})"
        )
    if report["service"]["incremental_matches"] < 1:
        errors.append("the served chain query never took the "
                      "incremental path")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_incremental.json", help="JSON report path"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="fail below this incremental-vs-full speedup (0 disables)",
    )
    parser.add_argument(
        "--min-hit-rate", type=float, default=0.9,
        help="fail below this post-commit cache hit rate",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    report = run_incremental(scale, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    w = report["workload"]
    print(
        f"workload: {w['num_vertices']} vertices, {w['num_edges']} arcs, "
        f"delta {w['delta_arcs']} arcs ({w['delta_fraction']:.4%})"
    )
    print(
        f"full re-match : {report['full']['wall_s']:8.3f} s  "
        f"count={report['full']['count']:,}"
    )
    print(
        f"incremental   : {report['incremental']['wall_s']:8.3f} s  "
        f"speedup={report['speedup']:.2f}x"
    )
    print(
        f"cache survival: {report['cache']['battery_hits']}/"
        f"{report['cache']['battery']} hits "
        f"(promoted {report['cache']['promoted']})"
    )
    print(f"wrote {args.out}")

    errors = check_report(report, args.min_speedup, args.min_hit_rate)
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1 if errors else 0


# ---------------------------------------------------------------- pytest
@pytest.mark.benchmark(group="incremental")
def test_incremental_smoke(benchmark):
    """Tiny-scale smoke: parity and promotion gates hold (the speedup
    gate needs real problem sizes and is exercised by the script/CI)."""
    report = benchmark.pedantic(
        run_incremental, args=(0.05,), kwargs={"repeats": 1},
        rounds=1, iterations=1,
    )
    assert check_report(report, min_speedup=0) == []


if __name__ == "__main__":
    sys.exit(main())
