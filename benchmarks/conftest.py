"""Benchmark configuration.

Each benchmark regenerates one paper table or figure and prints the
paper-shaped rows (captured by pytest unless ``-s`` is given).  Scale is
controlled by ``REPRO_BENCH_SCALE`` (default 0.5 — roughly quarter-size
datasets) and ``REPRO_BENCH_FULL=1`` switches the Table 3 grid to the
full 198-case run recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def full_grid() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def top_k() -> int:
    return 11 if full_grid() else 3
