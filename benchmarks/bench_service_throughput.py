"""Benchmark: serving throughput of the matching service.

Measures the two amortizations PR 5 exists for, in wall-clock seconds:

* **batched vs. sequential** — the sequential baseline answers each
  query the one-shot way (fresh :class:`CuTSMatcher` per query, the
  CLI's cost structure); the service answers the same queries through
  :meth:`MatchingService.match_many`, i.e. one persistent engine and a
  single batched pool pass over ``min(4, cpus)`` workers;
* **warm-cache hit latency** — the same batch re-submitted against a
  warm registry + warm cache must be answered from the result cache:
  zero additional matcher invocations and a per-hit latency bounded in
  milliseconds, with bit-identical counts.

Run as a script to produce ``BENCH_service.json``::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_service_throughput.py \
        --out BENCH_service.json

Counts are **always** verified against the sequential baseline and the
script exits non-zero on any divergence.  The >= 2x throughput gate only
applies where the hardware can express it (>= 4 CPUs); the warm-cache
gates apply everywhere.

Also collected by ``pytest benchmarks/`` as a tiny-scale smoke test.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import pytest

from repro.core import CuTSMatcher
from repro.core.config import CuTSConfig
from repro.graph import chain_graph, cycle_graph, mesh_graph, star_graph
from repro.hostinfo import cpu_report, detect_cpus
from repro.service import MatchingService

from conftest import bench_scale

WARM_HIT_LATENCY_GATE_MS = 25.0


def service_workload(scale: float):
    """A mesh data graph and a spread of distinct queries, scaled so the
    sequential pass takes long enough to measure."""
    side = max(10, int(round(48 * math.sqrt(scale))))
    length = 7 if scale >= 0.25 else 5
    queries = [
        chain_graph(length),
        chain_graph(length + 1),
        cycle_graph(length - 1),
        cycle_graph(length),
        star_graph(length - 2),
        chain_graph(length - 1),
        cycle_graph(length + 1),
        star_graph(length - 1),
    ]
    return mesh_graph(side, side), queries


def run_throughput(scale: float, workers: int | None = None) -> dict:
    data, queries = service_workload(scale)
    config = CuTSConfig()
    workers = workers or min(4, detect_cpus()[0])

    # Sequential baseline: the one-shot cost structure (new engine per
    # query, no reuse of anything).
    t0 = time.perf_counter()
    sequential_counts = [
        CuTSMatcher(data, config).match(q).count for q in queries
    ]
    sequential_s = time.perf_counter() - t0

    with MatchingService(config, workers=workers) as service:
        fingerprint = service.register_graph(data)
        # Prewarm the pool the way a deployment would (pays process
        # start + shared-memory attach once, outside the timed region).
        service.match(fingerprint, chain_graph(2))

        t0 = time.perf_counter()
        batched = service.match_many(fingerprint, queries)
        batched_s = time.perf_counter() - t0

        invocations_before = service.dispatcher.matcher_invocations
        t0 = time.perf_counter()
        warm = service.match_many(fingerprint, queries)
        warm_s = time.perf_counter() - t0
        invocation_delta = (
            service.dispatcher.matcher_invocations - invocations_before
        )
        cache = service.result_cache.snapshot()

    return {
        "benchmark": "service_throughput",
        "workload": {
            "data": data.name,
            "num_vertices": data.num_vertices,
            "num_edges": data.num_edges,
            "queries": [q.name for q in queries],
            "scale": scale,
        },
        **cpu_report(),
        "workers": workers,
        "sequential": {
            "wall_s": round(sequential_s, 4),
            "counts": sequential_counts,
        },
        "batched": {
            "wall_s": round(batched_s, 4),
            "counts": [r.count for r in batched],
            "speedup": (
                round(sequential_s / batched_s, 3) if batched_s else None
            ),
        },
        "warm_cache": {
            "wall_s": round(warm_s, 4),
            "counts": [r.count for r in warm],
            "matcher_invocation_delta": invocation_delta,
            "per_hit_latency_ms": round(warm_s * 1000.0 / len(queries), 3),
            "hits": cache["hits"],
        },
    }


def check_report(report: dict, min_speedup: float = 2.0) -> list[str]:
    """Hard failures: count divergence anywhere, a cold batch that
    misses the throughput gate on capable hardware, or a warm repeat
    that ran the engine / answered slowly."""
    errors = []
    expected = report["sequential"]["counts"]
    for section in ("batched", "warm_cache"):
        if report[section]["counts"] != expected:
            errors.append(
                f"{section} counts diverged from the sequential baseline: "
                f"{report[section]['counts']} != {expected}"
            )
    cpus = report["cpu_count"] or 1
    speedup = report["batched"]["speedup"]
    if min_speedup > 0 and cpus >= 4 and speedup < min_speedup:
        errors.append(
            f"batched speedup {speedup}x below the {min_speedup}x gate "
            f"({cpus} CPUs available)"
        )
    warm = report["warm_cache"]
    if warm["matcher_invocation_delta"] != 0:
        errors.append(
            f"warm repeat ran the matcher "
            f"{warm['matcher_invocation_delta']} time(s); every request "
            f"should have been a cache hit"
        )
    if warm["per_hit_latency_ms"] > WARM_HIT_LATENCY_GATE_MS:
        errors.append(
            f"warm-cache hit latency {warm['per_hit_latency_ms']} ms "
            f"exceeds the {WARM_HIT_LATENCY_GATE_MS} ms gate"
        )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_service.json", help="JSON report path"
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="service workers (default min(4, cpus))",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail below this batched-vs-sequential speedup (0 disables; "
        "auto-skipped when the host has fewer than 4 CPUs)",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    report = run_throughput(scale, workers=args.workers)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    wl = report["workload"]
    print(
        f"workload {wl['data']} x {len(wl['queries'])} queries "
        f"(scale {scale}, {report['cpu_count']} CPUs, "
        f"{report['workers']} workers)"
    )
    print(f"sequential : {report['sequential']['wall_s']:8.3f} s")
    print(
        f"batched    : {report['batched']['wall_s']:8.3f} s  "
        f"speedup={report['batched']['speedup']:.2f}x"
    )
    warm = report["warm_cache"]
    print(
        f"warm cache : {warm['wall_s']:8.3f} s  "
        f"({warm['per_hit_latency_ms']:.2f} ms/hit, "
        f"{warm['matcher_invocation_delta']} engine calls)"
    )
    print(f"wrote {args.out}")

    errors = check_report(report, args.min_speedup)
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1 if errors else 0


# ---------------------------------------------------------------- pytest
@pytest.mark.benchmark(group="service")
def test_service_throughput_smoke(benchmark):
    """Tiny-scale smoke: exact parity + free warm repeat (the speedup
    gate is exercised by the script/CI where CPUs exist)."""
    report = benchmark.pedantic(
        run_throughput, args=(0.05,), kwargs={"workers": 2},
        rounds=1, iterations=1,
    )
    assert check_report(report, min_speedup=0) == []
    assert report["warm_cache"]["matcher_invocation_delta"] == 0


if __name__ == "__main__":
    sys.exit(main())
