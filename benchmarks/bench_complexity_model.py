"""Benchmark: §5 analysis — predicted vs measured path counts.

Validates the paper's complexity analysis: the strict Eq. (1) bound
(sigma = 1) must dominate the measured per-depth path counts, and the
fitted effective branching factor ``ds`` drives both the growth and the
Table 1 compression behaviour.
"""

import pytest

from repro.core import CuTSMatcher, fit_branching_factor, predict_vs_measured
from repro.experiments import load_dataset, render_table
from repro.graph import clique_graph


@pytest.mark.benchmark(group="complexity")
def test_predicted_vs_measured(benchmark, scale):
    data = load_dataset("enron", max(scale, 1.0))
    query = clique_graph(5)

    def run():
        measured = CuTSMatcher(data).match(query).stats.paths_per_depth
        return measured, predict_vs_measured(data, query, measured)

    measured, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="§5 — Eq.(1)/(2) predictions vs measured"))
    ds = fit_branching_factor(measured)
    print(f"fitted effective branching factor ds = {ds:.2f}")
    assert all(r["bound_holds"] for r in rows)
    # Table 1's growing compression requires ds > 1 on this workload
    assert ds > 1.0
