"""Benchmark: Table 1 — naive vs trie storage (enron-sim, K5).

Regenerates the paper's storage comparison and asserts its shape: the
depth-1 ratio is exactly 0.5, and the ratio grows with depth once the
partial-path counts grow.
"""

import pytest

from repro.experiments import render_table, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_storage_comparison(benchmark, scale):
    # Table 1's growing-ratio claim needs the full-size enron stand-in:
    # its dense community pockets vanish below scale 1.0, so this bench
    # ignores REPRO_BENCH_SCALE reductions (the run takes ~6 s).
    comp = benchmark.pedantic(
        run_table1, args=(max(scale, 1.0),), rounds=1, iterations=1
    )
    rows = comp.rows()
    print()
    print(render_table(rows, title="Table 1 — naive vs cuTS trie storage"))
    assert rows[0]["compression_ratio"] == pytest.approx(0.5)
    # shape claim: the ratio improves as the search deepens
    ratios = [r["compression_ratio"] for r in rows]
    assert ratios[-1] > ratios[1]
    assert all(r["naive_storage_words"] > 0 for r in rows)
