"""Benchmark: Table 2 — dataset properties (generation cost + the table)."""

import pytest

from repro.experiments import render_table, table2_rows
from repro.experiments.datasets import load_dataset


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_properties(benchmark, scale):
    load_dataset.cache_clear()
    rows = benchmark.pedantic(table2_rows, args=(scale,), rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Table 2 — dataset properties"))
    assert len(rows) == 6
    # class shapes: road networks concentrated, social graphs hubby
    by = {r["network"]: r for r in rows}
    assert by["roadNet-PA"]["max_degree"] <= 8
    assert by["enron"]["max_degree"] > 20
    sizes = [r["vertices"] for r in rows]
    assert sizes == sorted(sizes)  # Table 2 ordering preserved
