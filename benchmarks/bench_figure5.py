"""Benchmark: Figure 5 — load balance across 4 nodes on wikiTalk.

Asserts the paper's claim: "our node to node runtime variation is very
low" — per-node busy times stay within a tight band of the mean.
"""

import pytest

from repro.experiments import render_table
from repro.experiments.figure5 import run_figure5


@pytest.mark.benchmark(group="figure5")
def test_figure5_load_balance(benchmark, scale):
    report = benchmark.pedantic(
        run_figure5,
        kwargs={"scale": scale, "num_ranks": 4, "chunk_size": 256},
        rounds=1,
        iterations=1,
    )
    rows = report.rows()
    print()
    print(render_table(rows, title="Figure 5 — per-node runtime (wikiTalk, 4 nodes)"))
    print(f"max/mean = {report.imbalance:.3f}, cov = {report.cov:.3f}")
    assert len(rows) == 4
    assert report.imbalance < 1.5
    assert report.cov < 0.35


@pytest.mark.benchmark(group="figure5")
def test_figure5_balance_improves_with_small_chunks(benchmark, scale):
    coarse = benchmark.pedantic(
        run_figure5,
        kwargs={"scale": scale, "num_ranks": 4, "chunk_size": 100_000},
        rounds=1,
        iterations=1,
    )
    fine = run_figure5(scale=scale, num_ranks=4, chunk_size=128)
    # finer chunks -> more steal opportunities -> no worse balance
    assert fine.imbalance <= coarse.imbalance * 1.25
