"""Benchmark: what the resilience layer costs, and what it buys.

Two measurements, two gates:

* **journal overhead** — the same request stream served with and
  without ``state_dir`` durability (journal writes group-commit up to
  3 fsync'd records per job).  Gate: the paired p50 latency delta is within
  **5%** of the journal-off p50.  Both services stay alive for the
  whole run and requests alternate between them, so the estimate is a
  median of paired differences — immune to the machine-load drift
  that dwarfs a journal write when the conditions run minutes apart.
  Measured with the result cache disabled so every request pays the
  full engine path the journal rides on.
* **goodput under faults** — a deterministic 10%-fault schedule
  (injected engine exceptions, stalls, corrupted cache reads) against
  the same workload.  A request is *good* when it settles ``done``
  with the exact serial-oracle count on the first try.  Gate: goodput
  >= **70%**, and every good count is exact.  Requests failed by an
  injected fault must then succeed exactly on one resubmit — faults
  may cost retries, never correctness.

Run as a script to produce ``BENCH_resilience.json``::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_resilience.py \
        --out BENCH_resilience.json

Also collected by ``pytest benchmarks/`` as a tiny-scale smoke test
(parity + goodput gates only: at smoke scale the engine path is so
cheap that journal fsyncs dominate, which is not the deployment
regime the 5% gate describes).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
import tempfile
import time

import pytest

from repro.core import CuTSMatcher
from repro.core.config import CuTSConfig
from repro.graph import chain_graph, cycle_graph, mesh_graph, star_graph
from repro.hostinfo import cpu_report
from repro.service import JobFailed, MatchingService
from repro.service.faults import ServiceFaultPlan

from conftest import bench_scale

JOURNAL_OVERHEAD_GATE = 0.05
GOODPUT_GATE = 0.70

# Seed chosen so the realized schedule over a 40-request run actually
# expresses its 10% rates (~4 engine faults, ~4 stalls) — an unlucky
# seed would measure goodput of a fault-free run.
FAULT_SCHEDULE = ServiceFaultPlan(
    seed=19,
    engine_fault_prob=0.10,
    stall_prob=0.10,
    stall_ms=2.0,
    cache_corrupt_prob=0.10,
)


def resilience_workload(scale: float):
    """A mesh graph and a query cycle heavy enough that the engine path
    dominates a journal write."""
    side = max(8, int(round(24 * math.sqrt(scale))))
    length = 6 if scale >= 0.25 else 4
    queries = [
        chain_graph(length),
        cycle_graph(length),
        star_graph(length - 2),
        chain_graph(length + 1),
    ]
    return mesh_graph(side, side), queries


def _timed_match(service, fp: str, query) -> float:
    t0 = time.perf_counter()
    service.match(fp, query, timeout=600.0)
    return time.perf_counter() - t0


def run_journal_overhead(scale: float, requests: int) -> dict:
    data, queries = resilience_workload(scale)
    config = CuTSConfig(service_cache_bytes=0)
    # Paired design: both services stay alive for the whole measurement
    # and each iteration issues one request to each, back to back, so
    # machine-load drift (which moves the baseline by far more than a
    # journal write costs) hits both conditions symmetrically instead
    # of masquerading as journal overhead.  The within-pair order
    # alternates to cancel any ordering effect.
    pairs = max(requests, 2) * 2
    off_lat: list[float] = []
    on_lat: list[float] = []
    with tempfile.TemporaryDirectory(prefix="bench-state-") as base:
        with (
            MatchingService(config) as plain,
            MatchingService(
                config, state_dir=os.path.join(base, "state")
            ) as journaled,
        ):
            fp_off = plain.register_graph(data)
            fp_on = journaled.register_graph(data)
            plain.match(fp_off, queries[0], timeout=600.0)  # warmup
            journaled.match(fp_on, queries[0], timeout=600.0)
            for i in range(pairs):
                query = queries[i % len(queries)]
                if i % 2:
                    on_lat.append(_timed_match(journaled, fp_on, query))
                    off_lat.append(_timed_match(plain, fp_off, query))
                else:
                    off_lat.append(_timed_match(plain, fp_off, query))
                    on_lat.append(_timed_match(journaled, fp_on, query))
    p50_off = statistics.median(off_lat)
    p50_on = statistics.median(on_lat)
    # The paired per-request difference is the drift-immune estimate.
    paired = statistics.median(
        on - off for on, off in zip(on_lat, off_lat)
    )
    return {
        "requests": pairs,
        "p50_off_ms": round(p50_off * 1000.0, 3),
        "p50_on_ms": round(p50_on * 1000.0, 3),
        "paired_delta_ms": round(paired * 1000.0, 3),
        "overhead_frac": (
            round(paired / p50_off, 4) if p50_off else None
        ),
    }


def run_goodput(scale: float, requests: int) -> dict:
    data, queries = resilience_workload(scale)
    config = CuTSConfig(service_cache_bytes=0)
    oracle = [
        CuTSMatcher(data, config).match(q).count for q in queries
    ]
    good = 0
    mismatches = 0
    retried_ok = 0
    retried_bad = 0
    with MatchingService(config, faults=FAULT_SCHEDULE) as service:
        fp = service.register_graph(data)
        for i in range(requests):
            query = queries[i % len(queries)]
            try:
                result = service.match(fp, query, timeout=600.0)
            except JobFailed:
                # An injected fault: one resubmit must settle exact.
                try:
                    retry = service.match(fp, query, timeout=600.0)
                except JobFailed:
                    retried_bad += 1  # unlucky twice; still not good
                else:
                    if retry.count == oracle[i % len(queries)]:
                        retried_ok += 1
                    else:
                        mismatches += 1
                continue
            if result.count == oracle[i % len(queries)]:
                good += 1
            else:
                mismatches += 1
        fault_counts = (
            service.faults.snapshot() if service.faults is not None else {}
        )
    return {
        "requests": requests,
        "good_first_try": good,
        "goodput": round(good / requests, 4),
        "recovered_on_retry": retried_ok,
        "failed_twice": retried_bad,
        "count_mismatches": mismatches,
        "faults": fault_counts,
    }


def run_resilience(scale: float, requests: int | None = None) -> dict:
    requests = requests or max(12, int(round(40 * scale)))
    # The goodput phase needs enough draws for a 10% schedule to
    # actually fire (the latency phase does not).
    return {
        "benchmark": "service_resilience",
        "scale": scale,
        **cpu_report(),
        "journal_overhead": run_journal_overhead(scale, requests),
        "goodput_under_faults": run_goodput(scale, max(40, 2 * requests)),
    }


def check_report(
    report: dict, *, overhead_gate: float | None = JOURNAL_OVERHEAD_GATE
) -> list[str]:
    errors = []
    overhead = report["journal_overhead"]["overhead_frac"]
    if overhead_gate is not None and overhead is not None and (
        overhead > overhead_gate
    ):
        errors.append(
            f"journal-on p50 overhead {overhead:.1%} exceeds the "
            f"{overhead_gate:.0%} gate"
        )
    goodput = report["goodput_under_faults"]
    if goodput["count_mismatches"]:
        errors.append(
            f"{goodput['count_mismatches']} settled request(s) diverged "
            f"from the serial oracle — faults corrupted a count"
        )
    if goodput["goodput"] < GOODPUT_GATE:
        errors.append(
            f"goodput {goodput['goodput']:.1%} under the 10%-fault "
            f"schedule is below the {GOODPUT_GATE:.0%} gate"
        )
    if goodput["failed_twice"] and not goodput["recovered_on_retry"]:
        errors.append(
            "no faulted request ever recovered on resubmit"
        )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_resilience.json", help="JSON report path"
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="requests per measurement (default scales with "
        "REPRO_BENCH_SCALE)",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    report = run_resilience(scale, requests=args.requests)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    jo = report["journal_overhead"]
    gp = report["goodput_under_faults"]
    print(
        f"journal : p50 {jo['p50_off_ms']:.2f} ms off -> "
        f"{jo['p50_on_ms']:.2f} ms on "
        f"({jo['overhead_frac']:+.1%} overhead, {jo['requests']} requests)"
    )
    print(
        f"goodput : {gp['good_first_try']}/{gp['requests']} first-try "
        f"({gp['goodput']:.1%}), {gp['recovered_on_retry']} recovered on "
        f"retry, faults {gp['faults']}"
    )
    print(f"wrote {args.out}")

    errors = check_report(report)
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1 if errors else 0


# ---------------------------------------------------------------- pytest
@pytest.mark.benchmark(group="service")
def test_resilience_smoke(benchmark):
    """Tiny-scale smoke: exact parity under faults + goodput gate.  The
    5% journal gate only holds when engine time dominates fsync time,
    so it is script/CI-scale only."""
    report = benchmark.pedantic(
        run_resilience, args=(0.05,), kwargs={"requests": 12},
        rounds=1, iterations=1,
    )
    assert check_report(report, overhead_gate=None) == []
    assert report["goodput_under_faults"]["count_mismatches"] == 0


if __name__ == "__main__":
    sys.exit(main())