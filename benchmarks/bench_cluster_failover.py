"""Benchmark: what shard routing costs, and what a failover costs.

Two measurements, two gates, for the replicated cluster of
DESIGN.md §15:

* **healthy-path routing overhead** — the same request stream served
  by a single in-process :class:`MatchingService` and by a 3-rank
  :class:`ClusterService` (2-way replication, all ranks live),
  interleaved pairwise so machine-load drift cancels.  Gate: the
  paired p50 latency delta is within **10%** of the single-service
  p50.  The router adds one consistent-hash lookup, one envelope
  sequence number, and one event wait per request — none of which may
  cost a tenth of an engine pass.
* **failover latency** — repeated crash cycles: kill the primary
  replica of the loaded shard mid-request, let the router fail over
  to the surviving replica, then restart the victim (journal replay +
  catch-up) before the next cycle.  The *added* latency of a failed-over
  request over the healthy p50 is the price of a crash.  Gate: p95 of
  the added latency < **5x** the healthy p50 — a crash may cost a few
  round trips, never an engine-pass-sized stall.

Counts are **always** verified against a serial oracle
(:class:`CuTSMatcher`) — a failover that loses or doubles a count
fails the script regardless of latency.

Run as a script to produce ``BENCH_cluster.json``::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_cluster_failover.py \
        --out BENCH_cluster.json

Also collected by ``pytest benchmarks/`` as a tiny-scale smoke test
(parity only: at smoke scale an engine pass is cheaper than the
router's 5 ms poll quantum, so the latency gates describe nothing).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
import tempfile
import time

import pytest

from repro.core import CuTSMatcher
from repro.core.config import CuTSConfig
from repro.graph import chain_graph, cycle_graph, mesh_graph, star_graph
from repro.hostinfo import cpu_report
from repro.service import ClusterService, HashRing, MatchingService

from conftest import bench_scale

ROUTING_OVERHEAD_GATE = 0.10
FAILOVER_P95_GATE_X = 5.0
RANKS = 3
REPLICATION = 2


def cluster_workload(scale: float):
    """A mesh graph and a query cycle heavy enough that an engine pass
    dominates the router's poll quantum."""
    side = max(8, int(round(24 * math.sqrt(scale))))
    length = 6 if scale >= 0.25 else 4
    queries = [
        chain_graph(length),
        cycle_graph(length),
        star_graph(length - 2),
        chain_graph(length + 1),
    ]
    return mesh_graph(side, side), queries


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))]


def run_routing_overhead(scale: float, requests: int) -> dict:
    data, queries = cluster_workload(scale)
    config = CuTSConfig(service_cache_bytes=0)
    oracle = [CuTSMatcher(data, config).match(q).count for q in queries]
    pairs = max(requests, 2) * 2
    single_lat: list[float] = []
    routed_lat: list[float] = []
    mismatches = 0
    with (
        MatchingService(config, workers=1) as single,
        ClusterService(
            config, ranks=RANKS, replication=REPLICATION, workers=1
        ) as cluster,
    ):
        fp_single = single.register_graph(data)
        fp_routed = cluster.register_graph(data)
        single.match(fp_single, queries[0], timeout=600.0)  # warmup
        cluster.match(fp_routed, queries[0], timeout=600.0)
        for i in range(pairs):
            query = queries[i % len(queries)]
            expected = oracle[i % len(queries)]
            # Alternate within-pair order to cancel ordering effects.
            order = (
                ((single, fp_single, single_lat),
                 (cluster, fp_routed, routed_lat))
                if i % 2 == 0
                else ((cluster, fp_routed, routed_lat),
                      (single, fp_single, single_lat))
            )
            for service, fp, latencies in order:
                t0 = time.perf_counter()
                result = service.match(fp, query, timeout=600.0)
                latencies.append(time.perf_counter() - t0)
                if result.count != expected:
                    mismatches += 1
    p50_single = statistics.median(single_lat)
    p50_routed = statistics.median(routed_lat)
    paired = statistics.median(
        routed - single for routed, single in zip(routed_lat, single_lat)
    )
    return {
        "requests": pairs,
        "p50_single_ms": round(p50_single * 1000.0, 3),
        "p50_routed_ms": round(p50_routed * 1000.0, 3),
        "paired_delta_ms": round(paired * 1000.0, 3),
        "overhead_frac": (
            round(paired / p50_single, 4) if p50_single else None
        ),
        "count_mismatches": mismatches,
    }


def run_failover_latency(scale: float, cycles: int) -> dict:
    data, queries = cluster_workload(scale)
    config = CuTSConfig(service_cache_bytes=0)
    oracle = [CuTSMatcher(data, config).match(q).count for q in queries]
    healthy_lat: list[float] = []
    failover_lat: list[float] = []
    mismatches = 0
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as base:
        with ClusterService(
            config,
            ranks=RANKS,
            replication=REPLICATION,
            workers=1,
            state_dir=os.path.join(base, "state"),
            auto_heal=False,
        ) as cluster:
            fp = cluster.register_graph(data)
            cluster.match(fp, queries[0], timeout=600.0)  # warmup
            for i in range(max(cycles, 2) * 2):
                query = queries[i % len(queries)]
                t0 = time.perf_counter()
                result = cluster.match(fp, query, timeout=600.0)
                healthy_lat.append(time.perf_counter() - t0)
                if result.count != oracle[i % len(queries)]:
                    mismatches += 1
            for cycle in range(cycles):
                # All ranks are live between cycles, so the healthy
                # ring (a pure function of the member set) names the
                # primary without reaching into router internals.
                victim = HashRing(range(RANKS)).primary_for(fp)
                query = queries[cycle % len(queries)]
                crashed: list[int] = []

                def hook(phase: str, rank_id: int, job_id: str) -> None:
                    if phase == "mid-shard" and not crashed:
                        crashed.append(rank_id)
                        cluster.crash_rank(rank_id)

                cluster.phase_hook = hook
                t0 = time.perf_counter()
                result = cluster.match(fp, query, timeout=600.0)
                failover_lat.append(time.perf_counter() - t0)
                cluster.phase_hook = None
                if result.count != oracle[cycle % len(queries)]:
                    mismatches += 1
                if crashed:
                    cluster.restart_rank(crashed[0])
            failovers = cluster.metrics()["router"]["failovers"]
    p50_healthy = statistics.median(healthy_lat)
    added = [max(0.0, lat - p50_healthy) for lat in failover_lat]
    return {
        "cycles": cycles,
        "p50_healthy_ms": round(p50_healthy * 1000.0, 3),
        "p50_failover_ms": round(
            statistics.median(failover_lat) * 1000.0, 3
        ),
        "p95_added_ms": round(_p95(added) * 1000.0, 3),
        "p95_added_over_healthy_p50": (
            round(_p95(added) / p50_healthy, 3) if p50_healthy else None
        ),
        "failovers": failovers,
        "count_mismatches": mismatches,
    }


def run_cluster_bench(
    scale: float, requests: int | None = None, cycles: int | None = None
) -> dict:
    requests = requests or max(8, int(round(24 * scale)))
    cycles = cycles or max(5, int(round(12 * scale)))
    return {
        "benchmark": "cluster_failover",
        "scale": scale,
        "ranks": RANKS,
        "replication": REPLICATION,
        **cpu_report(),
        "routing_overhead": run_routing_overhead(scale, requests),
        "failover_latency": run_failover_latency(scale, cycles),
    }


def check_report(report: dict, *, latency_gates: bool = True) -> list[str]:
    errors = []
    routing = report["routing_overhead"]
    failover = report["failover_latency"]
    for section, label in ((routing, "healthy"), (failover, "failover")):
        if section["count_mismatches"]:
            errors.append(
                f"{section['count_mismatches']} {label} request(s) "
                f"diverged from the serial oracle"
            )
    if failover["failovers"] < 1:
        errors.append(
            "no crash cycle ever forced a failover — the measurement "
            "never exercised the path it gates"
        )
    if latency_gates:
        overhead = routing["overhead_frac"]
        if overhead is not None and overhead > ROUTING_OVERHEAD_GATE:
            errors.append(
                f"routed p50 overhead {overhead:.1%} exceeds the "
                f"{ROUTING_OVERHEAD_GATE:.0%} gate"
            )
        ratio = failover["p95_added_over_healthy_p50"]
        if ratio is not None and ratio > FAILOVER_P95_GATE_X:
            errors.append(
                f"p95 failover added latency is {ratio:.1f}x the "
                f"healthy p50 (gate: {FAILOVER_P95_GATE_X:.0f}x)"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_cluster.json", help="JSON report path"
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="paired requests for the overhead phase (default scales "
        "with REPRO_BENCH_SCALE)",
    )
    parser.add_argument(
        "--cycles", type=int, default=None,
        help="crash/restart cycles for the failover phase",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    report = run_cluster_bench(
        scale, requests=args.requests, cycles=args.cycles
    )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    routing = report["routing_overhead"]
    failover = report["failover_latency"]
    print(
        f"routing  : p50 {routing['p50_single_ms']:.2f} ms single -> "
        f"{routing['p50_routed_ms']:.2f} ms routed "
        f"({routing['overhead_frac']:+.1%} overhead, "
        f"{routing['requests']} requests)"
    )
    print(
        f"failover : healthy p50 {failover['p50_healthy_ms']:.2f} ms, "
        f"failover p50 {failover['p50_failover_ms']:.2f} ms, "
        f"p95 added {failover['p95_added_ms']:.2f} ms "
        f"({failover['p95_added_over_healthy_p50']}x healthy p50, "
        f"{failover['failovers']} failovers)"
    )
    print(f"wrote {args.out}")

    errors = check_report(report)
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1 if errors else 0


# ---------------------------------------------------------------- pytest
@pytest.mark.benchmark(group="service")
def test_cluster_failover_smoke(benchmark):
    """Tiny-scale smoke: exact parity through routing and failover.
    The latency gates only hold when an engine pass dominates the
    router's poll quantum, so they are script/CI-scale only."""
    report = benchmark.pedantic(
        run_cluster_bench, args=(0.05,),
        kwargs={"requests": 3, "cycles": 3},
        rounds=1, iterations=1,
    )
    assert check_report(report, latency_gates=False) == []
    assert report["routing_overhead"]["count_mismatches"] == 0
    assert report["failover_latency"]["count_mismatches"] == 0


if __name__ == "__main__":
    sys.exit(main())
