"""Benchmark: what durability costs when nothing goes wrong.

Two gates from the durable-jobs acceptance criteria, measured on the
scaled Figure 2 workload (mesh data graph x chain query):

* **Checkpoint-on overhead** — a run with ``checkpoint_dir`` set must
  stay close to the classic in-process run: the documented target is
  < 10% wall-clock overhead at an amortized snapshot cadence (256
  expansions), with a looser enforced bound to stay CI-safe on noisy
  shared runners.  The default cadence (64) is recorded alongside.
* **Memory budget** — a run with ``memory_budget_mb`` set *below* the
  unconstrained peak must complete with bit-identical counts while the
  peak tracked allocation stays under the budget (graceful degradation,
  never an abort).

Run as a script to produce ``BENCH_durability.json``::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_durability_overhead.py \
        --out BENCH_durability.json

Also collected by ``pytest benchmarks/`` as a tiny-scale smoke test
(count/budget gates only; the timing gate needs a quiet machine).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import time

import pytest

from repro.core import BYTES_PER_WORD, CuTSConfig, CuTSMatcher
from repro.graph import chain_graph, mesh_graph

from conftest import bench_scale

CHAIN_LENGTH = 8
OVERHEAD_TARGET = 1.10    # documented goal (amortized cadence)
OVERHEAD_CI_BOUND = 1.35  # enforced bound (shared-runner noise margin)
CADENCES = (64, 256)
AMORTIZED_CADENCE = 256
BUDGET_FRACTION = 0.4     # budget as a fraction of the unconstrained peak


def durability_workload(scale: float):
    side = max(12, int(round(24 * math.sqrt(scale / 0.5))))
    return mesh_graph(side, side), chain_graph(CHAIN_LENGTH)


def _best_of(repeats: int, fn) -> tuple[float, object]:
    best, result = math.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_durability(scale: float, repeats: int = 3) -> dict:
    data, query = durability_workload(scale)
    matcher = CuTSMatcher(data, CuTSConfig())
    matcher.match(chain_graph(2))  # warm caches outside the timed region

    classic_s, classic = _best_of(repeats, lambda: matcher.match(query))
    free_peak = classic.stats.peak_tracked_bytes

    checkpointed = []
    for every in CADENCES:
        def run(every=every):
            with tempfile.TemporaryDirectory(prefix="bench-durab-") as tmp:
                return matcher.match(
                    query, checkpoint_dir=f"{tmp}/job", checkpoint_every=every
                )
        wall_s, res = _best_of(repeats, run)
        checkpointed.append(
            {
                "checkpoint_every": every,
                "wall_s": round(wall_s, 4),
                "overhead": round(wall_s / classic_s, 4) if classic_s else None,
                "count": res.count,
            }
        )

    # A budget well below the unconstrained peak (when the workload is
    # big enough for a whole-MB budget to sit below it).
    budget_mb = max(1, int(free_peak * BUDGET_FRACTION / 2**20))
    budget_bytes = budget_mb * 2**20
    squeezed = CuTSMatcher(
        data, CuTSConfig(memory_budget_mb=budget_mb)
    ).match(query)
    budget = {
        "budget_mb": budget_mb,
        "budget_below_free_peak": budget_bytes < free_peak,
        "count": squeezed.count,
        "peak_tracked_bytes": squeezed.stats.peak_tracked_bytes,
        "chunk_halvings": squeezed.stats.chunk_halvings,
        "spilled_chunks": squeezed.stats.spilled_chunks,
    }

    return {
        "benchmark": "durability_overhead",
        "workload": {
            "data": data.name,
            "num_vertices": data.num_vertices,
            "num_edges": data.num_edges,
            "query": query.name,
            "scale": scale,
        },
        "bytes_per_word": BYTES_PER_WORD,
        "classic": {
            "wall_s": round(classic_s, 4),
            "count": classic.count,
            "peak_tracked_bytes": free_peak,
        },
        "checkpointed": checkpointed,
        "budget": budget,
        "overhead_target": OVERHEAD_TARGET,
        "overhead_ci_bound": OVERHEAD_CI_BOUND,
    }


def check_report(report: dict, ci_bound: float = OVERHEAD_CI_BOUND) -> list[str]:
    """Hard failures: count divergence, budget overrun, missed overhead
    bound (``ci_bound=0`` disables the timing gate)."""
    errors = []
    classic_count = report["classic"]["count"]
    for run in report["checkpointed"]:
        if run["count"] != classic_count:
            errors.append(
                f"checkpointed count diverged at cadence "
                f"{run['checkpoint_every']}: {run['count']} != "
                f"{classic_count}"
            )
        gated = ci_bound > 0 and run["checkpoint_every"] == AMORTIZED_CADENCE
        if gated and run["overhead"] > ci_bound:
            errors.append(
                f"checkpoint overhead {run['overhead']}x at cadence "
                f"{run['checkpoint_every']} exceeds the {ci_bound}x bound"
            )
    budget = report["budget"]
    if budget["count"] != classic_count:
        errors.append(
            f"budgeted count diverged: {budget['count']} != {classic_count}"
        )
    if budget["budget_below_free_peak"]:
        limit = budget["budget_mb"] * 2**20
        if budget["peak_tracked_bytes"] > limit:
            errors.append(
                f"peak tracked {budget['peak_tracked_bytes']} bytes "
                f"exceeds the {budget['budget_mb']} MiB budget"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_durability.json", help="JSON report path"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--ci-bound", type=float, default=OVERHEAD_CI_BOUND,
        help="fail past this overhead ratio at the amortized cadence "
        "(0 disables the timing gate)",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    report = run_durability(scale, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    classic = report["classic"]
    print(
        f"workload {report['workload']['data']} x "
        f"{report['workload']['query']} (scale {scale})"
    )
    print(
        f"classic : {classic['wall_s']:8.3f} s  count={classic['count']:,}  "
        f"peak={classic['peak_tracked_bytes'] / 2**20:.2f} MiB"
    )
    for run in report["checkpointed"]:
        print(
            f"every={run['checkpoint_every']:<4}: {run['wall_s']:8.3f} s  "
            f"overhead={run['overhead']:.3f}x "
            f"(target {OVERHEAD_TARGET}x at cadence {AMORTIZED_CADENCE})"
        )
    budget = report["budget"]
    print(
        f"budget={budget['budget_mb']} MiB: count={budget['count']:,}  "
        f"peak={budget['peak_tracked_bytes'] / 2**20:.2f} MiB  "
        f"halvings={budget['chunk_halvings']}  "
        f"spills={budget['spilled_chunks']}"
    )
    print(f"wrote {args.out}")

    errors = check_report(report, args.ci_bound)
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1 if errors else 0


# ---------------------------------------------------------------- pytest
@pytest.mark.benchmark(group="durability")
def test_durability_overhead_smoke(benchmark):
    """Tiny-scale smoke: exact counts and budget compliance (the timing
    gate is exercised by the script/CI on quiet machines)."""
    report = benchmark.pedantic(
        run_durability, args=(0.1,), kwargs={"repeats": 1},
        rounds=1, iterations=1,
    )
    assert check_report(report, ci_bound=0) == []


if __name__ == "__main__":
    sys.exit(main())
