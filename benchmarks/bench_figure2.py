"""Benchmark: Figure 2C — storage growth on the mesh/chain illustration."""

import pytest

from repro.experiments import figure2_rows, render_table


@pytest.mark.benchmark(group="figure2")
def test_figure2_mesh_chain_storage(benchmark):
    rows = benchmark.pedantic(figure2_rows, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Figure 2C — mesh 4x4, chain 4"))
    # the measured counts (paper's illustration ignores injectivity; we
    # report the true values and record both in EXPERIMENTS.md)
    assert [r["candidates"] for r in rows] == [16, 48, 104, 232]
    # storage grows super-linearly for naive, sub-linearly for trie
    naive = [r["naive_storage_words"] for r in rows]
    trie = [r["trie_storage_words"] for r in rows]
    assert naive[-1] / naive[0] > trie[-1] / trie[0]
