"""Benchmark: Table 3 — cuTS vs GSI across the evaluation grid.

Default runs a trimmed grid (top-3 queries per size) on both simulated
machines; set ``REPRO_BENCH_FULL=1`` for the full 33-query grid (the run
recorded in EXPERIMENTS.md).  Asserts the paper's headline shape:

* cuTS handles at least as many cases as GSI, strictly more on the full
  grid;
* cuTS wins the mutually-successful cases (geomean speedup > 1);
* the A100-sim handles at least as many cuTS cases as the V100-sim.
"""

import pytest

from repro.experiments import render_table, run_table3

_RESULTS = {}


def _run(device, scale, top_k):
    key = (device, scale, top_k)
    if key not in _RESULTS:
        _RESULTS[key] = run_table3(
            device, scale=scale, top_k=top_k, wall_limit_s=20.0
        )
    return _RESULTS[key]


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("device", ["V100", "A100"])
def test_table3_grid(benchmark, device, scale, top_k):
    t3 = benchmark.pedantic(
        _run, args=(device, scale, top_k), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            t3.summary_rows(),
            title=f"Table 3 summary — {device}-sim (scale={scale}, top_k={top_k})",
        )
    )
    assert t3.cuts_handled >= t3.gsi_handled
    assert t3.cuts_handled > 0
    if t3.geomean_speedup:
        assert t3.geomean_speedup > 1.0


@pytest.mark.benchmark(group="table3")
def test_table3_a100_handles_no_fewer_cases(benchmark, scale, top_k):
    v100 = benchmark.pedantic(_run, args=("V100", scale, top_k), rounds=1, iterations=1)
    a100 = _run("A100", scale, top_k)
    assert a100.cuts_handled >= v100.cuts_handled
    assert a100.gsi_handled >= v100.gsi_handled


@pytest.mark.benchmark(group="table3")
def test_table3_per_case_rows(benchmark, scale, top_k):
    t3 = benchmark.pedantic(_run, args=("V100", scale, top_k), rounds=1, iterations=1)
    rows = t3.rows()
    print()
    print(render_table(rows, title="Table 3 — per-case results (V100-sim)"))
    # every failed cell carries a reason; every successful pair agrees
    for c in t3.cases:
        if c.gsi_ms is None:
            assert c.gsi_failure in ("oom", "timeout")
        if c.cuts_ms is None:
            assert c.cuts_failure in ("oom", "timeout")
