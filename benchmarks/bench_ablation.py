"""Benchmark: design-choice ablations (DESIGN.md §4, last row).

Quantifies each cuTS mechanism in isolation: query ordering, randomized
placement, chunk size, virtual-warp width.
"""

import pytest

from repro.experiments import render_table
from repro.experiments.ablation import (
    binning_ablation,
    chunk_size_ablation,
    ordering_ablation,
    placement_ablation,
    virtual_warp_ablation,
)


@pytest.mark.benchmark(group="ablation")
def test_ordering_ablation(benchmark, scale):
    rows = benchmark.pedantic(
        ordering_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="Ablation — query ordering"))
    by = {r["ordering"]: r for r in rows}
    assert by["max_degree"]["count"] == by["id"]["count"]
    # the paper's claim: better ordering shrinks the search
    assert (
        by["max_degree"]["dram_read_words"] <= by["id"]["dram_read_words"]
    )


@pytest.mark.benchmark(group="ablation")
def test_placement_ablation(benchmark, scale):
    rows = benchmark.pedantic(
        placement_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="Ablation — randomized placement"))
    by = {bool(r["randomized_placement"]): r for r in rows}
    assert by[True]["count"] == by[False]["count"]
    # randomization should not slow the modeled kernel down materially
    assert by[True]["time_ms"] <= by[False]["time_ms"] * 1.1


@pytest.mark.benchmark(group="ablation")
def test_chunk_size_ablation(benchmark, scale):
    rows = benchmark.pedantic(
        chunk_size_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="Ablation — chunk size under tight memory"))
    assert len({r["count"] for r in rows}) == 1
    by = {r["chunk_size"]: r for r in rows}
    # smaller chunks -> more kernel launches (the paper's overhead
    # argument for not making chunks too small)
    assert by[64]["kernel_launches"] > by[1024]["kernel_launches"]
    # every configuration stays inside the (tight) trie budget
    assert all(r["peak_trie_words"] < (1 << 16) for r in rows)


@pytest.mark.benchmark(group="ablation")
def test_binning_ablation(benchmark, scale):
    rows = benchmark.pedantic(
        binning_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="Ablation — binning vs single-bin virtual warps"))
    by = {r["strategy"].split(" ")[0]: r for r in rows}
    # the paper's rejection rationale: bins waste pre-partitioned buffer
    assert by["binned"]["buffer_waste_fraction"] > 0.0
    assert by["single-bin"]["buffer_waste_fraction"] == 0.0


@pytest.mark.benchmark(group="ablation")
def test_virtual_warp_ablation(benchmark, scale):
    rows = benchmark.pedantic(
        virtual_warp_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="Ablation — virtual warp width"))
    assert len({r["count"] for r in rows}) == 1
    by = {str(r["virtual_warp"]): r for r in rows}
    # full hardware warps waste lanes on low-degree work (§4.1.2)
    assert by["32"]["idle_lane_cycles"] >= by["4"]["idle_lane_cycles"]
