"""Benchmark: §2.2.3 occupancy trade-off for the intersection buffer.

"Holding more data in shared memory, especially when tiling, allows
better data reuse; however, this may reduce the occupancy."  Sweeps the
c-intersection shared buffer size and reports the resulting occupancy —
the design tension cuTS balances when sizing its per-warp buffers.
"""

import pytest

from repro.experiments import render_table
from repro.gpusim import V100, max_shared_words_for_full_occupancy, occupancy


@pytest.mark.benchmark(group="occupancy")
def test_intersection_buffer_occupancy_tradeoff(benchmark):
    def sweep():
        rows = []
        for words in (256, 1024, 4096, 8192, 16384, 24576):
            res = occupancy(
                V100, threads_per_block=256,
                shared_words_per_block=words, registers_per_thread=32,
            )
            rows.append(
                {
                    "buffer_words_per_block": words,
                    "blocks_per_sm": res.blocks_per_sm,
                    "occupancy": round(res.occupancy, 3),
                    "limiter": res.limiter,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="§2.2.3 — shared buffer vs occupancy (V100-sim)"))
    occs = [r["occupancy"] for r in rows]
    assert all(a >= b for a, b in zip(occs, occs[1:]))
    assert occs[-1] < occs[0]  # the trade-off exists
    free = max_shared_words_for_full_occupancy(V100, 256)
    print(f"largest full-occupancy buffer: {free} words/block")
    assert free > 0
