"""Benchmark: overhead of the reliability layer with faults disabled.

The acks, heartbeats, ledgers and retransmit bookkeeping must be close
to free when nothing goes wrong: the target is < 5% wall-clock overhead
versus the idealized seed protocol (``reliable=False``), with identical
observable results (count, transfers, words).  The assertion bound is
looser to stay CI-safe on noisy shared runners.
"""

import time

import pytest

from repro.core import CuTSConfig
from repro.distributed import DistributedCuTS
from repro.graph import cycle_graph, social_graph

OVERHEAD_TARGET = 1.05   # documented goal
OVERHEAD_CI_BOUND = 1.25  # enforced bound (shared-runner noise margin)


def _workload(scale):
    data = social_graph(
        int(200 * scale) or 60, 4, community_edges=int(300 * scale) or 90,
        seed=3,
    )
    return data, cycle_graph(4), CuTSConfig(chunk_size=64)


def _run(data, query, config, *, reliable):
    return DistributedCuTS(data, 4, config, reliable=reliable).match(query)


@pytest.mark.benchmark(group="fault-overhead")
def test_reliability_layer_overhead(benchmark, scale):
    data, query, config = _workload(scale)
    legacy = _run(data, query, config, reliable=False)  # warm caches
    hardened = benchmark.pedantic(
        _run,
        args=(data, query, config),
        kwargs={"reliable": True},
        rounds=3,
        iterations=1,
    )
    # identical observable results on a clean run
    assert hardened.count == legacy.count
    assert hardened.work_transfers == legacy.work_transfers
    assert hardened.words_transferred == legacy.words_transferred
    assert hardened.retransmissions == 0

    # wall-clock ratio, median of repeated pairs to damp scheduler noise
    ratios = []
    for _ in range(5):
        t0 = time.perf_counter()
        _run(data, query, config, reliable=False)
        t_legacy = time.perf_counter() - t0
        t0 = time.perf_counter()
        _run(data, query, config, reliable=True)
        t_hardened = time.perf_counter() - t0
        ratios.append(t_hardened / t_legacy)
    ratios.sort()
    median = ratios[len(ratios) // 2]
    print(
        f"\nreliability overhead: median {median:.3f}x "
        f"(target < {OVERHEAD_TARGET}x, bound {OVERHEAD_CI_BOUND}x, "
        f"ratios {[f'{r:.3f}' for r in ratios]})"
    )
    assert median < OVERHEAD_CI_BOUND, ratios
