"""Benchmark: §6.3 hardware-counter comparison (the Nsight analysis).

Asserts the directional claims: cuTS moves less DRAM data, issues fewer
atomics, fewer shared-memory accesses, and prunes more candidates at
shallow depths than the GSI baseline.
"""

import pytest

from repro.experiments import render_table, run_hwmetrics


@pytest.mark.benchmark(group="hwmetrics")
def test_hw_counter_reductions(benchmark, scale):
    comps = benchmark.pedantic(
        run_hwmetrics, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    assert comps
    rows = []
    for comp in comps:
        by = {r.metric: r for r in comp.ratios}
        rows.append(
            {
                "case": f"{comp.dataset}/{comp.query_name}",
                "dram_read_x": by["dram_read_words"].reduction,
                "shared_write_x": by["shared_write_words"].reduction,
                "atomics_x": by["atomic_ops"].reduction,
                "instr_x": by["instructions"].reduction,
                "cand_d2_x": comp.candidate_reduction(2),
                "time_x": by["time_ms"].reduction,
            }
        )
    print()
    print(render_table(rows, title="§6.3 — counter reductions (GSI / cuTS)"))
    for comp in comps:
        by = {r.metric: r for r in comp.ratios}
        assert by["dram_read_words"].reduction > 1.0
        assert by["atomic_ops"].reduction >= 1.0
        assert by["time_ms"].reduction > 1.0
        # candidate pruning at depth >= 2 (ordering + degree filter)
        assert comp.candidate_reduction(2) >= 1.0
