"""Benchmark: Figure 4 — distributed speedup over a single node.

Asserts the paper's scaling shape on the big datasets: speedup near 2x
at two nodes, near 3x at four nodes.
"""

import pytest

from repro.experiments import figure4_rows, render_table


@pytest.mark.benchmark(group="figure4")
def test_figure4_scaling(benchmark, scale):
    rows = benchmark.pedantic(
        figure4_rows,
        kwargs={"scale": scale, "chunk_size": 256},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Figure 4 — distributed speedup"))
    # aggregate shape: speedup grows with node count on the work-heavy
    # cases (tiny cells measure only launch overhead and are skipped via
    # the max-speedup guard below)
    for (ds, q) in {(r["dataset"], r["query"]) for r in rows}:
        series = {
            r["nodes"]: r["speedup"]
            for r in rows
            if r["dataset"] == ds and r["query"] == q
        }
        if series.get(1, 1.0) and max(series.values()) > 1.2:
            assert series[4] > series[2] > 1.0, (ds, q, series)


@pytest.mark.benchmark(group="figure4")
def test_figure4_two_node_speedup_band(benchmark, scale):
    rows = benchmark.pedantic(
        figure4_rows,
        kwargs={"scale": scale, "rank_counts": (1, 2), "chunk_size": 256},
        rounds=1,
        iterations=1,
    )
    speedups = [r["speedup"] for r in rows if r["nodes"] == 2]
    # at least one big case must land in the paper's ~2x band
    assert any(1.4 <= s <= 2.6 for s in speedups), speedups
