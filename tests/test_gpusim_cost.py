"""Tests for the hardware-counter cost model."""

import pytest

from repro.gpusim import CostModel, V100


@pytest.fixture
def cost():
    return CostModel(V100)


def test_coalesced_read_transactions(cost):
    cost.charge_dram_read(64)  # one contiguous run of 64 words
    assert cost.dram_read_words == 64
    assert cost.dram_read_transactions == 2  # 64 / 32


def test_read_rounds_up(cost):
    cost.charge_dram_read(33)
    assert cost.dram_read_transactions == 2


def test_scattered_reads_cost_more(cost):
    # 64 words in 64 one-word segments: one transaction each.
    cost.charge_dram_read(64, segments=64)
    assert cost.dram_read_transactions == 64


def test_zero_words_free(cost):
    cost.charge_dram_read(0)
    cost.charge_dram_write(0)
    assert cost.dram_read_transactions == 0
    assert cost.dram_write_transactions == 0


def test_write_symmetry(cost):
    cost.charge_dram_write(100, segments=2)
    assert cost.dram_write_words == 100
    assert cost.dram_write_transactions == 4  # ceil(50/32)=2 per segment


def test_shared_and_atomics(cost):
    cost.charge_shared(reads=10, writes=20)
    cost.charge_atomics(5)
    cost.charge_instructions(100)
    cost.charge_idle_lanes(7)
    assert cost.shared_read_words == 10
    assert cost.shared_write_words == 20
    assert cost.atomic_ops == 5
    assert cost.instructions == 100
    assert cost.idle_lane_cycles == 7


def test_negative_charges_rejected(cost):
    with pytest.raises(ValueError):
        cost.charge_dram_read(-1)
    with pytest.raises(ValueError):
        cost.charge_dram_write(-1)
    with pytest.raises(ValueError):
        cost.charge_shared(reads=-1)
    with pytest.raises(ValueError):
        cost.charge_atomics(-1)
    with pytest.raises(ValueError):
        cost.charge_instructions(-1)
    with pytest.raises(ValueError):
        cost.charge_idle_lanes(-1)


def test_total_dram_words(cost):
    cost.charge_dram_read(10)
    cost.charge_dram_write(5)
    assert cost.total_dram_words == 15


def test_time_ms_from_cycles(cost):
    cost.cycles = V100.clock_ghz * 1e6  # exactly 1 ms worth
    assert cost.time_ms == pytest.approx(1.0)


def test_snapshot_contains_all_counters(cost):
    cost.charge_dram_read(10)
    snap = cost.snapshot()
    assert snap["dram_read_words"] == 10
    assert "time_ms" in snap
    assert "device" not in snap


def test_merge(cost):
    other = CostModel(V100)
    cost.charge_dram_read(10)
    other.charge_dram_read(5)
    other.cycles = 100.0
    cost.merge(other)
    assert cost.dram_read_words == 15
    assert cost.cycles == 100.0


def test_reset(cost):
    cost.charge_dram_read(10)
    cost.cycles = 5.0
    cost.reset()
    assert cost.dram_read_words == 0
    assert cost.cycles == 0.0
    assert cost.time_ms == 0.0
