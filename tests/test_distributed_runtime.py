"""Tests for the distributed runtime (Algorithm 3 end to end)."""

import pytest

from repro.baselines import networkx_count
from repro.core import CuTSConfig, CuTSMatcher
from repro.distributed import DistributedCuTS, NetworkModel, balance_report
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    social_graph,
)


@pytest.fixture(scope="module")
def data():
    return social_graph(200, 3, community_edges=300, seed=11)


@pytest.fixture(scope="module")
def query():
    return cycle_graph(4)


@pytest.fixture(scope="module")
def oracle(data, query):
    return networkx_count(data, query)


@pytest.mark.parametrize("num_ranks", [1, 2, 3, 4, 8])
def test_count_invariant_across_ranks(data, query, oracle, num_ranks):
    cfg = CuTSConfig(chunk_size=64)
    res = DistributedCuTS(data, num_ranks, cfg).match(query)
    assert res.count == oracle
    assert res.num_ranks == num_ranks


def test_count_matches_single_node_engine(data, query, oracle):
    single = CuTSMatcher(data).match(query)
    assert single.count == oracle


def test_multi_rank_faster_than_one(data, query):
    cfg = CuTSConfig(chunk_size=64)
    t1 = DistributedCuTS(data, 1, cfg).match(query).runtime_ms
    t4 = DistributedCuTS(data, 4, cfg).match(query).runtime_ms
    assert t4 < t1


def test_work_stealing_occurs_on_skewed_input():
    """With only two root candidates and four ranks, two ranks start
    free and must be fed through the work-shipping protocol."""
    from repro.graph import from_undirected_edges, star_graph

    # Two 40-leaf hubs: only they qualify as the star query's root.
    edges = [(0, i) for i in range(2, 42)] + [(1, i) for i in range(42, 82)]
    data = from_undirected_edges(edges)
    query = star_graph(3)
    cfg = CuTSConfig(chunk_size=32)
    res = DistributedCuTS(data, 4, cfg).match(query)
    assert res.count == networkx_count(data, query)
    assert res.work_transfers > 0
    assert res.words_transferred > 0
    # the initially-idle ranks ended up processing chunks
    assert sum(1 for c in res.chunks_processed if c > 0) >= 3


def test_per_rank_metrics_shape(data, query):
    res = DistributedCuTS(data, 3, CuTSConfig(chunk_size=64)).match(query)
    assert len(res.per_rank_clock_ms) == 3
    assert len(res.per_rank_busy_ms) == 3
    assert len(res.chunks_processed) == 3
    assert res.runtime_ms == max(res.per_rank_clock_ms)


def test_balance_report(data, query):
    res = DistributedCuTS(data, 4, CuTSConfig(chunk_size=32)).match(query)
    rep = balance_report(res)
    assert len(rep.per_rank_ms) == 4
    assert rep.max_ms >= rep.mean_ms >= rep.min_ms
    assert rep.imbalance >= 1.0
    rows = rep.rows()
    assert [r["node"] for r in rows] == ["T1", "T2", "T3", "T4"]


def test_load_balanced_under_stealing(data, query):
    """Figure 5's claim: node-to-node variation is low."""
    res = DistributedCuTS(data, 4, CuTSConfig(chunk_size=32)).match(query)
    rep = balance_report(res)
    assert rep.imbalance < 2.0


def test_zero_match_query(data):
    # a 5-clique query that the graph may not contain many of; use a
    # query guaranteed impossible: clique bigger than max degree + 1
    q = clique_graph(5)
    res = DistributedCuTS(data, 2).match(q)
    assert res.count == networkx_count(data, q)


def test_more_ranks_than_roots():
    data = mesh_graph(2, 2)
    q = chain_graph(2)
    res = DistributedCuTS(data, 8).match(q)
    assert res.count == networkx_count(data, q)


def test_empty_query_rejected(data):
    with pytest.raises(ValueError):
        DistributedCuTS(data, 2).match(from_edges([], num_vertices=0))


def test_invalid_ranks(data):
    with pytest.raises(ValueError):
        DistributedCuTS(data, 0)


def test_network_model_affects_transfers(data, query):
    slow = NetworkModel(latency_ms=50.0, words_per_ms=10.0)
    cfg = CuTSConfig(chunk_size=32)
    res_fast = DistributedCuTS(data, 4, cfg).match(query)
    res_slow = DistributedCuTS(data, 4, cfg, network=slow).match(query)
    assert res_slow.count == res_fast.count


def test_single_vertex_query_distributed(data):
    q = from_edges([], num_vertices=1)
    res = DistributedCuTS(data, 4).match(q)
    assert res.count == data.num_vertices
