"""Adversarial graph-input hardening tests.

Durable jobs fingerprint their input graphs, so a malformed graph must
fail loudly at load time — not corrupt a checkpoint three hours in.
These tests feed deliberately broken files and arrays to every
validation layer: the text readers, the edge-list builders, and the
CSR invariant checks.
"""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    GraphFormatError,
    from_edges,
    from_undirected_edges,
    read_cuts_format,
    read_gsi_format,
)


def _write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return p


# ----------------------------------------------------------------------
# cuTS text format
# ----------------------------------------------------------------------
def test_cuts_malformed_header(tmp_path):
    p = _write(tmp_path, "bad.txt", "3\n0 1\n")
    with pytest.raises(GraphFormatError, match="malformed header"):
        read_cuts_format(p)


def test_cuts_non_integer_header(tmp_path):
    p = _write(tmp_path, "bad.txt", "three 1\n0 1\n")
    with pytest.raises(GraphFormatError, match="non-integer header"):
        read_cuts_format(p)


def test_cuts_negative_header_counts(tmp_path):
    p = _write(tmp_path, "bad.txt", "-3 1\n0 1\n")
    with pytest.raises(GraphFormatError, match="negative counts"):
        read_cuts_format(p)


def test_cuts_edge_count_mismatch(tmp_path):
    p = _write(tmp_path, "bad.txt", "3 5\n0 1\n1 2\n")
    with pytest.raises(GraphFormatError, match="header says 5 edges, found 2"):
        read_cuts_format(p)


def test_cuts_negative_vertex_id(tmp_path):
    p = _write(tmp_path, "bad.txt", "3 2\n0 1\n-1 2\n")
    with pytest.raises(GraphFormatError, match="negative vertex id -1"):
        read_cuts_format(p)


def test_cuts_dangling_vertex_id(tmp_path):
    p = _write(tmp_path, "bad.txt", "3 2\n0 1\n1 7\n")
    with pytest.raises(GraphFormatError, match="dangling"):
        read_cuts_format(p)


def test_cuts_unparseable_edges(tmp_path):
    p = _write(tmp_path, "bad.txt", "3 2\n0 1\n1 x\n")
    with pytest.raises(GraphFormatError, match="unparseable edge list"):
        read_cuts_format(p)


def test_cuts_self_loop_policy(tmp_path):
    p = _write(tmp_path, "loops.txt", "3 3\n0 1\n1 1\n1 2\n")
    g = read_cuts_format(p)  # default: drop
    assert g.num_edges == 2
    with pytest.raises(GraphFormatError, match="self-loop"):
        read_cuts_format(p, self_loops="error")


def test_cuts_valid_roundtrip_still_works(tmp_path):
    from repro.graph import write_cuts_format

    g = from_edges([(0, 1), (1, 2), (2, 0)])
    p = tmp_path / "ok.txt"
    write_cuts_format(g, p)
    h = read_cuts_format(p)
    assert h.num_vertices == g.num_vertices
    assert np.array_equal(h.edge_list(), g.edge_list())


# ----------------------------------------------------------------------
# GSI text format
# ----------------------------------------------------------------------
def test_gsi_malformed_record(tmp_path):
    p = _write(tmp_path, "bad.g", "t 2 1\nv 0 0\nv 1\ne 0 1 0\n")
    with pytest.raises(GraphFormatError, match="malformed record"):
        read_gsi_format(p)


def test_gsi_vertex_record_out_of_range(tmp_path):
    p = _write(tmp_path, "bad.g", "t 2 1\nv 0 0\nv 5 0\ne 0 1 0\n")
    with pytest.raises(GraphFormatError, match="outside"):
        read_gsi_format(p)


def test_gsi_dangling_edge(tmp_path):
    p = _write(tmp_path, "bad.g", "t 2 1\nv 0 0\nv 1 0\ne 0 9 0\n")
    with pytest.raises(GraphFormatError, match="dangling"):
        read_gsi_format(p)


def test_gsi_self_loop_policy(tmp_path):
    p = _write(tmp_path, "loops.g", "t 2 2\nv 0 0\nv 1 0\ne 0 0 0\ne 0 1 0\n")
    assert read_gsi_format(p).num_edges == 1
    with pytest.raises(GraphFormatError, match="self-loop"):
        read_gsi_format(p, self_loops="error")


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def test_from_edges_self_loop_error_policy():
    with pytest.raises(GraphFormatError, match="self-loop"):
        from_edges([(0, 1), (2, 2)], self_loops="error")


def test_from_undirected_edges_self_loop_error_policy():
    with pytest.raises(GraphFormatError, match="self-loop"):
        from_undirected_edges([(0, 0)], self_loops="error")


def test_invalid_self_loop_policy_rejected():
    with pytest.raises(ValueError, match="self_loops must be"):
        from_edges([(0, 1)], self_loops="keep")


def test_from_edges_dangling_is_format_error():
    with pytest.raises(GraphFormatError, match="dangling"):
        from_edges([(0, 9)], num_vertices=3)


def test_from_edges_negative_is_format_error():
    with pytest.raises(GraphFormatError, match="non-negative"):
        from_edges([(-2, 1)])


# ----------------------------------------------------------------------
# CSR invariants
# ----------------------------------------------------------------------
def _dual(indptr, indices, rindptr, rindices, n):
    return CSRGraph(
        num_vertices=n,
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int64),
        rindptr=np.asarray(rindptr, dtype=np.int64),
        rindices=np.asarray(rindices, dtype=np.int64),
    )


def test_csr_non_monotone_indptr():
    with pytest.raises(GraphFormatError, match="indptr offsets must be non-decreasing"):
        _dual([0, 2, 1, 2], [1, 2], [0, 0, 1, 2], [0, 1], 3)


def test_csr_non_monotone_rindptr():
    with pytest.raises(
        GraphFormatError, match="rindptr offsets must be non-decreasing"
    ):
        _dual([0, 1, 2, 2], [1, 2], [0, 2, 1, 2], [0, 1], 3)


def test_csr_negative_index_is_format_error():
    with pytest.raises(GraphFormatError, match="negative vertex id"):
        _dual([0, 1, 1, 2], [1, -1], [0, 0, 1, 2], [0, 1], 3)


def test_graph_format_error_is_value_error():
    assert issubclass(GraphFormatError, ValueError)
