"""Versioned mutable graphs (satellites of PR 10).

Three randomized-seed guarantees, each gated on a full-rematch oracle:

* **parity** — the incremental count identity (DESIGN.md §16) agrees
  with a full re-match across insert-only, delete-only, and mixed
  batches on random graphs;
* **cache survival** — result-cache entries whose query provably roots
  outside the commit's dirty ball are promoted across a commit and
  still *hit* (no recompute);
* **time travel** — ``as_of`` on a retired version returns the count
  archived when that version was head.

Plus unit tiers for the delta algebra (normalisation, JSON round-trip),
the overlay splice, dirty-ball BFS, journal recovery, and the guard
rails of the incremental path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CuTSConfig
from repro.core.matcher import CuTSMatcher
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    random_graph,
    star_graph,
)
from repro.service import MatchingService
from repro.storage.overlay import spliced_graph
from repro.versioning import (
    DeltaError,
    DirtyRegion,
    EdgeDelta,
    GraphVersion,
    IncrementalMismatchError,
    IncrementalUnsupported,
    dirty_region_for,
    promotion_safe,
    query_diameter,
    recover_chains,
    version_from_record,
    version_record,
)

NO_EDGES = np.zeros((0, 2), dtype=np.int64)


def undirected_pairs(graph):
    arcs = graph.edge_list()
    return arcs[arcs[:, 0] < arcs[:, 1]]


def both_ways(pairs):
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if len(pairs) == 0:
        return NO_EDGES
    return np.concatenate([pairs, pairs[:, ::-1]], axis=0)


def random_delta(rng, graph, n_insert, n_delete):
    """Directed insert/delete arrays: ``n_delete`` existing undirected
    pairs removed and ``n_insert`` absent pairs added, both arcs each."""
    pairs = undirected_pairs(graph)
    dels = NO_EDGES
    if n_delete:
        picks = rng.choice(len(pairs), size=min(n_delete, len(pairs)),
                           replace=False)
        dels = pairs[picks]
    banned = {(int(u), int(v)) for u, v in pairs}
    inserts = []
    while len(inserts) < n_insert:
        u, v = (int(x) for x in rng.integers(0, graph.num_vertices, size=2))
        if u == v:
            continue
        a, b = (u, v) if u < v else (v, u)
        if (a, b) in banned:
            continue
        banned.add((a, b))
        inserts.append((a, b))
    return both_ways(inserts), both_ways(dels)


def edge_set(graph):
    return {(int(u), int(v)) for u, v in graph.edge_list()}


def combo_graph():
    """A 6x6 mesh (degree <= 4) plus a disjoint K8 (degree 7): the two
    components segregate query root sets by degree, so mesh-side
    commits leave clique-rooted queries provably untouched."""
    mesh = mesh_graph(6, 6)
    k8 = clique_graph(8)
    edges = np.concatenate([mesh.edge_list(), k8.edge_list() + 36], axis=0)
    return from_edges(edges, num_vertices=44)


# ---------------------------------------------------------------------------
# Delta algebra and the overlay splice.
# ---------------------------------------------------------------------------


def test_delta_normalises_noop_edges_away():
    g = mesh_graph(3, 3)
    delta = EdgeDelta.build(
        inserts=[[0, 1]],   # already present -> dropped
        deletes=[[0, 8]],   # absent -> dropped
        parent=g,
    )
    assert delta.is_empty


def test_delta_rejects_edge_on_both_sides():
    g = mesh_graph(3, 3)
    with pytest.raises(DeltaError):
        EdgeDelta.build(inserts=[[0, 5]], deletes=[[0, 5]], parent=g)


def test_delta_undirected_expands_both_arcs():
    g = mesh_graph(3, 3)
    delta = EdgeDelta.build(inserts=[[0, 4]], parent=g, directed=False)
    assert edge_set(spliced_graph(g, delta.inserts, delta.deletes)) == (
        edge_set(g) | {(0, 4), (4, 0)}
    )


def test_delta_touched_is_sorted_unique_endpoints():
    g = mesh_graph(3, 3)
    delta = EdgeDelta.build(
        inserts=both_ways([[0, 4], [4, 8]]), parent=g
    )
    assert delta.touched().tolist() == [0, 4, 8]


def test_delta_json_roundtrip():
    g = mesh_graph(4, 4)
    rng = np.random.default_rng(7)
    ins, dels = random_delta(rng, g, 2, 2)
    delta = EdgeDelta.build(inserts=ins, deletes=dels, parent=g)
    back = EdgeDelta.from_json(delta.to_json())
    assert np.array_equal(back.inserts, delta.inserts)
    assert np.array_equal(back.deletes, delta.deletes)
    assert back.fingerprint() == delta.fingerprint()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_splice_apply_then_invert_roundtrips(seed):
    rng = np.random.default_rng(seed)
    parent = random_graph(30, 0.1, seed=seed)
    ins, dels = random_delta(rng, parent, 3, 3)
    delta = EdgeDelta.build(inserts=ins, deletes=dels, parent=parent)
    child = spliced_graph(parent, delta.inserts, delta.deletes)
    assert edge_set(child) == (
        edge_set(parent) - {tuple(e) for e in delta.deletes.tolist()}
    ) | {tuple(e) for e in delta.inserts.tolist()}
    back = spliced_graph(child, delta.deletes, delta.inserts)
    assert edge_set(back) == edge_set(parent)


# ---------------------------------------------------------------------------
# Dirty-ball BFS.
# ---------------------------------------------------------------------------


def test_dirty_ball_on_a_path_is_the_interval():
    g = chain_graph(9)
    region = DirtyRegion(g, np.array([4], dtype=np.int64))
    assert region.ball(0).tolist() == [4]
    assert region.ball(2).tolist() == [2, 3, 4, 5, 6]


def test_dirty_ball_is_monotone_in_radius():
    g = mesh_graph(5, 5)
    region = DirtyRegion(g, np.array([0, 24], dtype=np.int64))
    previous = set()
    for radius in range(4):
        ball = set(region.ball(radius).tolist())
        assert previous <= ball
        previous = ball


def test_query_diameter_of_standard_shapes():
    assert query_diameter(chain_graph(4)) == 3
    assert query_diameter(clique_graph(3)) == 1
    assert query_diameter(star_graph(4)) == 2


# ---------------------------------------------------------------------------
# Journal recovery (pure, no filesystem).
# ---------------------------------------------------------------------------


def _link(name, fp, parent, depth, delta=None):
    kind = "root" if parent is None else ("delta" if delta else "replace")
    return GraphVersion(
        name=name, fingerprint=fp, parent=parent, depth=depth,
        kind=kind, delta=delta,
    )


def _toy_delta():
    return EdgeDelta.build(inserts=[[0, 2], [2, 0]], parent=chain_graph(3))


def test_recover_chains_head_is_latest_available():
    d = _toy_delta()
    records = [version_record(v) for v in (
        _link("g", "a", None, 0),
        _link("g", "b", "a", 1, d),
        _link("g", "c", "b", 2, d),
    )]
    chains, malformed = recover_chains(records, {"a", "b", "c"})
    assert malformed == 0
    assert [v.fingerprint for v in chains["g"]] == ["a", "b", "c"]
    # The torn-commit case: record for c landed but its graph did not
    # (impossible under the commit order, tolerated anyway).
    chains, _ = recover_chains(records, {"a", "b"})
    assert [v.fingerprint for v in chains["g"]] == ["a", "b"]
    # A pruned ancestor truncates the chain but keeps the head.
    chains, _ = recover_chains(records, {"b", "c"})
    assert [v.fingerprint for v in chains["g"]] == ["b", "c"]


def test_recover_chains_counts_malformed_records():
    records = [
        {"nonsense": True},
        version_record(_link("g", "a", None, 0)),
        {"name": "g", "fingerprint": "x", "parent": "a",
         "depth": "not-an-int", "kind": "delta", "delta": None},
    ]
    chains, malformed = recover_chains(records, {"a"})
    assert malformed == 2
    assert [v.fingerprint for v in chains["g"]] == ["a"]


def test_version_record_roundtrips_delta():
    link = _link("g", "child", "parent", 3, _toy_delta())
    back = version_from_record(version_record(link))
    assert back.fingerprint == "child"
    assert back.delta is not None
    assert back.delta.fingerprint() == link.delta.fingerprint()


# ---------------------------------------------------------------------------
# Promotion predicate and incremental guard rails.
# ---------------------------------------------------------------------------


def test_promotion_safe_for_degree_segregated_query():
    cfg = CuTSConfig()
    parent = combo_graph()
    # Mesh-side insert that keeps every mesh degree below the star's
    # center degree: no version can root S5 inside the ball.
    delta = EdgeDelta.build(inserts=[[0, 2]], parent=parent, directed=False)
    child = spliced_graph(parent, delta.inserts, delta.deletes)
    region = dirty_region_for(child, delta)
    assert promotion_safe(star_graph(5), parent, child, region, cfg)
    # A path query roots everywhere, including inside the ball.
    assert not promotion_safe(chain_graph(3), parent, child, region, cfg)


def test_promotion_never_claims_edgeless_queries():
    cfg = CuTSConfig()
    parent = combo_graph()
    delta = EdgeDelta.build(inserts=[[0, 2]], parent=parent, directed=False)
    child = spliced_graph(parent, delta.inserts, delta.deletes)
    region = dirty_region_for(child, delta)
    lone = from_edges(NO_EDGES, num_vertices=1)
    assert not promotion_safe(lone, parent, child, region, cfg)


def test_incremental_rejects_empty_delta_and_edgeless_query():
    cfg = CuTSConfig()
    g = mesh_graph(4, 4)
    empty = EdgeDelta.build(parent=g)
    matcher = CuTSMatcher(g, cfg)
    with pytest.raises(IncrementalUnsupported):
        matcher.match(chain_graph(3), base_result=0, delta=empty)
    delta = EdgeDelta.build(inserts=[[0, 5]], parent=g, directed=False)
    child = spliced_graph(g, delta.inserts, delta.deletes)
    with pytest.raises(IncrementalUnsupported):
        CuTSMatcher(child, cfg).match(
            from_edges(NO_EDGES, num_vertices=2), base_result=0, delta=delta
        )


def test_incremental_detects_foreign_base_result():
    cfg = CuTSConfig()
    parent = clique_graph(5)
    delta = EdgeDelta.build(deletes=[[0, 1]], parent=parent, directed=False)
    child = spliced_graph(parent, delta.inserts, delta.deletes)
    with pytest.raises(IncrementalMismatchError):
        # Base count 0 cannot belong to this lineage: the K3 count
        # strictly drops across the delete, driving the merge negative.
        CuTSMatcher(child, cfg).match(
            clique_graph(3), base_result=0, delta=delta
        )


# ---------------------------------------------------------------------------
# Randomized parity: incremental == full re-match (the oracle gate).
# ---------------------------------------------------------------------------

PARITY_QUERIES = [
    chain_graph(3),
    chain_graph(4),
    star_graph(3),
    clique_graph(3),
    cycle_graph(4),
]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize(
    "n_insert,n_delete", [(4, 0), (0, 4), (3, 3)],
    ids=["insert", "delete", "mixed"],
)
def test_incremental_parity_on_random_batches(seed, n_insert, n_delete):
    cfg = CuTSConfig()
    rng = np.random.default_rng(100 + seed)
    parent = random_graph(36, 0.09, seed=seed)
    ins, dels = random_delta(rng, parent, n_insert, n_delete)
    delta = EdgeDelta.build(inserts=ins, deletes=dels, parent=parent)
    assert not delta.is_empty
    child = spliced_graph(parent, delta.inserts, delta.deletes)
    old_matcher = CuTSMatcher(parent, cfg)
    new_matcher = CuTSMatcher(child, cfg)
    for query in PARITY_QUERIES:
        base = old_matcher.match(query)
        full = new_matcher.match(query)
        inc = new_matcher.match(query, base_result=base, delta=delta)
        assert inc.count == full.count, (
            f"seed={seed} ins={n_insert} dels={n_delete} "
            f"q={query.num_vertices}v: {inc.count} != {full.count}"
        )


# ---------------------------------------------------------------------------
# Service-level guarantees: promotion survival, as_of, incremental path.
# ---------------------------------------------------------------------------


@pytest.fixture
def service(tmp_path):
    svc = MatchingService(CuTSConfig(), state_dir=str(tmp_path))
    yield svc
    svc.close()


def test_cache_entry_outside_dirty_ball_survives_commit(service):
    service.register_graph(combo_graph(), "combo")
    star = star_graph(5)
    before = service.match("combo", star, timeout=30)
    summary = service.mutate_graph("combo", inserts=[[0, 2]], directed=False)
    assert summary["changed"]
    assert summary["promoted"] >= 1
    stats = service.metrics()
    hits0 = stats["result_cache"]["hits"]
    invocations0 = stats["dispatcher"]["matcher_invocations"]
    after = service.match("combo", star, timeout=30)
    stats = service.metrics()
    # Promoted entry answers under the child fingerprint: a pure hit,
    # no engine work, and (by the locality lemma) the identical count.
    assert stats["result_cache"]["hits"] == hits0 + 1
    assert stats["dispatcher"]["matcher_invocations"] == invocations0
    assert after.count == before.count


@pytest.mark.parametrize("seed", [0, 1])
def test_service_incremental_matches_full_oracle(service, seed):
    rng = np.random.default_rng(200 + seed)
    graph = random_graph(36, 0.09, seed=seed)
    service.register_graph(graph, "g")
    query = chain_graph(3)
    service.match("g", query, timeout=30)
    for _ in range(3):
        head = service.registry.resolve("g").graph
        ins, dels = random_delta(rng, head, 1, 1)
        service.mutate_graph("g", inserts=ins.tolist(), deletes=dels.tolist())
        got = service.match("g", query, timeout=30)
        oracle = CuTSMatcher(
            service.registry.resolve("g").graph, service.config
        ).match(query)
        assert got.count == oracle.count
    # At least one post-commit miss took the incremental path.
    assert service.metrics()["dispatcher"]["incremental_matches"] >= 1


def test_as_of_on_retired_versions_matches_archived_oracle(tmp_path):
    svc = MatchingService(
        CuTSConfig(versioning_max_versions=4), state_dir=str(tmp_path)
    )
    try:
        rng = np.random.default_rng(42)
        svc.register_graph(random_graph(32, 0.1, seed=9), "g")
        query = cycle_graph(4)
        archive = {}
        head_fp = svc.registry.resolve("g").fingerprint
        archive[head_fp] = svc.match("g", query, timeout=30).count
        for _ in range(3):
            head = svc.registry.resolve("g").graph
            ins, dels = random_delta(rng, head, 2, 1)
            summary = svc.mutate_graph(
                "g", inserts=ins.tolist(), deletes=dels.tolist()
            )
            archive[summary["fingerprint"]] = svc.match(
                "g", query, timeout=30
            ).count
        lineage = svc.versions("g")
        assert len(lineage) == 4
        for entry in lineage:
            fp = entry["fingerprint"]
            got = svc.match("g", query, as_of=fp, timeout=30)
            assert got.count == archive[fp], fp
        with pytest.raises(KeyError):
            svc.match("g", query, as_of="no-such-version", timeout=30)
    finally:
        svc.close()


def test_pruned_version_is_not_servable(tmp_path):
    svc = MatchingService(
        CuTSConfig(versioning_max_versions=2), state_dir=str(tmp_path)
    )
    try:
        svc.register_graph(mesh_graph(5, 5), "g")
        fp0 = svc.registry.resolve("g").fingerprint
        svc.mutate_graph("g", inserts=[[0, 6]], directed=False)
        svc.mutate_graph("g", inserts=[[1, 7]], directed=False)
        assert len(svc.versions("g")) == 2
        with pytest.raises(KeyError):
            svc.match("g", chain_graph(3), as_of=fp0, timeout=30)
    finally:
        svc.close()
