"""Tests for the PA/CA path trie."""

import numpy as np
import pytest

from repro.storage import (
    PathTrie,
    TrieLevel,
    deserialize_trie,
    serialize_trie,
    serialized_words,
)


def make_demo_trie() -> PathTrie:
    """Three-level trie mirroring paper Fig. 3: roots u0,u1; children."""
    t = PathTrie.from_roots(np.array([0, 1]))
    # level 1: children 3,4 of 0; child 2 of 1
    t.append_level(pa=np.array([0, 0, 1]), ca=np.array([3, 4, 2]))
    # level 2: interleaved parents (the property CSF cannot express)
    t.append_level(
        pa=np.array([0, 1, 0, 2, 1, 0]), ca=np.array([2, 4, 6, 1, 7, 3])
    )
    return t


def test_from_roots():
    t = PathTrie.from_roots(np.array([5, 7, 9]))
    assert t.depth == 1
    assert t.num_paths() == 3
    assert t.levels[0].pa.tolist() == [-1, -1, -1]


def test_append_level_grows_depth():
    t = make_demo_trie()
    assert t.depth == 3
    assert t.num_paths(0) == 2
    assert t.num_paths(1) == 3
    assert t.num_paths(2) == 6
    assert t.num_paths() == 6  # default deepest


def test_append_level_validates_parent_range():
    t = PathTrie.from_roots(np.array([0, 1]))
    with pytest.raises(ValueError, match="pa out of range"):
        t.append_level(pa=np.array([5]), ca=np.array([3]))


def test_append_level_first_level_pa_must_be_minus_one():
    t = PathTrie()
    with pytest.raises(ValueError, match="first level"):
        t.append_level(pa=np.array([0]), ca=np.array([3]))


def test_trie_level_shape_mismatch():
    with pytest.raises(ValueError):
        TrieLevel(pa=np.zeros(2, dtype=np.int64), ca=np.zeros(3, dtype=np.int64))


def test_drop_last_level():
    t = make_demo_trie()
    t.drop_last_level()
    assert t.depth == 2
    with pytest.raises(IndexError):
        PathTrie().drop_last_level()


def test_storage_words():
    t = make_demo_trie()
    assert t.storage_words_per_level() == [4, 6, 12]
    assert t.total_storage_words == 22


def test_paths_at_full():
    t = make_demo_trie()
    paths = t.paths_at(2)
    expected = [
        [0, 3, 2],
        [0, 4, 4],
        [0, 3, 6],
        [1, 2, 1],
        [0, 4, 7],
        [0, 3, 3],
    ]
    assert paths.tolist() == expected


def test_paths_at_subset():
    t = make_demo_trie()
    paths = t.paths_at(2, np.array([3, 0]))
    assert paths.tolist() == [[1, 2, 1], [0, 3, 2]]


def test_paths_at_level_zero():
    t = make_demo_trie()
    assert t.paths_at(0).tolist() == [[0], [1]]


def test_paths_at_bad_level():
    t = make_demo_trie()
    with pytest.raises(IndexError):
        t.paths_at(3)
    with pytest.raises(IndexError):
        t.paths_at(-1)


def test_num_paths_empty_trie():
    assert PathTrie().num_paths() == 0
    assert PathTrie().total_storage_words == 0


def test_extract_subtrie_single_path():
    t = make_demo_trie()
    sub = t.extract_subtrie(2, np.array([3]))
    assert sub.depth == 3
    assert sub.paths_at(2).tolist() == [[1, 2, 1]]
    # only the needed ancestors survive
    assert sub.num_paths(0) == 1
    assert sub.num_paths(1) == 1


def test_extract_subtrie_preserves_order():
    t = make_demo_trie()
    sub = t.extract_subtrie(2, np.array([4, 0, 2]))
    assert sub.paths_at(2).tolist() == [[0, 4, 7], [0, 3, 2], [0, 3, 6]]


def test_extract_subtrie_shares_ancestors():
    t = make_demo_trie()
    sub = t.extract_subtrie(2, np.array([0, 2, 5]))  # all under (0,3)
    assert sub.num_paths(0) == 1
    assert sub.num_paths(1) == 1
    assert sub.num_paths(2) == 3


def test_extract_subtrie_mid_level():
    t = make_demo_trie()
    sub = t.extract_subtrie(1, np.array([2]))
    assert sub.depth == 2
    assert sub.paths_at(1).tolist() == [[1, 2]]


def test_extract_subtrie_independent_of_original():
    t = make_demo_trie()
    sub = t.extract_subtrie(2, np.array([0]))
    t.drop_last_level()
    assert sub.depth == 3  # unaffected


def test_serialize_round_trip():
    t = make_demo_trie()
    buf = serialize_trie(t)
    back = deserialize_trie(buf)
    assert back.depth == t.depth
    for a, b in zip(t.levels, back.levels):
        assert np.array_equal(a.pa, b.pa)
        assert np.array_equal(a.ca, b.ca)


def test_serialize_words_matches_buffer():
    t = make_demo_trie()
    assert serialized_words(t) == len(serialize_trie(t))


def test_serialize_empty_trie():
    t = PathTrie()
    buf = serialize_trie(t)
    back = deserialize_trie(buf)
    assert back.depth == 0


def test_deserialize_rejects_truncated():
    t = make_demo_trie()
    buf = serialize_trie(t)[:-1]
    with pytest.raises(ValueError, match="words"):
        deserialize_trie(buf)


def test_deserialize_rejects_empty_buffer():
    with pytest.raises(ValueError):
        deserialize_trie(np.zeros(0, dtype=np.int64))


def test_deserialize_rejects_negative_depth():
    with pytest.raises(ValueError, match="depth"):
        deserialize_trie(np.array([-1], dtype=np.int64))


def test_interleaved_children_valid():
    """The key PA/CA property: children of different parents may be
    written in any interleaving (paper §4.1.1)."""
    t = PathTrie.from_roots(np.array([10, 20]))
    # children alternate between parents — illegal in CSF, fine here
    t.append_level(pa=np.array([0, 1, 0, 1]), ca=np.array([1, 2, 3, 4]))
    paths = t.paths_at(1)
    assert sorted(map(tuple, paths.tolist())) == [
        (10, 1),
        (10, 3),
        (20, 2),
        (20, 4),
    ]
