"""Tests for the GSI baseline, DFS reference and oracle agreement."""

import pytest

from repro.baselines import (
    GSIMatcher,
    dfs_count,
    dfs_enumerate,
    networkx_count,
    networkx_embeddings,
)
from repro.core import CuTSConfig, CuTSMatcher, SearchTimeout
from repro.gpusim import DeviceOOMError, V100, scaled_device
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    random_graph,
    social_graph,
    star_graph,
)

CASES = [
    (mesh_graph(4, 4), chain_graph(4)),
    (clique_graph(6), clique_graph(4)),
    (random_graph(25, 0.25, seed=1), cycle_graph(4)),
    (social_graph(60, 3, community_edges=60, seed=3), clique_graph(3)),
    (star_graph(6), star_graph(3)),
]


# ------------------------------------------------------------------ GSI
@pytest.mark.parametrize("data,query", CASES, ids=lambda g: g.name)
def test_gsi_count_equals_cuts(data, query):
    a = CuTSMatcher(data).match(query).count
    b = GSIMatcher(data).match(query).count
    assert a == b == networkx_count(data, query)


def test_gsi_materialize_valid():
    from tests.conftest import assert_valid_embeddings

    data = random_graph(20, 0.3, seed=2)
    q = cycle_graph(4)
    r = GSIMatcher(data).match(q, materialize=True)
    assert len(r.matches) == r.count
    assert_valid_embeddings(data, q, r.matches)


def test_gsi_unfiltered_roots():
    """Without labels, GSI's signature filter passes every vertex."""
    data = mesh_graph(4, 4)
    r = GSIMatcher(data).match(clique_graph(5))
    assert r.stats.paths_per_depth[0] == 16  # all |V|, not the 4 cuTS keeps


def test_gsi_root_degree_filter_flag():
    data = mesh_graph(4, 4)
    r = GSIMatcher(data, root_degree_filter=True).match(clique_graph(5))
    assert r.stats.paths_per_depth[0] == 4


def test_gsi_step_degree_filter_flag_same_count():
    data = random_graph(30, 0.25, seed=5)
    q = cycle_graph(4)
    a = GSIMatcher(data).match(q).count
    b = GSIMatcher(data, step_degree_filter=True).match(q).count
    assert a == b


def test_gsi_two_pass_costs_more_reads():
    data = social_graph(80, 3, community_edges=100, seed=4)
    q = clique_graph(3)
    gsi = GSIMatcher(data).match(q)
    cuts = CuTSMatcher(data).match(q)
    assert gsi.cost.dram_read_words > cuts.cost.dram_read_words
    assert gsi.cost.atomic_ops >= 2 * cuts.cost.atomic_ops * 0.5  # two passes


def test_gsi_flat_table_oom():
    data = social_graph(120, 4, community_edges=200, seed=6)
    device = scaled_device(V100, 30_000)  # graph fits, table won't
    with pytest.raises(DeviceOOMError):
        GSIMatcher(data, device).match(chain_graph(5))


def test_gsi_cuts_survives_same_memory():
    """The headline behaviour: same budget, cuTS chunks through while
    GSI's flat table overflows."""
    data = social_graph(120, 4, community_edges=200, seed=6)
    device = scaled_device(V100, 30_000)
    q = chain_graph(5)
    with pytest.raises(DeviceOOMError):
        GSIMatcher(data, device).match(q)
    r = CuTSMatcher(data, CuTSConfig(device=device, chunk_size=64)).match(q)
    assert r.count == networkx_count(data, q)


def test_gsi_sliced_join_equivalent():
    data = social_graph(80, 3, community_edges=100, seed=4)
    q = cycle_graph(4)
    g = GSIMatcher(data)
    g._SLICE_POOL_LIMIT = 500
    assert g.match(q).count == networkx_count(data, q)


def test_gsi_time_limit():
    data = social_graph(120, 4, community_edges=200, seed=6)
    with pytest.raises(SearchTimeout):
        GSIMatcher(data).match(clique_graph(3), time_limit_ms=1e-12)


def test_gsi_wall_limit():
    data = social_graph(120, 4, community_edges=200, seed=6)
    with pytest.raises(SearchTimeout):
        GSIMatcher(data).match(chain_graph(5), wall_limit_s=0.0)


def test_gsi_single_vertex_query():
    data = mesh_graph(3, 3)
    r = GSIMatcher(data).match(from_edges([], num_vertices=1))
    assert r.count == 9


def test_gsi_query_larger_than_data():
    assert GSIMatcher(clique_graph(3)).match(clique_graph(5)).count == 0


def test_gsi_empty_query_rejected():
    with pytest.raises(ValueError):
        GSIMatcher(clique_graph(3)).match(from_edges([], num_vertices=0))


def test_gsi_count_convenience():
    data = clique_graph(4)
    assert GSIMatcher(data).count(clique_graph(3)) == 24


# ------------------------------------------------------------------ DFS
@pytest.mark.parametrize("data,query", CASES, ids=lambda g: g.name)
def test_dfs_matches_networkx(data, query):
    assert dfs_count(data, query) == networkx_count(data, query)


def test_dfs_enumerate_yields_valid_maps():
    data = clique_graph(4)
    q = clique_graph(3)
    seen = set()
    for mapping in dfs_enumerate(data, q):
        assert set(mapping.keys()) == {0, 1, 2}
        values = tuple(mapping[k] for k in sorted(mapping))
        assert len(set(values)) == 3
        seen.add(values)
    assert len(seen) == 24


def test_dfs_empty_when_query_too_big():
    assert dfs_count(clique_graph(3), clique_graph(4)) == 0


def test_dfs_rejects_empty_query():
    with pytest.raises(ValueError):
        list(dfs_enumerate(clique_graph(3), from_edges([], num_vertices=0)))


def test_dfs_id_ordering_same_count():
    data = random_graph(20, 0.3, seed=8)
    q = cycle_graph(4)
    assert dfs_count(data, q, ordering="id") == dfs_count(data, q)


# --------------------------------------------------------------- oracle
def test_networkx_embeddings_are_query_to_data():
    data = from_edges([(0, 1)])
    q = from_edges([(0, 1)])
    embs = networkx_embeddings(data, q)
    assert embs == [{0: 0, 1: 1}]
