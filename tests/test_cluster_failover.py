"""Failover-parity suite: kill the primary at every protocol phase.

The exactly-once argument for the cluster router has three failure
windows, one per protocol phase:

* ``pre-dispatch`` — the primary dies before the request reaches it
  (nothing executed; the failover must be a plain retry);
* ``mid-shard`` — the primary dies while executing (it may or may not
  have journaled; the idempotency key makes the retry safe);
* ``post-commit-pre-reply`` — the primary executed, journaled, and
  *then* died, so its reply is lost (the classic duplicated-side-effect
  window; the revoked sequence number keeps the late answer out and the
  journal's dedupe keeps the retry from re-executing on a restart).

For each phase x seed, a fresh 3-rank cluster serves randomized
workloads while a hook SIGKILLs the routed rank exactly once at that
phase.  Afterward three invariants must hold exactly:

1. every count equals the serial oracle (no loss, no double count);
2. no rank's durable journal holds two records for one idempotency
   key (a duplicate would mean the same work executed twice on one
   replica — the side-effect the envelope protocol exists to prevent);
3. replaying a failed-over key against the *restarted* primary admits
   nothing new — the journal answers it.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from tests.conftest import oracle_count
from repro.core.config import CuTSConfig
from repro.graph import chain_graph, cycle_graph, mesh_graph, star_graph
from repro.service import ClusterService

PHASES = ("pre-dispatch", "mid-shard", "post-commit-pre-reply")
SEEDS = (3, 17)


def journal_files(jobs_dir: str) -> list[str]:
    """Committed journal records only — a SIGKILLed incarnation may
    leave a ``.tmp-*`` file from an interrupted atomic write behind,
    which is exactly the torn state the tmp+rename protocol exists to
    make ignorable."""
    return sorted(
        name
        for name in os.listdir(jobs_dir)
        if name.startswith("job-") and name.endswith(".json")
    )


def journal_keys_by_rank(state_dir: str) -> dict[str, list[str]]:
    """Idempotency keys journaled per rank (duplicates preserved)."""
    out: dict[str, list[str]] = {}
    for rank_dir in sorted(os.listdir(state_dir)):
        jobs_dir = os.path.join(state_dir, rank_dir, "jobs")
        keys: list[str] = []
        if os.path.isdir(jobs_dir):
            for name in journal_files(jobs_dir):
                with open(os.path.join(jobs_dir, name)) as fh:
                    record = json.load(fh)
                key = record.get("idempotency_key")
                if key is not None:
                    keys.append(str(key))
        out[rank_dir] = keys
    return out


@pytest.mark.parametrize("phase", PHASES)
@pytest.mark.parametrize("seed", SEEDS)
def test_primary_kill_at_phase_preserves_exactly_once(
    tmp_path, phase: str, seed: int
):
    rng = random.Random(seed)
    data = mesh_graph(4 + rng.randrange(2), 4 + rng.randrange(2))
    queries = [chain_graph(3), cycle_graph(4), star_graph(3)]
    rng.shuffle(queries)
    expected = {q.name: oracle_count(data, q) for q in queries}

    state_dir = str(tmp_path / "cluster")
    cluster = ClusterService(
        CuTSConfig(),
        ranks=3,
        replication=2,
        state_dir=state_dir,
        auto_heal=False,
    )
    try:
        fp = cluster.register_graph(data)
        killed: list[int] = []

        def hook(hook_phase: str, rank_id: int, job_id: str) -> None:
            if hook_phase == phase and not killed:
                killed.append(rank_id)
                cluster.crash_rank(rank_id)

        cluster.phase_hook = hook
        keys = []
        for i, query in enumerate(queries):
            key = f"parity-{phase}-{seed}-{i}"
            keys.append(key)
            result = cluster.match(
                fp, query, idempotency_key=key, timeout=60
            )
            assert result.count == expected[query.name], (
                f"count diverged after a {phase} kill (seed {seed})"
            )
        assert killed, "the kill hook never fired"
        assert cluster.metrics()["router"]["failovers"] >= (
            1 if phase != "pre-dispatch" else 0
        )

        # Invariant 2: zero duplicate journal entries on any rank.
        for rank_dir, rank_keys in journal_keys_by_rank(
            state_dir
        ).items():
            assert len(rank_keys) == len(set(rank_keys)), (
                f"{rank_dir} journaled a duplicate idempotency key "
                f"after a {phase} kill: {sorted(rank_keys)}"
            )

        # Invariant 3: the restarted primary answers a replayed key
        # from its journal — a key that *committed* before the crash
        # admits no new job and re-executes nothing.
        victim = killed[0]
        cluster.restart_rank(victim)
        rank_service = cluster.ranks[victim].service
        jobs_dir = os.path.join(state_dir, f"rank-{victim}", "jobs")
        committed: dict[str, str] = {}
        if os.path.isdir(jobs_dir):
            for name in journal_files(jobs_dir):
                with open(os.path.join(jobs_dir, name)) as fh:
                    record = json.load(fh)
                if record.get("state") == "done" and record.get(
                    "idempotency_key"
                ) in keys:
                    committed[str(record["idempotency_key"])] = str(
                        record["job_id"]
                    )
        files_before = journal_files(jobs_dir)
        for i, key in enumerate(keys):
            if key in committed:
                replay_id = rank_service.submit(
                    fp, queries[i], idempotency_key=key
                )
                assert replay_id == committed[key]
        rank_service.flush_journal()
        assert journal_files(jobs_dir) == files_before
    finally:
        cluster.close()


def test_back_to_back_kills_across_phases(tmp_path):
    """One cluster, one kill per phase in sequence: counts stay exact
    and the ring returns to full replication after each heal."""
    data = mesh_graph(5, 5)
    query = chain_graph(3)
    expected = oracle_count(data, query)
    state_dir = str(tmp_path / "cluster")
    cluster = ClusterService(
        CuTSConfig(),
        ranks=3,
        replication=2,
        state_dir=state_dir,
        auto_heal=False,
    )
    try:
        fp = cluster.register_graph(data)
        for round_no, phase in enumerate(PHASES):
            killed: list[int] = []

            def hook(
                hook_phase: str, rank_id: int, job_id: str
            ) -> None:
                if hook_phase == phase and not killed:
                    killed.append(rank_id)
                    cluster.crash_rank(rank_id)

            cluster.phase_hook = hook
            result = cluster.match(
                fp,
                query,
                idempotency_key=f"seq-{round_no}",
                timeout=60,
            )
            assert result.count == expected
            cluster.phase_hook = None
            assert killed
            cluster.restart_rank(killed[0])
            assert cluster.replication_of(fp) == 2
        for rank_keys in journal_keys_by_rank(state_dir).values():
            assert len(rank_keys) == len(set(rank_keys))
    finally:
        cluster.close()
