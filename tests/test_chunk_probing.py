"""Regression tests for the sigma-probe chunking heuristic.

An over-conservative pool projection must not shatter the search into
hundreds of chunks (the kernel-launch overhead regression): one probe
chunk refines the survival ratio and the remainder proceeds whole when
it genuinely fits.
"""

import pytest

from repro.baselines import networkx_count
from repro.core import CuTSConfig, CuTSMatcher
from repro.gpusim import V100, scaled_device
from repro.graph import clique_graph, cycle_graph, social_graph


@pytest.fixture(scope="module")
def dense_social():
    return social_graph(
        400, 4, community_edges=3000, num_communities=50, seed=17
    )


def test_probe_keeps_chunk_count_small(dense_social):
    """A run whose trie comfortably fits must use at most a few probe
    chunks even when the pool projection looks scary."""
    r = CuTSMatcher(dense_social).match(clique_graph(4))
    assert r.stats.chunks_processed <= 8


def test_probe_count_correct(dense_social):
    r = CuTSMatcher(dense_social).match(clique_graph(4))
    assert r.count == networkx_count(dense_social, clique_graph(4))


def test_memory_bound_run_still_chunks(dense_social):
    tight = scaled_device(V100, 60_000)
    cfg = CuTSConfig(device=tight, chunk_size=64)
    r = CuTSMatcher(dense_social, cfg).match(cycle_graph(4))
    assert r.stats.chunks_processed > 4
    assert r.stats.peak_trie_words <= CuTSMatcher(dense_social, cfg).trie_budget_words
    assert r.count == networkx_count(dense_social, cycle_graph(4))


def test_chunked_and_unchunked_counts_agree(dense_social):
    q = cycle_graph(4)
    big = CuTSMatcher(
        dense_social, CuTSConfig(device=scaled_device(V100, 1 << 26))
    ).match(q)
    tight = CuTSMatcher(
        dense_social, CuTSConfig(device=scaled_device(V100, 60_000), chunk_size=32)
    ).match(q)
    assert big.count == tight.count


def test_single_path_chunks_never_infinite(dense_social):
    """chunk_size=1 forces maximal splitting; must terminate correctly."""
    cfg = CuTSConfig(device=scaled_device(V100, 60_000), chunk_size=1)
    small = social_graph(60, 3, community_edges=60, seed=3)
    r = CuTSMatcher(small, cfg).match(clique_graph(3))
    assert r.count == networkx_count(small, clique_graph(3))
