"""Tests for the cuTS matcher — correctness against oracles, chunking
equivalence, memory/time limits, and configuration invariance."""

import numpy as np
import pytest

from repro.baselines import dfs_count, networkx_count
from repro.core import CuTSConfig, CuTSMatcher, SearchTimeout
from repro.core.candidates import degree_filter_mask, root_candidates
from repro.gpusim import CostModel, DeviceOOMError, V100, scaled_device
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    random_graph,
    social_graph,
    star_graph,
)
from tests.conftest import assert_valid_embeddings


CASES = [
    (mesh_graph(4, 4), chain_graph(4)),
    (mesh_graph(4, 4), chain_graph(2)),
    (mesh_graph(3, 3), cycle_graph(4)),
    (clique_graph(6), clique_graph(4)),
    (clique_graph(6), clique_graph(6)),
    (random_graph(25, 0.25, seed=1), clique_graph(3)),
    (random_graph(25, 0.25, seed=1), chain_graph(5)),
    (random_graph(25, 0.25, seed=1), cycle_graph(5)),
    (star_graph(6), star_graph(4)),
    (social_graph(60, 3, community_edges=60, seed=3), clique_graph(4)),
    (social_graph(60, 3, community_edges=60, seed=3), cycle_graph(4)),
]


@pytest.mark.parametrize("data,query", CASES, ids=lambda g: g.name)
def test_count_matches_networkx(data, query):
    r = CuTSMatcher(data).match(query)
    assert r.count == networkx_count(data, query)


@pytest.mark.parametrize("data,query", CASES[:6], ids=lambda g: g.name)
def test_count_matches_dfs(data, query):
    r = CuTSMatcher(data).match(query)
    assert r.count == dfs_count(data, query)


@pytest.mark.parametrize("data,query", CASES, ids=lambda g: g.name)
def test_materialized_embeddings_valid(data, query):
    r = CuTSMatcher(data).match(query, materialize=True)
    assert r.matches is not None
    assert len(r.matches) == r.count
    assert_valid_embeddings(data, query, r.matches)
    # all embeddings distinct
    rows = set(map(tuple, r.matches.tolist()))
    assert len(rows) == r.count


def test_directed_matching():
    # directed triangle cycle in a directed graph
    data = from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
    query = from_edges([(0, 1), (1, 2), (2, 0)])
    r = CuTSMatcher(data).match(query, materialize=True)
    assert r.count == networkx_count(data, query)
    assert_valid_embeddings(data, query, r.matches)


def test_directed_no_match():
    data = from_edges([(0, 1), (1, 2)])  # a directed path
    query = from_edges([(0, 1), (1, 0)])  # a 2-cycle
    assert CuTSMatcher(data).match(query).count == 0


def test_single_vertex_query():
    data = mesh_graph(3, 3)
    query = from_edges([], num_vertices=1)
    r = CuTSMatcher(data).match(query, materialize=True)
    assert r.count == 9
    assert r.matches.shape == (9, 1)


def test_query_larger_than_data():
    data = clique_graph(3)
    r = CuTSMatcher(data).match(clique_graph(4))
    assert r.count == 0


def test_empty_query_rejected():
    data = clique_graph(3)
    with pytest.raises(ValueError):
        CuTSMatcher(data).match(from_edges([], num_vertices=0))


def test_self_isomorphism_count():
    # K4 onto K4: 4! = 24 embeddings
    assert CuTSMatcher(clique_graph(4)).match(clique_graph(4)).count == 24


def test_chain_on_chain():
    # chain4 onto chain4 (bidirected): 2 embeddings
    assert CuTSMatcher(chain_graph(4)).match(chain_graph(4)).count == 2


def test_count_only_has_no_matches():
    r = CuTSMatcher(mesh_graph(3, 3)).match(chain_graph(3))
    assert r.matches is None
    with pytest.raises(ValueError):
        r.mappings()


def test_mappings_dicts():
    data = clique_graph(3)
    r = CuTSMatcher(data).match(clique_graph(3), materialize=True)
    maps = r.mappings()
    assert len(maps) == 6
    assert all(set(m.keys()) == {0, 1, 2} for m in maps)


def test_max_materialized_caps_collection():
    data = clique_graph(6)
    cfg = CuTSConfig(max_materialized=5)
    r = CuTSMatcher(data, cfg).match(clique_graph(3), materialize=True)
    assert r.count == 120  # counting never capped
    assert len(r.matches) == 5


# ------------------------------------------------------------ chunking
def test_chunked_equals_unchunked():
    data = social_graph(80, 3, community_edges=120, seed=9)
    query = cycle_graph(4)
    big = CuTSMatcher(data, CuTSConfig(device=scaled_device(V100, 1 << 26)))
    r_big = big.match(query)
    tight = CuTSMatcher(
        data, CuTSConfig(device=scaled_device(V100, 1 << 13), chunk_size=32)
    )
    r_tight = tight.match(query)
    assert r_tight.count == r_big.count
    assert r_tight.stats.chunks_processed > 0
    assert r_big.stats.chunks_processed == 0


def test_chunked_materialization_complete():
    data = social_graph(60, 3, community_edges=80, seed=4)
    query = chain_graph(4)
    cfg = CuTSConfig(device=scaled_device(V100, 1 << 13), chunk_size=16)
    r = CuTSMatcher(data, cfg).match(query, materialize=True)
    assert len(r.matches) == r.count
    assert_valid_embeddings(data, query, r.matches)
    expected = CuTSMatcher(data).match(query).count
    assert r.count == expected


def test_peak_trie_words_bounded_under_chunking():
    data = social_graph(80, 3, community_edges=120, seed=9)
    cfg = CuTSConfig(device=scaled_device(V100, 1 << 13), chunk_size=16)
    m = CuTSMatcher(data, cfg)
    r = m.match(cycle_graph(4))
    assert r.stats.peak_trie_words <= m.trie_budget_words


def test_oom_when_data_graph_too_big():
    data = mesh_graph(20, 20)
    with pytest.raises(DeviceOOMError):
        CuTSMatcher(data, CuTSConfig(device=scaled_device(V100, 100)))


# ----------------------------------------------------------- limits
def test_time_limit_triggers():
    data = social_graph(150, 4, community_edges=400, seed=2)
    with pytest.raises(SearchTimeout):
        CuTSMatcher(data).match(clique_graph(3), time_limit_ms=1e-9)


def test_wall_limit_triggers():
    data = social_graph(150, 4, community_edges=400, seed=2)
    with pytest.raises(SearchTimeout):
        CuTSMatcher(data).match(clique_graph(4), wall_limit_s=0.0)


# ------------------------------------------------- config invariance
@pytest.mark.parametrize("intersection", ["adaptive", "c", "p"])
def test_intersection_strategy_invariant(intersection):
    data = social_graph(70, 3, community_edges=100, seed=6)
    query = clique_graph(4)
    cfg = CuTSConfig(intersection=intersection)
    r = CuTSMatcher(data, cfg).match(query)
    assert r.count == networkx_count(data, query)


@pytest.mark.parametrize("ordering", ["max_degree", "id"])
def test_ordering_invariant(ordering):
    data = random_graph(30, 0.25, seed=12)
    query = cycle_graph(4)
    r = CuTSMatcher(data, CuTSConfig(ordering=ordering)).match(query)
    assert r.count == networkx_count(data, query)


@pytest.mark.parametrize("randomize", [True, False])
def test_placement_invariant(randomize):
    data = random_graph(30, 0.25, seed=12)
    r = CuTSMatcher(data, CuTSConfig(randomize_placement=randomize)).match(
        clique_graph(3)
    )
    assert r.count == networkx_count(data, clique_graph(3))


@pytest.mark.parametrize("vw", [2, 8, 32])
def test_virtual_warp_invariant(vw):
    data = random_graph(30, 0.25, seed=12)
    r = CuTSMatcher(data, CuTSConfig(virtual_warp_size=vw)).match(clique_graph(3))
    assert r.count == networkx_count(data, clique_graph(3))


def test_result_columns_in_query_vertex_order():
    """matches[:, q] must be q's image regardless of matching order."""
    data = mesh_graph(3, 3)
    query = star_graph(2)  # hub 0, leaves 1, 2 — order starts at hub
    r = CuTSMatcher(data).match(query, materialize=True)
    for row in r.matches:
        hub, l1, l2 = int(row[0]), int(row[1]), int(row[2])
        assert data.has_edge(hub, l1) and data.has_edge(hub, l2)


# ------------------------------------------------------- cost sanity
def test_cost_counters_populated():
    data = social_graph(60, 3, community_edges=60, seed=3)
    r = CuTSMatcher(data).match(clique_graph(3))
    assert r.cost.dram_read_words > 0
    assert r.cost.dram_write_words > 0
    assert r.cost.kernel_launches >= 3  # init + 2 search levels
    assert r.cost.atomic_ops > 0
    assert r.time_ms > 0


def test_stats_paths_per_depth_bfs_totals():
    data = mesh_graph(4, 4)
    r = CuTSMatcher(data).match(chain_graph(4))
    assert r.stats.paths_per_depth == [16, 48, 104, 232]


def test_candidates_degree_filter():
    data = mesh_graph(4, 4)  # degrees 2..4
    query = clique_graph(5)  # all degrees 4
    mask = degree_filter_mask(data, query, 0, np.arange(16))
    assert int(mask.sum()) == 4  # only interior vertices have degree 4


def test_root_candidates_charges_cost():
    data = mesh_graph(4, 4)
    cost = CostModel(V100)
    roots = root_candidates(data, clique_graph(5), 0, cost)
    assert len(roots) == 4
    assert cost.dram_read_words == 2 * 16
