"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    chain_graph,
    clique_graph,
    from_edges,
    mesh_graph,
    random_graph,
    social_graph,
)


def pytest_sessionfinish(session, exitstatus):
    """Under ``REPRO_SANITIZE=1``, diff the lock orders the run actually
    observed against RP010's static order graph: a runtime inversion
    fails the session (a deadlock the scheduler happened not to hit);
    static edges the suite never exercised are reported as dead
    discipline so either a test or the nesting gets removed."""
    import os

    if os.environ.get("REPRO_SANITIZE") != "1":
        return
    from pathlib import Path

    from repro.analysis.checkers.rp010_lock_order import lock_order_edges
    from repro.analysis.engine import Analyzer
    from repro.analysis.sanitizer import registry

    reg = registry()
    report = reg.report()
    src_root = Path(__file__).resolve().parent.parent / "src"
    project, _ = Analyzer(src_root).collect()
    dead = reg.unexercised(lock_order_edges(project))
    print("\n=== lock-order sanitizer ===")
    print(f"observed order edges: {len(report['edges'])}")
    for held, acquired, site in dead:
        print(
            f"dead discipline: static edge {held} -> {acquired} "
            f"({site}) never exercised by this run"
        )
    for held, acquired, count in report["contended_while_held"]:
        print(f"contended while held: {held} -> {acquired} x{count}")
    for inv in report["inversions"]:
        print(
            f"LOCK-ORDER INVERSION: {inv['first']} then {inv['second']} "
            f"(thread {inv['thread']})"
        )
    if report["inversions"]:
        session.exitstatus = 1


@pytest.fixture
def mesh44() -> CSRGraph:
    """The paper's Figure 2 data graph: a 4x4 mesh."""
    return mesh_graph(4, 4)


@pytest.fixture
def chain4() -> CSRGraph:
    """The paper's Figure 2 query graph: a 4-vertex chain."""
    return chain_graph(4)


@pytest.fixture
def k5() -> CSRGraph:
    return clique_graph(5)


@pytest.fixture
def triangle() -> CSRGraph:
    return clique_graph(3)


@pytest.fixture
def small_social() -> CSRGraph:
    """A small heavy-tailed graph with triangles (seeded)."""
    return social_graph(120, 3, community_edges=240, num_communities=15, seed=7)


@pytest.fixture
def small_gnp() -> CSRGraph:
    return random_graph(30, 0.2, seed=11)


@pytest.fixture
def directed_diamond() -> CSRGraph:
    """A genuinely directed graph: 0->1, 0->2, 1->3, 2->3."""
    return from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])


def oracle_count(data: CSRGraph, query: CSRGraph) -> int:
    """networkx monomorphism count (the ground truth)."""
    from repro.baselines.reference import networkx_count

    return networkx_count(data, query)


def assert_valid_embeddings(
    data: CSRGraph, query: CSRGraph, matches: np.ndarray
) -> None:
    """Every row must be an injective, edge-preserving map."""
    for row in matches:
        assert len(set(row.tolist())) == len(row), f"not injective: {row}"
        for u, v in query.edge_list():
            assert data.has_edge(int(row[u]), int(row[v])), (
                f"edge ({u},{v}) not preserved by {row}"
            )
