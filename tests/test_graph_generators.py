"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    degree_summary,
    is_weakly_connected,
    mesh_graph,
    random_graph,
    road_network_graph,
    social_graph,
    star_graph,
)
from repro.graph.generators import (
    community_noise_edges,
    preferential_attachment_edges,
)


# ---------------------------------------------------------------- toys
def test_mesh_structure():
    g = mesh_graph(3, 4)
    assert g.num_vertices == 12
    # (3*3 + 2*4) undirected = 17, bidirected = 34
    assert g.num_edges == 34
    assert g.has_edge(0, 1) and g.has_edge(0, 4)
    assert not g.has_edge(3, 4)  # row boundary


def test_mesh_degree_range():
    g = mesh_graph(4, 4)
    degs = g.out_degrees
    assert degs.min() == 2 and degs.max() == 4


def test_mesh_invalid():
    with pytest.raises(ValueError):
        mesh_graph(0, 4)


def test_chain_structure():
    g = chain_graph(5)
    assert g.num_vertices == 5
    assert g.num_edges == 8
    assert g.out_degree(0) == 1 and g.out_degree(2) == 2


def test_chain_single_vertex():
    g = chain_graph(1)
    assert g.num_vertices == 1 and g.num_edges == 0


def test_chain_invalid():
    with pytest.raises(ValueError):
        chain_graph(0)


def test_clique_structure():
    g = clique_graph(5)
    assert g.num_vertices == 5
    assert g.num_edges == 20
    assert all(g.out_degree(v) == 4 for v in range(5))


def test_clique_k1():
    g = clique_graph(1)
    assert g.num_edges == 0


def test_star_structure():
    g = star_graph(6)
    assert g.num_vertices == 7
    assert g.out_degree(0) == 6
    assert all(g.out_degree(v) == 1 for v in range(1, 7))


def test_star_zero_leaves():
    g = star_graph(0)
    assert g.num_vertices == 1 and g.num_edges == 0


def test_cycle_structure():
    g = cycle_graph(6)
    assert g.num_edges == 12
    assert all(g.out_degree(v) == 2 for v in range(6))
    assert g.has_edge(5, 0)


def test_cycle_invalid():
    with pytest.raises(ValueError):
        cycle_graph(2)


# ------------------------------------------------------------ datasets
def test_social_deterministic():
    a = social_graph(100, 3, seed=5)
    b = social_graph(100, 3, seed=5)
    assert np.array_equal(a.indices, b.indices)


def test_social_seed_changes_graph():
    a = social_graph(100, 3, seed=5)
    b = social_graph(100, 3, seed=6)
    assert not np.array_equal(a.indices, b.indices)


def test_social_connected():
    g = social_graph(200, 3, seed=1)
    assert is_weakly_connected(g)


def test_social_heavy_tail():
    g = social_graph(500, 3, seed=2)
    summ = degree_summary(g)
    # hubs well above the mean, but no degenerate |V|-scale hub
    assert summ.max_out > 4 * summ.mean_out
    assert summ.max_out < g.num_vertices // 2


def test_pa_no_id_bias():
    """Regression: target dedup must not sort by id (old max-hub bug)."""
    rng = np.random.default_rng(0)
    edges = preferential_attachment_edges(800, 4, rng)
    degs = np.bincount(edges.ravel(), minlength=800)
    # The single largest hub should hold a small fraction of all degree.
    assert degs.max() < 0.2 * degs.sum()


def test_pa_requires_enough_vertices():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        preferential_attachment_edges(3, 3, rng)


def test_community_noise_in_range():
    rng = np.random.default_rng(1)
    edges = community_noise_edges(100, 500, 10, rng)
    assert edges.size == 0 or edges.max() < 100
    assert np.all(edges[:, 0] != edges[:, 1])


def test_community_noise_within_communities():
    rng = np.random.default_rng(2)
    edges = community_noise_edges(100, 300, 10, rng)
    # Each community block is 10 wide; endpoints share a block.
    assert np.all(edges[:, 0] // 10 == edges[:, 1] // 10)


def test_community_noise_degenerate():
    rng = np.random.default_rng(3)
    assert community_noise_edges(1, 10, 4, rng).size == 0
    assert community_noise_edges(100, 10, 0, rng).size == 0


def test_road_degree_concentrated():
    g = road_network_graph(30, 30, seed=4)
    summ = degree_summary(g)
    assert summ.max_out <= 8
    assert 2.0 < summ.mean_out < 4.5


def test_road_deterministic():
    a = road_network_graph(20, 20, seed=9)
    b = road_network_graph(20, 20, seed=9)
    assert np.array_equal(a.indices, b.indices)


def test_road_drop_fraction_bounds():
    with pytest.raises(ValueError):
        road_network_graph(10, 10, drop_fraction=1.5)


def test_road_no_drop_is_mesh_plus_shortcuts():
    g = road_network_graph(10, 10, drop_fraction=0.0, shortcut_fraction=0.0)
    m = mesh_graph(10, 10)
    assert g.num_edges == m.num_edges


def test_random_graph_p_bounds():
    with pytest.raises(ValueError):
        random_graph(10, 1.5)


def test_random_graph_extremes():
    g0 = random_graph(10, 0.0, seed=1)
    g1 = random_graph(10, 1.0, seed=1)
    assert g0.num_edges == 0
    assert g1.num_edges == 90  # complete bidirected
