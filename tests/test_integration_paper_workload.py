"""Integration: both engines vs the networkx oracle on the actual paper
workload (small-scale datasets, the full 5-vertex query set)."""

import pytest

from repro.baselines import GSIMatcher, networkx_count
from repro.core import CuTSMatcher
from repro.experiments.datasets import load_dataset
from repro.graph.queries import paper_query_set

SCALE = 0.12  # tiny datasets keep the oracle affordable


@pytest.fixture(scope="module")
def road():
    return load_dataset("roadNet-PA", SCALE)


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wikiTalk", SCALE)


@pytest.mark.parametrize("qidx", range(11))
def test_cuts_all_q5_on_road_vs_oracle(road, qidx):
    q = paper_query_set(5)[qidx]
    assert CuTSMatcher(road).match(q).count == networkx_count(road, q)


@pytest.mark.parametrize("qidx", [0, 4, 8, 10])
def test_gsi_all_q5_on_road_vs_oracle(road, qidx):
    q = paper_query_set(5)[qidx]
    assert GSIMatcher(road).match(q).count == networkx_count(road, q)


@pytest.mark.parametrize("qidx", [0, 5, 10])
def test_cuts_q6_on_wiki_vs_oracle(wiki, qidx):
    q = paper_query_set(6)[qidx]
    assert CuTSMatcher(wiki).match(q).count == networkx_count(wiki, q)


@pytest.mark.parametrize("qidx", [0, 10])
def test_cuts_q7_on_road_vs_oracle(road, qidx):
    q = paper_query_set(7)[qidx]
    assert CuTSMatcher(road).match(q).count == networkx_count(road, q)


def test_engines_agree_across_full_q5_set(wiki):
    for q in paper_query_set(5):
        a = CuTSMatcher(wiki).match(q).count
        b = GSIMatcher(wiki).match(q).count
        assert a == b, q.name
