"""Tests for kernel-launch timing and the metric report."""

import numpy as np
import pytest

from repro.gpusim import (
    LAUNCH_OVERHEAD_CYCLES,
    V100,
    CostModel,
    compare_counters,
    format_metric_report,
    launch_kernel,
)


def test_launch_accumulates_cycles():
    cost = CostModel(V100)
    launch = launch_kernel(cost, "k", np.array([10.0, 20.0]), 2, 0)
    assert cost.kernel_launches == 1
    assert launch.compute_cycles == 20.0  # busiest worker
    assert cost.cycles == pytest.approx(LAUNCH_OVERHEAD_CYCLES + 20.0)


def test_launch_memory_roofline():
    cost = CostModel(V100)
    words = int(V100.dram_words_per_cycle * 1000)
    launch = launch_kernel(cost, "k", np.array([1.0]), 1, words)
    assert launch.memory_cycles == pytest.approx(1000.0)
    assert launch.cycles == pytest.approx(LAUNCH_OVERHEAD_CYCLES + 1000.0)


def test_launch_empty_items():
    cost = CostModel(V100)
    launch = launch_kernel(cost, "k", np.zeros(0), 4, 0)
    assert launch.compute_cycles == 0.0
    assert launch.cycles == LAUNCH_OVERHEAD_CYCLES


def test_launch_with_rng_same_total():
    """Shuffling redistributes but conserves total work."""
    items = np.arange(100, dtype=float)
    c1, c2 = CostModel(V100), CostModel(V100)
    l1 = launch_kernel(c1, "k", items, 10, 0)
    l2 = launch_kernel(c2, "k", items, 10, 0, rng=np.random.default_rng(1))
    assert l1.num_items == l2.num_items == 100
    # both compute a max over workers covering the same items
    assert l2.compute_cycles >= items.sum() / 10


def test_imbalance_lengthens_kernel():
    skewed = np.array([100.0] + [1.0] * 99)
    flat = np.full(100, (100 + 99) / 100)
    c1, c2 = CostModel(V100), CostModel(V100)
    k_skew = launch_kernel(c1, "k", skewed, 100, 0)
    k_flat = launch_kernel(c2, "k", flat, 100, 0)
    assert k_skew.cycles > k_flat.cycles
    assert k_skew.imbalance > k_flat.imbalance


def test_compare_counters_reduction():
    a, b = CostModel(V100), CostModel(V100)
    a.charge_dram_read(200)
    b.charge_dram_read(100)
    ratios = {r.metric: r for r in compare_counters(a, b)}
    assert ratios["dram_read_words"].reduction == pytest.approx(2.0)


def test_compare_counters_infinite_reduction():
    a, b = CostModel(V100), CostModel(V100)
    a.charge_atomics(5)
    ratios = {r.metric: r for r in compare_counters(a, b)}
    assert ratios["atomic_ops"].reduction == float("inf")


def test_compare_counters_both_zero():
    a, b = CostModel(V100), CostModel(V100)
    ratios = {r.metric: r for r in compare_counters(a, b)}
    assert ratios["atomic_ops"].reduction == 1.0


def test_format_metric_report():
    a, b = CostModel(V100), CostModel(V100)
    a.charge_dram_read(200)
    b.charge_dram_read(100)
    text = format_metric_report(compare_counters(a, b), "GSI", "cuTS")
    assert "GSI" in text and "cuTS" in text
    assert "2.00x" in text
    assert "dram_read_words" in text
