"""Tests for kernel-trace retention and the profiler-style reports."""

import numpy as np
import pytest

from repro.core import CuTSConfig, CuTSMatcher
from repro.gpusim import (
    CostModel,
    V100,
    bound_split,
    format_trace_report,
    group_by_kernel,
    hottest_launches,
    launch_kernel,
)
from repro.graph import clique_graph, social_graph


def traced_cost():
    cost = CostModel(V100)
    cost.enable_trace()
    return cost


def test_trace_disabled_by_default():
    cost = CostModel(V100)
    launch_kernel(cost, "k", np.ones(4), 2, 0)
    assert cost.trace is None


def test_trace_records_launches():
    cost = traced_cost()
    launch_kernel(cost, "a", np.ones(4), 2, 0)
    launch_kernel(cost, "b", np.ones(4), 2, 0)
    launch_kernel(cost, "a", np.ones(8), 2, 0)
    assert len(cost.trace) == 3
    assert [l.name for l in cost.trace] == ["a", "b", "a"]


def test_group_by_kernel_aggregates():
    cost = traced_cost()
    launch_kernel(cost, "a", np.ones(4), 2, 0)
    launch_kernel(cost, "a", np.ones(8), 2, 0)
    launch_kernel(cost, "b", np.full(2, 100.0), 2, 0)
    groups = {g.name: g for g in group_by_kernel(cost.trace)}
    assert groups["a"].launches == 2
    assert groups["a"].total_items == 12
    assert groups["b"].launches == 1
    # sorted by total cycles descending
    ordered = group_by_kernel(cost.trace)
    assert ordered[0].total_cycles >= ordered[-1].total_cycles


def test_hottest_launches():
    cost = traced_cost()
    launch_kernel(cost, "small", np.ones(2), 2, 0)
    launch_kernel(cost, "big", np.full(2, 1e6), 1, 0)
    hot = hottest_launches(cost.trace, top_k=1)
    assert hot[0].name == "big"


def test_bound_split_fractions():
    cost = traced_cost()
    # memory-bound launch: huge dram traffic, no compute
    launch_kernel(cost, "mem", np.ones(1), 1, 10**9)
    # compute-bound launch
    launch_kernel(cost, "cpu", np.full(1, 1e7), 1, 0)
    mem, comp = bound_split(cost.trace)
    assert mem + comp == pytest.approx(1.0)
    assert mem > 0 and comp > 0


def test_bound_split_empty():
    assert bound_split([]) == (0.0, 0.0)


def test_format_trace_report():
    cost = traced_cost()
    launch_kernel(cost, "search_d1", np.ones(4), 2, 100)
    text = format_trace_report(cost.trace)
    assert "search_d1" in text
    assert "memory-bound" in text


def test_matcher_trace_config():
    data = social_graph(80, 3, community_edges=100, seed=2)
    cfg = CuTSConfig(trace_kernels=True)
    r = CuTSMatcher(data, cfg).match(clique_graph(3))
    assert r.cost.trace is not None
    assert len(r.cost.trace) == r.cost.kernel_launches
    names = {l.name for l in r.cost.trace}
    assert "init_match" in names
    assert any(n.startswith("search_kernel") for n in names)


def test_reset_clears_trace():
    cost = traced_cost()
    launch_kernel(cost, "a", np.ones(2), 1, 0)
    cost.reset()
    assert cost.trace == []
    assert cost.kernel_launches == 0


def test_merge_concatenates_traces():
    a, b = traced_cost(), traced_cost()
    launch_kernel(a, "x", np.ones(2), 1, 0)
    launch_kernel(b, "y", np.ones(2), 1, 0)
    a.merge(b)
    assert [l.name for l in a.trace] == ["x", "y"]
