"""Tests for the three intersection micro-kernels (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    adaptive_intersection,
    c_intersection,
    estimate_c_cost,
    estimate_p_cost,
    p_intersection,
    scatter_vector_intersection,
)
from repro.gpusim import CostModel, V100
from repro.graph import clique_graph, from_edges, mesh_graph, random_graph, star_graph


def reference_intersection(graph, verts):
    """Ground truth: plain set intersection of children."""
    sets = [set(graph.children(int(v)).tolist()) for v in verts]
    out = set.intersection(*sets)
    return sorted(out)


KERNELS = [scatter_vector_intersection, c_intersection, p_intersection, adaptive_intersection]


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_match_reference_mesh(kernel):
    g = mesh_graph(4, 4)
    for verts in ([0], [0, 5], [1, 4], [0, 2], [1, 4, 6]):
        got = sorted(kernel(g, np.array(verts)).tolist())
        assert got == reference_intersection(g, verts), verts


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_match_reference_random(kernel):
    g = random_graph(40, 0.3, seed=9)
    rng = np.random.default_rng(4)
    for _ in range(20):
        chi = int(rng.integers(1, 5))
        verts = rng.choice(40, size=chi, replace=False)
        got = sorted(kernel(g, verts).tolist())
        assert got == reference_intersection(g, verts)


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_empty_result(kernel):
    g = star_graph(3)  # leaves share only the hub as neighbour
    # children(1) = {0}, children(0) = {1,2,3}: intersection empty
    got = kernel(g, np.array([0, 1]))
    assert got.tolist() == []


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_single_vertex(kernel):
    g = clique_graph(4)
    got = sorted(kernel(g, np.array([2])).tolist())
    assert got == [0, 1, 3]


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_reject_empty_input(kernel):
    g = clique_graph(3)
    with pytest.raises(ValueError):
        kernel(g, np.array([], dtype=np.int64))


def test_results_sorted():
    g = random_graph(30, 0.4, seed=2)
    for kernel in (c_intersection, p_intersection):
        out = kernel(g, np.array([0, 1]))
        assert np.all(np.diff(out) > 0)


def test_sv_scatter_buffer_reuse():
    g = clique_graph(5)
    scatter = np.zeros(5, dtype=np.int64)
    out1 = scatter_vector_intersection(g, np.array([0, 1]), scatter=scatter)
    assert np.all(scatter == 0)  # restored
    out2 = scatter_vector_intersection(g, np.array([0, 1]), scatter=scatter)
    assert np.array_equal(out1, out2)


def test_sv_scatter_buffer_wrong_size():
    g = clique_graph(5)
    with pytest.raises(ValueError):
        scatter_vector_intersection(g, np.array([0]), scatter=np.zeros(3, dtype=np.int64))


def test_sv_space_cost_is_graph_sized():
    """The paper's point: SV needs O(|V|) per worker."""
    g = mesh_graph(10, 10)
    scatter = np.zeros(g.num_vertices, dtype=np.int64)
    assert scatter.nbytes >= g.num_vertices * 8


def test_cost_charging_c_vs_sv():
    g = random_graph(60, 0.3, seed=5)
    c1, c2 = CostModel(V100), CostModel(V100)
    verts = np.array([0, 1, 2])
    c_intersection(g, verts, c1)
    scatter_vector_intersection(g, verts, c2)
    assert c1.dram_read_words > 0
    # SV's scattered writes dominate its transaction count.
    assert c2.dram_write_transactions > c1.dram_write_transactions


def test_cost_charging_p():
    g = random_graph(60, 0.3, seed=5)
    cost = CostModel(V100)
    p_intersection(g, np.array([0, 1]), cost)
    assert cost.dram_read_words > 0


def test_estimates_positive():
    g = random_graph(30, 0.3, seed=1)
    verts = np.array([0, 1, 2])
    assert estimate_c_cost(g, verts) > 0
    assert estimate_p_cost(g, verts) > 0


def test_adaptive_picks_p_for_hub_heavy():
    """With a low-degree anchor and huge-degree co-constraints the parent
    probe is cheaper, and adaptive should act accordingly."""
    # hub 0 connected to everyone; vertex 1 has few children.
    edges = [(0, i) for i in range(1, 200)] + [(1, 2), (1, 3), (2, 3)]
    g = from_edges(edges + [(b, a) for a, b in edges])
    verts = np.array([1, 0])  # sorted by degree -> anchor = 1
    assert estimate_p_cost(g, verts) != estimate_c_cost(g, verts)
    out = adaptive_intersection(g, verts)
    assert sorted(out.tolist()) == reference_intersection(g, [0, 1])


def test_adaptive_anchor_reorder_keeps_semantics():
    g = random_graph(40, 0.3, seed=7)
    a = sorted(adaptive_intersection(g, np.array([3, 17, 25])).tolist())
    b = sorted(adaptive_intersection(g, np.array([25, 3, 17])).tolist())
    assert a == b
