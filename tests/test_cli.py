"""Tests for the artifact-style CLI."""

import pytest

from repro.cli import build_parser, load_data_argument, load_query_argument, main
from repro.graph import mesh_graph, write_cuts_format


def test_query_shorthands():
    assert load_query_argument("K5").num_vertices == 5
    assert load_query_argument("C6").num_vertices == 6
    assert load_query_argument("P4").num_vertices == 4
    assert load_query_argument("S5").num_vertices == 6  # hub + 5 leaves


def test_query_paper_name():
    q = load_query_argument("q5_e10_r0")
    assert q.num_vertices == 5
    assert q.num_edges == 20  # K5 bidirected


def test_query_from_file(tmp_path):
    p = tmp_path / "q.txt"
    write_cuts_format(mesh_graph(2, 2), p)
    q = load_query_argument(str(p))
    assert q.num_vertices == 4


def test_query_bad_spec():
    with pytest.raises(SystemExit):
        load_query_argument("nonsense")
    with pytest.raises(SystemExit):
        load_query_argument("q5_nope")


def test_data_builtin_name():
    g = load_data_argument("roadNet-PA")
    assert g.name == "roadNet-PA"


def test_data_bad_spec():
    with pytest.raises(SystemExit):
        load_data_argument("/no/such/file")


def test_match_command(tmp_path, capsys):
    data_file = tmp_path / "d.txt"
    write_cuts_format(mesh_graph(4, 4), data_file)
    rc = main(["match", str(data_file), "P3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "matches" in out
    assert "kernel time" in out


def test_match_command_counters(tmp_path, capsys):
    data_file = tmp_path / "d.txt"
    write_cuts_format(mesh_graph(3, 3), data_file)
    rc = main(["match", str(data_file), "P2", "--counters"])
    assert rc == 0
    assert "dram_read_words" in capsys.readouterr().out


def test_match_distributed(tmp_path, capsys):
    data_file = tmp_path / "d.txt"
    write_cuts_format(mesh_graph(4, 4), data_file)
    rc = main(["match", str(data_file), "P3", "--ranks", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-rank busy" in out


def test_convert_command(tmp_path, capsys):
    src = tmp_path / "in.txt"
    dst = tmp_path / "out.g"
    write_cuts_format(mesh_graph(2, 2), src)
    rc = main(["convert", str(src), str(dst)])
    assert rc == 0
    assert dst.exists()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
