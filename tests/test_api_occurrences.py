"""Tests for occurrence counting (embeddings / automorphisms)."""

from repro import count_automorphisms, count_embeddings, count_occurrences
from repro.graph import chain_graph, clique_graph, cycle_graph, mesh_graph, star_graph


def test_automorphisms_known_values():
    assert count_automorphisms(clique_graph(4)) == 24  # S4
    assert count_automorphisms(cycle_graph(5)) == 10  # dihedral D5
    assert count_automorphisms(chain_graph(3)) == 2
    assert count_automorphisms(star_graph(3)) == 6  # 3! leaf permutations


def test_occurrences_triangle_in_k4():
    # K4 contains C(4,3) = 4 triangles
    assert count_occurrences(clique_graph(4), clique_graph(3)) == 4


def test_occurrences_edges_in_mesh():
    # 4x4 mesh has 24 undirected edges = 24 K2 occurrences
    assert count_occurrences(mesh_graph(4, 4), clique_graph(2)) == 24


def test_occurrences_cycles_in_mesh():
    # the 4-cycles of a 4x4 grid: 9 unit squares (plus no others)
    assert count_occurrences(mesh_graph(4, 4), cycle_graph(4)) == 9


def test_occurrences_divides_embeddings():
    data = mesh_graph(4, 4)
    q = chain_graph(3)
    assert (
        count_occurrences(data, q) * count_automorphisms(q)
        == count_embeddings(data, q)
    )
