"""Tests for the occupancy calculator (§2.2.3)."""

import pytest

from repro.gpusim import (
    V100,
    max_shared_words_for_full_occupancy,
    occupancy,
)


def test_full_occupancy_small_footprint():
    res = occupancy(V100, threads_per_block=256, shared_words_per_block=0,
                    registers_per_thread=16)
    assert res.occupancy == pytest.approx(1.0)
    assert res.active_warps_per_sm == V100.max_warps_per_sm


def test_shared_memory_limits_occupancy():
    # One block hogs all shared memory -> only one block resident.
    res = occupancy(
        V100, threads_per_block=256,
        shared_words_per_block=V100.shared_words_per_sm,
    )
    assert res.blocks_per_sm == 1
    assert res.limiter == "shared_memory"
    assert res.occupancy < 0.5


def test_registers_limit_occupancy():
    res = occupancy(V100, threads_per_block=1024, registers_per_thread=255)
    assert res.limiter == "registers"
    assert res.occupancy < 1.0


def test_block_size_rounding_to_warps():
    # 33 threads occupy 2 warps worth of scheduler slots.
    a = occupancy(V100, threads_per_block=33, registers_per_thread=0)
    b = occupancy(V100, threads_per_block=64, registers_per_thread=0)
    assert a.active_warps_per_sm == b.active_warps_per_sm


def test_block_slot_limit():
    # tiny blocks: 32 block slots x 1 warp each = 32 warps < 64
    res = occupancy(V100, threads_per_block=32, registers_per_thread=0)
    assert res.blocks_per_sm == 32
    assert res.occupancy == pytest.approx(0.5)
    assert res.limiter == "block_slots"


def test_invalid_inputs():
    with pytest.raises(ValueError):
        occupancy(V100, threads_per_block=0)
    with pytest.raises(ValueError):
        occupancy(V100, threads_per_block=32, shared_words_per_block=-1)


def test_max_shared_for_full_occupancy():
    budget = max_shared_words_for_full_occupancy(V100, threads_per_block=512)
    full = occupancy(V100, 512, shared_words_per_block=budget,
                     registers_per_thread=16)
    over = occupancy(V100, 512, shared_words_per_block=budget * 2,
                     registers_per_thread=16)
    assert full.occupancy == pytest.approx(1.0)
    assert over.occupancy < 1.0


def test_occupancy_tradeoff_shape():
    """§2.2.3's tension: growing the shared tile lowers occupancy
    monotonically once past the free budget."""
    occs = [
        occupancy(V100, 256, shared_words_per_block=w,
                  registers_per_thread=16).occupancy
        for w in (0, 2048, 4096, 8192, 16384, 24576)
    ]
    assert all(a >= b for a, b in zip(occs, occs[1:]))
