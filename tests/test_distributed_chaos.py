"""Chaos tests: the distributed count must survive every seeded fault plan.

The acceptance bar: for randomized drop/duplicate/delay/crash/straggler
schedules (with at most ``num_ranks - 1`` crashes), the distributed
count exactly equals the single-rank baseline count and the event loop
terminates without hitting ``max_events``.
"""

import pytest

from repro.core import CuTSConfig, CuTSMatcher
from repro.distributed import DistributedCuTS, FaultPlan
from repro.graph import cycle_graph, from_edges, social_graph

NUM_SEEDS = 50


@pytest.fixture(scope="module")
def data():
    return social_graph(90, 3, community_edges=130, seed=7)


@pytest.fixture(scope="module")
def query():
    return cycle_graph(4)


@pytest.fixture(scope="module")
def config():
    return CuTSConfig(chunk_size=32)


@pytest.fixture(scope="module")
def oracle(data, query, config):
    return CuTSMatcher(data, config).match(query).count


@pytest.mark.parametrize("num_ranks", [2, 4])
def test_chaos_schedule_count_invariant(data, query, config, oracle, num_ranks):
    """Property: any seeded chaos plan leaves the count exact."""
    mismatches = []
    for seed in range(NUM_SEEDS):
        plan = FaultPlan.random(seed, num_ranks)
        res = DistributedCuTS(
            data, num_ranks, config, fault_plan=plan
        ).match(query)
        if res.count != oracle:
            mismatches.append((seed, res.count))
    assert not mismatches, (
        f"count mismatches vs oracle {oracle} at {num_ranks} ranks: "
        f"{mismatches}"
    )


@pytest.mark.parametrize("num_ranks", [2, 4, 8])
def test_all_but_one_rank_crashes(data, query, config, oracle, num_ranks):
    """Killing every rank except rank 0 still completes exactly."""
    plan = FaultPlan(
        seed=1,
        crash_at_ms={r: 0.5 + 0.7 * r for r in range(1, num_ranks)},
    )
    res = DistributedCuTS(data, num_ranks, config, fault_plan=plan).match(query)
    assert res.count == oracle
    assert res.ranks_failed == num_ranks - 1
    assert res.recovered_chunks > 0


def test_heavy_message_faults_exact_and_retransmitting(data, query, config, oracle):
    plan = FaultPlan(
        seed=5, drop_prob=0.5, dup_prob=0.3, delay_prob=0.5, max_delay_ms=10.0
    )
    res = DistributedCuTS(data, 4, config, fault_plan=plan).match(query)
    assert res.count == oracle
    assert res.faults_injected > 0


def test_crash_during_single_vertex_query(data, config):
    q1 = from_edges([], num_vertices=1)
    plan = FaultPlan(seed=3, crash_at_ms={1: 0.01, 2: 0.02})
    res = DistributedCuTS(data, 4, config, fault_plan=plan).match(q1)
    assert res.count == data.num_vertices


def test_straggler_slowdown_keeps_count_and_inflates_clock(
    data, query, config, oracle
):
    base = DistributedCuTS(data, 4, config).match(query)
    plan = FaultPlan(seed=0, slowdown={0: 4.0, 1: 4.0, 2: 4.0, 3: 4.0})
    res = DistributedCuTS(data, 4, config, fault_plan=plan).match(query)
    assert res.count == oracle
    assert res.runtime_ms > base.runtime_ms


def test_faults_disabled_matches_legacy_runtime(data, query, config):
    """With no fault plan, the hardened runtime must reproduce the seed
    protocol's observable results exactly (count, transfers, words)."""
    for num_ranks in (1, 2, 3, 4, 8):
        hardened = DistributedCuTS(data, num_ranks, config).match(query)
        legacy = DistributedCuTS(
            data, num_ranks, config, reliable=False
        ).match(query)
        assert hardened.count == legacy.count
        assert hardened.work_transfers == legacy.work_transfers
        assert hardened.words_transferred == legacy.words_transferred
        assert hardened.retransmissions == 0
        assert hardened.ranks_failed == 0
        assert hardened.faults_injected == 0
        assert hardened.recovered_chunks == 0


def test_fault_plan_requires_reliable_runtime(data):
    with pytest.raises(ValueError):
        DistributedCuTS(
            data, 2, fault_plan=FaultPlan(seed=0, drop_prob=0.1),
            reliable=False,
        )


def test_crash_recovery_reports_metrics(data, query, config, oracle):
    plan = FaultPlan.random(seed=2, num_ranks=4, crash_prob=1.0)
    assert plan.crash_at_ms  # the schedule actually crashes someone
    res = DistributedCuTS(data, 4, config, fault_plan=plan).match(query)
    assert res.count == oracle
    assert res.ranks_failed == len(plan.crash_at_ms)
    assert res.faults_injected >= res.ranks_failed
