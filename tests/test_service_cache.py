"""Cache correctness for the service layer (satellite of PR 5).

Covers the LRU byte cache in isolation (counters, eviction order, the
disabled/oversized cases, thread hammer) and the *keying discipline*
that makes staleness structural: count-relevant config changes must
change the key, count-irrelevant ones must not, and graph
re-registration must invalidate.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import CuTSConfig
from repro.fingerprint import config_fingerprint
from repro.graph import chain_graph, from_edges, mesh_graph
from repro.service import LRUBytesCache, MatchingService


def key(i: int, graph: str = "g") -> tuple[str, str, str]:
    return (graph, f"q{i}", "cfg")


# ---------------------------------------------------------------------------
# LRUBytesCache unit behaviour.
# ---------------------------------------------------------------------------


def test_hit_miss_and_counters():
    cache = LRUBytesCache(1024)
    assert cache.get(key(1)) is None
    assert cache.put(key(1), {"v": 1}, 10)
    assert cache.get(key(1)) == {"v": 1}
    snap = cache.snapshot()
    assert snap["hits"] == 1
    assert snap["misses"] == 1
    assert snap["puts"] == 1
    assert snap["bytes"] == 10
    assert len(cache) == 1


def test_eviction_is_least_recently_used():
    cache = LRUBytesCache(30)
    for i in range(3):
        cache.put(key(i), i, 10)
    cache.get(key(0))  # refresh 0: now 1 is the LRU entry
    cache.put(key(3), 3, 10)  # over budget -> evict exactly one
    assert cache.get(key(1)) is None
    assert cache.get(key(0)) == 0
    assert cache.get(key(3)) == 3
    assert cache.snapshot()["evictions"] == 1
    assert cache.current_bytes == 30


def test_large_entry_evicts_until_it_fits():
    cache = LRUBytesCache(100)
    for i in range(5):
        cache.put(key(i), i, 20)
    assert cache.put(key(9), "big", 90)
    assert cache.current_bytes <= 100
    assert cache.get(key(9)) == "big"
    # The oldest entries went first.
    assert cache.get(key(0)) is None


def test_oversized_and_disabled_puts_are_refused():
    cache = LRUBytesCache(50)
    assert not cache.put(key(1), "x", 51)
    assert len(cache) == 0
    disabled = LRUBytesCache(0)
    assert not disabled.put(key(1), "x", 1)
    assert disabled.get(key(1)) is None


def test_replacing_a_key_recharges_bytes():
    cache = LRUBytesCache(100)
    cache.put(key(1), "a", 40)
    cache.put(key(1), "b", 10)
    assert cache.current_bytes == 10
    assert cache.get(key(1)) == "b"


def test_invalidate_graph_only_hits_that_graph():
    cache = LRUBytesCache(1024)
    cache.put(key(1, "g1"), 1, 10)
    cache.put(key(2, "g1"), 2, 10)
    cache.put(key(1, "g2"), 3, 10)
    assert cache.invalidate_graph("g1") == 2
    assert cache.get(key(1, "g1")) is None
    assert cache.get(key(1, "g2")) == 3
    assert cache.snapshot()["invalidations"] == 2
    assert cache.current_bytes == 10


def test_on_bytes_callback_tracks_live_total():
    seen: list[int] = []
    cache = LRUBytesCache(30, on_bytes=seen.append)
    cache.put(key(1), 1, 10)
    cache.put(key(2), 2, 10)
    cache.invalidate_graph("g")
    assert seen == [10, 20, 0]


def test_negative_budgets_and_sizes_are_rejected():
    with pytest.raises(ValueError):
        LRUBytesCache(-1)
    cache = LRUBytesCache(10)
    with pytest.raises(ValueError):
        cache.put(key(1), 1, -5)


# ---------------------------------------------------------------------------
# Concurrency: hammer the cache from many threads; counters must balance
# and the budget must hold at every observable point.
# ---------------------------------------------------------------------------


def test_concurrent_hammer_keeps_invariants():
    cache = LRUBytesCache(400)
    errors: list[str] = []
    barrier = threading.Barrier(8)

    def worker(worker_id: int) -> None:
        barrier.wait()
        for i in range(300):
            k = key((worker_id * 7 + i) % 25)
            if i % 3 == 0:
                cache.put(k, (worker_id, i), 16)
            elif i % 7 == 0:
                cache.invalidate_graph("g")
            else:
                cache.get(k)
            if cache.current_bytes > cache.max_bytes:
                errors.append(f"budget exceeded: {cache.current_bytes}")

    threads = [
        threading.Thread(target=worker, args=(w,)) for w in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    snap = cache.snapshot()
    assert snap["hits"] + snap["misses"] > 0
    assert snap["bytes"] == cache.current_bytes <= 400
    assert snap["entries"] == len(cache)
    # Conservation: everything ever admitted was either evicted,
    # invalidated, replaced, or is still resident.
    assert snap["puts"] >= snap["evictions"]


# ---------------------------------------------------------------------------
# Keying discipline through the full service.
# ---------------------------------------------------------------------------


def test_count_relevant_config_change_is_a_miss():
    g = mesh_graph(4, 4)
    q = chain_graph(3)
    with MatchingService(CuTSConfig()) as a:
        base = a.match(a.register_graph(g), q).count
        assert a.result_cache.snapshot()["puts"] == 1
    # A count-relevant field (ordering) changes the config fingerprint,
    # so the same (graph, query) pair keys a *different* entry.
    cfg2 = CuTSConfig(ordering="id")
    assert config_fingerprint(cfg2) != config_fingerprint(CuTSConfig())
    with MatchingService(cfg2) as b:
        fp = b.register_graph(g)
        assert b.match(fp, q).count == base  # counts agree...
        snap = b.result_cache.snapshot()
        assert snap["hits"] == 0 and snap["misses"] >= 1  # ...but no reuse


def test_count_irrelevant_config_change_shares_the_key():
    assert config_fingerprint(
        CuTSConfig(service_cache_bytes=1 << 20, workers=3)
    ) == config_fingerprint(CuTSConfig())


def test_reregistration_invalidates_stale_results():
    cfg = CuTSConfig()
    q = chain_graph(3)
    old = from_edges([(0, 1), (1, 0), (1, 2), (2, 1)], name="data")
    new = mesh_graph(4, 4)
    with MatchingService(cfg) as svc:
        svc.register_graph(old, name="data")
        first = svc.match("data", q).count
        # Same name, different content: handle replaced, cache dropped.
        svc.register_graph(new, name="data")
        assert svc.result_cache.snapshot()["invalidations"] >= 1
        second = svc.match("data", q).count
        assert second != first
        # And the fresh entry serves the new graph, not the old one.
        assert svc.match("data", q).count == second


def test_unregister_invalidates_cache_entries():
    cfg = CuTSConfig()
    g = mesh_graph(4, 4)
    with MatchingService(cfg) as svc:
        fp = svc.register_graph(g)
        svc.match(fp, chain_graph(3))
        assert len(svc.result_cache) == 1
        assert svc.unregister_graph(fp)
        assert len(svc.result_cache) == 0
