"""Tests for repro.service.faults and fault-driven service behaviour.

The unit half pins down the injector's determinism and counters; the
integration half arms each fault class against a real MatchingService
and asserts the resilience machinery holds the exact-count invariant:
injected engine faults fail only their own jobs, corrupted cache reads
become misses (never wrong answers), stalls only add latency, and
simulated OOM drives the degraded-mode hysteresis.
"""

from __future__ import annotations

import pytest

from repro.core.config import CuTSConfig
from repro.core.matcher import CuTSMatcher
from repro.graph import clique_graph, cycle_graph, mesh_graph
from repro.service import JobFailed, MatchingService
from repro.service.faults import (
    FAULTS_ENV_VAR,
    InjectedEngineFault,
    ServiceFaultInjector,
    ServiceFaultPlan,
)
from repro.service.scheduler import AdmissionError

# ---------------------------------------------------------------------------
# Plan parsing and validation.
# ---------------------------------------------------------------------------


def test_default_plan_is_null():
    plan = ServiceFaultPlan()
    assert plan.is_null
    assert not ServiceFaultPlan(engine_fault_prob=0.1).is_null


def test_from_spec_parses_keys_and_types():
    plan = ServiceFaultPlan.from_spec(
        "seed=7, engine_fault_prob=0.25, stall_prob=1, stall_ms=5,"
        "oom_hold_ticks=3"
    )
    assert plan.seed == 7
    assert plan.engine_fault_prob == 0.25
    assert plan.stall_prob == 1.0
    assert plan.stall_ms == 5.0
    assert plan.oom_hold_ticks == 3


@pytest.mark.parametrize(
    "spec",
    [
        "engine_fault_prob",  # no value
        "nope=1",  # unknown key
        "engine_fault_prob=2",  # out of range
        "stall_ms=-1",
        "oom_hold_ticks=0",
        "oom_pressure=0",
    ],
)
def test_bad_specs_raise(spec):
    with pytest.raises(ValueError):
        ServiceFaultPlan.from_spec(spec)


def test_from_env_reads_the_documented_variable(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    assert ServiceFaultPlan.from_env() is None
    monkeypatch.setenv(FAULTS_ENV_VAR, "seed=3,stall_prob=0.5")
    plan = ServiceFaultPlan.from_env()
    assert plan is not None and plan.seed == 3 and plan.stall_prob == 0.5


# ---------------------------------------------------------------------------
# Injector determinism and counters.
# ---------------------------------------------------------------------------


def test_same_plan_replays_the_same_decision_stream():
    plan = ServiceFaultPlan(
        seed=11, engine_fault_prob=0.3, stall_prob=0.3,
        cache_corrupt_prob=0.3,
    )

    def stream(inj):
        out = []
        for _ in range(50):
            out.append(inj.should_engine_fault())
            out.append(inj.stall_s() > 0)
            out.append(inj.should_corrupt())
        return out

    assert stream(ServiceFaultInjector(plan)) == stream(
        ServiceFaultInjector(plan)
    )


def test_counters_track_injected_events():
    inj = ServiceFaultInjector(
        ServiceFaultPlan(engine_fault_prob=1.0, stall_prob=1.0)
    )
    assert inj.should_engine_fault() and inj.stall_s() > 0
    inj.note_kill()
    snap = inj.snapshot()
    assert snap["engine_faults"] == 1
    assert snap["stalls"] == 1
    assert snap["worker_kills"] == 1


def test_corrupt_payload_copies_and_breaks_checksum():
    from repro.service.dispatcher import payload_checksum, verify_payload

    inj = ServiceFaultInjector(ServiceFaultPlan(cache_corrupt_prob=1.0))
    payload = {"count": 42, "elapsed_s": 0.1}
    payload["checksum"] = payload_checksum(payload)
    assert verify_payload(payload)
    bad = inj.corrupt_payload(payload)
    assert bad is not payload
    assert payload["count"] == 42  # stored entry untouched
    assert bad["count"] == 43
    assert not verify_payload(bad)


def test_oom_episode_lasts_hold_ticks():
    inj = ServiceFaultInjector(
        ServiceFaultPlan(oom_prob=1.0, oom_pressure=2.0, oom_hold_ticks=3)
    )
    assert inj.tick_oom() == 2.0  # onset
    assert inj.tick_oom() == 2.0
    assert inj.tick_oom() == 2.0
    # prob=1.0 immediately starts the next episode; drop to 0 to see it end
    calm = ServiceFaultInjector(
        ServiceFaultPlan(oom_prob=0.0, oom_hold_ticks=3)
    )
    assert calm.tick_oom() is None
    assert calm.oom_episodes == 0
    assert inj.oom_episodes >= 1


# ---------------------------------------------------------------------------
# End-to-end: faults against a live service.
# ---------------------------------------------------------------------------


@pytest.fixture()
def data_graph():
    return mesh_graph(6, 6)


def test_engine_faults_fail_only_their_own_jobs(data_graph):
    plan = ServiceFaultPlan(seed=5, engine_fault_prob=0.5)
    oracle = CuTSMatcher(data_graph, CuTSConfig()).match(clique_graph(3))
    # Cache off so every request reaches the engine (and its faults).
    with MatchingService(
        CuTSConfig(service_cache_bytes=0), faults=plan
    ) as svc:
        fp = svc.register_graph(data_graph)
        ok, failed = 0, 0
        for _ in range(12):
            try:
                result = svc.match(fp, clique_graph(3), timeout=30.0)
            except JobFailed as exc:
                assert "injected" in str(exc).lower()
                failed += 1
            else:
                assert result.count == oracle.count
                ok += 1
        assert ok > 0 and failed > 0  # isolation: some of each
        assert svc.faults is not None
        assert svc.faults.engine_faults == failed
        assert svc.healthz()["status"] == "ok"  # the service survived


def test_cache_corruption_becomes_a_miss_not_a_wrong_answer(data_graph):
    plan = ServiceFaultPlan(cache_corrupt_prob=1.0)
    with MatchingService(CuTSConfig(), faults=plan) as svc:
        fp = svc.register_graph(data_graph)
        first = svc.match(fp, cycle_graph(4), timeout=30.0)
        # Every cache read is corrupted, so the repeat must recompute —
        # and still agree exactly.
        second = svc.match(fp, cycle_graph(4), timeout=30.0)
        assert second.count == first.count
        snap = svc.dispatcher.snapshot()
        assert snap["corrupt_cache_drops"] >= 1
        assert svc.faults is not None
        assert svc.faults.cache_corruptions >= 1


def test_stalls_only_add_latency(data_graph):
    plan = ServiceFaultPlan(stall_prob=1.0, stall_ms=5.0)
    oracle = CuTSMatcher(data_graph, CuTSConfig()).match(cycle_graph(4))
    with MatchingService(CuTSConfig(), faults=plan) as svc:
        fp = svc.register_graph(data_graph)
        result = svc.match(fp, cycle_graph(4), timeout=30.0)
        assert result.count == oracle.count
        assert svc.faults is not None and svc.faults.stalls >= 1


def test_simulated_oom_drives_degraded_mode(data_graph):
    cfg = CuTSConfig(service_degraded_after=2)
    plan = ServiceFaultPlan(oom_prob=1.0, oom_pressure=2.0, oom_hold_ticks=50)
    svc = MatchingService(cfg, start=False, faults=plan)
    try:
        fp = svc.register_graph(data_graph)
        assert not svc.degraded
        svc._observe_pressure()
        assert not svc.degraded  # one strike is not sustained pressure
        svc._observe_pressure()
        assert svc.degraded
        with pytest.raises(AdmissionError) as exc_info:
            svc.submit(fp, clique_graph(3))
        assert exc_info.value.reason == "degraded"
        assert svc.healthz()["status"] == "degraded"
        assert svc.metrics()["degraded_entries"] == 1
    finally:
        svc.close()


def test_degraded_mode_exits_after_sustained_calm(data_graph):
    cfg = CuTSConfig(service_degraded_after=2)
    svc = MatchingService(cfg, start=False)
    try:
        svc.register_graph(data_graph)
        svc.governor.forced_pressure = 1.0
        svc._observe_pressure()
        svc._observe_pressure()
        assert svc.degraded
        svc.governor.forced_pressure = None
        svc._observe_pressure()
        assert svc.degraded  # hysteresis: one calm tick is not enough
        svc._observe_pressure()
        assert not svc.degraded
    finally:
        svc.close()


def test_degraded_mode_still_serves_cached_counts(data_graph):
    cfg = CuTSConfig(service_degraded_after=1)
    with MatchingService(cfg) as svc:
        fp = svc.register_graph(data_graph)
        warm = svc.match(fp, clique_graph(3), timeout=30.0)
        svc.governor.forced_pressure = 1.0
        svc._observe_pressure()
        assert svc.degraded
        # The cached count is still served, synchronously and exactly.
        again = svc.match(fp, clique_graph(3), timeout=5.0)
        assert again.count == warm.count
        # Anything uncached is refused with the degraded reason.
        with pytest.raises(AdmissionError) as exc_info:
            svc.submit(fp, cycle_graph(5))
        assert exc_info.value.reason == "degraded"
        # So is new graph registration (read-only mode).
        with pytest.raises(AdmissionError):
            svc.register_graph(mesh_graph(3, 3))
        svc.governor.forced_pressure = None


def test_worker_kill_recovers_with_exact_counts(data_graph):
    plan = ServiceFaultPlan(seed=1, worker_kill_prob=1.0)
    oracle = CuTSMatcher(data_graph, CuTSConfig()).match(clique_graph(3))
    with MatchingService(CuTSConfig(), workers=2, faults=plan) as svc:
        fp = svc.register_graph(data_graph)
        results = svc.match_many(
            fp, [clique_graph(3), cycle_graph(4)], timeout=60.0
        )
        assert results[0].count == oracle.count
        assert svc.faults is not None and svc.faults.worker_kills >= 1
