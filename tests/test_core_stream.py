"""Tests for the streaming match iterator."""

import numpy as np
import pytest

from repro.core import CuTSConfig, CuTSMatcher, iter_matches
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    random_graph,
    social_graph,
)
from tests.conftest import assert_valid_embeddings


def collect(matcher, query, batch_size=64):
    batches = list(iter_matches(matcher, query, batch_size=batch_size))
    if not batches:
        return np.zeros((0, query.num_vertices), dtype=np.int64), batches
    return np.concatenate(batches, axis=0), batches


def test_stream_matches_materialized():
    data = mesh_graph(4, 4)
    q = chain_graph(4)
    m = CuTSMatcher(data)
    streamed, _ = collect(m, q)
    full = m.match(q, materialize=True)
    assert len(streamed) == full.count
    assert sorted(map(tuple, streamed.tolist())) == sorted(
        map(tuple, full.matches.tolist())
    )


def test_stream_batch_size_respected():
    data = mesh_graph(4, 4)
    q = chain_graph(4)  # 232 embeddings
    _, batches = collect(CuTSMatcher(data), q, batch_size=50)
    assert all(len(b) <= 50 for b in batches)
    assert sum(len(b) for b in batches) == 232
    # all but the last batch are full
    assert all(len(b) == 50 for b in batches[:-1])


def test_stream_valid_embeddings():
    data = social_graph(60, 3, community_edges=80, seed=1)
    q = cycle_graph(4)
    streamed, _ = collect(CuTSMatcher(data), q, batch_size=128)
    assert_valid_embeddings(data, q, streamed)


def test_stream_no_duplicates():
    data = random_graph(25, 0.3, seed=2)
    q = clique_graph(3)
    streamed, _ = collect(CuTSMatcher(data), q)
    rows = list(map(tuple, streamed.tolist()))
    assert len(rows) == len(set(rows))


def test_stream_zero_matches():
    data = mesh_graph(3, 3)  # triangle-free
    batches = list(iter_matches(CuTSMatcher(data), clique_graph(3)))
    assert batches == []


def test_stream_single_vertex_query():
    data = mesh_graph(3, 3)
    q = from_edges([], num_vertices=1)
    streamed, _ = collect(CuTSMatcher(data), q, batch_size=4)
    assert len(streamed) == 9


def test_stream_query_bigger_than_data():
    data = clique_graph(3)
    assert list(iter_matches(CuTSMatcher(data), clique_graph(4))) == []


def test_stream_invalid_batch_size():
    data = mesh_graph(2, 2)
    with pytest.raises(ValueError):
        list(iter_matches(CuTSMatcher(data), chain_graph(2), batch_size=0))


def test_stream_early_termination_cheap():
    """Consuming only the first batch must not enumerate everything."""
    data = social_graph(200, 3, community_edges=300, seed=3)
    m = CuTSMatcher(data, CuTSConfig(chunk_size=32))
    gen = iter_matches(m, cycle_graph(4), batch_size=10)
    first = next(gen)
    assert len(first) == 10
    gen.close()


def test_stream_columns_in_query_order():
    data = mesh_graph(3, 3)
    q = from_edges([(0, 1), (1, 2)])  # directed path
    streamed, _ = collect(CuTSMatcher(data), q)
    for row in streamed:
        assert data.has_edge(int(row[0]), int(row[1]))
        assert data.has_edge(int(row[1]), int(row[2]))
