"""Edge-case sweep across modules (final coverage pass)."""

import numpy as np
import pytest

from repro import count_embeddings, subgraph_isomorphism_search
from repro.baselines import GSIMatcher, networkx_count
from repro.core import CuTSConfig, CuTSMatcher
from repro.experiments.report import format_value, render_table
from repro.graph import (
    chain_graph,
    clique_graph,
    from_edges,
    from_undirected_edges,
    mesh_graph,
)
from repro.storage import CSFStore, PathTrie


# ------------------------------------------------------------- formats
def test_format_value_variants():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(0.0) == "0"
    assert format_value(1234) == "1,234"
    assert format_value(2.5e7) == "2.5e+07"
    assert format_value(0.00001) == "1e-05"
    assert format_value("x") == "x"


def test_render_table_column_subset():
    text = render_table([{"a": 1, "b": 2}], columns=["b"])
    assert "b" in text and "a" not in text.splitlines()[0]


# ---------------------------------------------------------------- trie
def test_trie_level_with_zero_paths():
    t = PathTrie.from_roots(np.array([0, 1]))
    t.append_level(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    assert t.num_paths() == 0
    assert t.total_storage_words == 4


def test_csf_from_trie_with_empty_level():
    t = PathTrie.from_roots(np.array([3]))
    t.append_level(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    csf = CSFStore.from_path_trie(t)
    assert csf.depth == 2
    assert csf.levels[1].num_entries == 0


# ------------------------------------------------------------- matcher
def test_matcher_on_edgeless_data():
    data = from_edges([], num_vertices=5)
    q = chain_graph(2)
    assert CuTSMatcher(data).match(q).count == 0


def test_matcher_single_vertex_data_and_query():
    data = from_edges([], num_vertices=1)
    q = from_edges([], num_vertices=1)
    r = CuTSMatcher(data).match(q, materialize=True)
    assert r.count == 1
    assert r.matches.tolist() == [[0]]


def test_two_vertex_query_on_single_edge():
    data = from_edges([(0, 1)])
    q = from_edges([(0, 1)])
    r = CuTSMatcher(data).match(q, materialize=True)
    assert r.count == 1
    assert r.matches.tolist() == [[0, 1]]


def test_gsi_directed_materialize_columns():
    data = from_edges([(0, 1), (1, 2), (0, 2)])
    q = from_edges([(0, 1), (1, 2)])
    r = GSIMatcher(data).match(q, materialize=True)
    for row in r.matches:
        assert data.has_edge(int(row[0]), int(row[1]))
        assert data.has_edge(int(row[1]), int(row[2]))


def test_max_materialized_zero():
    data = clique_graph(4)
    cfg = CuTSConfig(max_materialized=0)
    r = CuTSMatcher(data, cfg).match(clique_graph(3), materialize=True)
    assert r.count == 24
    assert len(r.matches) == 0


# ------------------------------------------------------------------ api
def test_api_on_fully_disconnected_both():
    data = from_undirected_edges([(0, 1), (2, 3)])
    query = from_undirected_edges([(0, 1), (2, 3)])
    r = subgraph_isomorphism_search(data, query)
    # per component: 2 components x 2 edges x 2 orientations = 4
    # embeddings for one K2 component; cross product = 16
    single = count_embeddings(data, from_undirected_edges([(0, 1)]))
    assert r.count == single**2


def test_api_count_matches_oracle_mesh(mesh44, chain4):
    assert count_embeddings(mesh44, chain4) == networkx_count(mesh44, chain4)


# ------------------------------------------------------------ gpu sim
def test_network_model_zero_words():
    from repro.distributed import NetworkModel

    net = NetworkModel(latency_ms=0.5, words_per_ms=100)
    assert net.transfer_ms(0) == pytest.approx(0.5)


def test_device_memory_exact_fit():
    from repro.gpusim import DeviceMemory, V100, scaled_device

    mem = DeviceMemory(scaled_device(V100, 100))
    mem.alloc("a", 100)  # exact fit must succeed
    assert mem.free_words == 0


def test_trie_budget_tiny_device_graph_only():
    from repro.gpusim import DeviceOOMError, V100, scaled_device

    data = mesh_graph(3, 3)
    # just enough for the graph, nothing for the trie
    from repro.core.matcher import graph_device_words

    words = graph_device_words(data)
    m = CuTSMatcher(data, CuTSConfig(device=scaled_device(V100, words + 2)))
    with pytest.raises(DeviceOOMError):
        m.match(chain_graph(2))


# ----------------------------------------------------------- ordering
def test_order_on_two_vertex_query():
    from repro.core import max_degree_order

    q = from_undirected_edges([(0, 1)])
    order = max_degree_order(q)
    assert len(order.sequence) == 2
    fwd, bwd = order.constraints_at(1)
    assert fwd == (0,) and bwd == (0,)


def test_labels_on_reverse_and_subgraph_roundtrip():
    g = clique_graph(4).with_labels(np.array([1, 2, 3, 4]))
    assert g.reverse().labels is g.labels
    from repro.graph import induced_subgraph

    sub, mapping = induced_subgraph(g, np.array([1, 3]))
    assert sub.labels.tolist() == [2, 4]


def test_csr_graph_repr_and_name():
    g = mesh_graph(2, 2)
    assert "mesh2x2" in repr(g)
