"""Tests for the experiment drivers (small scales)."""

import pytest

from repro.experiments import (
    DATASET_NAMES,
    dataset_table,
    figure2_rows,
    figure4_rows,
    figure5_rows,
    geomean,
    load_dataset,
    paper_cases,
    query_workload,
    render_table,
    run_case,
    run_hwmetrics,
    run_table1,
    run_table3,
    table2_rows,
)
from repro.experiments.ablation import (
    binning_ablation,
    chunk_size_ablation,
    intersection_ablation,
    ordering_ablation,
    placement_ablation,
    virtual_warp_ablation,
)
from repro.gpusim import V100

SCALE = 0.25  # all driver tests run on shrunken datasets


# ------------------------------------------------------------- datasets
def test_dataset_names_match_paper():
    assert DATASET_NAMES == (
        "enron",
        "gowalla",
        "roadNet-PA",
        "roadNet-TX",
        "roadNet-CA",
        "wikiTalk",
    )


def test_datasets_deterministic():
    a = load_dataset("enron", SCALE)
    b = load_dataset("enron", SCALE)
    assert a is b or a.num_edges == b.num_edges


def test_dataset_size_ordering_preserved():
    sizes = [load_dataset(n, 1.0).num_vertices for n in DATASET_NAMES]
    assert sizes == sorted(sizes)


def test_road_vs_social_degree_classes():
    road = load_dataset("roadNet-PA", SCALE)
    social = load_dataset("enron", SCALE)
    assert road.max_out_degree <= 8
    assert social.max_out_degree > 20


def test_dataset_table_rows():
    rows = dataset_table(SCALE)
    assert len(rows) == 6
    assert {r["network"] for r in rows} == set(DATASET_NAMES)
    assert all(r["vertices"] > 0 and r["edges"] > 0 for r in rows)


def test_unknown_dataset():
    with pytest.raises(ValueError):
        load_dataset("nope")


def test_bad_scale():
    with pytest.raises(ValueError):
        load_dataset("enron", 0.0)


# ------------------------------------------------------------ workloads
def test_query_workload_33():
    assert len(query_workload()) == 33


def test_paper_cases_grid():
    cases = paper_cases(scale=SCALE, top_k=2, datasets=("enron", "roadNet-PA"))
    assert len(cases) == 2 * 6  # 2 datasets x (2 queries x 3 sizes)
    assert cases[0].key.startswith("enron/")


# -------------------------------------------------------------- table 1
def test_table1_shape():
    comp = run_table1(SCALE)
    rows = comp.rows()
    assert rows[0]["compression_ratio"] == pytest.approx(0.5)
    assert len(rows) >= 3
    # trie words are cumulative and positive
    assert all(r["our_storage_words"] > 0 for r in rows)


# -------------------------------------------------------------- table 2
def test_table2_rows():
    assert len(table2_rows(SCALE)) == 6


# ------------------------------------------------------------- figure 2
def test_figure2_rows_match_engine():
    rows = figure2_rows()
    assert [r["candidates"] for r in rows] == [16, 48, 104, 232]
    assert rows[0]["naive_storage_words"] == 16
    assert rows[0]["trie_storage_words"] == 32


# -------------------------------------------------------------- table 3
def test_run_case_success():
    cases = paper_cases(scale=SCALE, top_k=1, datasets=("roadNet-PA",))
    res = run_case(cases[0], V100, wall_limit_s=30.0)
    assert res.cuts_ms is not None
    # failures carry a reason, successes don't
    if res.gsi_ms is None:
        assert res.gsi_failure in ("oom", "timeout")


def test_run_table3_small_grid():
    t3 = run_table3(
        "V100", scale=SCALE, top_k=1, wall_limit_s=30.0,
        datasets=("enron", "roadNet-PA"),
    )
    assert t3.total_cases == 6
    assert 0 < t3.cuts_handled <= 6
    assert t3.cuts_handled >= t3.gsi_handled
    rows = t3.rows()
    assert len(rows) == 6
    summary = t3.summary_rows()
    assert summary[-1]["dataset"] == "ALL"


def test_table3_speedup_positive():
    t3 = run_table3(
        "V100", scale=SCALE, top_k=1, wall_limit_s=30.0,
        datasets=("roadNet-PA",),
    )
    sp = [c.speedup for c in t3.cases if c.speedup]
    assert sp and all(s > 1.0 for s in sp)


# ------------------------------------------------------------ hwmetrics
def test_hwmetrics_reductions():
    comps = run_hwmetrics(scale=SCALE)
    assert comps
    for comp in comps:
        by_name = {r.metric: r for r in comp.ratios}
        assert by_name["dram_read_words"].reduction > 1.0
        assert comp.candidate_reduction(0) >= 1.0


# ------------------------------------------------------- figures 4 & 5
def test_figure4_rows():
    rows = figure4_rows(
        scale=SCALE, rank_counts=(1, 2), datasets=("enron",), chunk_size=64
    )
    assert all(r["nodes"] in (1, 2) for r in rows)
    base = [r for r in rows if r["nodes"] == 1]
    assert all(r["speedup"] == pytest.approx(1.0) for r in base)


def test_figure5_rows():
    rows = figure5_rows(scale=SCALE, num_ranks=4, chunk_size=64)
    assert [r["node"] for r in rows[:4]] == ["T1", "T2", "T3", "T4"]
    assert rows[-1]["node"] == "max/mean"


# ------------------------------------------------------------ ablations
def test_ordering_ablation_shows_gain():
    rows = ordering_ablation(SCALE)
    by = {r["ordering"]: r for r in rows}
    assert by["max_degree"]["count"] == by["id"]["count"]
    assert by["max_degree"]["paths_depth1"] <= by["id"]["paths_depth1"]


def test_intersection_ablation_counts_equal():
    rows = intersection_ablation(SCALE)
    counts = {r["count"] for r in rows}
    assert len(counts) == 1


def test_placement_ablation_counts_equal():
    rows = placement_ablation(SCALE)
    counts = {r["count"] for r in rows}
    assert len(counts) == 1


def test_chunk_ablation_counts_equal_and_chunked():
    rows = chunk_size_ablation(SCALE, chunk_sizes=(64, 512))
    counts = {r["count"] for r in rows}
    assert len(counts) == 1
    assert all(r["chunks"] > 0 for r in rows)


def test_filter_ablation_rows():
    from repro.experiments.ablation import filter_ablation

    rows = filter_ablation(SCALE)
    by = {r["filter"]: r for r in rows}
    assert by["degree"]["count"] == by["degree+neighborhood"]["count"]
    assert (
        by["degree+neighborhood"]["root_candidates"]
        <= by["degree"]["root_candidates"]
    )


def test_binning_ablation_rows():
    rows = binning_ablation(SCALE)
    assert len(rows) == 2
    strategies = {r["strategy"].split(" ")[0] for r in rows}
    assert strategies == {"binned", "single-bin"}
    assert all(0.0 <= r["buffer_waste_fraction"] <= 1.0 for r in rows)


def test_virtual_warp_ablation():
    rows = virtual_warp_ablation(SCALE, widths=(0, 4, 32))
    assert len({r["count"] for r in rows}) == 1
    # wider warps waste more lanes on low-degree work
    idle = {str(r["virtual_warp"]): r["idle_lane_cycles"] for r in rows}
    assert idle["32"] >= idle["4"]


# --------------------------------------------------------------- report
def test_render_table_basic():
    text = render_table(
        [{"a": 1, "b": None}, {"a": 2.5, "b": "x"}], title="T"
    )
    assert "T" in text and "a" in text
    assert "-" in text  # None rendering


def test_render_table_empty():
    assert "(empty)" in render_table([], title="T")


def test_geomean():
    assert geomean([1.0, 100.0]) == pytest.approx(10.0)
    assert geomean([]) == 0.0
    assert geomean([0.0, 5.0]) == pytest.approx(5.0)  # zeros skipped
