"""Tests for the HTTP face (`python -m repro.serve`) and ServiceClient.

Boots a real ``ServiceHTTPServer`` on an ephemeral port inside the test
process and drives it exclusively through :class:`ServiceClient`, so the
wire format, status codes, and admission semantics are exercised exactly
as an external caller sees them.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import CuTSConfig
from repro.core.matcher import CuTSMatcher
from repro.graph import chain_graph, clique_graph, cycle_graph, mesh_graph
from repro.service import (
    MatchingService,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.http import BadRequest, parse_graph_spec, serve


@pytest.fixture()
def live_service():
    cfg = CuTSConfig(service_max_query_vertices=8)
    service = MatchingService(cfg)
    server = serve(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()


# ---------------------------------------------------------------------------
# Graph-spec parsing (pure).
# ---------------------------------------------------------------------------


def test_parse_pattern_strings():
    assert parse_graph_spec("K4").num_vertices == 4
    assert parse_graph_spec("C5").num_vertices == 5
    assert parse_graph_spec("P3").num_vertices == 3
    assert parse_graph_spec("S4").num_vertices == 5  # hub + leaves
    assert parse_graph_spec({"pattern": "K3"}).num_vertices == 3


def test_parse_edge_list_spec():
    g = parse_graph_spec(
        {"edges": [[0, 1], [1, 0], [1, 2], [2, 1]], "name": "path"}
    )
    assert g.num_vertices == 3
    assert g.name == "path"
    labelled = parse_graph_spec(
        {"edges": [[0, 1], [1, 0]], "labels": [3, 4]}
    )
    assert labelled.labels is not None


def test_parse_generator_spec():
    g = parse_graph_spec({"generator": "mesh", "args": [3, 3]})
    assert g.num_vertices == 9
    with pytest.raises(BadRequest):
        parse_graph_spec({"generator": "os_system", "args": []})


@pytest.mark.parametrize(
    "spec",
    [
        "K",  # no size
        "X5",  # unknown family
        42,  # wrong type
        {},  # no recognised key
        {"edges": "nope"},
        {"generator": "mesh", "args": "3,3"},
    ],
)
def test_bad_specs_raise(spec):
    with pytest.raises(BadRequest):
        parse_graph_spec(spec)


def test_roundtrip_csr_graph_preserves_fingerprint():
    from repro.fingerprint import graph_fingerprint
    from repro.service.client import graph_to_spec

    g = mesh_graph(4, 4)
    assert graph_fingerprint(parse_graph_spec(graph_to_spec(g))) == (
        graph_fingerprint(g)
    )


# ---------------------------------------------------------------------------
# Live endpoint behaviour.
# ---------------------------------------------------------------------------


def test_healthz_metrics_and_graphs(live_service):
    client, _ = live_service
    assert client.healthz()["status"] == "ok"
    fp = client.register_graph(mesh_graph(4, 4), name="mesh44")
    assert len(fp) == 64
    assert [g["name"] for g in client.graphs()] == ["mesh44"]
    metrics = client.metrics()
    assert metrics["graphs"] == 1
    assert "scheduler" in metrics and "result_cache" in metrics


def test_blocking_match_returns_exact_count(live_service):
    client, service = live_service
    g = mesh_graph(5, 5)
    expected = CuTSMatcher(g, service.config).match(chain_graph(4)).count
    fp = client.register_graph(g)
    job = client.match(fp, "P4")
    assert job["state"] == "done"
    assert job["result"]["count"] == expected


def test_async_match_polls_to_completion(live_service):
    client, _ = live_service
    fp = client.register_graph(mesh_graph(4, 4))
    resp = client.match(fp, "C4", wait=False)
    job = client.wait_job(resp["job_id"])
    assert job["state"] == "done"
    assert job["result"]["count"] > 0


def test_oversized_query_is_429_with_reason(live_service):
    client, _ = live_service
    fp = client.register_graph(mesh_graph(4, 4))
    with pytest.raises(ServiceError) as exc:
        client.match(fp, "K9")
    assert exc.value.status == 429
    assert exc.value.reason == "oversized-query"


def test_deadline_expiry_over_http(live_service):
    client, _ = live_service
    fp = client.register_graph(mesh_graph(4, 4))
    job = client.match(fp, "P3", deadline_ms=0)
    assert job["state"] == "expired"
    assert "deadline" in job["error"]


def test_unknown_routes_and_jobs_are_404(live_service):
    client, _ = live_service
    with pytest.raises(ServiceError) as exc:
        client.job("job-99999999")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client._request("GET", "/nope")
    assert exc.value.status == 404


def test_bad_bodies_are_400(live_service):
    client, _ = live_service
    with pytest.raises(ServiceError) as exc:
        client._request("POST", "/match", {"graph": "K3"})  # no query
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        client._request("POST", "/graphs", {"graph": {"edges": "x"}})
    assert exc.value.status == 400


def test_inline_graph_specs_register_on_the_fly(live_service):
    client, service = live_service
    job = client.match({"generator": "chain", "args": [6]}, "P3")
    assert job["result"]["count"] == 8
    assert len(service.registry.handles()) == 1


def test_materialized_rows_cross_the_wire(live_service):
    client, _ = live_service
    fp = client.register_graph(mesh_graph(3, 3))
    job = client.match(fp, "P3", materialize=True)
    assert job["result"]["count"] == len(job["matches"])


def test_warm_cache_over_http(live_service):
    client, service = live_service
    fp = client.register_graph(mesh_graph(5, 5))
    first = client.match(fp, "C4")
    inv = service.dispatcher.matcher_invocations
    second = client.match(fp, "C4")
    assert second["result"]["count"] == first["result"]["count"]
    assert second["cached"]
    assert service.dispatcher.matcher_invocations == inv


def test_mixed_burst_matches_serial_oracle(live_service):
    """The CI-smoke contract, in-process: a burst of mixed requests all
    come back exact against a serial oracle."""
    client, service = live_service
    g = mesh_graph(5, 5)
    queries = {
        "K3": clique_graph(3),
        "P4": chain_graph(4),
        "C4": cycle_graph(4),
    }
    oracle = {
        name: CuTSMatcher(g, service.config).match(q).count
        for name, q in queries.items()
    }
    fp = client.register_graph(g)
    names = [n for _ in range(5) for n in queries]  # 15 mixed requests
    pending = [
        (n, client.match(fp, n, wait=False)["job_id"]) for n in names
    ]
    for name, job_id in pending:
        job = client.wait_job(job_id)
        assert job["state"] == "done"
        assert job["result"]["count"] == oracle[name]


# ---------------------------------------------------------------------------
# Resilience over the wire.
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def boot(cfg, **service_kwargs):
    """A live server for one test with a non-default config."""
    service = MatchingService(cfg, **service_kwargs)
    server = serve(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5.0)


def test_oversized_body_is_413():
    with boot(CuTSConfig(service_max_body_bytes=1024)) as (client, _):
        big = {"graph": {"edges": [[0, 1]] * 400, "num_vertices": 2}}
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/graphs", big)
        assert exc.value.status == 413
        assert "service_max_body_bytes" in str(exc.value)
        # Small requests still flow on the same server.
        assert client.healthz()["status"] == "ok"


def test_stalled_request_cannot_pin_a_thread():
    with boot(CuTSConfig(service_request_timeout_s=0.2)) as (client, _):
        host, port = client.base_url.rsplit(":", 2)[-2:]
        with socket.create_connection(
            (host.lstrip("/"), int(port)), timeout=5.0
        ) as sock:
            # Promise a body, never send it: the server must give up
            # after service_request_timeout_s instead of waiting forever.
            sock.sendall(
                b"POST /match HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 100\r\n\r\n"
            )
            sock.settimeout(5.0)
            data = sock.recv(4096)
        assert b"408" in data.split(b"\r\n", 1)[0]
        assert client.healthz()["status"] == "ok"  # thread survived


def test_degraded_mode_is_503_with_retry_after(live_service):
    client, service = live_service
    fp = client.register_graph(mesh_graph(4, 4))
    service.governor.forced_pressure = 1.0
    try:
        deadline = 50
        while not service.degraded and deadline:
            deadline -= 1
            threading.Event().wait(0.05)  # loop thread accrues strikes
        assert service.degraded
        bare = ServiceClient(
            client.base_url, retry=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(ServiceError) as exc:
            bare.match(fp, "C5")
        assert exc.value.status == 503
        assert exc.value.reason == "degraded"
        assert exc.value.retry_after == pytest.approx(1.0)
        assert bare.healthz()["status"] == "degraded"
    finally:
        service.governor.forced_pressure = None


def test_idempotency_key_deduplicates_over_http(live_service):
    client, service = live_service
    fp = client.register_graph(mesh_graph(4, 4))
    first = client.match(fp, "K3", idempotency_key="wire-key")
    admitted = service.scheduler.admitted
    second = client.match(fp, "K3", idempotency_key="wire-key")
    assert second["id"] == first["id"]
    assert second["result"]["count"] == first["result"]["count"]
    assert service.scheduler.admitted == admitted  # nothing re-ran


def test_deadline_header_propagates(live_service):
    client, _ = live_service
    fp = client.register_graph(mesh_graph(4, 4))
    body = json.dumps(
        {"graph": fp, "query": "P3", "wait": True}
    ).encode("utf-8")
    req = urllib.request.Request(
        client.base_url + "/match",
        data=body,
        headers={
            "Content-Type": "application/json",
            "X-Deadline-Ms": "0",  # a proxy-attached deadline
        },
    )
    with urllib.request.urlopen(req, timeout=30.0) as resp:
        job = json.loads(resp.read())
    assert job["state"] == "expired"


def test_bad_deadline_header_is_400(live_service):
    client, _ = live_service
    body = json.dumps({"graph": "K3", "query": "P3"}).encode("utf-8")
    req = urllib.request.Request(
        client.base_url + "/match",
        data=body,
        headers={
            "Content-Type": "application/json",
            "X-Deadline-Ms": "soon",
        },
    )
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=30.0)
    assert exc_info.value.code == 400
