"""Tests for crash-recoverable service state (repro.service.state).

Covers the durable pieces in isolation (graph store, name map, job
journal, manifest fingerprint gate) and the service-level recovery
semantics: restarts re-register graphs, restore terminal jobs with
their exact journaled counts, re-enqueue pending jobs, mark formerly
running jobs retryable, and keep idempotency keys deduplicating across
the crash — the journal-after-completion ordering is what makes a
retry provably unable to double-count.
"""

from __future__ import annotations

import pytest

from repro.core.config import CuTSConfig
from repro.core.matcher import CuTSMatcher
from repro.fingerprint import CheckpointMismatchError, graph_fingerprint
from repro.graph import clique_graph, cycle_graph, mesh_graph
from repro.service import JobFailed, MatchingService, ServiceState
from repro.service.state import graph_from_record, graph_record


@pytest.fixture()
def data_graph():
    return mesh_graph(6, 6)


# ---------------------------------------------------------------------------
# Journal graph records.
# ---------------------------------------------------------------------------


def test_graph_record_roundtrip_preserves_fingerprint(data_graph):
    back = graph_from_record(graph_record(data_graph))
    assert graph_fingerprint(back) == graph_fingerprint(data_graph)
    assert back.name == data_graph.name


def test_graph_record_roundtrip_keeps_labels():
    g = clique_graph(3).with_labels([5, 6, 7])
    back = graph_from_record(graph_record(g))
    assert back.labels is not None
    assert list(back.labels) == [5, 6, 7]
    assert graph_fingerprint(back) == graph_fingerprint(g)


# ---------------------------------------------------------------------------
# ServiceState in isolation.
# ---------------------------------------------------------------------------


def test_graph_store_roundtrip(tmp_path, data_graph):
    state = ServiceState(str(tmp_path))
    fp = graph_fingerprint(data_graph)
    state.save_graph(data_graph, fp)
    state.save_graph(data_graph, fp)  # idempotent
    assert state.graphs_saved == 1
    loaded = state.load_graphs()
    assert set(loaded) == {fp}
    assert graph_fingerprint(loaded[fp]) == fp
    state.forget_graph(fp)
    state.forget_graph(fp)  # gone is fine
    assert state.load_graphs() == {}


def test_labelled_graph_store_roundtrip(tmp_path):
    g = clique_graph(3).with_labels([1, 2, 3])
    state = ServiceState(str(tmp_path))
    fp = graph_fingerprint(g)
    state.save_graph(g, fp)
    assert graph_fingerprint(state.load_graphs()[fp]) == fp


def test_names_roundtrip(tmp_path):
    state = ServiceState(str(tmp_path))
    assert state.load_names() == {}
    state.save_names({"mesh": "abc", "alias": "abc"})
    assert state.load_names() == {"mesh": "abc", "alias": "abc"}


def test_job_journal_keeps_latest_record(tmp_path):
    state = ServiceState(str(tmp_path))
    state.record_job({"job_id": "job-00000001", "state": "pending"})
    state.record_job({"job_id": "job-00000001", "state": "done"})
    state.record_job({"job_id": "job-00000002", "state": "running"})
    records = state.load_jobs()
    assert [r["job_id"] for r in records] == ["job-00000001", "job-00000002"]
    assert records[0]["state"] == "done"  # whole-record replace
    assert state.jobs_journaled == 3


def test_manifest_gates_on_config_fingerprint(tmp_path, data_graph):
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc:
        svc.register_graph(data_graph)
    # Same count-relevant config: fine (knob changes are irrelevant).
    MatchingService(
        CuTSConfig(service_queue_depth=3), state_dir=str(tmp_path)
    ).close()
    # A config that could enumerate differently is refused.
    with pytest.raises(CheckpointMismatchError):
        MatchingService(
            CuTSConfig(chunk_size=17), state_dir=str(tmp_path)
        )


# ---------------------------------------------------------------------------
# Service-level recovery.
# ---------------------------------------------------------------------------


def test_restart_recovers_graphs_names_and_done_jobs(tmp_path, data_graph):
    oracle = CuTSMatcher(data_graph, CuTSConfig()).match(clique_graph(3))
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc:
        svc.register_graph(data_graph, "mesh")
        job_id = svc.submit("mesh", clique_graph(3))
        assert svc.result(job_id, timeout=30.0).count == oracle.count
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc2:
        # Graph back under both its name and fingerprint.
        assert any(h["name"] == "mesh" for h in svc2.graphs())
        job = svc2.job(job_id)
        assert job.state == "done"
        assert job.result is not None and job.result.count == oracle.count
        assert job.cached
        # The restored answer serves without re-execution.
        assert svc2.result(job_id, timeout=5.0).count == oracle.count
        assert svc2.scheduler.admitted == 0
        # Job ids continue past the recovered sequence — no reuse.
        new_id = svc2.submit("mesh", cycle_graph(4))
        assert new_id > job_id
        svc2.result(new_id, timeout=30.0)


def test_idempotency_keys_survive_restart(tmp_path, data_graph):
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc:
        svc.register_graph(data_graph, "mesh")
        job_id = svc.submit("mesh", clique_graph(3), idempotency_key="k-1")
        count = svc.result(job_id, timeout=30.0).count
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc2:
        # A client retry after the crash maps to the journaled job:
        # nothing is re-enqueued, nothing can double-count.
        assert svc2.submit("mesh", clique_graph(3), idempotency_key="k-1") == job_id
        assert svc2.scheduler.admitted == 0
        assert svc2.result(job_id, timeout=5.0).count == count


def test_pending_jobs_are_reenqueued_and_finish(tmp_path, data_graph):
    oracle = CuTSMatcher(data_graph, CuTSConfig()).match(cycle_graph(4))
    # start=False: the job is journaled pending and never dispatched.
    svc = MatchingService(
        CuTSConfig(), start=False, state_dir=str(tmp_path)
    )
    svc.register_graph(data_graph, "mesh")
    job_id = svc.submit("mesh", cycle_graph(4))
    svc.flush_journal()  # the pending record is on disk
    # Simulate a crash: release the engines, but never run close()'s
    # drain (which would journal a clean shutdown).
    svc.registry.close()
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc2:
        assert svc2.recovered_pending == 1
        job = svc2.wait(job_id, timeout=30.0)
        assert job.state == "done"
        assert job.result is not None and job.result.count == oracle.count


def test_running_jobs_resurface_as_retryable(tmp_path, data_graph):
    query = clique_graph(3)
    state = ServiceState(str(tmp_path))
    state.save_graph(data_graph, graph_fingerprint(data_graph))
    state.record_job(
        {
            "job_id": "job-00000007",
            "state": "running",
            "graph_fp": graph_fingerprint(data_graph),
            "query_fp": graph_fingerprint(query),
            "query": graph_record(query),
            "materialize": False,
            "time_limit_ms": None,
            "priority": 0,
            "idempotency_key": "k-crashed",
            "error": None,
            "submitted_at": 0.0,
            "finished_at": None,
        }
    )
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc:
        assert svc.recovered_retryable == 1
        job = svc.job("job-00000007")
        assert job.state == "retryable"
        assert job.error is not None and "crashed" in job.error
        with pytest.raises(JobFailed):
            svc.result("job-00000007", timeout=1.0)
        # Retryable jobs do not hold their idempotency key: the retry
        # really re-executes (journal-after-completion makes it safe).
        new_id = svc.submit(
            graph_fingerprint(data_graph), query, idempotency_key="k-crashed"
        )
        assert new_id != "job-00000007"
        assert svc.result(new_id, timeout=30.0).count >= 0
        # Job ids continued past the crashed job's sequence number.
        assert int(new_id.rsplit("-", 1)[1]) > 7


def test_failed_jobs_restore_terminal(tmp_path, data_graph):
    query = clique_graph(3)
    state = ServiceState(str(tmp_path))
    state.record_job(
        {
            "job_id": "job-00000003",
            "state": "failed",
            "graph_fp": graph_fingerprint(data_graph),
            "query_fp": graph_fingerprint(query),
            "query": graph_record(query),
            "materialize": False,
            "time_limit_ms": None,
            "priority": 0,
            "idempotency_key": None,
            "error": "engine exploded",
            "submitted_at": 0.0,
            "finished_at": 1.0,
        }
    )
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc:
        job = svc.job("job-00000003")
        assert job.state == "failed" and job.error == "engine exploded"
        with pytest.raises(JobFailed, match="engine exploded"):
            svc.result("job-00000003", timeout=1.0)


def test_torn_journal_record_is_skipped_not_fatal(tmp_path, data_graph):
    state = ServiceState(str(tmp_path))
    state.record_job({"job_id": "job-00000009", "state": "pending"})
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc:
        with pytest.raises(KeyError):
            svc.job("job-00000009")
        # The service still works after skipping the torn record.
        fp = svc.register_graph(data_graph)
        svc.result(svc.submit(fp, clique_graph(3)), timeout=30.0)


def test_stateless_service_has_no_state_section(data_graph):
    with MatchingService(CuTSConfig()) as svc:
        svc.register_graph(data_graph)
        assert "state" not in svc.metrics()


def test_metrics_report_journal_counters(tmp_path, data_graph):
    with MatchingService(CuTSConfig(), state_dir=str(tmp_path)) as svc:
        fp = svc.register_graph(data_graph)
        svc.result(svc.submit(fp, clique_graph(3)), timeout=30.0)
        svc.flush_journal()  # writes are async; settle them first
        snap = svc.metrics()["state"]
        assert snap["graphs_saved"] == 1
        # Group commit may coalesce pending -> running -> done into a
        # single write, but at least one record must have landed and
        # the journal's final word must be the terminal state.
        assert snap["jobs_journaled"] >= 1
        assert snap["journal_errors"] == 0
    state = ServiceState(str(tmp_path))
    (record,) = state.load_jobs()
    assert record["state"] == "done"