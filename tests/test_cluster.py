"""Tests for the replicated shard-routed cluster (PR 9 tentpole).

Covers the consistent-hash ring (determinism, minimal disruption), the
router's count parity with the serial oracle, failover on rank crashes
and partitions, exactly-once integration under the envelope tracker,
StrideLedger-resumed split queries, quorum shedding with machine-
readable 503s, catch-up-then-readmit healing, and the HTTP face
serving a cluster through the same endpoints.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from tests.conftest import oracle_count
from repro.core.config import CuTSConfig
from repro.core.matcher import CuTSMatcher
from repro.graph import chain_graph, cycle_graph, mesh_graph, star_graph
from repro.service import (
    AdmissionError,
    ClusterService,
    HashRing,
    JobFailed,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.faults import ServiceFaultInjector, ServiceFaultPlan
from repro.service.http import serve


@pytest.fixture()
def mesh_and_query():
    return mesh_graph(5, 5), chain_graph(3)


def make_cluster(tmp_path=None, **kw) -> ClusterService:
    kw.setdefault("ranks", 3)
    kw.setdefault("replication", 2)
    kw.setdefault("auto_heal", False)
    state_dir = str(tmp_path / "cluster") if tmp_path is not None else None
    return ClusterService(
        CuTSConfig(), state_dir=state_dir, **kw
    )


# ---------------------------------------------------------------------------
# HashRing.
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_layout_is_a_pure_function_of_membership(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 2, 1, 0])
        for key in ("alpha", "beta", "gamma", "delta"):
            assert a.replicas_for(key, 2) == b.replicas_for(key, 2)

    def test_replicas_are_distinct_and_clamped(self):
        ring = HashRing([0, 1, 2])
        replicas = ring.replicas_for("some-graph", 2)
        assert len(replicas) == len(set(replicas)) == 2
        assert ring.replicas_for("some-graph", 99) == ring.replicas_for(
            "some-graph", 3
        )

    def test_member_removal_only_remaps_its_own_keys(self):
        before = HashRing([0, 1, 2, 3])
        after = HashRing([0, 1, 3])  # rank 2 left
        keys = [f"graph-{i}" for i in range(64)]
        for key in keys:
            if before.primary_for(key) != 2:
                # Consistent hashing: keys not owned by the departed
                # member keep their primary.
                assert after.primary_for(key) == before.primary_for(key)
            else:
                assert after.primary_for(key) != 2

    def test_empty_ring(self):
        ring = HashRing([])
        assert ring.replicas_for("x", 2) == []
        with pytest.raises(LookupError):
            ring.primary_for("x")

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            HashRing([0], vnodes=0)


# ---------------------------------------------------------------------------
# Routing: parity, failover, exactly-once.
# ---------------------------------------------------------------------------


class TestRouting:
    def test_count_parity_with_serial_oracle(self, mesh_and_query):
        data, query = mesh_and_query
        expected = CuTSMatcher(data, CuTSConfig()).match(query).count
        assert expected == oracle_count(data, query)
        with make_cluster() as cluster:
            cluster.register_graph(data, "mesh")
            for q in (query, cycle_graph(4), star_graph(3)):
                got = cluster.match("mesh", q, timeout=60)
                assert got.count == oracle_count(data, q)

    def test_routing_survives_primary_crash(self, mesh_and_query):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        with make_cluster() as cluster:
            fp = cluster.register_graph(data)
            primary = cluster._ring.replicas_for(fp, 2)[0]
            cluster.crash_rank(primary)
            assert cluster.match(fp, query, timeout=60).count == expected
            assert cluster.ranks[primary].state == "crashed"

    def test_mid_request_crash_fails_over_exactly_once(
        self, mesh_and_query
    ):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        with make_cluster() as cluster:
            fp = cluster.register_graph(data)
            killed: list[int] = []

            def hook(phase: str, rank_id: int, job_id: str) -> None:
                if phase == "mid-shard" and not killed:
                    killed.append(rank_id)
                    cluster.crash_rank(rank_id)

            cluster.phase_hook = hook
            result = cluster.match(fp, query, timeout=60)
            assert result.count == expected
            assert killed, "the hook never fired"
            metrics = cluster.metrics()["router"]
            assert metrics["failovers"] >= 1
            # The crashed attempt was revoked before the failover was
            # dispatched: its sequence number can never be integrated.
            assert cluster.metrics()["tracker"]["revoked"] >= 1

    def test_partitioned_primary_is_skipped_then_heals(
        self, mesh_and_query
    ):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        # R=3 so quorum (2) still holds with the primary unreachable —
        # a partition under quorum must *route around*, not shed.
        with make_cluster(ranks=3, replication=3) as cluster:
            fp = cluster.register_graph(data)
            primary = cluster._ring.replicas_for(fp, 3)[0]
            cluster.partition_rank(primary, ticks=1)
            assert cluster.match(fp, query, timeout=60).count == expected
            # No state was lost: the partition expires with routed
            # attempts and the rank stays live throughout.
            assert cluster.ranks[primary].state == "live"
            assert cluster.match(fp, query, timeout=60).count == expected

    def test_route_timeout_fails_the_job(self, mesh_and_query):
        data, query = mesh_and_query
        # Every engine pass stalls 400 ms; the route gives up at 50 ms,
        # so each attempt is revoked before its late reply can land.
        cluster = ClusterService(
            CuTSConfig(service_route_timeout_s=0.05),
            ranks=1,
            replication=1,
            faults=ServiceFaultPlan(
                seed=1, stall_prob=1.0, stall_ms=400.0
            ),
            auto_heal=False,
        )
        try:
            fp = cluster.register_graph(data)
            with pytest.raises(JobFailed) as excinfo:
                cluster.match(fp, query, timeout=60)
            assert "route timeout" in str(excinfo.value)
            assert cluster.metrics()["tracker"]["revoked"] >= 1
        finally:
            cluster.close()

    def test_idempotent_submit_dedupes_at_the_router(
        self, mesh_and_query
    ):
        data, query = mesh_and_query
        with make_cluster() as cluster:
            fp = cluster.register_graph(data)
            a = cluster.submit(fp, query, idempotency_key="once")
            b = cluster.submit(fp, query, idempotency_key="once")
            assert a == b
            cluster.result(a, timeout=60)

    def test_split_queries_reject_materialize(self, mesh_and_query):
        data, query = mesh_and_query
        with make_cluster() as cluster:
            fp = cluster.register_graph(data)
            with pytest.raises(ValueError):
                cluster.submit(fp, query, materialize=True, num_parts=2)


# ---------------------------------------------------------------------------
# Split queries: striding + ledger-tracked resume.
# ---------------------------------------------------------------------------


class TestSplitQueries:
    def test_split_count_equals_oracle(self, mesh_and_query):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        with make_cluster() as cluster:
            fp = cluster.register_graph(data)
            for parts in (2, 3, 5):
                result = cluster.match(
                    fp, query, num_parts=parts, timeout=60
                )
                assert result.count == expected
            assert cluster.metrics()["router"]["split_queries"] == 3

    def test_split_resumes_after_replica_crash(self, mesh_and_query):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        with make_cluster(ranks=3, replication=3) as cluster:
            fp = cluster.register_graph(data)
            killed: list[int] = []

            def hook(phase: str, rank_id: int, job_id: str) -> None:
                if phase == "mid-shard" and not killed:
                    killed.append(rank_id)
                    cluster.crash_rank(rank_id)

            cluster.phase_hook = hook
            result = cluster.match(fp, query, num_parts=4, timeout=60)
            assert result.count == expected
            assert killed
            # Only the dead rank's uncommitted parts were redone; the
            # ledger accounted the recovery instead of restarting.
            assert cluster.metrics()["router"]["recovered_parts"] >= 1


# ---------------------------------------------------------------------------
# Quorum shedding + healing.
# ---------------------------------------------------------------------------


class TestQuorumAndHealing:
    def test_below_quorum_sheds_with_retry_after(self, mesh_and_query):
        data, query = mesh_and_query
        with make_cluster(ranks=2, replication=2) as cluster:
            fp = cluster.register_graph(data)
            # quorum for R=2 is 2: one crash puts every shard below it.
            cluster.crash_rank(0)
            with pytest.raises(AdmissionError) as excinfo:
                cluster.submit(fp, query)
            assert excinfo.value.reason == "shard-unavailable"
            assert excinfo.value.retry_after is not None
            assert cluster.metrics()["router"]["shed"] == 1
            assert cluster.healthz()["degraded"] is True

    def test_restart_catches_up_before_readmission(
        self, tmp_path, mesh_and_query
    ):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        with make_cluster(tmp_path) as cluster:
            fp = cluster.register_graph(data)
            victim = cluster._ring.replicas_for(fp, 2)[0]
            cluster.crash_rank(victim)
            assert cluster.replication_of(fp) < 2
            cluster.restart_rank(victim)
            # Full R-way replication restored: the fresh incarnation
            # holds the shard before it rejoined the ring.
            assert cluster.replication_of(fp) == 2
            assert cluster.ranks[victim].state == "live"
            assert cluster.ranks[victim].generation == 1
            assert cluster.metrics()["router"]["heals"] == 1
            assert cluster.match(fp, query, timeout=60).count == expected

    def test_supervisor_heals_within_bounded_ticks(
        self, tmp_path, mesh_and_query
    ):
        data, query = mesh_and_query
        cluster = ClusterService(
            CuTSConfig(service_heal_after_ticks=2),
            ranks=2,
            replication=2,
            state_dir=str(tmp_path / "heal"),
            auto_heal=True,
        )
        try:
            fp = cluster.register_graph(data)
            cluster.crash_rank(0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    cluster.ranks[0].state == "live"
                    and cluster.replication_of(fp) == 2
                ):
                    break
                time.sleep(0.02)
            assert cluster.ranks[0].state == "live"
            assert cluster.replication_of(fp) == 2
            assert cluster.metrics()["router"]["heals"] >= 1
        finally:
            cluster.close()

    def test_lazy_catchup_on_remapped_replica(self, mesh_and_query):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        with make_cluster(ranks=3, replication=1) as cluster:
            fp = cluster.register_graph(data)
            owner = cluster._ring.replicas_for(fp, 1)[0]
            cluster.crash_rank(owner)
            # R=1, quorum 1: the shard remaps to a survivor that has
            # never seen the graph — the router feeds it on first route
            # from the content-addressed catalog.
            assert cluster.match(fp, query, timeout=60).count == expected
            assert cluster.metrics()["router"]["catchup_graphs"] >= 1


# ---------------------------------------------------------------------------
# Topology fault plan.
# ---------------------------------------------------------------------------


class TestTopologyFaults:
    def test_from_spec_parses_topology_keys(self):
        plan = ServiceFaultPlan.from_spec(
            "seed=7,rank_crash_prob=0.5,partition_prob=0.25,"
            "partition_ticks=4,slow_replica_prob=1.0,slow_replica_ms=2"
        )
        assert plan.seed == 7
        assert plan.rank_crash_prob == 0.5
        assert plan.partition_ticks == 4
        assert not plan.is_null

    def test_route_fate_is_deterministic_and_counted(self):
        plan = ServiceFaultPlan(seed=3, rank_crash_prob=0.3)
        first, second = ServiceFaultInjector(plan), ServiceFaultInjector(plan)
        a = [first.route_fate() for _ in range(50)]
        b = [second.route_fate() for _ in range(50)]
        assert a == b
        crashes = sum(1 for fate, _ in a if fate == "crash")
        assert 0 < crashes < 50
        assert first.rank_crashes == crashes
        assert first.snapshot()["rank_crashes"] == crashes

    def test_slow_replica_fate_carries_seconds(self):
        plan = ServiceFaultPlan(
            seed=1, slow_replica_prob=1.0, slow_replica_ms=25.0
        )
        fate, seconds = ServiceFaultInjector(plan).route_fate()
        assert fate == "slow"
        assert seconds == pytest.approx(0.025)

    def test_injected_crashes_never_change_counts(self, mesh_and_query):
        data, query = mesh_and_query
        expected = oracle_count(data, query)
        plan = ServiceFaultPlan(seed=11, rank_crash_prob=0.2)
        cluster = ClusterService(
            CuTSConfig(service_heal_after_ticks=1),
            ranks=3,
            replication=2,
            faults=plan,
            auto_heal=True,
        )
        try:
            fp = cluster.register_graph(data)
            served = 0
            for _ in range(12):
                try:
                    assert (
                        cluster.match(fp, query, timeout=60).count
                        == expected
                    )
                    served += 1
                except AdmissionError:
                    time.sleep(0.05)  # below quorum; wait out the heal
            assert served >= 6
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# HTTP face over a cluster.
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_cluster():
    cluster = ClusterService(
        CuTSConfig(), ranks=3, replication=2, auto_heal=False
    )
    server = serve(cluster, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), cluster
    finally:
        server.shutdown()
        server.server_close()
        cluster.close()


class TestClusterHTTP:
    def test_end_to_end_match_reports_replica(self, live_cluster):
        client, cluster = live_cluster
        data, query = mesh_graph(4, 4), chain_graph(3)
        fp = client.register_graph(data, name="mesh")
        job = client.match("mesh", query)
        assert job["state"] == "done"
        assert job["result"]["count"] == oracle_count(data, query)
        assert job["replica"] in cluster.ranks
        assert client.job(job["id"])["graph"] == fp

    def test_shard_unavailable_maps_to_503_with_retry_after(
        self, live_cluster
    ):
        client, cluster = live_cluster
        data = mesh_graph(4, 4)
        client.register_graph(data, name="mesh")
        for rank_id in list(cluster.ranks):
            cluster.crash_rank(rank_id)
        with pytest.raises(ServiceError) as excinfo:
            client.match(
                "mesh",
                chain_graph(3),
                timeout_s=5.0,
            )
        assert excinfo.value.status == 503
        assert excinfo.value.reason == "shard-unavailable"
        assert excinfo.value.retry_after is not None

    def test_split_match_over_http(self, live_cluster):
        client, cluster = live_cluster
        data, query = mesh_graph(4, 4), chain_graph(3)
        client.register_graph(data, name="mesh")
        job = client.match("mesh", query, num_parts=3)
        assert job["state"] == "done"
        assert job["result"]["count"] == oracle_count(data, query)
        assert job["num_parts"] == 3

    def test_part_against_cluster_is_a_bad_request(self, live_cluster):
        client, cluster = live_cluster
        client.register_graph(mesh_graph(4, 4), name="mesh")
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST",
                "/match",
                {"graph": "mesh", "query": "P3", "part": 0},
            )
        assert excinfo.value.status == 400

    def test_healthz_and_metrics_expose_topology(self, live_cluster):
        client, cluster = live_cluster
        health = client.healthz()
        assert health["live_ranks"] == 3
        assert health["replication"] == 2
        metrics = client.metrics()
        assert set(metrics["ring"]["members"]) == {0, 1, 2}
        assert "failovers" in metrics["router"]


# ---------------------------------------------------------------------------
# Client-side replica surfacing (satellite: ServiceError.replica).
# ---------------------------------------------------------------------------


class _StubHandler(BaseHTTPRequestHandler):
    """Always answers 503 shard-unavailable from replica 1."""

    def do_POST(self):  # noqa: N802 (http.server API)
        length = int(self.headers.get("Content-Length", "0"))
        if length:
            self.rfile.read(length)
        body = json.dumps(
            {
                "error": "rejected",
                "reason": "shard-unavailable",
                "detail": "shard below quorum",
                "replica": 1,
            }
        ).encode()
        self.send_response(503)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Retry-After", "0.01")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        return None  # keep test output quiet


class TestClientReplicaSurfacing:
    def test_503_shard_unavailable_surfaces_replica_and_backoff(self):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        sleeps: list[float] = []
        client = ServiceClient(
            f"http://{host}:{port}",
            retry=RetryPolicy(max_attempts=3, backoff_base_s=10.0),
        )
        client._sleep = sleeps.append
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.match("mesh", "P3")
            err = excinfo.value
            assert err.status == 503
            assert err.reason == "shard-unavailable"
            assert err.replica == 1
            # 503 retries like 429 degraded-mode does, and the
            # server's Retry-After overrides the computed backoff.
            assert len(sleeps) == 2
            assert all(s <= 0.011 for s in sleeps)
        finally:
            server.shutdown()
            server.server_close()

    def test_retry_policy_retries_503(self):
        policy = RetryPolicy()
        err = ServiceError(
            503, "shed", reason="shard-unavailable", retry_after=1.0
        )
        assert policy.should_retry(err)
