"""Tests for the embedded matching service (PR 5 tentpole).

Exercises the registry (idempotence, aliasing, replacement), admission
control (every rejection reason), deadlines and cancellation, the
batching dispatcher (coalescing, one pool pass per batch), and the
acceptance criterion: a warm-registry warm-cache repeat returns
bit-identical counts with **zero** additional matcher invocations.
"""

from __future__ import annotations

import threading

import pytest

from tests.conftest import oracle_count
from repro.core.config import CuTSConfig
from repro.core.matcher import CuTSMatcher
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    star_graph,
)
from repro.parallel.matcher import ParallelMatcher
from repro.service import (
    AdmissionError,
    DeadlineExpired,
    GraphRegistry,
    JobFailed,
    MatchingService,
    Request,
    Scheduler,
)
from repro.service.registry import _graph_bytes


def make_request(job_id="j1", graph_fp="g", query=None, **kw) -> Request:
    from repro.fingerprint import graph_fingerprint

    query = query if query is not None else chain_graph(3)
    return Request(
        job_id=job_id,
        graph_fp=graph_fp,
        query=query,
        query_fp=graph_fingerprint(query),
        **kw,
    )


# ---------------------------------------------------------------------------
# GraphRegistry.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_register_is_idempotent_for_identical_content(self):
        reg = GraphRegistry(CuTSConfig())
        a = reg.register(mesh_graph(4, 4))
        b = reg.register(mesh_graph(4, 4))
        assert a is b
        assert reg.registered == 1
        assert len(reg.handles()) == 1

    def test_same_content_under_second_name_aliases(self):
        reg = GraphRegistry(CuTSConfig())
        a = reg.register(mesh_graph(4, 4), name="one")
        b = reg.register(mesh_graph(4, 4), name="two")
        assert a is b
        assert reg.resolve("one") is reg.resolve("two")
        assert reg.resident_bytes == _graph_bytes(a.graph)

    def test_name_reuse_with_new_content_replaces_and_notifies(self):
        replaced: list[str] = []
        reg = GraphRegistry(CuTSConfig(), on_replace=replaced.append)
        old = reg.register(mesh_graph(4, 4), name="data")
        reg.register(mesh_graph(5, 5), name="data")
        assert replaced == [old.fingerprint]
        assert reg.by_fingerprint(old.fingerprint) is None
        assert reg.resolve("data").graph.num_vertices == 25
        with pytest.raises(ValueError):
            old.matcher()  # the replaced handle's engine is closed

    def test_resolve_by_name_and_fingerprint(self):
        reg = GraphRegistry(CuTSConfig())
        h = reg.register(mesh_graph(4, 4), name="mesh")
        assert reg.resolve("mesh") is h
        assert reg.resolve(h.fingerprint) is h
        with pytest.raises(KeyError):
            reg.resolve("nope")

    def test_unregister_releases_bytes_and_notifies(self):
        replaced: list[str] = []
        reg = GraphRegistry(CuTSConfig(), on_replace=replaced.append)
        h = reg.register(mesh_graph(4, 4))
        assert reg.unregister(h.fingerprint)
        assert not reg.unregister(h.fingerprint)
        assert reg.resident_bytes == 0
        assert replaced == [h.fingerprint]

    def test_empty_graph_is_refused(self):
        reg = GraphRegistry(CuTSConfig())
        with pytest.raises(ValueError):
            reg.register(from_edges([], num_vertices=0))

    def test_persistent_engine_is_reused_across_calls(self):
        reg = GraphRegistry(CuTSConfig())
        h = reg.register(mesh_graph(4, 4))
        assert h.matcher() is h.matcher()

    def test_parallel_handles_build_parallel_matchers(self):
        reg = GraphRegistry(CuTSConfig(), workers=2)
        h = reg.register(mesh_graph(4, 4))
        try:
            assert isinstance(h.matcher(), ParallelMatcher)
        finally:
            reg.close()


# ---------------------------------------------------------------------------
# Scheduler admission + ordering.
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_queue_full_rejects_with_reason(self):
        sched = Scheduler(max_depth=2)
        sched.submit(make_request("a"))
        sched.submit(make_request("b"))
        with pytest.raises(AdmissionError) as exc:
            sched.submit(make_request("c"))
        assert exc.value.reason == "queue-full"
        assert sched.snapshot()["rejected"] == {"queue-full": 1}

    def test_oversized_query_rejects_with_reason(self):
        sched = Scheduler(max_depth=8, max_query_vertices=3)
        sched.submit(make_request(query=chain_graph(3)))
        with pytest.raises(AdmissionError) as exc:
            sched.submit(make_request(query=chain_graph(4)))
        assert exc.value.reason == "oversized-query"

    def test_memory_budget_rejects_with_reason(self):
        from repro.core.governor import MemoryGovernor

        gov = MemoryGovernor(budget_bytes=1024)
        gov.observe_words(1024 // 8)  # exactly at budget
        sched = Scheduler(max_depth=8, governor=gov)
        with pytest.raises(AdmissionError) as exc:
            sched.submit(make_request())
        assert exc.value.reason == "memory-budget"

    def test_priority_order_then_fifo(self):
        sched = Scheduler(max_depth=8)
        sched.submit(make_request("low", priority=5))
        sched.submit(make_request("hi-1", priority=0))
        sched.submit(make_request("hi-2", priority=0))
        batch, dead = sched.pop_batch(8, timeout=0.1)
        assert [r.job_id for r in batch] == ["hi-1", "hi-2", "low"]
        assert dead == []

    def test_pop_batch_is_graph_affine(self):
        sched = Scheduler(max_depth=8)
        sched.submit(make_request("a1", graph_fp="A"))
        sched.submit(make_request("b1", graph_fp="B"))
        sched.submit(make_request("a2", graph_fp="A"))
        batch, _ = sched.pop_batch(8, timeout=0.1)
        assert [r.job_id for r in batch] == ["a1", "a2"]
        batch, _ = sched.pop_batch(8, timeout=0.1)
        assert [r.job_id for r in batch] == ["b1"]

    def test_expired_and_cancelled_requests_surface_as_dead(self):
        sched = Scheduler(max_depth=8)
        expired = make_request("late", deadline=0.0)  # already past
        sched.submit(expired)
        doomed = make_request("doomed")
        sched.submit(doomed)
        doomed.cancelled.set()
        live = make_request("live")
        sched.submit(live)
        batch, dead = sched.pop_batch(8, timeout=0.1)
        assert [r.job_id for r in batch] == ["live"]
        assert {r.job_id for r in dead} == {"late", "doomed"}
        snap = sched.snapshot()
        assert snap["expired"] == 1 and snap["cancelled"] == 1

    def test_close_drains_and_rejects(self):
        sched = Scheduler(max_depth=8)
        sched.submit(make_request("queued"))
        drained = sched.close()
        assert [r.job_id for r in drained] == ["queued"]
        with pytest.raises(AdmissionError) as exc:
            sched.submit(make_request("late"))
        assert exc.value.reason == "shutdown"


# ---------------------------------------------------------------------------
# End-to-end service behaviour.
# ---------------------------------------------------------------------------


QUERIES = [
    clique_graph(3),
    chain_graph(4),
    cycle_graph(4),
    star_graph(3),
]


@pytest.fixture(scope="module")
def data_graph():
    return mesh_graph(6, 6)


@pytest.fixture(scope="module")
def expected_counts(data_graph):
    cfg = CuTSConfig()
    return [CuTSMatcher(data_graph, cfg).match(q).count for q in QUERIES]


class TestMatchingService:
    def test_counts_match_the_one_shot_engine(
        self, data_graph, expected_counts
    ):
        with MatchingService(CuTSConfig()) as svc:
            fp = svc.register_graph(data_graph)
            got = [r.count for r in svc.match_many(fp, QUERIES)]
        assert got == expected_counts

    def test_counts_match_oracle_on_small_graph(self):
        g = mesh_graph(4, 4)
        q = chain_graph(4)
        with MatchingService(CuTSConfig()) as svc:
            assert svc.match(svc.register_graph(g), q).count == oracle_count(
                g, q
            )

    def test_warm_cache_repeat_is_free_and_identical(
        self, data_graph, expected_counts
    ):
        """Acceptance: second pass = zero matcher invocations, +N cache
        hits, bit-identical counts."""
        with MatchingService(CuTSConfig()) as svc:
            fp = svc.register_graph(data_graph)
            first = [r.count for r in svc.match_many(fp, QUERIES)]
            inv = svc.dispatcher.matcher_invocations
            hits = svc.result_cache.hits
            second = [r.count for r in svc.match_many(fp, QUERIES)]
            assert second == first == expected_counts
            assert svc.dispatcher.matcher_invocations == inv
            assert svc.result_cache.hits == hits + len(QUERIES)
            # The cache-hit flag is visible on the jobs.
            job_id = svc.submit(fp, QUERIES[1])
            svc.result(job_id)
            assert svc.job(job_id).cached

    def test_parallel_engine_parity(self, data_graph, expected_counts):
        with MatchingService(CuTSConfig(), workers=2) as svc:
            fp = svc.register_graph(data_graph)
            got = [r.count for r in svc.match_many(fp, QUERIES)]
        assert got == expected_counts

    def test_duplicate_queries_coalesce(self, data_graph):
        q = chain_graph(4)
        with MatchingService(CuTSConfig(), start=False) as svc:
            fp = svc.register_graph(data_graph)
            ids = [svc.submit(fp, q) for _ in range(4)]
            svc.start()  # everything queued -> one batch
            counts = {svc.result(j, timeout=30).count for j in ids}
            assert len(counts) == 1
            assert svc.dispatcher.matcher_invocations == 1
            assert svc.dispatcher.requests_coalesced == 3
            assert all(svc.job(j).coalesced for j in ids)

    def test_batch_runs_as_one_dispatch(self, data_graph, expected_counts):
        with MatchingService(CuTSConfig(), start=False) as svc:
            fp = svc.register_graph(data_graph)
            ids = [svc.submit(fp, q) for q in QUERIES]
            svc.start()
            got = [svc.result(j, timeout=30).count for j in ids]
            assert got == expected_counts
            assert svc.dispatcher.batches_dispatched == 1

    def test_plan_cache_hits_on_second_parallel_batch(self, data_graph):
        with MatchingService(CuTSConfig(), workers=2) as svc:
            fp = svc.register_graph(data_graph)
            svc.match(fp, chain_graph(4), time_limit_ms=1e9)
            # A timed request is never result-cached, so the second one
            # exercises the plan cache instead.
            job_id = svc.submit(fp, chain_graph(4), time_limit_ms=1e9)
            svc.result(job_id, timeout=30)
            assert svc.job(job_id).plan_hit
            assert svc.plan_cache.hits >= 1

    def test_deadline_expiry_fails_typed(self, data_graph):
        with MatchingService(CuTSConfig(), start=False) as svc:
            fp = svc.register_graph(data_graph)
            job_id = svc.submit(fp, chain_graph(3), deadline_ms=0)
            svc.start()
            with pytest.raises(DeadlineExpired):
                svc.result(job_id, timeout=30)
            assert svc.job(job_id).state == "expired"

    def test_cancellation_beats_dispatch(self, data_graph):
        with MatchingService(CuTSConfig(), start=False) as svc:
            fp = svc.register_graph(data_graph)
            job_id = svc.submit(fp, chain_graph(3))
            assert svc.cancel(job_id)
            svc.start()
            with pytest.raises(JobFailed, match="cancelled"):
                svc.result(job_id, timeout=30)
            assert not svc.cancel(job_id)  # already settled

    def test_admission_rejection_does_not_leak_jobs(self, data_graph):
        cfg = CuTSConfig(service_max_query_vertices=3)
        with MatchingService(cfg) as svc:
            fp = svc.register_graph(data_graph)
            with pytest.raises(AdmissionError) as exc:
                svc.submit(fp, clique_graph(5))
            assert exc.value.reason == "oversized-query"
            assert svc._jobs == {}

    def test_queue_full_rejection_reports_reason(self, data_graph):
        cfg = CuTSConfig(service_queue_depth=1)
        with MatchingService(cfg, start=False) as svc:
            fp = svc.register_graph(data_graph)
            svc.submit(fp, chain_graph(3))
            with pytest.raises(AdmissionError) as exc:
                svc.submit(fp, chain_graph(4))
            assert exc.value.reason == "queue-full"

    def test_memory_budget_admission_counts_registry_bytes(self):
        # A 1 MB budget the registered graph immediately exceeds.
        cfg = CuTSConfig(memory_budget_mb=1)
        with MatchingService(cfg) as svc:
            fp = svc.register_graph(mesh_graph(200, 200))
            assert svc.governor.pressure >= 1.0
            with pytest.raises(AdmissionError) as exc:
                svc.submit(fp, chain_graph(3))
            assert exc.value.reason == "memory-budget"

    def test_unregistered_graph_fails_queued_jobs(self, data_graph):
        with MatchingService(CuTSConfig(), start=False) as svc:
            fp = svc.register_graph(data_graph)
            job_id = svc.submit(fp, chain_graph(3))
            svc.unregister_graph(fp)
            svc.start()
            with pytest.raises(JobFailed, match="unregistered"):
                svc.result(job_id, timeout=30)

    def test_close_fails_pending_jobs_as_shutdown(self, data_graph):
        svc = MatchingService(CuTSConfig(), start=False)
        fp = svc.register_graph(data_graph)
        job_id = svc.submit(fp, chain_graph(3))
        svc.close()
        with pytest.raises(JobFailed, match="shutdown"):
            svc.result(job_id, timeout=1)

    def test_csr_graph_arguments_auto_register(self, data_graph):
        with MatchingService(CuTSConfig()) as svc:
            r1 = svc.match(data_graph, chain_graph(3))
            r2 = svc.match(data_graph, chain_graph(3))
            assert r1.count == r2.count
            assert len(svc.registry.handles()) == 1

    def test_materialized_results_flow_through(self):
        from tests.conftest import assert_valid_embeddings

        g = mesh_graph(4, 4)
        q = chain_graph(3)
        with MatchingService(CuTSConfig()) as svc:
            res = svc.match(svc.register_graph(g), q, materialize=True)
            assert res.matches is not None
            assert len(res.matches) == res.count
            assert_valid_embeddings(g, q, res.matches)
            # Materialized results are not result-cached.
            assert len(svc.result_cache) == 0

    def test_metrics_shape(self, data_graph):
        with MatchingService(CuTSConfig()) as svc:
            fp = svc.register_graph(data_graph)
            svc.match(fp, chain_graph(3))
            m = svc.metrics()
            assert m["graphs"] == 1
            assert m["graph_resident_bytes"] > 0
            assert m["scheduler"]["admitted"] == 1
            assert m["dispatcher"]["requests_dispatched"] == 1
            assert m["governor"]["tracked_bytes"] > 0
            assert svc.healthz()["status"] == "ok"

    def test_concurrent_submitters_all_get_exact_answers(
        self, data_graph, expected_counts
    ):
        """8 threads x 4 queries against one service: every answer
        exact, no lost or duplicated jobs."""
        with MatchingService(CuTSConfig()) as svc:
            fp = svc.register_graph(data_graph)
            results: dict[tuple[int, int], int] = {}
            errors: list[Exception] = []
            lock = threading.Lock()

            def client(tid: int) -> None:
                try:
                    for qi, q in enumerate(QUERIES):
                        count = svc.match(fp, q, timeout=60).count
                        with lock:
                            results[(tid, qi)] = count
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(t,)) for t in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert len(results) == 8 * len(QUERIES)
            for (_, qi), count in results.items():
                assert count == expected_counts[qi]
