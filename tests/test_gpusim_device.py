"""Tests for simulated device specs."""

import pytest

from repro.gpusim import A100, V100, DeviceSpec, scaled_device


def test_paper_machine_parameters():
    assert V100.num_sms == 84
    assert A100.num_sms == 108
    # memory ratio preserves 32GB : 40GB
    assert A100.memory_words / V100.memory_words == pytest.approx(1.25)


def test_max_resident_warps():
    assert V100.max_resident_warps == 84 * 64


def test_virtual_warp_capacity():
    assert V100.virtual_warp_capacity(32) == V100.max_resident_warps
    assert V100.virtual_warp_capacity(8) == 4 * V100.max_resident_warps
    assert V100.virtual_warp_capacity(1) == 32 * V100.max_resident_warps


def test_virtual_warp_capacity_clamps_oversize():
    assert V100.virtual_warp_capacity(64) == V100.max_resident_warps


def test_virtual_warp_capacity_invalid():
    with pytest.raises(ValueError):
        V100.virtual_warp_capacity(0)


def test_cycles_to_ms():
    d = DeviceSpec(name="x", num_sms=1, clock_ghz=1.0)
    assert d.cycles_to_ms(1e6) == pytest.approx(1.0)


def test_scaled_device():
    d = scaled_device(V100, 1234)
    assert d.memory_words == 1234
    assert d.num_sms == V100.num_sms
    assert V100.memory_words != 1234  # original untouched


def test_validation():
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", num_sms=0, clock_ghz=1.0)
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", num_sms=1, clock_ghz=0.0)
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", num_sms=1, clock_ghz=1.0, warp_size=3)
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", num_sms=1, clock_ghz=1.0, memory_words=0)
