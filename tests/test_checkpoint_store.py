"""Checkpoint store, atomic writes, and fingerprint guards."""

import json
import os

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointMismatchError,
    CheckpointStore,
    atomic_write_bytes,
    atomic_write_json,
    check_fingerprints,
    config_fingerprint,
    graph_fingerprint,
    run_durable,
)
from repro.core import CuTSConfig, CuTSMatcher
from repro.graph.generators import clique_graph, social_graph


# ---------------------------------------------------------------------------
# Atomic writes.
# ---------------------------------------------------------------------------


def test_atomic_write_bytes_roundtrip_and_replace(tmp_path):
    path = str(tmp_path / "blob.bin")
    atomic_write_bytes(path, b"first")
    assert open(path, "rb").read() == b"first"
    atomic_write_bytes(path, b"second")
    assert open(path, "rb").read() == b"second"
    # No temp litter: the tmp file was renamed into place.
    assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]


def test_atomic_write_json_roundtrip(tmp_path):
    path = str(tmp_path / "m.json")
    atomic_write_json(path, {"a": 1, "nested": {"b": [1, 2]}})
    assert json.load(open(path)) == {"a": 1, "nested": {"b": [1, 2]}}


# ---------------------------------------------------------------------------
# Snapshots.
# ---------------------------------------------------------------------------


def test_snapshot_roundtrip(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    bufs = [np.arange(5, dtype=np.int64), np.array([7, 8], dtype=np.int64)]
    store.save_snapshot(0, bufs, {"count": 3, "layout": []})
    loaded = store.load_latest_snapshot()
    assert loaded is not None
    seq, buffers, meta = loaded
    assert seq == 0
    assert meta["count"] == 3
    assert [b.tolist() for b in buffers] == [[0, 1, 2, 3, 4], [7, 8]]


def test_latest_snapshot_wins_and_prune_keeps_newest(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    for seq in range(4):
        store.save_snapshot(seq, [], {"count": seq})
    assert store.snapshot_seqs() == [0, 1, 2, 3]
    assert store.load_latest_snapshot()[2]["count"] == 3
    store.prune_snapshots(keep=2)
    assert store.snapshot_seqs() == [2, 3]
    store.prune_snapshots(keep=0)
    assert store.snapshot_seqs() == []


def test_corrupt_newest_snapshot_falls_back(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    store.save_snapshot(0, [np.arange(3, dtype=np.int64)], {"count": 1})
    # A torn write: snapshot-00000001.npz exists but is garbage.
    torn = os.path.join(store.directory, "snapshot-00000001.npz")
    with open(torn, "wb") as fh:
        fh.write(b"\x00not-a-zipfile")
    seq, buffers, meta = store.load_latest_snapshot()
    assert seq == 0
    assert meta["count"] == 1


def test_empty_store_has_no_snapshot(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    assert store.load_latest_snapshot() is None
    assert store.read_manifest() is None


# ---------------------------------------------------------------------------
# Spills and shard results.
# ---------------------------------------------------------------------------


def test_spill_roundtrip_and_delete(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    name = store.save_spill(0, np.arange(9, dtype=np.int64))
    assert name == "spill-00000000.npy"
    assert store.load_spill(name).tolist() == list(range(9))
    store.delete_spill(name)
    assert not os.path.exists(os.path.join(store.directory, name))


def test_spill_name_validation(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    with pytest.raises(ValueError):
        store.load_spill("../../etc/passwd")
    with pytest.raises(ValueError):
        store.delete_spill("manifest.json")


def test_part_results_roundtrip(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    store.save_part(2, {"count": 11})
    store.save_part(0, {"count": 5})
    parts = store.load_parts()
    assert parts == {0: {"count": 5}, 2: {"count": 11}}


def test_heartbeat_paths_live_under_hb(tmp_path):
    store = CheckpointStore(str(tmp_path / "job"))
    assert os.path.isdir(store.heartbeat_dir)
    assert store.heartbeat_path(3).endswith(os.path.join("hb", "part-00003"))


# ---------------------------------------------------------------------------
# Fingerprints.
# ---------------------------------------------------------------------------


def test_graph_fingerprint_distinguishes_graphs():
    a = social_graph(50, 3, seed=1)
    b = social_graph(50, 3, seed=2)
    assert graph_fingerprint(a) == graph_fingerprint(social_graph(50, 3, seed=1))
    assert graph_fingerprint(a) != graph_fingerprint(b)


def test_config_fingerprint_tracks_count_relevant_fields_only():
    base = config_fingerprint(CuTSConfig())
    # Count-relevant knob: changes the fingerprint.
    assert config_fingerprint(CuTSConfig(chunk_size=64)) != base
    # Count-irrelevant durability/runtime knobs: fingerprint unchanged,
    # so a resume may alter them freely.
    assert config_fingerprint(CuTSConfig(memory_budget_mb=64)) == base
    assert config_fingerprint(CuTSConfig(checkpoint_every=7)) == base
    assert config_fingerprint(CuTSConfig(lease_timeout_s=1.0)) == base
    assert config_fingerprint(CuTSConfig(lease_retries=9)) == base
    assert config_fingerprint(CuTSConfig(workers=8)) == base


def test_check_fingerprints_raises_on_mismatch():
    current = {"data": "abc", "query": "def"}
    check_fingerprints({"data": "abc", "query": "def"}, current)
    with pytest.raises(CheckpointMismatchError):
        check_fingerprints({"data": "abc", "query": "XXX"}, current)


# ---------------------------------------------------------------------------
# run_durable misuse guards.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_world():
    data = social_graph(120, 3, seed=3)
    return CuTSMatcher(data, CuTSConfig()), clique_graph(3)


def test_existing_job_requires_resume(tmp_path, small_world):
    matcher, query = small_world
    d = str(tmp_path / "job")
    run_durable(matcher, query, checkpoint_dir=d)
    with pytest.raises(ValueError, match="resume=True"):
        run_durable(matcher, query, checkpoint_dir=d)


def test_resume_requires_existing_manifest(tmp_path, small_world):
    matcher, query = small_world
    with pytest.raises(ValueError, match="nothing to resume"):
        run_durable(
            matcher, query, checkpoint_dir=str(tmp_path / "void"), resume=True
        )


def test_resume_refuses_mismatched_query(tmp_path, small_world):
    matcher, query = small_world
    d = str(tmp_path / "job")
    run_durable(matcher, query, checkpoint_dir=d)
    with pytest.raises(CheckpointMismatchError):
        run_durable(matcher, clique_graph(4), checkpoint_dir=d, resume=True)


def test_resume_of_complete_job_is_instant_and_exact(tmp_path, small_world):
    matcher, query = small_world
    d = str(tmp_path / "job")
    first = run_durable(matcher, query, checkpoint_dir=d)
    again = run_durable(matcher, query, checkpoint_dir=d, resume=True)
    assert again.count == first.count == matcher.match(query).count
    assert again.time_ms == first.time_ms


def test_match_api_guards(tmp_path, small_world):
    matcher, query = small_world
    with pytest.raises(ValueError, match="count-only"):
        matcher.match(
            query, checkpoint_dir=str(tmp_path / "x"), materialize=True
        )
    with pytest.raises(ValueError, match="requires checkpoint_dir"):
        matcher.match(query, resume=True)


def test_durable_serial_equals_inprocess(tmp_path, small_world):
    matcher, query = small_world
    baseline = matcher.match(query)
    durable = run_durable(
        matcher, query, checkpoint_dir=str(tmp_path / "j2"), checkpoint_every=3
    )
    assert durable.count == baseline.count
    assert durable.stats.paths_per_depth == baseline.stats.paths_per_depth


def test_durable_sharded_counts_sum(tmp_path, small_world):
    matcher, query = small_world
    baseline = matcher.match(query)
    total = 0
    for part in range(3):
        r = run_durable(
            matcher, query,
            checkpoint_dir=str(tmp_path / f"shard{part}"),
            part=part, num_parts=3,
        )
        assert r.shards == (part,)
        total += r.count
    assert total == baseline.count
