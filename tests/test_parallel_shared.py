"""SharedCSR: zero-copy round-trips and segment lifetime.

The contract under test: attaching reconstructs the exact graph without
copying; the **owner** (and only the owner) unlinks the segment; no
segment survives owner close — even when a worker that attached it is
SIGKILLed mid-flight."""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.graph import mesh_graph, random_graph, social_graph
from repro.parallel import SharedCSR
from repro.parallel.sharedmem import SharedCSRMeta


def _segment_exists(meta: SharedCSRMeta) -> bool:
    try:
        probe = SharedCSR.attach(meta)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def _assert_same_graph(a, b) -> None:
    assert b.num_vertices == a.num_vertices
    assert b.name == a.name
    for field in ("indptr", "indices", "rindptr", "rindices"):
        assert np.array_equal(getattr(b, field), getattr(a, field))
    if a.labels is None:
        assert b.labels is None
    else:
        assert np.array_equal(b.labels, a.labels)


def test_round_trip_unlabeled():
    g = social_graph(80, 3, community_edges=160, num_communities=8, seed=1)
    with SharedCSR.create(g) as shared:
        _assert_same_graph(g, shared.graph)
        attached = SharedCSR.attach(shared.meta)
        _assert_same_graph(g, attached.graph)
        attached.close()


def test_round_trip_labeled():
    g = mesh_graph(3, 3).with_labels(np.arange(9) % 3)
    with SharedCSR.create(g) as shared:
        attached = SharedCSR.attach(shared.meta)
        _assert_same_graph(g, attached.graph)
        attached.close()


def test_attach_is_zero_copy():
    g = mesh_graph(3, 3)
    with SharedCSR.create(g) as shared:
        attached = SharedCSR.attach(shared.meta)
        # Same physical pages: a write through the owner's view is
        # immediately visible through the attached mapping.  (The engine
        # never mutates the graph; this probes the mapping, then undoes.)
        original = int(shared.graph.indices[0])
        try:
            shared.graph.indices[0] = 999
            assert int(attached.graph.indices[0]) == 999
        finally:
            shared.graph.indices[0] = original
        attached.close()


def test_owner_close_unlinks_segment():
    shared = SharedCSR.create(mesh_graph(2, 2))
    meta = shared.meta
    assert _segment_exists(meta)
    shared.close()
    assert not _segment_exists(meta)
    with pytest.raises(ValueError):
        shared.graph
    shared.close()  # idempotent


def test_attacher_close_keeps_segment():
    shared = SharedCSR.create(mesh_graph(2, 2))
    attached = SharedCSR.attach(shared.meta)
    attached.close()
    assert _segment_exists(shared.meta)
    shared.close()
    assert not _segment_exists(shared.meta)


def test_finalizer_unlinks_on_garbage_collection():
    shared = SharedCSR.create(mesh_graph(2, 2))
    meta = shared.meta
    del shared
    assert not _segment_exists(meta)


def _attach_and_die(meta: SharedCSRMeta) -> None:  # pragma: no cover - child
    SharedCSR.attach(meta)
    os.kill(os.getpid(), signal.SIGKILL)


def test_no_leak_after_worker_crash():
    """A SIGKILLed attacher must neither destroy the segment under the
    owner nor leave it behind after the owner closes."""
    g = random_graph(40, 0.2, seed=2)
    shared = SharedCSR.create(g)
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    worker = ctx.Process(target=_attach_and_die, args=(shared.meta,))
    worker.start()
    worker.join(timeout=30)
    assert worker.exitcode == -signal.SIGKILL
    # Owner's mapping survived the crash ...
    assert int(shared.graph.num_vertices) == 40
    assert _segment_exists(shared.meta)
    # ... and owner close removes the name for good.
    meta = shared.meta
    shared.close()
    assert not _segment_exists(meta)


def test_meta_is_picklable_and_sized():
    import pickle

    g = mesh_graph(3, 3)
    with SharedCSR.create(g) as shared:
        meta = pickle.loads(pickle.dumps(shared.meta))
        assert meta == shared.meta
        assert meta.total_words == (
            2 * (g.num_vertices + 1) + 2 * g.num_edges
        )
