"""Property-based tests (hypothesis) on core data structures and the
matcher's correctness invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import networkx_count
from repro.core import CuTSMatcher
from repro.graph import (
    from_edges,
    from_undirected_edges,
    weakly_connected_components,
)
from repro.graph.csr import _segmented_searchsorted
from repro.storage import (
    CSFStore,
    PathTrie,
    compare_storage,
    deserialize_trie,
    serialize_trie,
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------- strategies
@st.composite
def undirected_graphs(draw, max_n=14, max_edges=30):
    n = draw(st.integers(min_value=2, max_value=max_n))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return from_undirected_edges(np.array(edges).reshape(-1, 2), num_vertices=n)


@st.composite
def directed_graphs(draw, max_n=12, max_edges=30):
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return from_edges(np.array(edges).reshape(-1, 2) if edges else np.zeros((0, 2), dtype=np.int64), num_vertices=n)


@st.composite
def connected_queries(draw, max_n=4):
    """Small connected undirected query graphs (random spanning tree +
    extra edges)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = []
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.append((parent, v))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=4,
        )
    )
    edges.extend(e for e in extra if e[0] != e[1])
    arr = np.array(edges).reshape(-1, 2) if edges else np.zeros((0, 2), dtype=np.int64)
    return from_undirected_edges(arr, num_vertices=n)


@st.composite
def tries(draw, max_depth=4, max_width=8):
    roots = draw(
        st.lists(st.integers(0, 50), min_size=1, max_size=max_width)
    )
    t = PathTrie.from_roots(np.array(roots, dtype=np.int64))
    depth = draw(st.integers(0, max_depth - 1))
    for _ in range(depth):
        prev = t.num_paths()
        width = draw(st.integers(1, max_width))
        pa = draw(
            st.lists(st.integers(0, prev - 1), min_size=width, max_size=width)
        )
        ca = draw(st.lists(st.integers(0, 50), min_size=width, max_size=width))
        t.append_level(np.array(pa, dtype=np.int64), np.array(ca, dtype=np.int64))
    return t


# ------------------------------------------------------------ matcher
@SETTINGS
@given(data=undirected_graphs(), query=connected_queries())
def test_matcher_count_matches_networkx(data, query):
    r = CuTSMatcher(data).match(query)
    assert r.count == networkx_count(data, query)


@SETTINGS
@given(data=directed_graphs(), query=connected_queries(max_n=3))
def test_matcher_directed_count_matches_networkx(data, query):
    r = CuTSMatcher(data).match(query)
    assert r.count == networkx_count(data, query)


@SETTINGS
@given(data=undirected_graphs(max_n=10), query=connected_queries(max_n=3))
def test_matcher_materialized_rows_are_embeddings(data, query):
    r = CuTSMatcher(data).match(query, materialize=True)
    assert len(r.matches) == r.count
    seen = set()
    for row in r.matches:
        key = tuple(row.tolist())
        assert key not in seen
        seen.add(key)
        assert len(set(key)) == len(key)
        for u, v in query.edge_list():
            assert data.has_edge(int(row[u]), int(row[v]))


@SETTINGS
@given(data=undirected_graphs(max_n=10), query=connected_queries(max_n=3))
def test_gsi_agrees_with_cuts(data, query):
    from repro.baselines import GSIMatcher

    assert (
        GSIMatcher(data).match(query).count
        == CuTSMatcher(data).match(query).count
    )


# --------------------------------------------------------------- trie
@SETTINGS
@given(t=tries())
def test_trie_serialize_round_trip(t):
    back = deserialize_trie(serialize_trie(t))
    assert back.depth == t.depth
    for a, b in zip(t.levels, back.levels):
        assert np.array_equal(a.pa, b.pa)
        assert np.array_equal(a.ca, b.ca)


@SETTINGS
@given(t=tries(), data=st.data())
def test_trie_extract_subtrie_paths_preserved(t, data):
    level = t.depth - 1
    n = t.num_paths(level)
    k = data.draw(st.integers(1, n))
    idx = np.array(
        data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k)
        ),
        dtype=np.int64,
    )
    sub = t.extract_subtrie(level, idx)
    assert np.array_equal(sub.paths_at(level), t.paths_at(level, idx))


@SETTINGS
@given(t=tries())
def test_trie_csf_equivalence(t):
    csf = CSFStore.from_path_trie(t)
    a = sorted(map(tuple, t.paths_at(t.depth - 1).tolist()))
    b = sorted(map(tuple, csf.paths().tolist()))
    assert a == b


@SETTINGS
@given(
    counts=st.lists(st.integers(0, 10**6), min_size=1, max_size=8)
)
def test_storage_accounting_identities(counts):
    comp = compare_storage(counts)
    # trie words at depth l == 2 * sum of counts up to l
    running = 0
    for lv, c in enumerate(counts):
        running += 2 * c
        assert comp.trie[lv] == running
        assert comp.naive[lv] == (lv + 1) * c


# ---------------------------------------------------------- searchsorted
@SETTINGS
@given(data=st.data())
def test_segmented_searchsorted_property(data):
    num_rows = data.draw(st.integers(1, 10))
    rows = [
        np.sort(
            np.array(
                data.draw(st.lists(st.integers(0, 100), max_size=10)),
                dtype=np.int64,
            )
        )
        for _ in range(num_rows)
    ]
    flat = (
        np.concatenate(rows)
        if any(len(r) for r in rows)
        else np.zeros(0, dtype=np.int64)
    )
    offsets = np.cumsum([0] + [len(r) for r in rows]).astype(np.int64)
    values = np.array(
        [data.draw(st.integers(0, 100)) for _ in range(num_rows)],
        dtype=np.int64,
    )
    pos = _segmented_searchsorted(flat, offsets[:-1], offsets[1:], values)
    for i, r in enumerate(rows):
        assert pos[i] - offsets[i] == np.searchsorted(r, values[i])


# ------------------------------------------------------------------ wcc
@SETTINGS
@given(g=directed_graphs(max_n=20, max_edges=40))
def test_wcc_matches_networkx(g):
    import networkx as nx

    ours = weakly_connected_components(g)
    gx = nx.DiGraph()
    gx.add_nodes_from(range(g.num_vertices))
    gx.add_edges_from(map(tuple, g.edge_list()))
    assert int(ours.max()) + 1 == nx.number_weakly_connected_components(gx)
    for comp in nx.weakly_connected_components(gx):
        assert len({int(ours[v]) for v in comp}) == 1


@SETTINGS
@given(g=undirected_graphs())
def test_wcc_label_is_partition(g):
    comp = weakly_connected_components(g)
    assert comp.shape == (g.num_vertices,)
    # labels are consecutive from 0
    assert set(np.unique(comp)) == set(range(int(comp.max()) + 1))


# ------------------------------------------------------------- ordering
@SETTINGS
@given(query=connected_queries(max_n=6))
def test_order_is_permutation_with_constraints(query):
    from repro.core import max_degree_order

    order = max_degree_order(query)
    assert sorted(order.sequence) == list(range(query.num_vertices))
    for n in range(1, order.num_steps):
        fwd, bwd = order.constraints_at(n)
        if query.num_edges:
            assert fwd or bwd  # connected queries always constrain
