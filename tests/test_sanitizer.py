"""Tests for the runtime lock-order sanitizer (analysis/sanitizer.py).

The sanitizer is opt-in: with ``REPRO_SANITIZE`` unset the factories
return plain ``threading`` primitives, so these tests flip the
environment per-test (the factories read it at call time) and reset the
global registry around each one.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.sanitizer import (
    enabled,
    make_condition,
    make_lock,
    make_rlock,
    registry,
)

PLAIN_LOCK_TYPE = type(threading.Lock())
PLAIN_RLOCK_TYPE = type(threading.RLock())


@pytest.fixture
def sanitize(monkeypatch):
    """Enable the sanitizer and hand back a clean registry.

    The registry is global and the session-finish hook in conftest.py
    reads it, so the fixture snapshots whatever the suite recorded so
    far and restores it afterwards — the toy inversions provoked here
    must not fail the real session, and real edges must survive."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    reg = registry()
    saved = (
        dict(reg.edges),
        list(reg.inversions),
        dict(reg.contended_while_held),
    )
    reg.reset()
    yield reg
    reg.reset()
    reg.edges.update(saved[0])
    reg.inversions.extend(saved[1])
    reg.contended_while_held.update(saved[2])


def test_factories_return_plain_primitives_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not enabled()
    assert isinstance(make_lock("X._lock"), PLAIN_LOCK_TYPE)
    assert isinstance(make_rlock("X._lock"), PLAIN_RLOCK_TYPE)
    cond = make_condition("X._cond")
    assert isinstance(cond, threading.Condition)
    assert isinstance(cond._lock, PLAIN_RLOCK_TYPE)


def test_instrumented_lock_still_locks(sanitize):
    lock = make_lock("Toy._lock")
    with lock:
        assert lock.locked()
        assert not lock.acquire(blocking=False)
    assert not lock.locked()
    assert registry().held_names() == ()


def test_two_threads_taking_opposite_orders_is_an_inversion(sanitize):
    """The toy deadlock: thread 1 nests A->B, thread 2 nests B->A.  The
    schedule here is serialized, so the run completes — but the order
    graph has both edges, which is exactly the latent deadlock RP010
    models, and the sanitizer must report it."""
    a = make_lock("ToyEast._lock")
    b = make_lock("ToyWest._lock")

    def east_first():
        with a:
            with b:
                pass

    def west_first():
        with b:
            with a:
                pass

    t1 = threading.Thread(target=east_first, name="east")
    t1.start()
    t1.join()
    t2 = threading.Thread(target=west_first, name="west")
    t2.start()
    t2.join()

    report = registry().report()
    assert ("ToyEast._lock", "ToyWest._lock", 1) in report["edges"]
    assert ("ToyWest._lock", "ToyEast._lock", 1) in report["edges"]
    assert len(report["inversions"]) == 1
    inv = report["inversions"][0]
    assert inv["pair"] == ["ToyEast._lock", "ToyWest._lock"]
    assert inv["thread"] == "west"


def test_consistent_order_is_not_an_inversion(sanitize):
    a = make_lock("OrderedA._lock")
    b = make_lock("OrderedB._lock")
    for _ in range(3):
        with a:
            with b:
                pass
    report = registry().report()
    assert report["inversions"] == []
    assert ("OrderedA._lock", "OrderedB._lock", 3) in report["edges"]


def test_reentrant_reacquire_records_no_extra_edges(sanitize):
    outer = make_lock("Outer._lock")
    inner = make_rlock("Inner._lock")
    with outer:
        with inner:
            with inner:  # re-entry: no second (Outer, Inner) edge
                pass
    report = registry().report()
    assert report["edges"] == [("Outer._lock", "Inner._lock", 1)]


def test_condition_wait_fully_releases_the_instrumented_lock(sanitize):
    cond = make_condition("Toy._cond")
    entered = threading.Event()
    hits = []

    def waiter():
        with cond:
            entered.set()
            hits.append("waiting")
            cond.wait(timeout=5.0)
            hits.append("woken")

    t = threading.Thread(target=waiter)
    t.start()
    entered.wait(timeout=5.0)
    # wait() must have released the lock or this acquire deadlocks.
    with cond:
        cond.notify_all()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert hits == ["waiting", "woken"]


def test_unexercised_reports_dead_static_edges(sanitize):
    a = make_lock("Live._lock")
    b = make_lock("Also._lock")
    with a:
        with b:
            pass
    static = {
        ("Live._lock", "Also._lock"): ("repro/service/x.py", 10),
        ("Dead._lock", "Deader._lock"): ("repro/service/y.py", 20),
        ("m.py:local_lock", "Dead._lock"): ("repro/service/y.py", 30),
    }
    dead = registry().unexercised(static)
    # The exercised edge is gone; the anonymous id is skipped.
    assert dead == [
        ("Dead._lock", "Deader._lock", "repro/service/y.py:20")
    ]


def test_production_lock_names_match_the_static_ids(sanitize):
    """The service stack's factories use ``Class._attr`` names, so the
    runtime edges diff against RP010's static graph by construction."""
    from repro.service.cache import LRUBytesCache

    cache = LRUBytesCache(max_bytes=1024)
    assert cache._lock.name == "LRUBytesCache._lock"
