"""Tests for the paper's query-set generation (§6.2)."""

import numpy as np
import pytest

from repro.graph import all_query_sets, atlas_graphs, paper_query_set
from repro.graph.queries import QUERY_SIZES


def test_atlas_connected_counts():
    # Known counts of connected simple graphs on n vertices.
    assert len(atlas_graphs(5)) == 21
    assert len(atlas_graphs(6)) == 112
    assert len(atlas_graphs(7)) == 853


def test_atlas_rejects_large_n():
    with pytest.raises(ValueError, match="Atlas"):
        atlas_graphs(8)


def test_paper_set_sizes():
    for n in QUERY_SIZES:
        qs = paper_query_set(n)
        assert len(qs) == 11
        assert all(q.num_vertices == n for q in qs)


def test_paper_set_sorted_by_edges_desc():
    qs = paper_query_set(5)
    undirected_edges = [q.num_edges // 2 for q in qs]
    assert undirected_edges == sorted(undirected_edges, reverse=True)
    # densest 5-vertex graph is K5 with 10 edges
    assert undirected_edges[0] == 10


def test_paper_set_top_edges_exact_for_5():
    # 5-vertex connected graph counts by edges: 10:1, 9:1, 8:2, 7:4, 6:6
    edges = [q.num_edges // 2 for q in paper_query_set(5)]
    assert edges[:8] == [10, 9, 8, 8, 7, 7, 7, 7]
    assert edges[8:] == [6, 6, 6]


def test_paper_set_deterministic_per_seed():
    a = [q.name for q in paper_query_set(6, seed=3)]
    b = [q.name for q in paper_query_set(6, seed=3)]
    assert a == b


def test_paper_set_seed_changes_tiebreaks():
    # The 6-edge tie class has 6 members; seeds select different triples.
    seen = set()
    for seed in range(6):
        structures = tuple(
            tuple(map(tuple, q.edge_list())) for q in paper_query_set(5, seed=seed)
        )
        seen.add(structures)
    assert len(seen) > 1


def test_paper_set_top_k():
    qs = paper_query_set(5, top_k=3)
    assert len(qs) == 3


def test_all_query_sets_shape():
    sets = all_query_sets()
    assert set(sets.keys()) == set(QUERY_SIZES)
    assert sum(len(v) for v in sets.values()) == 33


def test_queries_bidirected():
    for q in paper_query_set(5, top_k=5):
        assert np.array_equal(q.out_degrees, q.in_degrees)


def test_query_names_encode_edges():
    q = paper_query_set(5)[0]
    assert q.name == "q5_e10_r0"
