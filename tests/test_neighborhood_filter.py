"""Tests for the GraphQL/GADDI-style neighbourhood filter extension."""

import numpy as np

from repro.baselines import networkx_count
from repro.core import CuTSConfig, CuTSMatcher
from repro.core.candidates import neighborhood_filter_mask, root_candidates
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_undirected_edges,
    mesh_graph,
    random_graph,
    social_graph,
    star_graph,
)


def test_mask_sound_on_random_cases():
    """The filter must never remove a vertex that carries an embedding."""
    data = random_graph(30, 0.25, seed=5)
    for query in (clique_graph(3), cycle_graph(4), star_graph(3)):
        base = CuTSMatcher(data)
        full = base.match(query, materialize=True)
        order0 = full.order[0]
        roots_plain = root_candidates(data, query, order0)
        nmask = neighborhood_filter_mask(data, query, order0, roots_plain)
        survivors = set(roots_plain[nmask].tolist())
        if full.count:
            used_roots = set(full.matches[:, order0].tolist())
            assert used_roots <= survivors


def test_counts_invariant_with_filter():
    cases = [
        (random_graph(30, 0.25, seed=7), cycle_graph(4)),
        (social_graph(80, 3, community_edges=100, seed=2), clique_graph(3)),
        (mesh_graph(4, 4), chain_graph(4)),
    ]
    for data, query in cases:
        plain = CuTSMatcher(data).match(query).count
        filtered = CuTSMatcher(
            data, CuTSConfig(neighborhood_filter=True)
        ).match(query).count
        assert filtered == plain == networkx_count(data, query)


def test_filter_prunes_hub_impostors():
    """A vertex with enough degree but weak neighbours is pruned.

    Query: star with 2 leaves where the *hub must have well-connected
    neighbours* — build a query whose root's neighbours have degree 2.
    """
    # query: triangle (every vertex has 2 neighbours of degree 2)
    query = clique_graph(3)
    # data: a triangle (valid) plus a star whose hub has degree 3 but
    # only degree-1 neighbours (degree filter passes it; the
    # neighbourhood filter must reject it).
    data = from_undirected_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (3, 5), (3, 6)]
    )
    roots = root_candidates(data, query, 0)
    assert 3 in roots.tolist()  # plain degree filter is fooled
    nmask = neighborhood_filter_mask(data, query, 0, roots)
    kept = roots[nmask].tolist()
    assert 3 not in kept
    assert {0, 1, 2} <= set(kept)


def test_filter_trivial_for_leaf_query_vertices():
    data = mesh_graph(3, 3)
    q = star_graph(2)
    # leaves have no out-neighbour constraints from a 0-degree q-vertex?
    # hub has 2 neighbours of degree 1 each; every mesh vertex passes.
    mask = neighborhood_filter_mask(data, q, 1, np.arange(9))
    # q-vertex 1 is a leaf with one neighbour (the hub, degree 2)
    assert mask.dtype == bool
    assert mask.shape == (9,)


def test_filter_empty_candidates():
    data = mesh_graph(3, 3)
    q = clique_graph(3)
    mask = neighborhood_filter_mask(
        data, q, 0, np.zeros(0, dtype=np.int64)
    )
    assert mask.shape == (0,)


def test_filter_charges_extra_cost():
    from repro.gpusim import CostModel, V100

    data = social_graph(100, 3, community_edges=120, seed=3)
    q = clique_graph(3)
    c_plain, c_filt = CostModel(V100), CostModel(V100)
    root_candidates(data, q, 0, c_plain)
    root_candidates(data, q, 0, c_filt, neighborhood_filter=True)
    assert c_filt.dram_read_words > c_plain.dram_read_words
