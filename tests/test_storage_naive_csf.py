"""Tests for the naive flat store, CSF store, and storage accounting."""

import numpy as np
import pytest

from repro.storage import (
    CSFStore,
    NaivePathStore,
    PathTrie,
    compare_storage,
    csf_words,
    naive_words,
    theoretical_reduction_factor,
    theoretical_trie_bound,
    trie_words,
)


# ----------------------------------------------------------- NaivePathStore
def test_naive_from_roots():
    s = NaivePathStore.from_roots(np.array([1, 2, 3]))
    assert s.depth == 1
    assert s.num_paths == 3
    assert s.storage_words == 3


def test_naive_extend_copies_prefix():
    s = NaivePathStore.from_roots(np.array([1, 2]))
    s.extend(np.array([0, 0, 1]), np.array([5, 6, 7]))
    assert s.depth == 2
    assert s.materialize().tolist() == [[1, 5], [1, 6], [2, 7]]
    assert s.storage_words == 6  # depth 2 x 3 paths


def test_naive_extend_mismatched():
    s = NaivePathStore.from_roots(np.array([1]))
    with pytest.raises(ValueError):
        s.extend(np.array([0, 0]), np.array([5]))


def test_naive_storage_growth_is_quadraticish():
    s = NaivePathStore.from_roots(np.array([0]))
    words = [s.storage_words]
    for depth in range(1, 5):
        s.extend(np.zeros(1, dtype=np.int64), np.array([depth]))
        words.append(s.storage_words)
    assert words == [1, 2, 3, 4, 5]  # one path: l words at depth l


# ------------------------------------------------------------------- CSF
def _demo_trie() -> PathTrie:
    t = PathTrie.from_roots(np.array([0, 1]))
    t.append_level(pa=np.array([0, 0, 1]), ca=np.array([3, 4, 2]))
    t.append_level(
        pa=np.array([0, 1, 0, 2, 1, 0]), ca=np.array([2, 4, 6, 1, 7, 3])
    )
    return t


def test_csf_paths_match_trie():
    t = _demo_trie()
    csf = CSFStore.from_path_trie(t)
    ours = sorted(map(tuple, t.paths_at(2).tolist()))
    theirs = sorted(map(tuple, csf.paths().tolist()))
    assert ours == theirs


def test_csf_children_contiguous():
    t = _demo_trie()
    csf = CSFStore.from_path_trie(t)
    for lv in range(csf.depth - 1):
        level = csf.levels[lv]
        assert level.child_index[0] == 0
        assert level.child_index[-1] == csf.levels[lv + 1].num_entries
        assert np.all(np.diff(level.child_index) >= 0)


def test_csf_storage_words():
    t = _demo_trie()
    csf = CSFStore.from_path_trie(t)
    # per level: entries + (entries + 1)
    assert csf.total_storage_words == (2 + 3) + (3 + 4) + (6 + 7)


def test_csf_empty():
    csf = CSFStore.from_path_trie(PathTrie())
    assert csf.depth == 0
    assert csf.paths().shape == (0, 0)


def test_csf_single_level():
    t = PathTrie.from_roots(np.array([7, 8]))
    csf = CSFStore.from_path_trie(t)
    assert csf.paths().tolist() == [[7], [8]]


# ------------------------------------------------------------ accounting
def test_naive_words_formula():
    assert naive_words([10, 20, 30]) == [10, 40, 90]


def test_trie_words_cumulative():
    assert trie_words([10, 20, 30]) == [20, 60, 120]


def test_csf_words_formula():
    assert csf_words([10, 20]) == [21, 62]


def test_compare_storage_ratios():
    comp = compare_storage([100, 1000, 10000])
    # depth 1 is always exactly 0.5 (PA+CA vs one word)
    assert comp.compression_ratios[0] == pytest.approx(0.5)
    # growing counts push the ratio up
    assert comp.compression_ratios[2] > comp.compression_ratios[1]


def test_compare_storage_rows_shape():
    rows = compare_storage([5, 10]).rows()
    assert len(rows) == 2
    assert rows[0]["partial_path_depth"] == 1
    assert set(rows[0]) == {
        "partial_path_depth",
        "naive_storage_words",
        "our_storage_words",
        "compression_ratio",
    }


def test_compare_storage_zero_paths():
    comp = compare_storage([0, 0])
    assert comp.compression_ratios[0] == float("inf")


def test_table1_shape_geometric_growth():
    """With geometric path growth the ratio approaches l*(ds-1)/(2*ds) ~
    grows with depth — the paper's Table 1 shape."""
    counts = [100 * 4**i for i in range(5)]
    ratios = compare_storage(counts).compression_ratios
    assert all(b > a for a, b in zip(ratios[1:], ratios[2:]))
    assert ratios[-1] > 1.0


def test_theoretical_trie_bound_matches_series():
    # |P1|(ds^l - 1)/(ds-1) for p1=10, ds=2, depth=4: 10*15 = 150
    assert theoretical_trie_bound(10, 2.0, 4) == pytest.approx(150.0)


def test_theoretical_trie_bound_ds_one():
    assert theoretical_trie_bound(10, 1.0, 4) == pytest.approx(40.0)


def test_theoretical_trie_bound_bad_depth():
    with pytest.raises(ValueError):
        theoretical_trie_bound(10, 2.0, 0)


def test_theoretical_reduction_factor():
    assert theoretical_reduction_factor(3.0, 5) == pytest.approx(10.0)


def test_accounting_matches_real_stores():
    """The closed-form accounting must equal the live data structures."""
    trie = _demo_trie()
    counts = [lv.num_paths for lv in trie.levels]
    assert trie_words(counts)[-1] == trie.total_storage_words
    csf = CSFStore.from_path_trie(trie)
    assert csf_words(counts)[-1] == csf.total_storage_words
    naive = NaivePathStore.from_roots(trie.levels[0].ca)
    naive.extend(trie.levels[1].pa, trie.levels[1].ca)
    naive.extend(trie.levels[2].pa, trie.levels[2].ca)
    assert naive_words(counts)[-1] == naive.storage_words
