"""Tests for the warp / virtual-warp / scheduling models."""

import numpy as np
import pytest

from repro.gpusim import (
    V100,
    bin_paths_by_work,
    device_worker_count,
    idle_lane_cycles,
    load_imbalance,
    select_virtual_warp_size,
    shuffled_worker_loads,
    strided_worker_loads,
)


# ------------------------------------------------------- virtual warps
def test_vw_size_rounds_up_to_pow2():
    assert select_virtual_warp_size(3.0) == 4
    assert select_virtual_warp_size(4.0) == 4
    assert select_virtual_warp_size(5.0) == 8


def test_vw_size_bounds():
    assert select_virtual_warp_size(0.0) == 2
    assert select_virtual_warp_size(1.0) == 2
    assert select_virtual_warp_size(1000.0) == 32


def test_vw_size_negative():
    with pytest.raises(ValueError):
        select_virtual_warp_size(-1.0)


# ---------------------------------------------------------- scheduling
def test_strided_loads_round_robin():
    costs = np.array([1, 2, 3, 4, 5, 6], dtype=float)
    loads = strided_worker_loads(costs, 2)
    assert loads.tolist() == [9.0, 12.0]  # evens vs odds


def test_strided_loads_more_workers_than_items():
    loads = strided_worker_loads(np.array([5.0]), 4)
    assert loads.tolist() == [5.0, 0.0, 0.0, 0.0]


def test_strided_loads_empty():
    loads = strided_worker_loads(np.zeros(0), 3)
    assert loads.tolist() == [0.0, 0.0, 0.0]


def test_strided_loads_invalid_workers():
    with pytest.raises(ValueError):
        strided_worker_loads(np.array([1.0]), 0)


def test_shuffle_fixes_clustered_imbalance():
    """The paper's randomized-placement rationale: id-clustered heavy
    items pile onto adjacent workers under the strided schedule."""
    costs = np.zeros(1000)
    costs[:100] = 100.0  # heavy items clustered at low ids
    workers = 100
    rng = np.random.default_rng(0)
    load_imbalance(shuffled_worker_loads(costs, workers, rng))
    # static puts all heavy items on worker 0..? Actually with stride
    # they land on workers 0..99 one each -> balanced. Make them truly
    # clustered per worker instead:
    costs2 = np.zeros(1000)
    costs2[::10] = 100.0  # every 10th: with 100 workers -> workers 0,10,..
    static2 = load_imbalance(strided_worker_loads(costs2, workers))
    shuffled2 = load_imbalance(shuffled_worker_loads(costs2, workers, rng))
    assert static2 > shuffled2


def test_load_imbalance_balanced():
    assert load_imbalance(np.array([2.0, 2.0, 2.0])) == pytest.approx(1.0)


def test_load_imbalance_degenerate():
    assert load_imbalance(np.zeros(0)) == 1.0
    assert load_imbalance(np.zeros(3)) == 1.0


# --------------------------------------------------------------- bins
def test_bin_paths_by_work():
    work = np.array([1, 2, 3, 8, 9, 40])
    bins = bin_paths_by_work(work)
    assert set(bins) <= {1, 2, 4, 8, 16, 32}
    assert 0 in bins[1] or 0 in bins[2]
    assert 5 in bins[32]  # clipped to warp size
    total = sum(len(v) for v in bins.values())
    assert total == len(work)


def test_bin_paths_empty():
    assert bin_paths_by_work(np.zeros(0, dtype=np.int64)) == {}


# ---------------------------------------------------------- idle lanes
def test_idle_lanes_exact():
    # widths 3 on vw=4: 1 step, 1 idle lane each
    assert idle_lane_cycles(np.array([3, 3]), 4) == 2


def test_idle_lanes_multi_step():
    # width 5 on vw=4: 2 steps = 8 lanes, 3 idle
    assert idle_lane_cycles(np.array([5]), 4) == 3


def test_idle_lanes_zero_width_counts_one_step():
    assert idle_lane_cycles(np.array([0]), 4) == 4


def test_idle_lanes_empty():
    assert idle_lane_cycles(np.zeros(0, dtype=np.int64), 4) == 0


def test_idle_lanes_invalid_vw():
    with pytest.raises(ValueError):
        idle_lane_cycles(np.array([1]), 0)


def test_full_warp_wastes_more_than_virtual():
    """§4.1.2: full warps idle on low-degree graphs; virtual warps don't."""
    widths = np.full(100, 3)
    assert idle_lane_cycles(widths, 32) > idle_lane_cycles(widths, 4)


# ------------------------------------------------------------ workers
def test_device_worker_count():
    full = device_worker_count(V100, 32)
    assert full == V100.max_resident_warps
    assert device_worker_count(V100, 8) == 4 * full


def test_device_worker_count_occupancy():
    half = device_worker_count(V100, 32, occupancy=0.5)
    assert half == V100.max_resident_warps // 2
    with pytest.raises(ValueError):
        device_worker_count(V100, 32, occupancy=0.0)
