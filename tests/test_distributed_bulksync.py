"""Tests for the bulk-synchronous (rejected §4.2 strategy) runtime."""

import numpy as np
import pytest

from repro.baselines import networkx_count
from repro.core import CuTSConfig
from repro.distributed import BulkSyncCuTS, DistributedCuTS
from repro.distributed.bulksync import _merge_tries
from repro.graph import clique_graph, cycle_graph, from_edges, social_graph
from repro.storage import PathTrie


@pytest.fixture(scope="module")
def data():
    return social_graph(150, 3, community_edges=250, seed=21)


@pytest.fixture(scope="module")
def query():
    return cycle_graph(4)


@pytest.mark.parametrize("num_ranks", [1, 2, 4])
def test_bulksync_counts_correct(data, query, num_ranks):
    res = BulkSyncCuTS(data, num_ranks).match(query)
    assert res.count == networkx_count(data, query)


def test_bulksync_single_vertex_query(data):
    q = from_edges([], num_vertices=1)
    res = BulkSyncCuTS(data, 3).match(q)
    assert res.count == data.num_vertices


def test_bulksync_empty_query_rejected(data):
    with pytest.raises(ValueError):
        BulkSyncCuTS(data, 2).match(from_edges([], num_vertices=0))


def test_bulksync_invalid_ranks(data):
    with pytest.raises(ValueError):
        BulkSyncCuTS(data, 0)


def test_bulksync_reports_barrier_waste(data, query):
    res = BulkSyncCuTS(data, 4).match(query)
    assert len(res.barrier_wait_ms) == 4
    # someone always waits (ranks never finish at identical clocks)
    assert res.total_barrier_waste_ms >= 0.0
    assert res.levels == query.num_vertices - 1


def test_bulksync_ships_tries(data, query):
    res = BulkSyncCuTS(data, 4).match(query)
    # redistribution moved serialized tries at least once on skewed input
    assert res.words_transferred >= 0


def test_async_beats_bulksync_under_skew():
    """The paper's §4.2 argument, measured on a skewed workload: the
    async work-stealing runtime beats the barrier-synchronous strawman
    when per-rank work is uneven (its whole point)."""
    from repro.graph import from_undirected_edges, star_graph

    edges = [(0, i) for i in range(2, 42)] + [(1, i) for i in range(42, 82)]
    skew = from_undirected_edges(edges)
    q = star_graph(3)
    cfg = CuTSConfig(chunk_size=32)
    bulk = BulkSyncCuTS(skew, 4, cfg).match(q)
    async_ = DistributedCuTS(skew, 4, cfg).match(q)
    assert async_.count == bulk.count
    assert async_.runtime_ms < bulk.runtime_ms


def test_bulksync_within_band_when_balanced(data, query):
    """On a well-balanced workload the strategies stay comparable —
    bulk-sync's losses are barrier waits and per-level trie shipping,
    both small when stride partitioning already balances the work."""
    cfg = CuTSConfig(chunk_size=64)
    bulk = BulkSyncCuTS(data, 4, cfg).match(query)
    async_ = DistributedCuTS(data, 4, cfg).match(query)
    assert async_.count == bulk.count
    ratio = async_.runtime_ms / bulk.runtime_ms
    assert 0.3 < ratio < 3.0


def test_as_distributed_result_adapter(data, query):
    res = BulkSyncCuTS(data, 2).match(query)
    adapted = res.as_distributed_result()
    assert adapted.count == res.count
    assert adapted.runtime_ms == res.runtime_ms


def test_merge_tries():
    a = PathTrie.from_roots(np.array([0, 1]))
    a.append_level(np.array([0, 1]), np.array([5, 6]))
    b = PathTrie.from_roots(np.array([2]))
    b.append_level(np.array([0]), np.array([7]))
    merged = _merge_tries(a, b)
    assert merged.num_paths(0) == 3
    assert merged.num_paths(1) == 3
    assert merged.paths_at(1).tolist() == [[0, 5], [1, 6], [2, 7]]


def test_merge_tries_depth_mismatch():
    a = PathTrie.from_roots(np.array([0]))
    b = PathTrie.from_roots(np.array([1]))
    b.append_level(np.array([0]), np.array([2]))
    with pytest.raises(ValueError):
        _merge_tries(a, b)


def test_bulksync_zero_match(data):
    q = clique_graph(6)
    res = BulkSyncCuTS(data, 2).match(q)
    assert res.count == networkx_count(data, q)
