"""Tests for the labeled-matching extension (GSI's native domain).

The paper evaluates unlabeled graphs; the framework generalises to
vertex-labeled subgraph isomorphism, which is what GSI's signature
filtering is built for.  Both engines, the DFS reference and the
networkx oracle must agree under labels.
"""

import numpy as np
import pytest

from repro.baselines import GSIMatcher, dfs_count, networkx_count
from repro.core import CuTSConfig, CuTSMatcher
from repro.graph import (
    clique_graph,
    cycle_graph,
    from_undirected_edges,
    random_graph,
    read_gsi_format,
    split_components,
    write_gsi_format,
)


def labeled(graph, seed=0, num_labels=3):
    rng = np.random.default_rng(seed)
    return graph.with_labels(rng.integers(0, num_labels, graph.num_vertices))


@pytest.fixture
def ldata():
    return labeled(random_graph(30, 0.3, seed=4), seed=1)


@pytest.fixture
def lquery():
    return labeled(cycle_graph(4), seed=2)


def test_with_labels_shape_check():
    g = clique_graph(3)
    with pytest.raises(ValueError, match="labels"):
        g.with_labels(np.zeros(5, dtype=np.int64))


def test_labels_restrict_matches(ldata, lquery):
    labeled_count = CuTSMatcher(ldata).match(lquery).count
    unlabeled_count = CuTSMatcher(
        random_graph(30, 0.3, seed=4)
    ).match(cycle_graph(4)).count
    assert labeled_count < unlabeled_count


def test_labeled_count_matches_networkx(ldata, lquery):
    assert CuTSMatcher(ldata).match(lquery).count == networkx_count(
        ldata, lquery
    )


def test_labeled_gsi_agrees(ldata, lquery):
    assert (
        GSIMatcher(ldata).match(lquery).count
        == CuTSMatcher(ldata).match(lquery).count
    )


def test_labeled_dfs_agrees(ldata, lquery):
    assert dfs_count(ldata, lquery) == networkx_count(ldata, lquery)


def test_labeled_materialized_respect_labels(ldata, lquery):
    r = CuTSMatcher(ldata).match(lquery, materialize=True)
    for row in r.matches:
        for q in range(lquery.num_vertices):
            assert ldata.labels[row[q]] == lquery.labels[q]


def test_gsi_signature_filter_active_with_labels(ldata, lquery):
    """With labels, GSI's root set is label-filtered (not all |V|)."""
    r = GSIMatcher(ldata).match(lquery)
    assert r.stats.paths_per_depth[0] < ldata.num_vertices


def test_unlabeled_query_on_labeled_data_ignores_labels(ldata):
    q = cycle_graph(4)  # no labels
    assert CuTSMatcher(ldata).match(q).count == networkx_count(ldata, q)


def test_uniform_labels_equal_unlabeled():
    g = random_graph(25, 0.3, seed=6)
    q = clique_graph(3)
    gl = g.with_labels(np.zeros(g.num_vertices, dtype=np.int64))
    ql = q.with_labels(np.zeros(3, dtype=np.int64))
    assert CuTSMatcher(gl).match(ql).count == CuTSMatcher(g).match(q).count


def test_labels_survive_component_split():
    g = from_undirected_edges([(0, 1), (2, 3)]).with_labels(
        np.array([5, 6, 7, 8])
    )
    parts = split_components(g)
    all_labels = sorted(
        int(l) for sub, _ in parts for l in sub.labels
    )
    assert all_labels == [5, 6, 7, 8]


def test_labels_gsi_format_round_trip(tmp_path):
    g = labeled(random_graph(10, 0.4, seed=3), seed=9)
    p = tmp_path / "g.g"
    write_gsi_format(g, p)
    back = read_gsi_format(p)
    if back.labels is None:
        # possible only if all sampled labels were 0
        assert not g.labels.any()
    else:
        assert np.array_equal(back.labels, g.labels)


def test_labels_reverse_preserved(ldata):
    assert np.array_equal(ldata.reverse().labels, ldata.labels)


def test_labeled_distributed_matches():
    from repro.distributed import DistributedCuTS

    data = labeled(random_graph(60, 0.15, seed=8), seed=3)
    query = labeled(cycle_graph(4), seed=4)
    res = DistributedCuTS(data, 3, CuTSConfig(chunk_size=16)).match(query)
    assert res.count == networkx_count(data, query)
