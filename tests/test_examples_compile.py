"""Examples and scripts must at least compile (full runs are manual)."""

import py_compile
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
SCRIPTS = sorted((REPO / "scripts").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES + SCRIPTS, ids=lambda p: p.name)
def test_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "motif_search.py",
        "storage_compression.py",
        "gsi_comparison.py",
        "distributed_scaling.py",
        "streaming_and_profiling.py",
    } <= names


def test_artifact_scripts_present():
    assert (REPO / "scripts" / "cuts.py").exists()
    assert (REPO / "scripts" / "2nodes_exe.sh").exists()
    assert (REPO / "scripts" / "4nodes_exe.sh").exists()
