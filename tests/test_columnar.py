"""Equivalence oracle and workspace tests for the columnar engine.

The columnar frontier engine (``repro.core.columnar``) must be
**bit-exact** against the seed reference expansion path: identical
embedding counts, identical materialised rows, identical modeled
``time_ms``, identical hardware counters, identical ``SearchStats``.
The randomized oracle below sweeps ~50 seeded (graph, query, config)
triples across labels, directed/backward constraints, disconnected
query steps, materialisation caps, and governor chunking; the workspace
tests pin the arena-reuse contract (steady-state expansion allocates
nothing new).
"""

import numpy as np
import pytest

from repro.core import CuTSConfig, CuTSMatcher
from repro.gpusim import V100, scaled_device
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    random_graph,
    social_graph,
    star_graph,
)

COST_FIELDS = (
    "cycles",
    "dram_read_words",
    "dram_write_words",
    "shared_read_words",
    "shared_write_words",
    "atomic_ops",
    "instructions",
    "kernel_launches",
    "idle_lane_cycles",
)


def both_engines(data, query, materialize=True, **cfg_kwargs):
    out = {}
    for engine in ("reference", "columnar"):
        cfg = CuTSConfig(engine=engine, **cfg_kwargs)
        out[engine] = CuTSMatcher(data, cfg).match(
            query, materialize=materialize
        )
    return out["reference"], out["columnar"]


def assert_bit_exact(ref, col):
    assert col.count == ref.count
    if ref.matches is None:
        assert col.matches is None
    else:
        assert col.matches is not None
        assert np.array_equal(col.matches, ref.matches)
    assert col.time_ms == ref.time_ms
    for field in COST_FIELDS:
        assert getattr(col.cost, field) == getattr(ref.cost, field), field
    assert col.stats.to_json() == ref.stats.to_json()
    assert col.order == ref.order


def labeled(graph, seed, num_labels):
    rng = np.random.default_rng(seed)
    return graph.with_labels(
        rng.integers(0, num_labels, graph.num_vertices)
    )


def random_directed(num_vertices, num_edges, seed):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, num_vertices, size=(num_edges, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return from_edges(edges, num_vertices, name=f"rd{num_vertices}")


# A query whose third step has no constraint to the earlier steps (two
# weak components → a Cartesian-product expansion mid-search).
DISCONNECTED = from_edges(
    [(0, 1), (1, 0), (2, 3), (3, 2)], 4, name="disc2x2"
)
# Directed triangle + tail: forces backward (in-edge) constraints.
DIRECTED_TRI = from_edges(
    [(0, 1), (1, 2), (2, 0), (2, 3)], 4, name="dtri"
)


def _oracle_case(seed):
    """One seeded (data, query, config) triple; deterministic in seed."""
    rng = np.random.default_rng(seed)
    kind = seed % 5
    if kind == 0:  # undirected random data, simple query
        data = random_graph(20 + 4 * (seed % 7), 0.18, seed=seed)
        query = [chain_graph(4), cycle_graph(4), clique_graph(3),
                 star_graph(4)][seed % 4]
    elif kind == 1:  # labeled data + labeled query
        n_labels = 2 + seed % 3
        data = labeled(
            random_graph(30, 0.22, seed=seed), seed + 1, n_labels
        )
        query = labeled(
            [cycle_graph(4), chain_graph(4), clique_graph(3)][seed % 3],
            seed + 2, n_labels,
        )
    elif kind == 2:  # directed data x directed query (bwd constraints)
        data = random_directed(24, 160 + 8 * (seed % 5), seed)
        query = DIRECTED_TRI if seed % 2 else from_edges(
            [(0, 1), (1, 2), (2, 3)], 4, name="dchain4"
        )
    elif kind == 3:  # disconnected query steps
        data = [mesh_graph(5, 5), social_graph(40, 3, seed=seed)][seed % 2]
        query = DISCONNECTED
    else:  # mesh / social data, deeper query
        data = [mesh_graph(6, 6), social_graph(50, 4, seed=seed)][seed % 2]
        query = [chain_graph(5), cycle_graph(5)][seed % 2]

    cfg = {}
    intersection = ["adaptive", "c", "p", "adaptive"][seed % 4]
    if intersection != "adaptive":
        cfg["intersection"] = intersection
    if seed % 3 == 0:
        cfg["ordering"] = "id"
    if seed % 7 == 0:
        cfg["randomize_placement"] = False
    if seed % 5 == 0:
        # Tiny device + host budget: exercises governor chunking.
        cfg["device"] = scaled_device(V100, 1 << 14)
        cfg["memory_budget_mb"] = 1
        cfg["chunk_size"] = 32
    materialize = seed % 4 != 1
    if materialize and seed % 6 == 0:
        cfg["max_materialized"] = int(rng.integers(1, 50))
    return data, query, materialize, cfg


@pytest.mark.parametrize("seed", range(50))
def test_randomized_equivalence_oracle(seed):
    data, query, materialize, cfg = _oracle_case(seed)
    ref, col = both_engines(data, query, materialize=materialize, **cfg)
    assert_bit_exact(ref, col)


def test_equivalence_under_governor_chunking():
    """Chunk peeling + budget retry through the columnar path must not
    change counts, rows, or a single modeled counter."""
    data = social_graph(80, 3, community_edges=120, seed=9)
    ref, col = both_engines(
        data, cycle_graph(4),
        device=scaled_device(V100, 1 << 13), chunk_size=32,
    )
    assert_bit_exact(ref, col)
    assert col.stats.chunks_processed > 1


def test_equivalence_count_only_leaf():
    """count_only leaf fast path (non-materialised runs) is charged and
    recorded exactly like the reference append-then-drop flow."""
    ref, col = both_engines(mesh_graph(8, 8), chain_graph(5),
                            materialize=False)
    assert_bit_exact(ref, col)


# ---------------------------------------------------------------- arena
def test_workspace_reused_across_matches():
    """Two consecutive match calls share arena buffers: the second run
    grows nothing, and results are independent of the reuse."""
    matcher = CuTSMatcher(mesh_graph(7, 7))
    first = matcher.match(chain_graph(5), materialize=True)
    grow_after_first = matcher.engine.arena.grow_events
    capacity = matcher.engine.arena.capacity_bytes
    second = matcher.match(chain_graph(5), materialize=True)
    assert matcher.engine.arena.grow_events == grow_after_first
    assert matcher.engine.arena.capacity_bytes == capacity
    assert second.count == first.count
    assert np.array_equal(second.matches, first.matches)
    assert second.time_ms == first.time_ms


def test_workspace_independent_across_queries():
    """Interleaving different queries through one arena cannot leak
    state between runs."""
    matcher = CuTSMatcher(social_graph(60, 3, seed=5))
    queries = [chain_graph(4), cycle_graph(4), clique_graph(3)]
    baseline = [matcher.match(q, materialize=True) for q in queries]
    again = [matcher.match(q, materialize=True) for q in queries]
    for a, b in zip(baseline, again):
        assert a.count == b.count
        assert np.array_equal(a.matches, b.matches)


def test_arena_views_alias_backing_buffer():
    """take() returns views of one backing allocation; growth is
    geometric and re-take of a satisfied size does not grow."""
    from repro.core.columnar import ExpansionArena

    arena = ExpansionArena()
    a = arena.take("x", 100)
    assert arena.grow_events == 1
    b = arena.take("x", 50)
    assert arena.grow_events == 1
    assert np.shares_memory(a, b)
    arena.take("x", 5000)
    assert arena.grow_events == 2
    assert arena.capacity_bytes >= 5000 * 8


def test_profile_expansion_stage_timers():
    """profile_expansion populates the four per-stage wall counters in
    SearchStats without touching any modeled quantity."""
    data = mesh_graph(6, 6)
    plain = CuTSMatcher(data).match(chain_graph(5))
    cfg = CuTSConfig(profile_expansion=True)
    profiled = CuTSMatcher(data, cfg).match(chain_graph(5))
    assert set(profiled.stats.stage_wall_s) == {
        "anchor_gather", "filter", "intersection", "write_out"
    }
    assert all(v >= 0.0 for v in profiled.stats.stage_wall_s.values())
    assert plain.stats.stage_wall_s == {}
    assert profiled.count == plain.count
    assert profiled.time_ms == plain.time_ms
    assert profiled.cost.cycles == plain.cost.cycles
