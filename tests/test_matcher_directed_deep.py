"""Deeper matcher tests: genuinely directed graphs, determinism, state
isolation, memory accounting."""

import numpy as np
import pytest

from repro.baselines import GSIMatcher, networkx_count
from repro.core import CuTSConfig, CuTSMatcher
from repro.graph import from_edges, random_graph


def random_digraph(n, num_edges, seed):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(num_edges, 2))
    return from_edges(edges, num_vertices=n)


DIRECTED_QUERIES = [
    from_edges([(0, 1), (1, 2)]),  # directed path
    from_edges([(0, 1), (0, 2)]),  # out-fork
    from_edges([(1, 0), (2, 0)]),  # in-fork (pure backward constraints)
    from_edges([(0, 1), (1, 2), (2, 0)]),  # directed 3-cycle
    from_edges([(0, 1), (1, 2), (0, 2)]),  # transitive triangle
    from_edges([(0, 1), (1, 0)]),  # 2-cycle
    from_edges([(0, 1), (1, 2), (2, 3), (0, 3)]),  # directed diamond-ish
]


@pytest.mark.parametrize("qidx", range(len(DIRECTED_QUERIES)))
@pytest.mark.parametrize("seed", [1, 2])
def test_directed_queries_vs_oracle(qidx, seed):
    data = random_digraph(25, 90, seed)
    q = DIRECTED_QUERIES[qidx]
    assert CuTSMatcher(data).match(q).count == networkx_count(data, q)


@pytest.mark.parametrize("qidx", [0, 2, 3, 5])
def test_directed_queries_gsi_agrees(qidx):
    data = random_digraph(25, 90, 3)
    q = DIRECTED_QUERIES[qidx]
    assert GSIMatcher(data).match(q).count == CuTSMatcher(data).match(q).count


def test_in_fork_uses_backward_anchor():
    """The in-fork query forces the expansion to anchor on a parent
    (in-CSR) constraint — exercise that code path explicitly."""
    data = from_edges([(0, 2), (1, 2), (3, 2), (0, 4), (1, 4)])
    q = from_edges([(1, 0), (2, 0)])  # two sources into a sink
    r = CuTSMatcher(data).match(q, materialize=True)
    assert r.count == networkx_count(data, q)
    for row in r.matches:
        assert data.has_edge(int(row[1]), int(row[0]))
        assert data.has_edge(int(row[2]), int(row[0]))


def test_asymmetric_degree_filter():
    # query vertex needs out-degree 2 / in-degree 0
    data = from_edges([(0, 1), (0, 2), (3, 0)])
    q = from_edges([(0, 1), (0, 2)])
    r = CuTSMatcher(data).match(q)
    assert r.count == networkx_count(data, q)


def test_match_is_deterministic():
    data = random_graph(40, 0.2, seed=5)
    q = from_edges([(0, 1), (1, 2), (2, 0)])
    m = CuTSMatcher(data)
    r1 = m.match(q, materialize=True)
    r2 = m.match(q, materialize=True)
    assert r1.count == r2.count
    assert np.array_equal(r1.matches, r2.matches)
    assert r1.cost.cycles == r2.cost.cycles


def test_matcher_reusable_across_queries():
    """A matcher instance carries no per-query state."""
    data = random_graph(30, 0.25, seed=7)
    m = CuTSMatcher(data)
    q1 = from_edges([(0, 1), (1, 2)])
    q2 = from_edges([(0, 1), (1, 2), (2, 0)])
    a1 = m.match(q1).count
    _ = m.match(q2).count
    assert m.match(q1).count == a1


def test_trie_budget_is_half_of_free_memory():
    data = random_graph(30, 0.25, seed=7)
    m = CuTSMatcher(data)
    graph_words = 2 * (data.num_vertices + 1) + 2 * data.num_edges
    expected = (m.config.device.memory_words - graph_words) // 2
    assert abs(m.trie_budget_words - expected) <= 1


def test_trie_budget_fraction_configurable():
    data = random_graph(30, 0.25, seed=7)
    m = CuTSMatcher(data, CuTSConfig(trie_buffer_fraction=0.25))
    m2 = CuTSMatcher(data, CuTSConfig(trie_buffer_fraction=0.5))
    assert m.trie_budget_words < m2.trie_budget_words


def test_virtual_warp_auto_selection():
    sparse = random_graph(100, 0.02, seed=1)
    dense = random_graph(100, 0.6, seed=1)
    assert (
        CuTSMatcher(sparse).virtual_warp_size
        < CuTSMatcher(dense).virtual_warp_size
    )


def test_memory_ledger_tracks_graph_and_trie():
    data = random_graph(30, 0.25, seed=7)
    m = CuTSMatcher(data)
    assert "data_graph" in m.memory.allocations
    assert "trie_buffer" in m.memory.allocations
    assert m.memory.used_words <= m.config.device.memory_words
