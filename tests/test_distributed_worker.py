"""Tests for the per-rank worker."""

import numpy as np
import pytest

from repro.baselines import networkx_count
from repro.core import CuTSConfig
from repro.distributed import RankWorker, WorkItem
from repro.graph import cycle_graph, social_graph
from repro.storage import PathTrie


@pytest.fixture
def data():
    return social_graph(80, 3, community_edges=120, seed=9)


@pytest.fixture
def query():
    return cycle_graph(4)


def make_worker(rank, data, query, chunk=32):
    return RankWorker(
        rank=rank, data=data, query=query, config=CuTSConfig(chunk_size=chunk)
    )


def test_work_item_invariant():
    trie = PathTrie.from_roots(np.array([1, 2]))
    with pytest.raises(ValueError, match="invariant"):
        WorkItem(trie=trie, step=3, frontier=np.array([0]))


def test_init_partition_single_rank(data, query):
    w = make_worker(0, data, query)
    w.init_partition(1)
    assert w.has_work()
    assert w.stack[0].trie.num_paths(0) > 0


def test_init_partition_strides_disjoint(data, query):
    roots = []
    for r in range(3):
        w = make_worker(r, data, query)
        w.init_partition(3)
        roots.append(set(w.stack[0].trie.levels[0].ca.tolist()))
    assert not (roots[0] & roots[1])
    assert not (roots[0] & roots[2])


def test_run_to_completion_matches_oracle(data, query):
    w = make_worker(0, data, query)
    w.init_partition(1)
    while w.has_work():
        w.process_one_chunk()
    assert w.count == networkx_count(data, query)
    assert w.busy_ms > 0
    assert w.chunks_processed > 0


def test_two_workers_partition_total(data, query):
    total = 0
    for r in range(2):
        w = make_worker(r, data, query)
        w.init_partition(2)
        while w.has_work():
            w.process_one_chunk()
        total += w.count
    assert total == networkx_count(data, query)


def test_process_without_work_raises(data, query):
    w = make_worker(0, data, query)
    with pytest.raises(RuntimeError):
        w.process_one_chunk()


def test_surplus_ship_receive_preserves_count(data, query):
    """Work shipped to another rank must produce the same total."""
    w0 = make_worker(0, data, query)
    w0.init_partition(1)
    # burn a few chunks to create a deep stack
    for _ in range(4):
        if w0.has_work():
            w0.process_one_chunk()
    assert w0.has_surplus()
    buffers = w0.pop_surplus()
    assert buffers and all(isinstance(b, np.ndarray) for b in buffers)
    w1 = make_worker(1, data, query)
    w1.receive_work(buffers)
    assert w1.has_work()
    for w in (w0, w1):
        while w.has_work():
            w.process_one_chunk()
    assert w0.count + w1.count == networkx_count(data, query)
    assert w0.chunks_sent == len(buffers)
    assert w1.chunks_received == len(buffers)


def test_no_surplus_with_single_small_item(data, query):
    w = make_worker(0, data, query, chunk=10_000)
    w.init_partition(1)
    assert len(w.stack) == 1
    assert w.stack[0].frontier.size < 10_000
    assert not w.has_surplus()


def test_pop_surplus_splits_single_large_item(data, query):
    w = make_worker(0, data, query, chunk=8)
    w.init_partition(1)
    assert len(w.stack) == 1
    assert w.has_surplus()  # lone item's frontier exceeds the chunk size
    total_frontier = w.stack[0].frontier.size
    buffers = w.pop_surplus()
    assert len(buffers) == 1
    kept = w.stack[0].frontier.size
    from repro.storage import deserialize_trie

    given = deserialize_trie(buffers[0]).num_paths()
    assert kept + given == total_frontier


def test_single_vertex_query_counts_roots(data):
    from repro.graph import from_edges

    q1 = from_edges([], num_vertices=1)
    w = RankWorker(rank=0, data=data, query=q1, config=CuTSConfig())
    w.init_partition(1)
    assert not w.has_work()
    assert w.count == data.num_vertices
