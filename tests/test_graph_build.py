"""Tests for graph builders."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    empty_graph,
    from_edges,
    from_networkx,
    from_undirected_edges,
    to_networkx,
)


def test_from_edges_basic():
    g = from_edges([(0, 1), (1, 2)])
    assert g.num_vertices == 3
    assert g.num_edges == 2
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)


def test_from_edges_deduplicates():
    g = from_edges([(0, 1), (0, 1), (0, 1)])
    assert g.num_edges == 1


def test_from_edges_drops_self_loops():
    g = from_edges([(0, 0), (0, 1), (2, 2)])
    assert g.num_edges == 1
    assert g.num_vertices == 3


def test_from_edges_only_self_loops():
    g = from_edges([(0, 0)], num_vertices=1)
    assert g.num_edges == 0
    assert g.num_vertices == 1


def test_from_edges_explicit_num_vertices():
    g = from_edges([(0, 1)], num_vertices=10)
    assert g.num_vertices == 10
    assert g.out_degree(9) == 0


def test_from_edges_vertex_out_of_range():
    with pytest.raises(ValueError, match="num_vertices"):
        from_edges([(0, 5)], num_vertices=3)


def test_from_edges_negative_vertex():
    with pytest.raises(ValueError, match="non-negative"):
        from_edges([(-1, 2)])


def test_from_edges_empty():
    g = from_edges([])
    assert g.num_vertices == 0
    assert g.num_edges == 0


def test_from_edges_numpy_input():
    arr = np.array([[0, 1], [1, 2]], dtype=np.int64)
    g = from_edges(arr)
    assert g.num_edges == 2


def test_from_undirected_bidirects():
    g = from_undirected_edges([(0, 1)])
    assert g.has_edge(0, 1)
    assert g.has_edge(1, 0)
    assert g.num_edges == 2


def test_from_undirected_dedup_reverse_pairs():
    # (0,1) and (1,0) in an undirected list are the same edge.
    g = from_undirected_edges([(0, 1), (1, 0)])
    assert g.num_edges == 2


def test_from_undirected_empty():
    g = from_undirected_edges([], num_vertices=4)
    assert g.num_vertices == 4
    assert g.num_edges == 0


def test_csr_sorted_by_construction():
    g = from_edges([(1, 5), (1, 2), (1, 9), (0, 3)], num_vertices=10)
    assert g.children(1).tolist() == [2, 5, 9]


def test_in_csr_correct():
    g = from_edges([(0, 2), (1, 2), (3, 2)])
    assert g.parents(2).tolist() == [0, 1, 3]


def test_from_networkx_digraph():
    gx = nx.DiGraph([(0, 1), (1, 2)])
    g = from_networkx(gx)
    assert g.num_edges == 2
    assert g.has_edge(0, 1) and not g.has_edge(1, 0)


def test_from_networkx_undirected_bidirects():
    gx = nx.Graph([(0, 1)])
    g = from_networkx(gx)
    assert g.num_edges == 2


def test_from_networkx_relabels_sparse_ids():
    gx = nx.Graph()
    gx.add_edge(10, 20)
    gx.add_node(30)
    g = from_networkx(gx)
    assert g.num_vertices == 3
    assert g.has_edge(0, 1)


def test_to_networkx_round_trip(small_gnp):
    gx = to_networkx(small_gnp)
    assert gx.number_of_nodes() == small_gnp.num_vertices
    assert gx.number_of_edges() == small_gnp.num_edges
    back = from_networkx(gx)
    assert np.array_equal(back.indices, small_gnp.indices)


def test_empty_graph_builder():
    g = empty_graph(5)
    assert g.num_vertices == 5
    assert g.num_edges == 0


def test_empty_graph_zero_vertices():
    g = empty_graph()
    assert g.num_vertices == 0
