"""Tests for graph text-format IO."""

import numpy as np
import pytest

from repro.graph import (
    convert_cuts_to_gsi,
    mesh_graph,
    read_cuts_format,
    read_gsi_format,
    write_cuts_format,
    write_gsi_format,
)


def test_cuts_round_trip(tmp_path, small_gnp):
    p = tmp_path / "g.txt"
    write_cuts_format(small_gnp, p)
    back = read_cuts_format(p)
    assert back.num_vertices == small_gnp.num_vertices
    assert np.array_equal(back.indices, small_gnp.indices)
    assert np.array_equal(back.indptr, small_gnp.indptr)


def test_cuts_header(tmp_path, mesh44):
    p = tmp_path / "mesh.txt"
    write_cuts_format(mesh44, p)
    header = p.read_text().splitlines()[0]
    assert header == "16 48"


def test_cuts_name_from_stem(tmp_path, mesh44):
    p = tmp_path / "mymesh.txt"
    write_cuts_format(mesh44, p)
    assert read_cuts_format(p).name == "mymesh"


def test_cuts_empty_graph(tmp_path):
    from repro.graph import empty_graph

    p = tmp_path / "empty.txt"
    write_cuts_format(empty_graph(3), p)
    back = read_cuts_format(p)
    assert back.num_vertices == 3 and back.num_edges == 0


def test_cuts_malformed_header(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("1 2 3\n")
    with pytest.raises(ValueError, match="header"):
        read_cuts_format(p)


def test_cuts_edge_count_mismatch(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("3 5\n0 1\n")
    with pytest.raises(ValueError, match="edges"):
        read_cuts_format(p)


def test_gsi_round_trip(tmp_path, small_gnp):
    p = tmp_path / "g.g"
    write_gsi_format(small_gnp, p)
    back = read_gsi_format(p)
    assert back.num_vertices == small_gnp.num_vertices
    assert np.array_equal(back.indices, small_gnp.indices)


def test_gsi_format_structure(tmp_path):
    g = mesh_graph(2, 2)
    p = tmp_path / "m.g"
    write_gsi_format(g, p)
    lines = p.read_text().splitlines()
    assert lines[0].startswith("t ")
    assert sum(1 for ln in lines if ln.startswith("v ")) == 4
    assert sum(1 for ln in lines if ln.startswith("e ")) == 8


def test_gsi_ignores_blank_lines(tmp_path):
    p = tmp_path / "g.g"
    p.write_text("t 2 1\n\nv 0 0\nv 1 0\n\ne 0 1 0\n")
    g = read_gsi_format(p)
    assert g.num_vertices == 2 and g.num_edges == 1


def test_converter(tmp_path, mesh44):
    src = tmp_path / "in.txt"
    dst = tmp_path / "out.g"
    write_cuts_format(mesh44, src)
    convert_cuts_to_gsi(src, dst)
    back = read_gsi_format(dst)
    assert back.num_edges == mesh44.num_edges
    assert np.array_equal(back.indices, mesh44.indices)
