"""Tests for the high-level API and component-composition rules."""

import pytest

from repro import count_embeddings, subgraph_isomorphism_search
from repro.baselines import networkx_count
from repro.graph import (
    clique_graph,
    from_edges,
    from_undirected_edges,
    mesh_graph,
)
from tests.conftest import assert_valid_embeddings


def test_connected_case_matches_oracle(mesh44, chain4):
    r = subgraph_isomorphism_search(mesh44, chain4)
    assert r.count == networkx_count(mesh44, chain4)


def test_count_embeddings_shorthand(mesh44, triangle):
    assert count_embeddings(mesh44, triangle) == 0  # meshes are triangle-free


def test_disconnected_data_union_exact():
    # two disjoint triangles: query triangle matches in each
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    data = from_undirected_edges(edges)
    q = clique_graph(3)
    r = subgraph_isomorphism_search(data, q)
    assert r.count == networkx_count(data, q)  # 6 + 6


def test_disconnected_data_materialize():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    data = from_undirected_edges(edges)
    q = clique_graph(3)
    r = subgraph_isomorphism_search(data, q, materialize=True)
    assert len(r.matches) == r.count == 12
    assert_valid_embeddings(data, q, r.matches)
    # matches must reference original vertex ids from both components
    assert r.matches.max() == 5


def test_disconnected_query_cross_product():
    data = mesh_graph(3, 3)
    # query: one edge plus one isolated-pair edge (two components)
    query = from_undirected_edges([(0, 1), (2, 3)])
    r = subgraph_isomorphism_search(data, query)
    single = subgraph_isomorphism_search(data, from_undirected_edges([(0, 1)]))
    # paper rule: cross product of per-component counts
    assert r.count == single.count**2


def test_disconnected_query_zero_component_short_circuits():
    data = mesh_graph(3, 3)  # triangle-free
    query = from_undirected_edges([(0, 1), (2, 3), (3, 4), (2, 4)])  # edge + triangle
    r = subgraph_isomorphism_search(data, query)
    assert r.count == 0


def test_disconnected_query_materialize_rejected():
    data = mesh_graph(3, 3)
    query = from_undirected_edges([(0, 1), (2, 3)])
    with pytest.raises(ValueError, match="connected"):
        subgraph_isomorphism_search(data, query, materialize=True)


def test_empty_query_rejected(mesh44):
    with pytest.raises(ValueError):
        subgraph_isomorphism_search(mesh44, from_edges([], num_vertices=0))


def test_query_component_larger_than_data_component():
    # data: triangle + isolated edge; query K3 fits only the triangle
    data = from_undirected_edges([(0, 1), (1, 2), (0, 2), (3, 4)])
    q = clique_graph(3)
    r = subgraph_isomorphism_search(data, q)
    assert r.count == 6


def test_cost_and_time_merged():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    data = from_undirected_edges(edges)
    r = subgraph_isomorphism_search(data, clique_graph(3))
    assert r.time_ms > 0
    assert r.cost.kernel_launches > 0


def test_isolated_data_vertices_ignored():
    data = from_undirected_edges([(0, 1), (1, 2), (0, 2)], num_vertices=10)
    r = subgraph_isomorphism_search(data, clique_graph(3))
    assert r.count == 6


# ---------------------------------------------------------------------------
# match_many: batched API routed through the matching service.
# ---------------------------------------------------------------------------


def test_match_many_parity_with_per_query_search(mesh44):
    from repro import match_many
    from repro.graph import chain_graph, cycle_graph

    queries = [chain_graph(3), cycle_graph(4), clique_graph(3), chain_graph(3)]
    per_query = [
        subgraph_isomorphism_search(mesh44, q).count for q in queries
    ]
    batched = match_many(mesh44, queries)
    assert [r.count for r in batched] == per_query


def test_match_many_parallel_workers_parity(mesh44):
    from repro import match_many
    from repro.graph import chain_graph, cycle_graph

    queries = [chain_graph(4), cycle_graph(4)]
    per_query = [
        subgraph_isomorphism_search(mesh44, q).count for q in queries
    ]
    assert [r.count for r in match_many(mesh44, queries, workers=2)] == (
        per_query
    )


def test_match_many_empty_and_invalid_inputs(mesh44):
    from repro import match_many

    assert match_many(mesh44, []) == []
    with pytest.raises(ValueError):
        match_many(mesh44, [from_edges([], num_vertices=0)])
    with pytest.raises(ValueError, match="connected"):
        match_many(mesh44, [from_undirected_edges([(0, 1), (2, 3)])])


def test_match_many_disconnected_data_falls_back(mesh44):
    from repro import match_many

    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    data = from_undirected_edges(edges)
    results = match_many(data, [clique_graph(3)])
    assert results[0].count == 12


def test_match_many_materialize(mesh44, chain4):
    from repro import match_many

    res = match_many(mesh44, [chain4], materialize=True)[0]
    assert res.matches is not None and len(res.matches) == res.count
    assert_valid_embeddings(mesh44, chain4, res.matches)
