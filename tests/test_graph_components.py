"""Tests for weakly connected components and composition helpers."""

import networkx as nx
import numpy as np

from repro.graph import (
    from_edges,
    from_undirected_edges,
    induced_subgraph,
    is_weakly_connected,
    split_components,
    weakly_connected_components,
)


def test_connected_mesh(mesh44):
    comp = weakly_connected_components(mesh44)
    assert comp.max() == 0
    assert is_weakly_connected(mesh44)


def test_two_components():
    g = from_undirected_edges([(0, 1), (2, 3)])
    comp = weakly_connected_components(g)
    assert comp[0] == comp[1]
    assert comp[2] == comp[3]
    assert comp[0] != comp[2]
    assert not is_weakly_connected(g)


def test_isolated_vertices():
    g = from_edges([], num_vertices=3)
    comp = weakly_connected_components(g)
    assert sorted(comp.tolist()) == [0, 1, 2]


def test_directed_weak_connectivity():
    # 0 -> 1 <- 2 is weakly connected despite no directed path 0..2.
    g = from_edges([(0, 1), (2, 1)])
    assert is_weakly_connected(g)


def test_empty_graph_connected():
    g = from_edges([], num_vertices=0)
    assert is_weakly_connected(g)
    assert weakly_connected_components(g).shape == (0,)


def test_single_vertex_connected():
    g = from_edges([], num_vertices=1)
    assert is_weakly_connected(g)


def test_component_numbering_by_smallest_vertex():
    g = from_undirected_edges([(4, 5), (0, 1)], num_vertices=6)
    comp = weakly_connected_components(g)
    assert comp[0] == 0  # component containing vertex 0 numbered first
    assert comp[4] > 0 or comp[4] != comp[0]


def test_matches_networkx_on_random():
    rng = np.random.default_rng(5)
    edges = rng.integers(0, 40, size=(35, 2))
    g = from_edges(edges, num_vertices=40)
    ours = weakly_connected_components(g)
    gx = nx.DiGraph()
    gx.add_nodes_from(range(40))
    gx.add_edges_from(map(tuple, g.edge_list()))
    for comp_nodes in nx.weakly_connected_components(gx):
        labels = {int(ours[v]) for v in comp_nodes}
        assert len(labels) == 1, f"component split: {comp_nodes}"
    assert int(ours.max()) + 1 == nx.number_weakly_connected_components(gx)


def test_induced_subgraph_basic(mesh44):
    sub, mapping = induced_subgraph(mesh44, np.array([0, 1, 4, 5]))
    assert sub.num_vertices == 4
    # the 2x2 corner block is a 4-cycle: 4 undirected edges = 8 directed
    assert sub.num_edges == 8
    assert mapping.tolist() == [0, 1, 4, 5]


def test_induced_subgraph_no_edges(mesh44):
    sub, _ = induced_subgraph(mesh44, np.array([0, 15]))
    assert sub.num_edges == 0


def test_split_components_round_trip():
    g = from_undirected_edges([(0, 1), (1, 2), (5, 6)], num_vertices=8)
    parts = split_components(g)
    # components: {0,1,2}, {3}, {4}, {5,6}, {7}
    assert len(parts) == 5
    sizes = sorted(p[0].num_vertices for p in parts)
    assert sizes == [1, 1, 1, 2, 3]
    total_edges = sum(p[0].num_edges for p in parts)
    assert total_edges == g.num_edges


def test_split_components_mapping_valid():
    g = from_undirected_edges([(0, 3), (1, 2)], num_vertices=4)
    for sub, mapping in split_components(g):
        for u, v in sub.edge_list():
            assert g.has_edge(int(mapping[u]), int(mapping[v]))
