"""Kill/resume durability: SIGKILL survival, watchdog, merge dedupe.

The headline guarantees of the durable-jobs subsystem:

* a run SIGKILLed at an arbitrary instant resumes to the exact count an
  uninterrupted run produces (serial, multi-core, and distributed);
* a hung or killed worker's shard is re-leased and merged exactly once;
* duplicate shard delivery is idempotent at the merge layer.

The SIGKILL tests run a real child interpreter and send it a real
``SIGKILL`` (via ``os.kill`` from inside a deterministic hook, so the
kill always lands mid-run, after at least one committed snapshot).
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.checkpoint import CheckpointStore
from repro.core import CuTSConfig, CuTSMatcher
from repro.core.result import MatchResult
from repro.core.stats import SearchStats
from repro.distributed.runtime import DistributedCuTS
from repro.gpusim.cost import CostModel
from repro.graph.generators import clique_graph, social_graph
from repro.parallel.matcher import ParallelMatcher, ShardLeaseError

SRC = str(Path(__file__).resolve().parent.parent / "src")

# One serial and one multi-core workload, per the acceptance criteria.
DATA_ARGS = (200, 3)
DATA_SEED = 1
QUERY_K = 3


def _data():
    return social_graph(*DATA_ARGS, seed=DATA_SEED)


def _query():
    return clique_graph(QUERY_K)


@pytest.fixture(scope="module")
def baseline_count():
    return CuTSMatcher(_data(), CuTSConfig()).match(_query()).count


def _run_child(code: str, timeout: float = 120.0) -> subprocess.CompletedProcess:
    """Run ``code`` in a child interpreter and wait for the *process*.

    The child runs as its own session leader and we wait on the pid, not
    on pipe EOF: a SIGKILLed orchestrator leaves pool workers behind that
    inherited its stdout/stderr pipes, so ``subprocess.run`` would block
    on the never-closing pipes until timeout.  After the child exits the
    whole process group is killed, reaping any orphaned workers.
    """
    proc = subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": SRC},
        start_new_session=True,
    )
    try:
        rc = proc.wait(timeout=timeout)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
    out, err = proc.communicate()
    return subprocess.CompletedProcess(proc.args, rc, out, err)


# ---------------------------------------------------------------------------
# Serial kill/resume.
# ---------------------------------------------------------------------------

_SERIAL_CHILD = """
import os, signal
from repro.core import CuTSConfig, CuTSMatcher
from repro.graph.generators import clique_graph, social_graph

matcher = CuTSMatcher(
    social_graph({n}, {m}, seed={seed}), CuTSConfig(chunk_size=32)
)
ticks = 0

def killer(state):
    global ticks
    ticks += 1
    if ticks == {kill_at}:
        os.kill(os.getpid(), signal.SIGKILL)

matcher.on_tick = killer
matcher.match(clique_graph({k}), checkpoint_dir={ckpt!r}, checkpoint_every=2)
raise SystemExit("unreachable: the run should have been SIGKILLed")
"""


def test_serial_sigkill_then_resume_exact_count(tmp_path, baseline_count):
    ckpt = str(tmp_path / "job")
    child = _run_child(
        _SERIAL_CHILD.format(
            n=DATA_ARGS[0], m=DATA_ARGS[1], seed=DATA_SEED, k=QUERY_K,
            kill_at=9, ckpt=ckpt,
        )
    )
    assert child.returncode == -signal.SIGKILL, child.stderr
    store = CheckpointStore(ckpt)
    manifest = store.read_manifest()
    assert manifest is not None and not manifest.get("complete")
    assert store.snapshot_seqs(), "the child died before its first snapshot"

    resumed = CuTSMatcher(_data(), CuTSConfig(chunk_size=32)).match(
        _query(), checkpoint_dir=ckpt, resume=True
    )
    assert resumed.count == baseline_count


def test_serial_double_sigkill_then_resume(tmp_path, baseline_count):
    """Two crashes in a row: resume must also survive being killed."""
    ckpt = str(tmp_path / "job")
    first = _run_child(
        _SERIAL_CHILD.format(
            n=DATA_ARGS[0], m=DATA_ARGS[1], seed=DATA_SEED, k=QUERY_K,
            kill_at=9, ckpt=ckpt,
        )
    )
    assert first.returncode == -signal.SIGKILL, first.stderr
    second_code = _SERIAL_CHILD.format(
        n=DATA_ARGS[0], m=DATA_ARGS[1], seed=DATA_SEED, k=QUERY_K,
        kill_at=5, ckpt=ckpt,
    ).replace(
        "checkpoint_dir=", "resume=True, checkpoint_dir="
    )
    second = _run_child(second_code)
    assert second.returncode == -signal.SIGKILL, second.stderr

    resumed = CuTSMatcher(_data(), CuTSConfig(chunk_size=32)).match(
        _query(), checkpoint_dir=ckpt, resume=True
    )
    assert resumed.count == baseline_count


# ---------------------------------------------------------------------------
# Multi-core kill/resume (whole-process SIGKILL, then partial resume).
# ---------------------------------------------------------------------------

_PARALLEL_CHILD = """
import os, signal, threading, time
from repro.core import CuTSConfig, CuTSMatcher
from repro.graph.generators import clique_graph, social_graph
from repro.parallel.matcher import ParallelMatcher

ckpt = {ckpt!r}

def killer():
    # SIGKILL the orchestrator once the first shard result is durable,
    # leaving a manifest with some (but usually not all) parts on disk.
    while True:
        if any(n.startswith("part-") for n in os.listdir(ckpt)):
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(0.001)

data = social_graph({n}, {m}, seed={seed})
cfg = CuTSConfig(chunk_size=64)
# forkserver: the pool forks from a clean single-threaded server, so
# the killer thread in this process cannot deadlock a forked worker.
with ParallelMatcher(
    data, cfg, workers=4, oversplit=2, mp_context="forkserver"
) as pm:
    os.makedirs(ckpt, exist_ok=True)
    threading.Thread(target=killer, daemon=True).start()
    pm.match(clique_graph({k}), checkpoint_dir=ckpt)
raise SystemExit("unreachable: the run should have been SIGKILLed")
"""


def test_parallel_sigkill_then_resume_exact_count(tmp_path, baseline_count):
    ckpt = str(tmp_path / "job")
    child = _run_child(
        _PARALLEL_CHILD.format(
            n=DATA_ARGS[0], m=DATA_ARGS[1], seed=DATA_SEED, k=QUERY_K,
            ckpt=ckpt,
        )
    )
    assert child.returncode == -signal.SIGKILL, child.stderr

    with ParallelMatcher(_data(), CuTSConfig(chunk_size=64), workers=4,
                         oversplit=2) as pm:
        resumed = pm.match(_query(), checkpoint_dir=ckpt, resume=True)
    assert resumed.count == baseline_count


def test_parallel_partial_resume_recomputes_only_missing_parts(
    tmp_path, baseline_count
):
    ckpt = str(tmp_path / "job")
    cfg = CuTSConfig(chunk_size=64)
    with ParallelMatcher(_data(), cfg, workers=2, oversplit=2) as pm:
        full = pm.match(_query(), checkpoint_dir=ckpt)
    assert full.count == baseline_count

    # Simulate a crash after some shards landed: mark the job incomplete
    # and delete one persisted part.  Resume must recompute exactly it.
    store = CheckpointStore(ckpt)
    manifest = store.read_manifest()
    num_parts = int(manifest["num_parts"])
    assert num_parts >= 2
    manifest["complete"] = False
    for key in ("count", "time_ms"):
        manifest.pop(key, None)
    store.write_manifest(manifest)
    os.unlink(os.path.join(store.directory, "part-00001.json"))

    with ParallelMatcher(_data(), cfg, workers=2, oversplit=2) as pm:
        resumed = pm.match(_query(), checkpoint_dir=ckpt, resume=True)
    assert resumed.count == baseline_count
    assert store.read_manifest()["complete"]


def test_parallel_resume_with_different_worker_count(tmp_path, baseline_count):
    """The stored shard partitioning wins on resume: a different
    --workers must not change the counts."""
    ckpt = str(tmp_path / "job")
    cfg = CuTSConfig(chunk_size=64)
    with ParallelMatcher(_data(), cfg, workers=4, oversplit=2) as pm:
        pm.match(_query(), checkpoint_dir=ckpt)
    store = CheckpointStore(ckpt)
    manifest = store.read_manifest()
    manifest["complete"] = False
    store.write_manifest(manifest)
    os.unlink(os.path.join(store.directory, "part-00000.json"))
    with ParallelMatcher(_data(), cfg, workers=2, oversplit=1) as pm:
        resumed = pm.match(_query(), checkpoint_dir=ckpt, resume=True)
    assert resumed.count == baseline_count


# ---------------------------------------------------------------------------
# Worker watchdog.
# ---------------------------------------------------------------------------


def test_hung_worker_is_releaseed_and_merged_once(baseline_count):
    cfg = CuTSConfig(chunk_size=64, lease_timeout_s=0.25, lease_retries=2)
    with ParallelMatcher(_data(), cfg, workers=2, oversplit=2) as pm:
        # Shard 0's first lease stalls far past the lease timeout; the
        # watchdog must duplicate it onto a live worker and take the
        # duplicate's result (first completion wins, dedupe by part).
        pm._test_part_delays = {0: 3.0}
        result = pm.match(_query())
    assert result.count == baseline_count
    assert result.shards == tuple(range(len(result.shards)))


def test_sigkilled_worker_pool_is_rebuilt(baseline_count):
    cfg = CuTSConfig(chunk_size=64, lease_timeout_s=5.0, lease_retries=2)
    with ParallelMatcher(_data(), cfg, workers=2, oversplit=2) as pm:
        pm._test_part_delays = {0: 1.0}  # hold the run open for the kill
        pool = pm._ensure_pool()
        outcome: dict = {}

        def run():
            try:
                outcome["result"] = pm.match(_query())
            except BaseException as exc:  # pragma: no cover - surfaced below
                outcome["error"] = exc

        t = threading.Thread(target=run)
        t.start()
        time.sleep(0.3)  # let shards lease, then murder a live worker
        victim = next(iter(pool._processes.values()))
        os.kill(victim.pid, signal.SIGKILL)
        t.join(timeout=120)
        assert not t.is_alive()
    assert "error" not in outcome, outcome.get("error")
    assert outcome["result"].count == baseline_count


def test_lease_budget_exhaustion_raises():
    cfg = CuTSConfig(chunk_size=64, lease_timeout_s=0.15, lease_retries=0)
    with ParallelMatcher(_data(), cfg, workers=1, oversplit=1) as pm:
        pm._test_part_delays = {0: 2.0}
        with pytest.raises(ShardLeaseError, match="shard 0/"):
            pm.match(_query())


# ---------------------------------------------------------------------------
# Merge idempotence under duplicate shard delivery.
# ---------------------------------------------------------------------------


def _shard_result(count: int, shards: tuple) -> MatchResult:
    return MatchResult(
        count=count, matches=None, time_ms=1.0,
        cost=CostModel(CuTSConfig().device), stats=SearchStats(),
        order=(0,), shards=shards,
    )


def test_merge_duplicate_shard_is_idempotent():
    a = _shard_result(10, (0,))
    dup = _shard_result(10, (0,))
    merged = a.merge(dup)
    assert merged.count == 10
    assert merged.shards == (0,)


def test_merge_superset_absorbs_duplicate():
    ab = _shard_result(25, (0, 1))
    b = _shard_result(15, (1,))
    assert ab.merge(b).count == 25


def test_merge_disjoint_shards_sums():
    a = _shard_result(10, (0,))
    b = _shard_result(15, (1,))
    merged = a.merge(b)
    assert merged.count == 25
    assert merged.shards == (0, 1)


def test_merge_partial_overlap_is_rejected():
    ab = _shard_result(25, (0, 1))
    bc = _shard_result(30, (1, 2))
    with pytest.raises(ValueError, match="partially-overlapping"):
        ab.merge(bc)


def test_merge_without_shard_tags_is_legacy_sum():
    a = _shard_result(10, ())
    b = _shard_result(15, ())
    assert a.merge(b).count == 25


# ---------------------------------------------------------------------------
# Distributed: checkpoint at the ledger, resume across the valve.
# ---------------------------------------------------------------------------


def test_distributed_resume_over_max_events_valve(tmp_path):
    data, query = _data(), _query()
    cfg = CuTSConfig(chunk_size=64, checkpoint_every=8)
    clean = DistributedCuTS(data, 2, cfg).match(query)

    ckpt = str(tmp_path / "djob")
    rt = DistributedCuTS(data, 2, cfg)
    with pytest.raises(RuntimeError):
        rt.match(query, max_events=20, checkpoint_dir=ckpt)

    resumed = DistributedCuTS(data, 2, cfg).match(
        query, checkpoint_dir=ckpt, resume=True
    )
    assert resumed.count == clean.count

    # A second resume of the now-complete job returns instantly.
    again = DistributedCuTS(data, 2, cfg).match(
        query, checkpoint_dir=ckpt, resume=True
    )
    assert again.count == clean.count


def test_distributed_checkpoint_requires_reliable_runtime(tmp_path):
    rt = DistributedCuTS(_data(), 2, CuTSConfig(), reliable=False)
    with pytest.raises(ValueError, match="reliable"):
        rt.match(_query(), checkpoint_dir=str(tmp_path / "x"))
