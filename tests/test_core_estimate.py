"""Tests for the §5 analytical complexity model."""

import pytest

from repro.core import CuTSMatcher
from repro.core.estimate import (
    estimate_path_counts,
    fit_branching_factor,
    gpu_complexity,
    multi_gpu_complexity,
    predict_vs_measured,
    sequential_complexity,
    upper_bound_counts,
)
from repro.graph import chain_graph, clique_graph, mesh_graph, random_graph, social_graph


def test_upper_bound_holds_on_real_runs():
    """Eq. (1) with sigma = 1 must over-estimate every measured level."""
    cases = [
        (mesh_graph(4, 4), chain_graph(4)),
        (random_graph(40, 0.2, seed=2), clique_graph(3)),
        (social_graph(100, 3, community_edges=150, seed=5), clique_graph(4)),
    ]
    for data, query in cases:
        measured = CuTSMatcher(data).match(query).stats.paths_per_depth
        rows = predict_vs_measured(data, query, measured)
        assert all(r["bound_holds"] for r in rows), rows


def test_estimate_fields():
    data = random_graph(50, 0.15, seed=3)
    est = estimate_path_counts(data, clique_graph(3))
    assert est.p1 > 0
    assert est.delta == data.max_out_degree
    assert 0.0 < est.sigma <= 1.0
    assert len(est.predicted_counts) == 3
    assert est.ds == pytest.approx(est.delta * est.sigma)


def test_predicted_counts_geometric():
    data = random_graph(50, 0.15, seed=3)
    est = estimate_path_counts(data, chain_graph(4))
    c = est.predicted_counts
    for a, b in zip(c, c[1:]):
        assert b == pytest.approx(a * est.ds)


def test_fit_branching_factor_geometric():
    assert fit_branching_factor([10, 40, 160, 640]) == pytest.approx(4.0)


def test_fit_branching_factor_degenerate():
    assert fit_branching_factor([5]) == 0.0
    assert fit_branching_factor([0, 0]) == 0.0


def test_fit_matches_measured_growth():
    data = social_graph(150, 3, community_edges=400, seed=1)
    measured = CuTSMatcher(data).match(clique_graph(3)).stats.paths_per_depth
    ds = fit_branching_factor(measured)
    # reconstructing from the fit reproduces the final count
    assert measured[0] * ds ** (len(measured) - 1) == pytest.approx(
        measured[-1], rel=1e-6
    )


def test_sequential_complexity_monotone():
    small = mesh_graph(4, 4)
    q3, q4 = clique_graph(3), clique_graph(4)
    assert sequential_complexity(small, q4) > sequential_complexity(small, q3)
    denser = random_graph(16, 0.9, seed=1)
    assert sequential_complexity(denser, q3) > sequential_complexity(small, q3)


def test_gpu_division():
    data = mesh_graph(4, 4)
    q = clique_graph(3)
    seq = sequential_complexity(data, q)
    assert gpu_complexity(data, q, num_sms=84) == pytest.approx(seq / 84)
    assert multi_gpu_complexity(data, q, num_sms=84, num_gpus=4) == (
        pytest.approx(seq / 84 / 4)
    )


def test_gpu_invalid_params():
    data = mesh_graph(2, 2)
    q = clique_graph(2)
    with pytest.raises(ValueError):
        gpu_complexity(data, q, num_sms=0)
    with pytest.raises(ValueError):
        multi_gpu_complexity(data, q, num_gpus=0)


def test_upper_bound_shape():
    data = mesh_graph(4, 4)
    bounds = upper_bound_counts(data, chain_graph(3))
    assert len(bounds) == 3
    assert bounds[1] == bounds[0] * 4  # mesh max degree 4
