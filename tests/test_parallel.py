"""Parallel/serial equivalence: the multi-core engine must be an exact
drop-in for ``CuTSMatcher.match`` — counts bit-identical, materialised
embeddings equal as row sets, per-depth stats summing to the serial
totals — for any worker count, oversplit factor, and edge case."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import count_embeddings, subgraph_isomorphism_search
from repro.core import CuTSConfig, CuTSMatcher
from repro.core.result import MatchResult
from repro.core.stats import SearchStats
from repro.gpusim import CostModel, V100
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_edges,
    mesh_graph,
    random_graph,
    social_graph,
    star_graph,
)
from repro.parallel import ParallelMatcher, parallel_match, resolve_workers

WORKER_COUNTS = (1, 2, 4)


def _random_case(seed: int):
    """A randomized (data, query) pair; queries stay small and connected."""
    rng = np.random.default_rng(seed)
    data = random_graph(int(rng.integers(20, 45)), 0.15, seed=seed)
    query = [clique_graph(3), chain_graph(3), cycle_graph(4), star_graph(3),
             clique_graph(4)][seed % 5]
    return data, query


def _row_set(matches: np.ndarray) -> set[tuple[int, ...]]:
    return set(map(tuple, matches.tolist()))


# ---------------------------------------------------------------- property
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("seed", range(5))
def test_parallel_equals_serial_on_random_graphs(seed, workers):
    data, query = _random_case(seed)
    serial = CuTSMatcher(data).match(query, materialize=True)
    with ParallelMatcher(data, workers=workers) as matcher:
        par = matcher.match(query, materialize=True)
    assert par.count == serial.count
    assert len(par.matches) == par.count
    assert _row_set(par.matches) == _row_set(serial.matches)
    assert par.stats.paths_per_depth == serial.stats.paths_per_depth
    # Modeled makespan: max over shards never exceeds the serial run.
    assert par.time_ms <= serial.time_ms * (1 + 1e-9)


def test_oversplit_intervals_preserve_results():
    data = social_graph(120, 3, community_edges=240, num_communities=12, seed=3)
    query = clique_graph(3)
    serial = CuTSMatcher(data).match(query, materialize=True)
    for oversplit in (1, 3, 7):
        with ParallelMatcher(data, workers=2, oversplit=oversplit) as matcher:
            assert matcher.num_intervals(query) <= oversplit * 2
            par = matcher.match(query, materialize=True)
        assert par.count == serial.count
        assert _row_set(par.matches) == _row_set(serial.matches)


def test_pool_is_reused_across_queries():
    data = random_graph(40, 0.2, seed=1)
    with ParallelMatcher(data, workers=2) as matcher:
        for query in (clique_graph(3), chain_graph(4), cycle_graph(4)):
            assert (
                matcher.match(query).count
                == CuTSMatcher(data).match(query).count
            )


# -------------------------------------------------------------- edge cases
def test_empty_root_frontier():
    # No data vertex can satisfy the hub's degree-7 requirement.
    hub = star_graph(7)
    data = from_edges([(0, 1), (1, 0), (1, 2), (2, 1)])
    with ParallelMatcher(data, workers=2) as matcher:
        res = matcher.match(hub, materialize=True)
    assert res.count == 0
    assert len(res.matches) == 0


def test_query_larger_than_data():
    data = from_edges([(0, 1), (1, 0)])
    with ParallelMatcher(data, workers=2) as matcher:
        assert matcher.match(clique_graph(5)).count == 0


def test_single_step_query():
    data = mesh_graph(3, 3)
    single = from_edges(np.zeros((0, 2), dtype=np.int64), num_vertices=1)
    serial = CuTSMatcher(data).match(single, materialize=True)
    with ParallelMatcher(data, workers=2) as matcher:
        par = matcher.match(single, materialize=True)
    assert par.count == serial.count == data.num_vertices
    assert _row_set(par.matches) == _row_set(serial.matches)


def test_max_materialized_cap():
    data = social_graph(120, 3, community_edges=240, num_communities=12, seed=4)
    query = clique_graph(3)
    full = CuTSMatcher(data).match(query, materialize=True)
    cap = max(1, full.count // 3)
    cfg = CuTSConfig(max_materialized=cap)
    with ParallelMatcher(data, cfg, workers=2) as matcher:
        par = matcher.match(query, materialize=True)
    # Counting is never capped; collection is, and the collected rows are
    # all genuine embeddings (a subset of the uncapped serial set).
    assert par.count == full.count
    assert len(par.matches) == cap
    assert _row_set(par.matches) <= _row_set(full.matches)


def test_empty_query_rejected():
    data = mesh_graph(2, 2)
    empty = from_edges(np.zeros((0, 2), dtype=np.int64), num_vertices=0)
    with ParallelMatcher(data, workers=1) as matcher:
        with pytest.raises(ValueError):
            matcher.match(empty)


def test_closed_matcher_rejects_match():
    matcher = ParallelMatcher(mesh_graph(2, 2), workers=1)
    matcher.close()
    with pytest.raises(ValueError):
        matcher.match(clique_graph(2))


# ------------------------------------------------------- merge primitives
def test_match_result_merge_is_associative():
    data = social_graph(100, 3, community_edges=200, num_communities=10, seed=6)
    query = clique_graph(3)
    m = CuTSMatcher(data)
    shards = [
        m.match(query, materialize=True, part=p, num_parts=3) for p in range(3)
    ]
    left = shards[0].merge(shards[1]).merge(shards[2])
    right = shards[0].merge(shards[1].merge(shards[2]))
    serial = m.match(query, materialize=True)
    assert left.count == right.count == serial.count
    assert _row_set(left.matches) == _row_set(right.matches) == _row_set(
        serial.matches
    )
    assert left.time_ms == right.time_ms == max(s.time_ms for s in shards)
    assert left.stats.paths_per_depth == serial.stats.paths_per_depth
    assert (
        left.cost.dram_read_words
        == sum(s.cost.dram_read_words for s in shards)
    )


def test_match_result_merge_cap_is_associative():
    rows = np.arange(12, dtype=np.int64).reshape(6, 2)
    def shard(lo, hi):
        return MatchResult(
            count=hi - lo, matches=rows[lo:hi], time_ms=0.0,
            cost=CostModel(V100), stats=SearchStats(), order=(0, 1),
        )
    a, b, c = shard(0, 2), shard(2, 5), shard(5, 6)
    cap = 4
    ab_c = a.merge(b, max_materialized=cap).merge(c, max_materialized=cap)
    a_bc = a.merge(b.merge(c, max_materialized=cap), max_materialized=cap)
    assert np.array_equal(ab_c.matches, a_bc.matches)
    assert len(ab_c.matches) == cap
    assert ab_c.count == a_bc.count == 6


def test_match_result_merge_rejects_mixed_materialization():
    cost = CostModel(V100)
    with_rows = MatchResult(
        count=1, matches=np.zeros((1, 2), dtype=np.int64), time_ms=0.0,
        cost=cost, stats=SearchStats(), order=(0, 1),
    )
    count_only = MatchResult(
        count=1, matches=None, time_ms=0.0, cost=cost,
        stats=SearchStats(), order=(0, 1),
    )
    with pytest.raises(ValueError):
        with_rows.merge(count_only)
    with pytest.raises(ValueError):
        with_rows.merge(
            MatchResult(
                count=0, matches=np.zeros((0, 2), dtype=np.int64),
                time_ms=0.0, cost=cost, stats=SearchStats(), order=(1, 0),
            )
        )


def test_search_stats_merge():
    a, b = SearchStats(), SearchStats()
    a.record_depth(0, 5)
    a.record_depth(1, 3)
    a.record_chunk(1)
    a.record_trie_words(16)
    a.record_intersection("c", 2)
    b.record_depth(0, 7)
    b.record_trie_words(10)
    b.record_intersection("p", 1)
    a.merge(b)
    assert a.paths_per_depth == [12, 3]
    assert a.chunks_processed == 1
    assert a.peak_trie_words == 16
    assert a.peak_frontier == 7
    assert a.intersection_calls == {"c": 2, "p": 1}


def test_strided_match_partitions_search():
    data = social_graph(100, 3, community_edges=200, num_communities=10, seed=8)
    query = cycle_graph(4)
    m = CuTSMatcher(data)
    serial = m.match(query)
    total = sum(
        m.match(query, part=p, num_parts=4).count for p in range(4)
    )
    assert total == serial.count
    with pytest.raises(ValueError):
        m.match(query, part=4, num_parts=4)


# ------------------------------------------------------------- api surface
def test_api_workers_equivalence():
    data = social_graph(100, 3, community_edges=200, num_communities=10, seed=2)
    query = clique_graph(3)
    assert count_embeddings(data, query) == count_embeddings(
        data, query, workers=2
    )


def test_api_workers_on_disconnected_data():
    # Two triangle components, far apart: the component-composition path.
    tri = [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]
    edges = tri + [(u + 10, v + 10) for u, v in tri]
    data = from_edges(edges, num_vertices=13)
    query = clique_graph(3)
    serial = subgraph_isomorphism_search(data, query, materialize=True)
    par = subgraph_isomorphism_search(data, query, materialize=True, workers=2)
    assert par.count == serial.count == 12
    assert _row_set(par.matches) == _row_set(serial.matches)


def test_api_workers_on_disconnected_query():
    data = mesh_graph(3, 3)
    # Two disjoint edges: the cross-product composition path.
    query = from_edges([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
    assert count_embeddings(data, query) == count_embeddings(
        data, query, workers=2
    )


def test_config_workers_default_drives_api():
    data = random_graph(30, 0.2, seed=12)
    query = clique_graph(3)
    cfg = CuTSConfig(workers=2)
    assert count_embeddings(data, query, cfg) == count_embeddings(data, query)


def test_resolve_workers():
    import os

    assert resolve_workers(3) == 3
    assert resolve_workers("2") == 2
    cpus = os.cpu_count() or 1
    assert resolve_workers("auto") == cpus
    assert resolve_workers(None) == cpus
    assert resolve_workers(0) == cpus
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_config_validates_workers():
    with pytest.raises(ValueError):
        CuTSConfig(workers=0)
    with pytest.raises(ValueError):
        CuTSConfig(oversplit=0)


def test_parallel_match_helper():
    data = random_graph(30, 0.2, seed=13)
    query = chain_graph(3)
    res = parallel_match(data, query, workers=2)
    assert res.count == CuTSMatcher(data).match(query).count


def test_cli_workers_flag(capsys):
    from repro.cli import main

    rc = main(["match", "roadNet-PA", "P3", "--workers", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "wall clock" in out
    assert "2 worker processes" in out


def test_cli_workers_rejects_bad_spec():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["match", "roadNet-PA", "P3", "--workers", "nope"])
    with pytest.raises(SystemExit):
        main(["match", "roadNet-PA", "P3", "--workers", "2", "--ranks", "2"])


# ---------------------------------------------------------------------------
# match_many: one pool pass over a batch of queries.
# ---------------------------------------------------------------------------


def test_match_many_matches_per_query_results():
    data = random_graph(40, 0.15, seed=19)
    queries = [chain_graph(3), clique_graph(3), chain_graph(4)]
    serial = [CuTSMatcher(data).match(q).count for q in queries]
    with ParallelMatcher(data, workers=2) as pm:
        batched = pm.match_many(queries)
    assert [r.count for r in batched] == serial


def test_match_many_preserves_input_order_with_duplicates():
    data = random_graph(40, 0.15, seed=19)
    queries = [chain_graph(4), chain_graph(3), chain_graph(4)]
    with ParallelMatcher(data, workers=2) as pm:
        results = pm.match_many(queries)
    assert results[0].count == results[2].count
    assert results[0].count != results[1].count


def test_match_many_empty_batch():
    data = random_graph(20, 0.2, seed=3)
    with ParallelMatcher(data, workers=2) as pm:
        assert pm.match_many([]) == []


def test_match_many_materialize_matches_serial():
    import numpy as np

    data = random_graph(25, 0.2, seed=5)
    queries = [chain_graph(3), clique_graph(3)]
    with ParallelMatcher(data, workers=2) as pm:
        batched = pm.match_many(queries, materialize=True)
    for q, res in zip(queries, batched):
        serial = CuTSMatcher(data).match(q, materialize=True)
        assert res.count == serial.count
        got = np.asarray(sorted(map(tuple, res.matches.tolist())))
        want = np.asarray(sorted(map(tuple, serial.matches.tolist())))
        assert np.array_equal(got, want)


def test_match_many_per_query_time_limits():
    data = random_graph(30, 0.2, seed=7)
    queries = [chain_graph(3), chain_graph(4)]
    with ParallelMatcher(data, workers=2) as pm:
        results = pm.match_many(queries, time_limit_ms=[None, 1e9])
    serial = [CuTSMatcher(data).match(q).count for q in queries]
    assert [r.count for r in results] == serial
    with ParallelMatcher(data, workers=2) as pm:
        with pytest.raises(ValueError, match="time_limit_ms"):
            pm.match_many(queries, time_limit_ms=[None])


def test_match_many_accepts_num_parts_hints():
    data = random_graph(40, 0.15, seed=23)
    queries = [chain_graph(3), clique_graph(3)]
    with ParallelMatcher(data, workers=2) as pm:
        hints = [pm.num_intervals(q) for q in queries]
        hinted = pm.match_many(queries, num_parts=hints)
        unhinted = pm.match_many(queries)
    assert [r.count for r in hinted] == [r.count for r in unhinted]


def test_match_many_stats_are_per_query():
    data = random_graph(40, 0.15, seed=29)
    queries = [chain_graph(3), chain_graph(4)]
    with ParallelMatcher(data, workers=2) as pm:
        results = pm.match_many(queries)
    a = CuTSMatcher(data).match(queries[0])
    assert results[0].stats.paths_per_depth == a.stats.paths_per_depth
