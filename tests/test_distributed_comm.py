"""Tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.distributed import Message, NetworkModel, SimComm


def test_network_transfer_time():
    net = NetworkModel(latency_ms=0.1, words_per_ms=1000.0)
    assert net.transfer_ms(0) == pytest.approx(0.1)
    assert net.transfer_ms(2000) == pytest.approx(2.1)


def test_network_negative_words():
    with pytest.raises(ValueError):
        NetworkModel().transfer_ms(-1)


def test_send_arrival_time():
    net = NetworkModel(latency_ms=1.0, words_per_ms=100.0)
    comm = SimComm(2, net)
    arrival = comm.send(0, 1, "work", "payload", 200, time=5.0)
    assert arrival == pytest.approx(5.0 + 1.0 + 2.0)


def test_receive_respects_arrival():
    net = NetworkModel(latency_ms=1.0, words_per_ms=1e9)
    comm = SimComm(2, net)
    comm.send(0, 1, "work", "x", 0, time=0.0)  # arrives ~1.0
    assert comm.receive(1, time=0.5) == []
    msgs = comm.receive(1, time=1.5)
    assert len(msgs) == 1
    assert msgs[0].payload == "x"
    # consumed
    assert comm.receive(1, time=2.0) == []


def test_receive_tag_filter():
    comm = SimComm(2)
    comm.send(0, 1, "work", 1, 0, time=0.0)
    comm.send(0, 1, "free", 2, 0, time=0.0)
    work = comm.receive(1, time=10.0, tag="work")
    assert [m.payload for m in work] == [1]
    rest = comm.receive(1, time=10.0)
    assert [m.payload for m in rest] == [2]


def test_receive_ordering_by_arrival():
    net = NetworkModel(latency_ms=0.0, words_per_ms=1.0)
    comm = SimComm(2, net)
    comm.send(0, 1, "t", "big", 100, time=0.0)   # arrives 100
    comm.send(0, 1, "t", "small", 1, time=0.0)   # arrives 1
    msgs = comm.receive(1, time=1000.0)
    assert [m.payload for m in msgs] == ["small", "big"]


def test_broadcast_hits_everyone():
    comm = SimComm(4)
    comm.broadcast(2, "free", None, 1, time=0.0)
    for r in (0, 1, 3):
        assert len(comm.receive(r, time=10.0)) == 1
    assert comm.receive(2, time=10.0) == []


def test_self_send_rejected():
    comm = SimComm(2)
    with pytest.raises(ValueError):
        comm.send(0, 0, "t", None, 0, time=0.0)


def test_rank_bounds():
    comm = SimComm(2)
    with pytest.raises(ValueError):
        comm.send(0, 5, "t", None, 0, time=0.0)
    with pytest.raises(ValueError):
        comm.receive(-1, time=0.0)


def test_stats_accumulate():
    comm = SimComm(3)
    comm.send(0, 1, "t", None, 10, time=0.0)
    comm.send(0, 2, "t", None, 20, time=0.0)
    assert comm.messages_sent == 2
    assert comm.words_sent == 30


def test_peek_does_not_consume():
    comm = SimComm(2)
    comm.send(0, 1, "work", "x", 0, time=0.0)
    assert len(comm.peek(1)) == 1
    assert len(comm.peek(1)) == 1
    assert len(comm.receive(1, time=10.0)) == 1


def test_invalid_num_ranks():
    with pytest.raises(ValueError):
        SimComm(0)
