"""Tests for the simulated MPI layer."""

import pytest

from repro.distributed import NetworkModel, SimComm


def test_network_transfer_time():
    net = NetworkModel(latency_ms=0.1, words_per_ms=1000.0)
    assert net.transfer_ms(0) == pytest.approx(0.1)
    assert net.transfer_ms(2000) == pytest.approx(2.1)


def test_network_negative_words():
    with pytest.raises(ValueError):
        NetworkModel().transfer_ms(-1)


def test_send_arrival_time():
    net = NetworkModel(latency_ms=1.0, words_per_ms=100.0)
    comm = SimComm(2, net)
    arrival = comm.send(0, 1, "work", "payload", 200, time=5.0)
    assert arrival == pytest.approx(5.0 + 1.0 + 2.0)


def test_receive_respects_arrival():
    net = NetworkModel(latency_ms=1.0, words_per_ms=1e9)
    comm = SimComm(2, net)
    comm.send(0, 1, "work", "x", 0, time=0.0)  # arrives ~1.0
    assert comm.receive(1, time=0.5) == []
    msgs = comm.receive(1, time=1.5)
    assert len(msgs) == 1
    assert msgs[0].payload == "x"
    # consumed
    assert comm.receive(1, time=2.0) == []


def test_receive_tag_filter():
    comm = SimComm(2)
    comm.send(0, 1, "work", 1, 0, time=0.0)
    comm.send(0, 1, "free", 2, 0, time=0.0)
    work = comm.receive(1, time=10.0, tag="work")
    assert [m.payload for m in work] == [1]
    rest = comm.receive(1, time=10.0)
    assert [m.payload for m in rest] == [2]


def test_receive_ordering_by_arrival():
    net = NetworkModel(latency_ms=0.0, words_per_ms=1.0)
    comm = SimComm(2, net)
    comm.send(0, 1, "t", "big", 100, time=0.0)   # arrives 100
    comm.send(0, 1, "t", "small", 1, time=0.0)   # arrives 1
    msgs = comm.receive(1, time=1000.0)
    assert [m.payload for m in msgs] == ["small", "big"]


def test_broadcast_hits_everyone():
    comm = SimComm(4)
    comm.broadcast(2, "free", None, 1, time=0.0)
    for r in (0, 1, 3):
        assert len(comm.receive(r, time=10.0)) == 1
    assert comm.receive(2, time=10.0) == []


def test_self_send_rejected():
    comm = SimComm(2)
    with pytest.raises(ValueError):
        comm.send(0, 0, "t", None, 0, time=0.0)


def test_rank_bounds():
    comm = SimComm(2)
    with pytest.raises(ValueError):
        comm.send(0, 5, "t", None, 0, time=0.0)
    with pytest.raises(ValueError):
        comm.receive(-1, time=0.0)


def test_stats_accumulate():
    comm = SimComm(3)
    comm.send(0, 1, "t", None, 10, time=0.0)
    comm.send(0, 2, "t", None, 20, time=0.0)
    assert comm.messages_sent == 2
    assert comm.words_sent == 30


def test_peek_does_not_consume():
    comm = SimComm(2)
    comm.send(0, 1, "work", "x", 0, time=0.0)
    assert len(comm.peek(1)) == 1
    assert len(comm.peek(1)) == 1
    assert len(comm.receive(1, time=10.0)) == 1


def test_invalid_num_ranks():
    with pytest.raises(ValueError):
        SimComm(0)


def test_receive_large_inbox_single_pass():
    """Regression: draining a large queued inbox must keep undelivered
    and non-matching messages intact and return the rest in arrival
    order (the old implementation re-scanned the inbox per message)."""
    net = NetworkModel(latency_ms=0.0, words_per_ms=1.0)
    comm = SimComm(2, net)
    n = 2000
    for i in range(n):
        tag = "work" if i % 2 == 0 else "free"
        # arrival == words; interleave early/late arrivals
        words = i if i % 4 < 2 else i + n
        comm.send(0, 1, tag, i, words, time=0.0)
    drained = comm.receive(1, time=float(n) - 1, tag="work")
    assert [m.payload for m in drained] == sorted(
        i for i in range(n) if i % 2 == 0 and (i if i % 4 < 2 else i + n) < n
    )
    arrivals = [m.arrival_time for m in drained]
    assert arrivals == sorted(arrivals)
    # everything else is still queued: late "work" plus all "free"
    late_work = [m for m in comm.peek(1, tag="work")]
    assert all(m.arrival_time >= n for m in late_work)
    assert len(comm.peek(1, tag="free")) == n // 2
    # a full drain later delivers the remainder exactly once
    rest = comm.receive(1, time=float(3 * n))
    assert len(drained) + len(rest) == n
    assert comm.peek(1) == []


def test_receive_large_inbox_performance():
    """The single-pass drain should handle thousands of queued messages
    without quadratic blowup (smoke bound, generous for CI)."""
    import time as _time

    comm = SimComm(2)
    for i in range(5000):
        comm.send(0, 1, "work", i, 0, time=0.0)
    t0 = _time.perf_counter()
    msgs = comm.receive(1, time=10.0, tag="work")
    elapsed = _time.perf_counter() - t0
    assert len(msgs) == 5000
    assert elapsed < 1.0
