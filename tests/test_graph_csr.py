"""Tests for the dual-CSR graph representation."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edges
from repro.graph.csr import _segmented_searchsorted


def test_basic_counts(mesh44):
    assert mesh44.num_vertices == 16
    assert mesh44.num_edges == 48  # 24 undirected edges, bidirected


def test_children_sorted(mesh44):
    for u in range(mesh44.num_vertices):
        kids = mesh44.children(u)
        assert np.all(np.diff(kids) > 0)


def test_parents_sorted(mesh44):
    for u in range(mesh44.num_vertices):
        pars = mesh44.parents(u)
        assert np.all(np.diff(pars) > 0)


def test_children_are_views(mesh44):
    kids = mesh44.children(0)
    assert kids.base is mesh44.indices


def test_directed_children_parents(directed_diamond):
    g = directed_diamond
    assert g.children(0).tolist() == [1, 2]
    assert g.children(3).tolist() == []
    assert g.parents(3).tolist() == [1, 2]
    assert g.parents(0).tolist() == []


def test_degrees_directed(directed_diamond):
    g = directed_diamond
    assert g.out_degree(0) == 2
    assert g.in_degree(0) == 0
    assert g.out_degree(3) == 0
    assert g.in_degree(3) == 2
    assert g.max_out_degree == 2
    assert g.max_in_degree == 2


def test_average_out_degree(mesh44):
    assert mesh44.average_out_degree == pytest.approx(3.0)


def test_has_edge(directed_diamond):
    g = directed_diamond
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)
    assert not g.has_edge(0, 3)


def test_has_edges_vectorised(mesh44):
    src = np.array([0, 0, 5, 5, 15])
    dst = np.array([1, 15, 6, 0, 14])
    expected = [mesh44.has_edge(int(s), int(d)) for s, d in zip(src, dst)]
    assert mesh44.has_edges(src, dst).tolist() == expected


def test_has_edges_empty(mesh44):
    out = mesh44.has_edges(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    assert out.shape == (0,)


def test_has_edges_shape_mismatch(mesh44):
    with pytest.raises(ValueError):
        mesh44.has_edges(np.array([0]), np.array([0, 1]))


def test_has_redges_matches_reverse(directed_diamond):
    g = directed_diamond
    src = np.array([3, 3, 0])
    tgt = np.array([1, 0, 1])
    # has_redges(s, t) == edge (t, s) exists
    expected = [g.has_edge(int(t), int(s)) for s, t in zip(src, tgt)]
    assert g.has_redges(src, tgt).tolist() == expected


def test_has_redges_empty(directed_diamond):
    out = directed_diamond.has_redges(
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    )
    assert out.shape == (0,)


def test_edge_list_round_trip(small_gnp):
    edges = small_gnp.edge_list()
    rebuilt = from_edges(edges, num_vertices=small_gnp.num_vertices)
    assert np.array_equal(rebuilt.indptr, small_gnp.indptr)
    assert np.array_equal(rebuilt.indices, small_gnp.indices)
    assert np.array_equal(rebuilt.rindptr, small_gnp.rindptr)
    assert np.array_equal(rebuilt.rindices, small_gnp.rindices)


def test_reverse_swaps(directed_diamond):
    rev = directed_diamond.reverse()
    assert rev.children(3).tolist() == [1, 2]
    assert rev.parents(1).tolist() == [3]
    assert rev.num_edges == directed_diamond.num_edges


def test_reverse_is_view(directed_diamond):
    rev = directed_diamond.reverse()
    assert rev.indices is directed_diamond.rindices


def test_bidirected_symmetry(mesh44):
    # For an undirected-origin graph, in == out everywhere.
    assert np.array_equal(mesh44.out_degrees, mesh44.in_degrees)


def test_validation_bad_indptr():
    with pytest.raises(ValueError, match="indptr"):
        CSRGraph(
            num_vertices=2,
            indptr=np.array([0, 1], dtype=np.int64),  # wrong length
            indices=np.array([1], dtype=np.int64),
            rindptr=np.array([0, 0, 1], dtype=np.int64),
            rindices=np.array([0], dtype=np.int64),
        )


def test_validation_inconsistent_endpoints():
    with pytest.raises(ValueError):
        CSRGraph(
            num_vertices=2,
            indptr=np.array([0, 1, 1], dtype=np.int64),
            indices=np.array([1, 0], dtype=np.int64),  # 2 edges, indptr says 1
            rindptr=np.array([0, 0, 1], dtype=np.int64),
            rindices=np.array([0], dtype=np.int64),
        )


def test_validation_edge_count_mismatch():
    with pytest.raises(ValueError, match="same edge set"):
        CSRGraph(
            num_vertices=2,
            indptr=np.array([0, 1, 1], dtype=np.int64),
            indices=np.array([1], dtype=np.int64),
            rindptr=np.array([0, 0, 0], dtype=np.int64),
            rindices=np.array([], dtype=np.int64),
        )


def test_validation_out_of_range_vertex():
    with pytest.raises(ValueError, match="out-of-range"):
        CSRGraph(
            num_vertices=2,
            indptr=np.array([0, 1, 1], dtype=np.int64),
            indices=np.array([5], dtype=np.int64),
            rindptr=np.array([0, 0, 1], dtype=np.int64),
            rindices=np.array([0], dtype=np.int64),
        )


def test_validation_negative_vertices():
    with pytest.raises(ValueError, match="num_vertices"):
        CSRGraph(
            num_vertices=-1,
            indptr=np.zeros(0, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            rindptr=np.zeros(0, dtype=np.int64),
            rindices=np.zeros(0, dtype=np.int64),
        )


def test_empty_graph_properties():
    g = from_edges(np.zeros((0, 2), dtype=np.int64), num_vertices=0)
    assert g.num_edges == 0
    assert g.max_out_degree == 0
    assert g.max_in_degree == 0
    assert g.average_out_degree == 0.0


def test_segmented_searchsorted_exact():
    flat = np.array([1, 3, 5, 2, 4, 6, 8], dtype=np.int64)
    starts = np.array([0, 3, 3], dtype=np.int64)
    ends = np.array([3, 7, 7], dtype=np.int64)
    values = np.array([3, 6, 7], dtype=np.int64)
    pos = _segmented_searchsorted(flat, starts, ends, values)
    assert pos.tolist() == [1, 5, 6]


def test_segmented_searchsorted_out_of_range_values():
    flat = np.array([10, 20, 30], dtype=np.int64)
    starts = np.array([0, 0], dtype=np.int64)
    ends = np.array([3, 3], dtype=np.int64)
    values = np.array([5, 99], dtype=np.int64)
    pos = _segmented_searchsorted(flat, starts, ends, values)
    assert pos.tolist() == [0, 3]


def test_segmented_searchsorted_empty_segments():
    flat = np.array([7], dtype=np.int64)
    starts = np.array([0, 1], dtype=np.int64)
    ends = np.array([0, 1], dtype=np.int64)  # both segments empty
    values = np.array([7, 7], dtype=np.int64)
    pos = _segmented_searchsorted(flat, starts, ends, values)
    assert pos.tolist() == [0, 1]


def test_segmented_searchsorted_vs_numpy():
    rng = np.random.default_rng(3)
    rows = [np.sort(rng.integers(0, 100, size=rng.integers(0, 12))) for _ in range(50)]
    flat = np.concatenate([r for r in rows]) if rows else np.zeros(0)
    flat = flat.astype(np.int64)
    offsets = np.cumsum([0] + [len(r) for r in rows])
    starts, ends, values, expect = [], [], [], []
    for i, r in enumerate(rows):
        v = int(rng.integers(0, 100))
        starts.append(offsets[i])
        ends.append(offsets[i + 1])
        values.append(v)
        expect.append(offsets[i] + int(np.searchsorted(r, v)))
    pos = _segmented_searchsorted(
        flat,
        np.array(starts, dtype=np.int64),
        np.array(ends, dtype=np.int64),
        np.array(values, dtype=np.int64),
    )
    assert pos.tolist() == expect
