"""Tests for the free/busy pairing protocol (§4.2)."""

import pytest

from repro.distributed import FreeNodeRegistry


@pytest.fixture
def reg():
    return FreeNodeRegistry(4)


def test_announce_and_claim(reg):
    reg.announce_free(1, time=1.0)
    target = reg.claim_free(0, time=2.0)
    assert target == 1
    assert reg.transfers == 1


def test_claim_respects_time(reg):
    reg.announce_free(1, time=5.0)
    assert reg.claim_free(0, time=2.0) is None  # broadcast not seen yet
    assert reg.claim_free(0, time=6.0) == 1


def test_one_sender_per_free_node(reg):
    """"only one busy node sends data to a given free node"""
    reg.announce_free(2, time=0.0)
    assert reg.claim_free(0, time=1.0) == 2
    assert reg.claim_free(1, time=1.0) is None


def test_one_free_node_per_sender(reg):
    """"a given busy node only sends data to one free node"""
    reg.announce_free(1, time=0.0)
    reg.announce_free(2, time=0.0)
    assert reg.claim_free(0, time=1.0) in (1, 2)
    assert reg.claim_free(0, time=1.0) is None  # outstanding claim


def test_claim_earliest_free(reg):
    reg.announce_free(3, time=2.0)
    reg.announce_free(1, time=1.0)
    assert reg.claim_free(0, time=5.0) == 1


def test_sender_cannot_claim_itself(reg):
    reg.announce_free(0, time=0.0)
    assert reg.claim_free(0, time=1.0) is None


def test_mark_busy_resolves_claim(reg):
    reg.announce_free(1, time=0.0)
    assert reg.claim_free(0, time=1.0) == 1
    reg.mark_busy(1)
    assert not reg.is_free(1)
    # sender's outstanding claim cleared: can claim another free node
    reg.announce_free(2, time=2.0)
    assert reg.claim_free(0, time=3.0) == 2


def test_rebecome_free_after_work(reg):
    reg.announce_free(1, time=0.0)
    reg.claim_free(0, time=1.0)
    reg.mark_busy(1)
    reg.announce_free(1, time=5.0)
    assert reg.claim_free(2, time=6.0) == 1


def test_announce_idempotent_keeps_earliest(reg):
    reg.announce_free(1, time=1.0)
    reg.announce_free(1, time=9.0)
    assert reg.free_since[1] == 1.0


def test_rank_bounds(reg):
    with pytest.raises(ValueError):
        reg.announce_free(9, time=0.0)
    with pytest.raises(ValueError):
        reg.claim_free(-1, time=0.0)
