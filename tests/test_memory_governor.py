"""Memory governor: soft budget, chunk halving, spill requests.

Unit tests pin the pressure state machine (untouched below the soft
threshold, progressive halving past it, spill requests past high
water), and integration tests prove the governed engine's counts are
bit-identical to the unconstrained engine's — degradation changes the
order and granularity of work, never what is enumerated.
"""

import numpy as np
import pytest

from repro.core import BYTES_PER_WORD, CuTSConfig, CuTSMatcher, MemoryGovernor
from repro.core.stream import iter_matches
from repro.graph.generators import clique_graph, social_graph


# ---------------------------------------------------------------------------
# Unit: the pressure state machine.
# ---------------------------------------------------------------------------


def test_unlimited_governor_is_a_no_op():
    gov = MemoryGovernor()
    gov.observe_words(10**9)
    assert gov.effective_chunk(512) == 512
    assert not gov.should_spill()
    assert gov.pressure == 0.0
    assert gov.peak_tracked_bytes == 10**9 * BYTES_PER_WORD


def test_peak_tracks_high_water_mark_not_current():
    gov = MemoryGovernor()
    gov.observe_words(100)
    gov.observe_words(10)
    assert gov.tracked_bytes == 10 * BYTES_PER_WORD
    assert gov.peak_tracked_bytes == 100 * BYTES_PER_WORD


def test_chunk_untouched_below_soft_threshold():
    gov = MemoryGovernor(budget_bytes=1000 * BYTES_PER_WORD)
    gov.observe_words(400)  # pressure 0.4 < 0.5
    assert gov.effective_chunk(512) == 512
    assert gov.chunk_halvings == 0


def test_progressive_halving_with_pressure():
    gov = MemoryGovernor(budget_bytes=1000 * BYTES_PER_WORD)
    gov.observe_words(500)  # exactly the soft threshold
    assert gov.effective_chunk(512) == 256
    gov.observe_words(760)  # past 0.75: two halvings
    assert gov.effective_chunk(512) == 128
    gov.observe_words(880)  # past 0.875: three halvings
    assert gov.effective_chunk(512) == 64
    assert gov.chunk_halvings == 3


def test_chunk_floors_at_pure_dfs():
    gov = MemoryGovernor(budget_bytes=BYTES_PER_WORD)
    gov.observe_words(10**6)
    assert gov.effective_chunk(512) == 1
    assert gov.effective_chunk(1) == 1


def test_spill_request_past_high_water():
    gov = MemoryGovernor(budget_bytes=1000 * BYTES_PER_WORD)
    gov.observe_words(840)
    assert not gov.should_spill()
    gov.observe_words(860)
    assert gov.should_spill()
    gov.note_spill(2)
    assert gov.spill_count == 2


def test_budget_words_conversion():
    gov = MemoryGovernor(budget_bytes=1024)
    assert gov.budget_words == 1024 // BYTES_PER_WORD
    assert MemoryGovernor().budget_words is None


def test_from_config_mb_conversion():
    gov = MemoryGovernor.from_config(CuTSConfig(memory_budget_mb=2))
    assert gov.budget_bytes == 2 * 1024 * 1024
    assert MemoryGovernor.from_config(CuTSConfig()).budget_bytes is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"budget_bytes": 0},
        {"budget_bytes": -8},
        {"soft_fraction": 0.0},
        {"soft_fraction": 1.5},
        {"soft_fraction": 0.9, "high_water": 0.5},
        {"high_water": 1.5},
    ],
)
def test_invalid_governor_parameters(kwargs):
    with pytest.raises(ValueError):
        MemoryGovernor(budget_bytes=kwargs.pop("budget_bytes", 1024), **kwargs)


def test_config_rejects_negative_budget():
    with pytest.raises(ValueError):
        CuTSConfig(memory_budget_mb=-1)


# ---------------------------------------------------------------------------
# Integration: governed counts are bit-identical to unconstrained ones.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    return social_graph(200, 3, seed=1), clique_graph(3)


def test_budgeted_match_counts_are_identical(workload):
    data, query = workload
    free = CuTSMatcher(data, CuTSConfig()).match(query)
    assert free.stats.peak_tracked_bytes > 0
    assert free.stats.chunk_halvings == 0

    # A budget well below the unconstrained peak: the run must complete
    # (graceful degradation, never abort) with the exact same count.
    budget_mb = 1  # the peak for this workload is far below 1 MiB...
    budget_bytes = max(1024, free.stats.peak_tracked_bytes // 2)
    gov_cfg = CuTSConfig(memory_budget_mb=budget_mb)
    # ...so drive pressure through a directly-constructed governor too.
    tight = MemoryGovernor(budget_bytes=budget_bytes)
    tight.observe_words(free.stats.peak_tracked_bytes // BYTES_PER_WORD)
    assert tight.effective_chunk(512) < 512 or tight.should_spill()

    squeezed = CuTSMatcher(data, gov_cfg).match(query)
    assert squeezed.count == free.count
    assert squeezed.stats.paths_per_depth == free.stats.paths_per_depth


def test_tiny_chunk_size_matches_budgeted_run(workload):
    """The governor only ever shrinks the chunk size, and chunked counts
    are invariant — cross-check against an explicitly tiny chunk."""
    data, query = workload
    a = CuTSMatcher(data, CuTSConfig(chunk_size=7)).match(query)
    b = CuTSMatcher(data, CuTSConfig()).match(query)
    assert a.count == b.count


def test_streaming_engine_respects_governor(workload):
    data, query = workload
    empty = [np.zeros((0, query.num_vertices), dtype=np.int64)]
    rows_free = np.concatenate(
        list(iter_matches(CuTSMatcher(data, CuTSConfig()), query)) or empty
    )
    rows_tight = np.concatenate(
        list(
            iter_matches(
                CuTSMatcher(data, CuTSConfig(memory_budget_mb=1)), query
            )
        )
        or empty
    )
    assert rows_free.shape == rows_tight.shape
    assert np.array_equal(
        rows_free[np.lexsort(rows_free.T[::-1])],
        rows_tight[np.lexsort(rows_tight.T[::-1])],
    )


def test_governor_counters_flow_into_stats(workload):
    data, query = workload
    r = CuTSMatcher(data, CuTSConfig()).match(query)
    j = r.stats.to_json()
    assert "peak_tracked_bytes" in j
    assert "chunk_halvings" in j
    assert "spilled_chunks" in j
