"""Tests for query-vertex ordering."""

import pytest

from repro.core import build_order, id_order, max_degree_order
from repro.graph import (
    chain_graph,
    clique_graph,
    from_edges,
    from_undirected_edges,
    star_graph,
)


def test_root_is_max_degree():
    order = max_degree_order(star_graph(4))
    assert order.sequence[0] == 0  # the hub


def test_root_tie_break_min_id():
    order = max_degree_order(clique_graph(4))
    assert order.sequence[0] == 0


def test_sequence_is_permutation():
    for g in (clique_graph(5), chain_graph(6), star_graph(3)):
        order = max_degree_order(g)
        assert sorted(order.sequence) == list(range(g.num_vertices))


def test_chain_order_connected_growth():
    order = max_degree_order(chain_graph(5))
    # every step after the first has at least one earlier neighbour
    for n in range(1, order.num_steps):
        fwd, bwd = order.constraints_at(n)
        assert fwd or bwd


def test_constraints_reference_earlier_steps_only():
    order = max_degree_order(clique_graph(5))
    for n in range(order.num_steps):
        fwd, bwd = order.constraints_at(n)
        assert all(j < n for j in fwd)
        assert all(j < n for j in bwd)


def test_clique_constraint_counts():
    order = max_degree_order(clique_graph(4))
    # In a bidirected clique, step n has n forward and n backward edges.
    for n in range(4):
        fwd, bwd = order.constraints_at(n)
        assert len(fwd) == n
        assert len(bwd) == n


def test_directed_constraints_split():
    # 0 -> 1, 2 -> 1: matching order starts at 1 (max total degree).
    g = from_edges([(0, 1), (2, 1)])
    order = max_degree_order(g)
    assert order.sequence[0] == 1
    # Next vertices connect via a *backward* edge (they point to 1)...
    n1_fwd, n1_bwd = order.constraints_at(1)
    # step 1's vertex has an edge (v, seq[0]) in E_Q: from the new vertex
    # into the already-matched root => candidate must be a parent of the
    # root's match => constraint appears in bwd.
    assert n1_bwd == (0,)
    assert n1_fwd == ()


def test_star_order_hub_first_then_leaves():
    order = max_degree_order(star_graph(5))
    assert order.sequence[0] == 0
    for n in range(1, 6):
        fwd, bwd = order.constraints_at(n)
        assert fwd == (0,) and bwd == (0,)


def test_id_order_starts_at_zero():
    order = id_order(clique_graph(4))
    assert order.sequence[0] == 0


def test_id_order_connected():
    order = id_order(chain_graph(6))
    for n in range(1, order.num_steps):
        fwd, bwd = order.constraints_at(n)
        assert fwd or bwd


def test_id_order_prefers_low_ids():
    g = star_graph(4)  # hub 0, leaves 1..4
    order = id_order(g)
    assert order.sequence == (0, 1, 2, 3, 4)


def test_disconnected_query_order_covers_all():
    g = from_undirected_edges([(0, 1), (2, 3)])
    order = max_degree_order(g)
    assert sorted(order.sequence) == [0, 1, 2, 3]
    # the step crossing components has no constraints
    unconstrained = [
        n
        for n in range(1, 4)
        if not order.constraints_at(n)[0] and not order.constraints_at(n)[1]
    ]
    assert len(unconstrained) == 1


def test_build_order_dispatch():
    g = clique_graph(3)
    assert build_order(g, "max_degree").sequence == max_degree_order(g).sequence
    assert build_order(g, "id").sequence == id_order(g).sequence
    with pytest.raises(ValueError):
        build_order(g, "nope")


def test_empty_query_order():
    g = from_edges([], num_vertices=0)
    order = max_degree_order(g)
    assert order.num_steps == 0


def test_max_degree_prefers_heavier_frontier():
    # path 0-1-2 plus hub 3 attached to 2 with extra leaves
    g = from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)])
    order = max_degree_order(g)
    # root is 3 (degree 3); next must be its heaviest neighbour, 2.
    assert order.sequence[0] == 3
    assert order.sequence[1] == 2
