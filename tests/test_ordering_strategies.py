"""Tests for the extra ordering strategies (max_constraints, rare_label)
and the distributed steal-policy knobs."""

import numpy as np
import pytest

from repro.baselines import networkx_count
from repro.core import (
    ORDERING_STRATEGIES,
    CuTSConfig,
    CuTSMatcher,
    build_order,
    max_constraints_order,
    max_degree_order,
    rare_label_order,
)
from repro.distributed import DistributedCuTS, RankWorker
from repro.graph import (
    chain_graph,
    clique_graph,
    cycle_graph,
    from_undirected_edges,
    random_graph,
    star_graph,
)


# ------------------------------------------------------ max_constraints
def test_max_constraints_permutation():
    for g in (clique_graph(5), chain_graph(6), cycle_graph(5)):
        order = max_constraints_order(g)
        assert sorted(order.sequence) == list(range(g.num_vertices))


def test_max_constraints_prefers_closing_vertices():
    # kite: triangle 0-1-2 plus pendant path 2-3-4
    g = from_undirected_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
    order = max_constraints_order(g)
    # root is 2 (degree 3); next must be a triangle vertex (2 constraints
    # beats the path vertex's 1 as soon as two triangle vertices are in)
    assert order.sequence[0] == 2
    seq = order.sequence
    assert set(seq[:3]) == {0, 1, 2}


def test_max_constraints_counts_invariant():
    data = random_graph(30, 0.25, seed=9)
    q = cycle_graph(4)
    cfg = CuTSConfig(ordering="max_constraints")
    assert CuTSMatcher(data, cfg).match(q).count == networkx_count(data, q)


# ----------------------------------------------------------- rare_label
def test_rare_label_falls_back_unlabeled():
    q = star_graph(3)
    assert rare_label_order(q).sequence == max_degree_order(q).sequence


def test_rare_label_starts_at_rarest():
    q = cycle_graph(4).with_labels(np.array([0, 0, 0, 7]))
    order = rare_label_order(q)
    assert order.sequence[0] == 3  # unique label 7


def test_rare_label_uses_data_frequencies():
    q = chain_graph(2).with_labels(np.array([0, 1]))
    data = random_graph(20, 0.3, seed=1).with_labels(
        np.array([0] * 19 + [1])  # label 1 is rare in the data
    )
    order = rare_label_order(q, data)
    assert order.sequence[0] == 1


def test_rare_label_counts_invariant():
    rng = np.random.default_rng(3)
    data = random_graph(30, 0.3, seed=5).with_labels(
        rng.integers(0, 3, size=30)
    )
    q = cycle_graph(4).with_labels(rng.integers(0, 3, size=4))
    cfg = CuTSConfig(ordering="rare_label")
    assert CuTSMatcher(data, cfg).match(q).count == networkx_count(data, q)


def test_build_order_all_strategies():
    q = clique_graph(4)
    for s in ORDERING_STRATEGIES:
        order = build_order(q, s)
        assert sorted(order.sequence) == [0, 1, 2, 3]


# ------------------------------------------------------- steal policies
@pytest.fixture
def steal_setup():
    from repro.graph import social_graph

    data = social_graph(120, 3, community_edges=200, seed=4)
    query = cycle_graph(4)
    return data, query


@pytest.mark.parametrize("order", ["shallow", "deep"])
@pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
def test_steal_policies_preserve_counts(steal_setup, order, fraction):
    data, query = steal_setup
    res = DistributedCuTS(
        data, 4, CuTSConfig(chunk_size=16),
        steal_fraction=fraction, steal_order=order,
    ).match(query)
    assert res.count == networkx_count(data, query)


def test_invalid_steal_fraction(steal_setup):
    data, query = steal_setup
    with pytest.raises(ValueError):
        RankWorker(
            rank=0, data=data, query=query, config=CuTSConfig(),
            steal_fraction=1.5,
        )


def test_invalid_steal_order(steal_setup):
    data, query = steal_setup
    with pytest.raises(ValueError):
        RankWorker(
            rank=0, data=data, query=query, config=CuTSConfig(),
            steal_order="sideways",
        )


def test_deep_steal_pops_deep_end(steal_setup):
    data, query = steal_setup
    w = RankWorker(
        rank=0, data=data, query=query,
        config=CuTSConfig(chunk_size=8), steal_order="deep",
    )
    w.init_partition(1)
    for _ in range(5):
        if w.has_work():
            w.process_one_chunk()
    if len(w.stack) > 1:
        deepest_step = w.stack[-1].step
        buffers = w.pop_surplus()
        from repro.storage import deserialize_trie

        shipped_steps = [deserialize_trie(b).depth for b in buffers]
        assert max(shipped_steps) >= deepest_step - 1
