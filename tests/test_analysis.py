"""Tests for the repro.analysis static-analysis engine.

Each checker is exercised against a fixture tree under
``tests/analysis_fixtures/repro/`` that seeds violations at known lines
(annotated inline in the fixtures).  The tests assert every rule fires
at exactly the expected (path, line) pairs and nowhere else, that
``# repro: ignore[...]`` suppressions work, that the baseline round-trips
(active / baselined / stale), and that the real ``src/repro`` tree is
clean so the CI gate holds.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Analyzer, Baseline, Severity
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.engine import _parse_suppressions
from repro.analysis.registry import all_checkers

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "analysis_fixtures"
SRC_ROOT = TESTS_DIR.parent / "src"

# Ground truth: every (rule, logical path, line) the fixture tree seeds.
EXPECTED = {
    ("RP001", "repro/parallel/bad_shared.py", 7),
    ("RP001", "repro/parallel/bad_shared.py", 8),
    ("RP001", "repro/parallel/bad_shared.py", 9),
    ("RP001", "repro/parallel/bad_shared.py", 10),
    ("RP001", "repro/parallel/bad_shared.py", 23),
    ("RP001", "repro/parallel/bad_shared.py", 24),
    ("RP002", "repro/core/bad_rng.py", 10),
    ("RP002", "repro/core/bad_rng.py", 11),
    ("RP002", "repro/core/bad_rng.py", 12),
    ("RP002", "repro/core/bad_rng.py", 13),
    ("RP002", "repro/core/bad_rng.py", 14),
    ("RP003", "repro/core/bad_dtype.py", 7),
    ("RP003", "repro/core/bad_dtype.py", 8),
    ("RP003", "repro/core/bad_dtype.py", 9),
    ("RP003", "repro/core/bad_dtype.py", 10),
    ("RP004", "repro/distributed/protocol.py", 1),
    ("RP004", "repro/distributed/runtime.py", 8),
    ("RP004", "repro/distributed/runtime.py", 18),
    ("RP004", "repro/distributed/runtime.py", 19),
    ("RP004", "repro/distributed/runtime.py", 22),
    ("RP005", "repro/core/config.py", 10),
    ("RP005", "repro/cli.py", 12),
    ("RP005", "repro/cli.py", 13),
    ("RP005", "repro/cli.py", 22),
    ("RP006", "repro/checkpoint/bad_io.py", 8),
    ("RP006", "repro/checkpoint/bad_io.py", 10),
    ("RP006", "repro/checkpoint/bad_io.py", 12),
    ("RP006", "repro/checkpoint/bad_io.py", 13),
    ("RP006", "repro/checkpoint/bad_io.py", 14),
    ("RP007", "repro/service/bad_service.py", 21),
    ("RP007", "repro/service/bad_service.py", 22),
    ("RP007", "repro/service/bad_service.py", 23),
    ("RP008", "repro/service/bad_handlers.py", 7),
    ("RP008", "repro/service/bad_handlers.py", 11),
    ("RP008", "repro/service/bad_handlers.py", 16),
    ("RP008", "repro/service/bad_handlers.py", 20),
    ("RP008", "repro/distributed/bad_recovery.py", 7),
    ("RP008", "repro/service/bad_cluster.py", 24),
    ("RP008", "repro/service/bad_cluster.py", 32),
    ("RP008", "repro/versioning/bad_versions.py", 19),
    ("RP008", "repro/versioning/bad_versions.py", 23),
    ("RP009", "repro/service/bad_locks.py", 32),
    ("RP010", "repro/service/bad_cluster.py", 37),
    ("RP010", "repro/service/bad_cluster.py", 41),
    ("RP010", "repro/service/bad_cluster.py", 45),
    ("RP010", "repro/service/bad_cluster.py", 50),
    ("RP010", "repro/service/bad_order.py", 24),
    ("RP010", "repro/service/bad_order.py", 29),
    ("RP010", "repro/service/bad_order.py", 34),
    ("RP010", "repro/service/bad_order.py", 38),
    ("RP010", "repro/service/bad_service.py", 12),
    ("RP010", "repro/service/bad_service.py", 14),
    ("RP010", "repro/service/bad_service.py", 17),
    ("RP010", "repro/versioning/bad_versions.py", 47),
    ("RP010", "repro/versioning/bad_versions.py", 52),
    ("RP010", "repro/versioning/bad_versions.py", 57),
    ("RP011", "repro/core/bad_arena.py", 12),
    ("RP011", "repro/core/bad_arena.py", 18),
    ("RP011", "repro/core/bad_arena.py", 24),
    ("RP011", "repro/versioning/bad_versions.py", 67),
    ("RP011", "repro/versioning/bad_versions.py", 73),
}

# One suppressed violation per concrete-behavior rule, plus a second
# RP008 suppression in the cluster-router fixture and a third in the
# versioning fixture.
EXPECTED_SUPPRESSED = 11


@pytest.fixture(scope="module")
def fixture_report():
    return Analyzer(FIXTURES).run(baseline=None)


def _triples(diagnostics):
    return {(d.rule, d.path, d.line) for d in diagnostics}


# ---------------------------------------------------------------------------
# Per-rule firing: exactly the seeded lines, nothing else.
# ---------------------------------------------------------------------------


def test_fixture_tree_fires_exactly_the_seeded_violations(fixture_report):
    assert _triples(fixture_report.active) == EXPECTED


@pytest.mark.parametrize(
    "rule",
    ["RP001", "RP002", "RP003", "RP004", "RP005", "RP006", "RP007",
     "RP008", "RP009", "RP010", "RP011"],
)
def test_each_rule_fires_only_at_its_seeded_lines(fixture_report, rule):
    got = {t for t in _triples(fixture_report.active) if t[0] == rule}
    want = {t for t in EXPECTED if t[0] == rule}
    assert got == want


def test_every_rule_has_at_least_one_fixture(fixture_report):
    fired = {d.rule for d in fixture_report.active}
    assert fired == {c.rule for c in all_checkers()}


def test_diagnostics_carry_positions_and_messages(fixture_report):
    for diag in fixture_report.active:
        assert diag.line >= 1
        assert diag.col >= 1
        assert diag.message
        assert diag.severity is Severity.ERROR
        text = diag.format()
        assert f"{diag.path}:{diag.line}:" in text
        assert diag.rule in text


def test_clean_fixture_code_is_not_flagged(fixture_report):
    """Lines the fixtures mark as fine (locals, seeded RNG, modeled
    time, explicit dtypes, tracked sends) produce no diagnostics."""
    flagged = {(d.path, d.line) for d in fixture_report.active}
    fine = {
        ("repro/parallel/bad_shared.py", 11),  # private local array
        ("repro/parallel/bad_shared.py", 12),
        ("repro/parallel/bad_shared.py", 22),  # write to non-readonly param
        ("repro/core/bad_rng.py", 20),  # default_rng(seed)
        ("repro/core/bad_rng.py", 21),  # random.Random(seed)
        ("repro/core/bad_rng.py", 22),  # modeled-time comparison
        ("repro/core/bad_dtype.py", 15),  # explicit dtype
        ("repro/core/bad_dtype.py", 16),
        ("repro/distributed/runtime.py", 12),  # tracked WORK send
        ("repro/distributed/runtime.py", 17),  # receive arm
        ("repro/distributed/runtime.py", 21),  # broadcast arm
        ("repro/cli.py", 10),  # live flag
        ("repro/cli.py", 11),
        ("repro/checkpoint/bad_io.py", 18),  # read-mode opens
        ("repro/checkpoint/bad_io.py", 20),
        ("repro/checkpoint/bad_io.py", 22),
        ("repro/service/bad_service.py", 28),  # bounded queue waits
        ("repro/service/bad_service.py", 29),
        ("repro/service/bad_service.py", 31),  # condition wait under lock
        ("repro/service/bad_service.py", 32),  # sleep outside any lock
        ("repro/service/bad_service.py", 33),  # non-queue receiver
        ("repro/service/bad_handlers.py", 27),  # handler reacts (call)
        ("repro/service/bad_handlers.py", 31),  # fallback assignment
        ("repro/service/bad_handlers.py", 35),  # re-raise
        ("repro/service/bad_handlers.py", 39),  # returns a default
        ("repro/service/bad_locks.py", 33),  # immutable config read
        ("repro/service/bad_locks.py", 38),  # helper inherits entry lock
        ("repro/service/bad_locks.py", 39),
        ("repro/service/bad_locks.py", 42),  # minority guard: no inference
        ("repro/service/bad_order.py", 43),  # consistent nesting order
        ("repro/service/bad_order.py", 48),
        ("repro/service/bad_order.py", 53),  # cond.wait releases its cond
        ("repro/service/bad_order.py", 57),  # bounded wait under lock
        ("repro/service/bad_cluster.py", 59),  # failover counted
        ("repro/service/bad_cluster.py", 67),  # shed re-raises
        ("repro/service/bad_cluster.py", 71),  # bounded catch-up wait
        ("repro/core/bad_arena.py", 30),  # .copy() escapes safely
        ("repro/core/bad_arena.py", 36),  # rebind into the same name
        ("repro/core/bad_arena.py", 42),  # dynamic buffer name
        ("repro/versioning/bad_versions.py", 33),  # torn record counted
        ("repro/versioning/bad_versions.py", 61),  # consistent lock order
        ("repro/versioning/bad_versions.py", 78),  # copied splice escape
    }
    assert not flagged & fine


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------


def test_seeded_suppressions_are_honored(fixture_report):
    assert fixture_report.suppressed_count == EXPECTED_SUPPRESSED
    suppressed_sites = {
        ("RP001", "repro/parallel/bad_shared.py", 28),
        ("RP002", "repro/core/bad_rng.py", 29),
        ("RP003", "repro/core/bad_dtype.py", 21),
        ("RP006", "repro/checkpoint/bad_io.py", 28),
        ("RP007", "repro/service/bad_service.py", 39),
        ("RP008", "repro/service/bad_handlers.py", 46),
        ("RP008", "repro/service/bad_cluster.py", 77),
        ("RP008", "repro/versioning/bad_versions.py", 84),
        ("RP009", "repro/service/bad_locks.py", 49),
        ("RP010", "repro/service/bad_order.py", 61),
        ("RP011", "repro/core/bad_arena.py", 48),
    }
    assert not _triples(fixture_report.active) & suppressed_sites


def test_suppression_comment_parsing():
    lines = [
        "x = 1  # repro: ignore[RP003]",
        "y = 2  # repro: ignore[RP001, RP002]",
        "z = 3  # repro: ignore",
        "# a standalone comment. # repro: ignore[RP002]",
        "if clock() > deadline:",
        "plain = 4",
    ]
    sup = _parse_suppressions(lines)
    assert sup[1] == {"RP003"}
    assert sup[2] == {"RP001", "RP002"}
    assert sup[3] == {"*"}  # bare ignore silences every rule
    assert sup[5] == {"RP002"}  # standalone comment covers the next line
    assert 4 not in sup and 6 not in sup


@pytest.mark.parametrize(
    "rule,rel",
    [
        ("RP009", "repro/service/bad_locks.py"),
        ("RP010", "repro/service/bad_order.py"),
        ("RP011", "repro/core/bad_arena.py"),
    ],
)
def test_unsuppressing_a_seeded_bug_fails_strict(tmp_path, rule, rel):
    """Each concurrency rule demonstrably catches its bug class: strip
    the fixture's suppression comment and the strict gate fails on the
    resurfaced finding."""
    dst = tmp_path / rel
    dst.parent.mkdir(parents=True)
    dst.write_text(
        (FIXTURES / rel).read_text().replace(f"# repro: ignore[{rule}]", "")
    )
    report = Analyzer(tmp_path).run(baseline=None)
    assert report.suppressed_count == 0
    assert any(d.rule == rule for d in report.active)
    assert report.exit_code(strict=True) == 1


def test_suppression_scoping_is_per_rule(tmp_path):
    bad = tmp_path / "repro" / "core" / "mixed.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def f(n):\n"
        "    return np.arange(n)  # repro: ignore[RP002]\n"
    )
    report = Analyzer(tmp_path).run(baseline=None)
    # The RP002 suppression must not silence the RP003 finding.
    assert _triples(report.active) == {("RP003", "repro/core/mixed.py", 5)}
    assert report.suppressed_count == 0


# ---------------------------------------------------------------------------
# Scoping: package rules only fire inside their packages.
# ---------------------------------------------------------------------------


def test_scoped_rules_ignore_out_of_scope_packages(tmp_path):
    out = tmp_path / "repro" / "experiments" / "sweep.py"
    out.parent.mkdir(parents=True)
    out.write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def jitter(n):\n"
        "    return np.random.rand(n), np.arange(n)\n"
    )
    report = Analyzer(tmp_path).run(baseline=None)
    # experiments/ is outside both the RP002 and RP003 scopes.
    assert report.active == []


def test_logical_path_scoping_matches_real_tree(fixture_report):
    """Fixture modules under tests/analysis_fixtures/repro/ scope exactly
    like src/repro/ modules (the engine keys on the last 'repro' dir)."""
    project, _ = Analyzer(FIXTURES).collect()
    module = project.find("core/bad_rng.py")
    assert module is not None
    assert module.package == "core"
    assert module.logical_path() == "core/bad_rng.py"


# ---------------------------------------------------------------------------
# Parse errors become diagnostics, not crashes.
# ---------------------------------------------------------------------------


def test_syntax_error_becomes_rp000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    report = Analyzer(tmp_path).run(baseline=None)
    assert [d.rule for d in report.active] == ["RP000"]
    assert "syntax error" in report.active[0].message


# ---------------------------------------------------------------------------
# Baseline: split, stale detection, round-trip.
# ---------------------------------------------------------------------------


def test_baseline_split_and_staleness(fixture_report, tmp_path):
    # Baseline half the findings; the rest must stay active.
    ordered = sorted(fixture_report.active)
    half = ordered[: len(ordered) // 2]
    baseline = Baseline.from_diagnostics(half)
    report = Analyzer(FIXTURES).run(baseline=baseline)
    assert _triples(report.baselined) == _triples(half)
    assert _triples(report.active) == EXPECTED - _triples(half)
    assert report.stale_baseline == []

    # A baseline entry nothing matches is reported stale.
    stale_entry = "RP999::repro/nowhere.py::ghost finding"
    baseline.entries.add(stale_entry)
    report = Analyzer(FIXTURES).run(baseline=baseline)
    assert report.stale_baseline == [stale_entry]
    # Stale entries pass by default but fail the strict (CI) gate when
    # nothing else is wrong.
    clean = Analyzer(SRC_ROOT).run(
        baseline=Baseline(entries={stale_entry})
    )
    assert clean.exit_code(strict=False) == 0
    assert clean.exit_code(strict=True) == 1


def test_baseline_fingerprints_survive_line_shifts(fixture_report):
    """Fingerprints exclude line numbers, so reformatting above a
    baselined finding does not resurrect it."""
    diag = sorted(fixture_report.active)[0]
    shifted = type(diag)(
        path=diag.path,
        line=diag.line + 40,
        col=diag.col,
        rule=diag.rule,
        message=diag.message,
    )
    assert shifted.fingerprint == diag.fingerprint


def test_baseline_save_load_roundtrip(fixture_report, tmp_path):
    path = tmp_path / "analysis_baseline.json"
    Baseline.from_diagnostics(fixture_report.active).save(path)
    loaded = Baseline.load(path)
    report = Analyzer(FIXTURES).run(baseline=loaded)
    assert report.active == []
    assert _triples(report.baselined) == EXPECTED
    assert report.exit_code(strict=True) == 0
    # The on-disk format is versioned JSON.
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert len(data["entries"]) == len(set(d.fingerprint
                                           for d in fixture_report.active))


# ---------------------------------------------------------------------------
# CLI entry point.
# ---------------------------------------------------------------------------


def test_cli_exit_codes_and_json(capsys):
    code = analysis_main([str(FIXTURES), "--baseline", "none", "--json"])
    out = json.loads(capsys.readouterr().out)
    assert code == 1
    got = {
        (d["rule"], d["path"], d["line"]) for d in out["diagnostics"]
    }
    assert got == EXPECTED
    assert out["suppressed"] == EXPECTED_SUPPRESSED


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("VALUE = 1\n")
    assert analysis_main([str(tmp_path), "--baseline", "none"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    code = analysis_main([str(tmp_path / "nope"), "--baseline", "none"])
    assert code == 2


def test_cli_write_baseline_then_gate(tmp_path, capsys):
    target = tmp_path / "analysis_baseline.json"
    code = analysis_main(
        [str(FIXTURES), "--baseline", str(target), "--write-baseline"]
    )
    capsys.readouterr()
    assert code == 0 and target.exists()
    # With the freshly written baseline the same tree now gates clean.
    assert analysis_main([str(FIXTURES), "--baseline", str(target)]) == 0


def test_cli_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "RP001", "RP002", "RP003", "RP004", "RP005", "RP006", "RP007",
        "RP008", "RP009", "RP010", "RP011",
    ):
        assert rule in out


def test_module_entry_point_runs_via_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=str(SRC_ROOT.parent),
        env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "RP001" in proc.stdout


# ---------------------------------------------------------------------------
# Self-gate: the real source tree is clean with an empty baseline.
# ---------------------------------------------------------------------------


def test_src_tree_is_clean_under_strict_gate():
    report = Analyzer(SRC_ROOT).run(baseline=None)
    assert report.active == [], "\n".join(
        d.format() for d in report.active
    )
    assert report.exit_code(strict=True) == 0
    assert report.checked_files > 50  # the whole tree was really walked


def test_committed_baseline_is_empty_by_policy():
    baseline_path = TESTS_DIR.parent / "analysis_baseline.json"
    assert baseline_path.exists()
    assert Baseline.load(baseline_path).entries == set()
