"""Unit tests for fault injection and the reliability protocol pieces."""

import pytest

from repro.core import CuTSConfig
from repro.distributed import (
    DistributedCuTS,
    FaultInjector,
    FaultPlan,
    FreeNodeRegistry,
    NetworkModel,
    RankWorker,
    ShipmentTracker,
    SimComm,
    StrideLedger,
)
from repro.graph import cycle_graph, social_graph


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------

def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan(dup_prob=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(max_delay_ms=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(crash_at_ms={0: -2.0})
    with pytest.raises(ValueError):
        FaultPlan(slowdown={1: 0.5})


def test_plan_is_null():
    assert FaultPlan().is_null
    assert not FaultPlan(drop_prob=0.1).is_null
    assert not FaultPlan(crash_at_ms={0: 1.0}).is_null
    assert not FaultPlan(slowdown={0: 2.0}).is_null


def test_random_plan_deterministic_and_bounded():
    for num_ranks in (2, 4, 8):
        for seed in range(20):
            a = FaultPlan.random(seed, num_ranks)
            b = FaultPlan.random(seed, num_ranks)
            assert a == b
            # at least one rank must survive
            assert len(a.crash_at_ms) <= num_ranks - 1
            assert not set(a.crash_at_ms) & set(a.slowdown)


def test_random_plan_max_crashes_override():
    plan = FaultPlan.random(0, 8, crash_prob=1.0, max_crashes=2)
    assert len(plan.crash_at_ms) == 2


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------

def test_injector_drop_everything():
    inj = FaultInjector(FaultPlan(seed=0, drop_prob=1.0))
    for _ in range(10):
        assert inj.message_fate("work") == []
    assert inj.drops == 10
    assert inj.message_faults == 10


def test_injector_duplicate_everything():
    inj = FaultInjector(FaultPlan(seed=0, dup_prob=1.0))
    for _ in range(10):
        assert len(inj.message_fate("ack")) == 2
    assert inj.duplicates == 10


def test_injector_leaves_other_tags_alone():
    inj = FaultInjector(FaultPlan(seed=0, drop_prob=1.0, dup_prob=1.0))
    assert inj.message_fate("free") == [0.0]
    assert inj.message_fate("hb") == [0.0]
    assert inj.message_faults == 0


def test_injector_delay_bounded():
    inj = FaultInjector(FaultPlan(seed=0, delay_prob=1.0, max_delay_ms=3.0))
    fates = [inj.message_fate("work") for _ in range(50)]
    assert all(len(f) == 1 and 0.0 <= f[0] <= 3.0 for f in fates)
    assert inj.delays == 50


def test_injector_deterministic_replay():
    plan = FaultPlan(seed=9, drop_prob=0.3, dup_prob=0.3, delay_prob=0.5)
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    assert [a.message_fate("work") for _ in range(100)] == [
        b.message_fate("work") for _ in range(100)
    ]


def test_injector_rank_faults():
    inj = FaultInjector(FaultPlan(crash_at_ms={2: 7.0}, slowdown={1: 3.0}))
    assert inj.crash_time(2) == 7.0
    assert inj.crash_time(0) is None
    assert inj.slowdown(1) == 3.0
    assert inj.slowdown(0) == 1.0


# ----------------------------------------------------------------------
# SimComm under injection
# ----------------------------------------------------------------------

def test_comm_drop_still_charged_on_wire():
    comm = SimComm(2, injector=FaultInjector(FaultPlan(seed=0, drop_prob=1.0)))
    comm.send(0, 1, "work", "x", 100, time=0.0)
    assert comm.receive(1, time=1e9) == []
    assert comm.messages_sent == 1
    assert comm.words_sent == 100


def test_comm_duplicate_delivers_twice_counts_once():
    comm = SimComm(2, injector=FaultInjector(FaultPlan(seed=0, dup_prob=1.0)))
    comm.send(0, 1, "work", "x", 10, time=0.0)
    msgs = comm.receive(1, time=1e9)
    assert [m.payload for m in msgs] == ["x", "x"]
    assert comm.messages_sent == 1
    assert comm.words_sent == 10


def test_comm_delay_postpones_arrival():
    net = NetworkModel(latency_ms=1.0, words_per_ms=1e9)
    comm = SimComm(
        2, net,
        injector=FaultInjector(
            FaultPlan(seed=0, delay_prob=1.0, max_delay_ms=5.0)
        ),
    )
    base = comm.send(0, 1, "work", "x", 0, time=0.0)
    assert base == pytest.approx(1.0)  # returns the un-jittered arrival
    msgs = comm.peek(1)
    assert len(msgs) == 1
    assert msgs[0].arrival_time > base


# ----------------------------------------------------------------------
# FreeNodeRegistry hardening
# ----------------------------------------------------------------------

def test_release_claim_rolls_back():
    reg = FreeNodeRegistry(3)
    reg.announce_free(1, 0.0)
    assert reg.claim_free(0, 1.0) == 1
    assert reg.transfers == 1
    assert reg.release_claim(0, 1)
    assert reg.transfers == 0
    assert 0 not in reg.outstanding_claim
    assert 1 not in reg.claimed_by
    # the target is claimable again
    assert reg.claim_free(2, 2.0) == 1


def test_release_claim_mismatched_target_is_noop():
    reg = FreeNodeRegistry(3)
    reg.announce_free(1, 0.0)
    reg.claim_free(0, 1.0)
    assert not reg.release_claim(0, expected_target=2)
    assert reg.outstanding_claim == {0: 1}
    assert reg.transfers == 1


def test_release_claim_without_claim():
    reg = FreeNodeRegistry(2)
    assert not reg.release_claim(0)


def test_drop_rank_clears_both_directions():
    reg = FreeNodeRegistry(4)
    reg.announce_free(1, 0.0)
    reg.announce_free(3, 0.0)
    reg.claim_free(0, 1.0)       # 0 claims 1
    reg.claim_free(2, 1.0)       # 2 claims 3
    # dropping the claimed target frees the claimant
    assert reg.drop_rank(1) == 0
    assert 0 not in reg.outstanding_claim
    # dropping a claimant frees its target
    assert reg.drop_rank(2) is None
    assert 3 not in reg.claimed_by


# ----------------------------------------------------------------------
# Claim-leak regression (satellite): an empty ship must release the claim
# ----------------------------------------------------------------------

def test_empty_ship_releases_claim():
    data = social_graph(30, 2, community_edges=40, seed=1)
    query = cycle_graph(3)
    config = CuTSConfig(chunk_size=32)
    rt = DistributedCuTS(data, 2, config)
    ledger = StrideLedger()
    w = RankWorker(
        rank=0, data=data, query=query, config=config, ledger=ledger
    )
    w.init_partition(2)
    comm = SimComm(2)
    tracker = ShipmentTracker()
    reg = FreeNodeRegistry(2)
    reg.announce_free(1, 0.0)
    assert reg.claim_free(0, 1.0) == 1
    w.pop_surplus_with_meta = lambda: ([], [])  # nothing to ship
    rt._ship(w, 1, comm, tracker, reg)
    assert reg.outstanding_claim == {}
    assert reg.claimed_by == {}
    assert reg.transfers == 0
    assert comm.messages_sent == 0
    assert tracker.in_flight == {}


# ----------------------------------------------------------------------
# StrideLedger
# ----------------------------------------------------------------------

def test_ledger_commit_on_last_item():
    led = StrideLedger()
    led.open((0, 0, 10), rank=0)
    led.add_pending((0, 0, 10), gen=0, delta=1)
    led.finish_item((0, 0, 10), gen=0, rank=0, count=3)
    assert led.committed_total == 0  # one item still pending
    led.finish_item((0, 0, 10), gen=0, rank=1, count=4)
    assert led.committed_total == 7
    assert led.all_committed()


def test_ledger_split_root():
    led = StrideLedger()
    led.open((0, 0, 10), rank=0)
    assert led.split_root((0, 0, 10), mid=4, gen=0, rank=0)
    assert (0, 0, 4) in led.entries and (0, 4, 10) in led.entries
    assert (0, 0, 10) not in led.entries
    assert not led.split_root((0, 0, 4), mid=0, gen=0, rank=0)  # bad mid
    led.finish_item((0, 0, 4), gen=0, rank=0, count=1)
    led.finish_item((0, 4, 10), gen=0, rank=0, count=2)
    assert led.committed_total == 3


def test_ledger_recovery_bumps_generation():
    led = StrideLedger()
    led.open((0, 0, 10), rank=1)
    led.finish_item((0, 0, 10), gen=0, rank=1, count=5)
    assert led.committed_total == 5
    led.open((1, 0, 10), rank=1)
    dirty = led.begin_recovery(1)
    assert dirty == [(1, 0, 10)]  # committed intervals are immune
    assert led.recovered_intervals == 1
    assert not led.accepts((1, 0, 10), gen=0)  # stale gen rejected
    gen = led.adopt((1, 0, 10), rank=0)
    assert gen == 1
    led.finish_item((1, 0, 10), gen=1, rank=0, count=2)
    assert led.committed_total == 7
    assert led.all_committed()


def test_ledger_stale_gen_ops_are_noops():
    led = StrideLedger()
    led.open((0, 0, 10), rank=0)
    led.begin_recovery(0)
    led.add_pending((0, 0, 10), gen=0, delta=1)
    led.finish_item((0, 0, 10), gen=0, rank=0, count=99)
    assert led.committed_total == 0
    assert not led.all_committed()
