"""Tests for the simulated device-memory manager."""

import pytest

from repro.gpusim import DeviceMemory, DeviceOOMError, V100, scaled_device


@pytest.fixture
def mem():
    return DeviceMemory(scaled_device(V100, 1000))


def test_alloc_and_free(mem):
    mem.alloc("a", 400)
    assert mem.used_words == 400
    assert mem.free_words == 600
    mem.free("a")
    assert mem.used_words == 0


def test_alloc_grows_existing_label(mem):
    mem.alloc("a", 100)
    mem.alloc("a", 200)
    assert mem.allocations["a"] == 300


def test_oom_raises(mem):
    mem.alloc("a", 900)
    with pytest.raises(DeviceOOMError) as exc:
        mem.alloc("b", 200)
    assert exc.value.requested == 200
    assert exc.value.free == 100
    assert exc.value.label == "b"


def test_oom_leaves_state_unchanged(mem):
    mem.alloc("a", 900)
    with pytest.raises(DeviceOOMError):
        mem.alloc("b", 200)
    assert mem.used_words == 900
    assert "b" not in mem.allocations


def test_resize_up_and_down(mem):
    mem.alloc("t", 100)
    mem.resize("t", 500)
    assert mem.allocations["t"] == 500
    mem.resize("t", 50)
    assert mem.allocations["t"] == 50
    mem.resize("t", 0)
    assert "t" not in mem.allocations


def test_resize_oom(mem):
    mem.alloc("a", 800)
    mem.alloc("t", 100)
    with pytest.raises(DeviceOOMError):
        mem.resize("t", 400)
    assert mem.allocations["t"] == 100


def test_peak_tracking(mem):
    mem.alloc("a", 700)
    mem.free("a")
    mem.alloc("b", 100)
    assert mem.peak_words == 700


def test_free_missing_label_is_noop(mem):
    mem.free("never_allocated")
    assert mem.used_words == 0


def test_negative_sizes(mem):
    with pytest.raises(ValueError):
        mem.alloc("a", -1)
    with pytest.raises(ValueError):
        mem.resize("a", -1)


def test_reset(mem):
    mem.alloc("a", 500)
    mem.reset()
    assert mem.used_words == 0
    assert mem.peak_words == 500  # peak survives reset
