"""Tests for the self-healing service client (repro.service.client).

Unit half: RetryPolicy retry decisions and backoff math, CircuitBreaker
state machine under a fake clock.  Integration half: a scripted
in-process HTTP server plays failure tapes — connection refused,
mid-body disconnect, malformed JSON, 429s with and without Retry-After
— and the tests assert the client heals (or correctly refuses to) and
reuses one idempotency key across every wire-level retry.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.service.client import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)

# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


@pytest.mark.parametrize(
    ("status", "reason", "expected"),
    [
        (0, None, True),  # transport failure: ambiguous, retry
        (503, None, True),
        (502, None, True),
        (504, None, True),
        (429, "queue-full", True),
        (429, "memory-budget", True),
        (429, "degraded", True),
        (429, "oversized-query", False),  # caller bug: would loop forever
        (400, None, False),
        (404, None, False),
        (500, None, False),  # a plain 500 is a server bug, not load
        (0, "circuit-open", False),  # the breaker already decided
    ],
)
def test_should_retry(status, reason, expected):
    policy = RetryPolicy()
    err = ServiceError(status, "boom", reason=reason)
    assert policy.should_retry(err) is expected


def test_backoff_grows_and_caps():
    client = ServiceClient(
        "http://127.0.0.1:1",
        retry=RetryPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.5, jitter=0.0
        ),
    )
    assert client._backoff_s(0, None) == pytest.approx(0.1)
    assert client._backoff_s(1, None) == pytest.approx(0.2)
    assert client._backoff_s(2, None) == pytest.approx(0.4)
    assert client._backoff_s(3, None) == pytest.approx(0.5)  # capped
    assert client._backoff_s(10, None) == pytest.approx(0.5)


def test_backoff_honours_retry_after_capped():
    client = ServiceClient(
        "http://127.0.0.1:1",
        retry=RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5, jitter=0.5),
    )
    # Retry-After overrides the schedule (jitter does not apply to it).
    assert client._backoff_s(0, 0.25) == pytest.approx(0.25)
    assert client._backoff_s(0, 99.0) == pytest.approx(0.5)  # capped
    assert client._backoff_s(0, -3.0) == pytest.approx(0.0)


def test_backoff_jitter_is_deterministic_per_seed():
    def series(seed):
        c = ServiceClient(
            "http://127.0.0.1:1", retry=RetryPolicy(seed=seed)
        )
        return [c._backoff_s(i, None) for i in range(5)]

    assert series(7) == series(7)
    assert series(7) != series(8)


# ---------------------------------------------------------------------------
# CircuitBreaker (fake clock)
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def tripped_breaker(clock, *, threshold=3):
    breaker = CircuitBreaker(
        window=8, failure_threshold=threshold, cooldown_s=5.0, clock=clock
    )
    for _ in range(threshold):
        breaker.before_request()
        breaker.record_failure()
    return breaker


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(window=0)
    with pytest.raises(ValueError):
        CircuitBreaker(window=4, failure_threshold=5)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=-1)


def test_breaker_opens_at_threshold_and_fails_fast():
    clock = FakeClock()
    breaker = tripped_breaker(clock)
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens == 1
    with pytest.raises(ServiceError) as exc_info:
        breaker.before_request()
    assert exc_info.value.reason == "circuit-open"
    assert exc_info.value.status == 0
    assert breaker.fast_fails == 1


def test_breaker_half_open_probe_success_closes():
    clock = FakeClock()
    breaker = tripped_breaker(clock)
    clock.now = 5.0  # cooldown elapsed
    breaker.before_request()  # admitted: this is the probe
    assert breaker.state == CircuitBreaker.HALF_OPEN
    # A second caller during the probe still fails fast.
    with pytest.raises(ServiceError):
        breaker.before_request()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    # The window was cleared: old failures cannot instantly re-trip.
    assert breaker.snapshot()["window_failures"] == 0
    breaker.before_request()  # closed again: free flow


def test_breaker_half_open_probe_failure_reopens():
    clock = FakeClock()
    breaker = tripped_breaker(clock)
    clock.now = 5.0
    breaker.before_request()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    with pytest.raises(ServiceError):
        breaker.before_request()  # new cooldown from the probe failure
    clock.now = 10.0
    breaker.before_request()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_failures_age_out_of_window():
    breaker = CircuitBreaker(window=4, failure_threshold=3)
    for outcome in (False, False, True, True, False):
        if outcome:
            breaker.record_success()
        else:
            breaker.record_failure()
    # Window holds [False, True, True, False]: 2 failures < 3.
    assert breaker.state == CircuitBreaker.CLOSED


# ---------------------------------------------------------------------------
# Scripted HTTP server
# ---------------------------------------------------------------------------


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Replays the server's ``tape`` one entry per request."""

    def _play(self):
        server = self.server
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        server.requests.append(
            {
                "method": self.command,
                "path": self.path,
                "body": json.loads(body) if body else None,
            }
        )
        if not server.tape:
            step = {"status": 200, "json": {"ok": True}}
        else:
            step = server.tape.pop(0)
        kind = step.get("kind", "json")
        if kind == "disconnect":
            # Headers promise a body that never arrives: the client
            # sees the connection break mid-response.
            self.send_response(200)
            self.send_header("Content-Length", "1000")
            self.end_headers()
            self.wfile.write(b"{")
            self.wfile.flush()
            self.connection.close()
            return
        payload = step.get("raw")
        if payload is None:
            payload = json.dumps(step.get("json", {})).encode("utf-8")
        self.send_response(step.get("status", 200))
        for key, value in step.get("headers", {}).items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _play
    do_POST = _play

    def log_message(self, *args):  # noqa: ARG002 - silence test output
        pass


@pytest.fixture()
def scripted_server():
    server = HTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.tape = []
    server.requests = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def fast_client(url, **kwargs):
    """Client with zero real sleeping; returns (client, recorded sleeps)."""
    kwargs.setdefault(
        "retry", RetryPolicy(backoff_base_s=0.001, jitter=0.0)
    )
    client = ServiceClient(url, timeout=5.0, **kwargs)
    sleeps = []
    client._sleep = sleeps.append
    return client, sleeps


# ---------------------------------------------------------------------------
# Client error paths against the scripted server
# ---------------------------------------------------------------------------


def test_connection_refused_surfaces_status_zero():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    client, _ = fast_client(
        f"http://127.0.0.1:{port}",
        retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0, jitter=0.0),
    )
    with pytest.raises(ServiceError) as exc_info:
        client.healthz()
    assert exc_info.value.status == 0
    assert "cannot reach" in str(exc_info.value)
    assert client.retries == 1  # it did try again before giving up


def test_mid_body_disconnect_retries_to_success(scripted_server):
    server, url = scripted_server
    server.tape = [
        {"kind": "disconnect"},
        {"json": {"status": "ok"}},
    ]
    client, _ = fast_client(url)
    assert client.healthz() == {"status": "ok"}
    assert client.retries == 1


def test_malformed_json_retries_to_success(scripted_server):
    server, url = scripted_server
    server.tape = [
        {"raw": b"<html>not json at all</html>"},
        {"json": {"status": "ok"}},
    ]
    client, _ = fast_client(url)
    assert client.healthz() == {"status": "ok"}
    assert client.retries == 1


def test_oversized_query_429_is_not_retried(scripted_server):
    server, url = scripted_server
    server.tape = [
        {
            "status": 429,
            "json": {"error": "query too large", "reason": "oversized-query"},
        }
    ]
    client, sleeps = fast_client(url)
    with pytest.raises(ServiceError) as exc_info:
        client.healthz()
    assert exc_info.value.status == 429
    assert exc_info.value.reason == "oversized-query"
    assert client.retries == 0 and sleeps == []
    assert len(server.requests) == 1  # exactly one wire request


def test_queue_full_429_retries_and_honours_retry_after(scripted_server):
    server, url = scripted_server
    server.tape = [
        {
            "status": 429,
            "json": {"error": "queue full", "reason": "queue-full"},
            "headers": {"Retry-After": "0.25"},
        },
        {"json": {"status": "ok"}},
    ]
    client, sleeps = fast_client(url)
    assert client.healthz() == {"status": "ok"}
    assert client.retries == 1
    assert sleeps == [pytest.approx(0.25)]  # server's hint, not the schedule


def test_503_degraded_retries(scripted_server):
    server, url = scripted_server
    server.tape = [
        {
            "status": 503,
            "json": {"error": "degraded", "reason": "degraded"},
            "headers": {"Retry-After": "0.01"},
        },
        {"json": {"status": "ok"}},
    ]
    client, sleeps = fast_client(url)
    assert client.healthz() == {"status": "ok"}
    assert sleeps == [pytest.approx(0.01)]


def test_exhausted_attempts_raise_the_last_error(scripted_server):
    server, url = scripted_server
    server.tape = [{"status": 503, "json": {"error": "down"}}] * 5
    client, _ = fast_client(
        url, retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)
    )
    with pytest.raises(ServiceError) as exc_info:
        client.healthz()
    assert exc_info.value.status == 503
    assert client.retries == 2
    assert len(server.requests) == 3


def test_match_reuses_one_idempotency_key_across_retries(scripted_server):
    server, url = scripted_server
    server.tape = [
        {"status": 503, "json": {"error": "blip"}},
        {"json": {"job_id": "job-1", "state": "done"}},
    ]
    client, _ = fast_client(url)
    spec = {"edges": [[0, 1]], "num_vertices": 2}
    client.match(spec, spec)
    keys = [r["body"]["idempotency_key"] for r in server.requests]
    assert len(keys) == 2
    assert keys[0] == keys[1]  # the retry cannot double-count
    assert keys[0]  # auto-generated, non-empty


def test_match_respects_caller_supplied_key(scripted_server):
    server, url = scripted_server
    client, _ = fast_client(url)
    spec = {"edges": [[0, 1]], "num_vertices": 2}
    client.match(spec, spec, idempotency_key="my-key")
    assert server.requests[0]["body"]["idempotency_key"] == "my-key"


def test_4xx_records_breaker_success(scripted_server):
    # A 404 proves the server is alive: the breaker must not count it.
    server, url = scripted_server
    server.tape = [{"status": 404, "json": {"error": "no such job"}}] * 6
    breaker = CircuitBreaker(window=8, failure_threshold=2)
    client, _ = fast_client(
        url,
        retry=RetryPolicy(max_attempts=1),
        breaker=breaker,
    )
    for _ in range(6):
        with pytest.raises(ServiceError):
            client.job("nope")
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.snapshot()["window_failures"] == 0


def test_breaker_opens_then_recovers_end_to_end(scripted_server):
    server, url = scripted_server
    clock = FakeClock()
    breaker = CircuitBreaker(
        window=8, failure_threshold=2, cooldown_s=1.0, clock=clock
    )
    client, _ = fast_client(
        url, retry=RetryPolicy(max_attempts=1), breaker=breaker
    )
    server.tape = [{"status": 503, "json": {"error": "down"}}] * 2
    for _ in range(2):
        with pytest.raises(ServiceError):
            client.healthz()
    assert breaker.state == CircuitBreaker.OPEN
    # While open: fail fast, nothing reaches the wire.
    wire_before = len(server.requests)
    with pytest.raises(ServiceError) as exc_info:
        client.healthz()
    assert exc_info.value.reason == "circuit-open"
    assert len(server.requests) == wire_before
    # After the cooldown the probe goes through and closes the circuit.
    clock.now = 1.0
    assert client.healthz() == {"ok": True}
    assert breaker.state == CircuitBreaker.CLOSED