"""Tests for the shared content-fingerprint module.

``repro.fingerprint`` moved out of ``repro.checkpoint`` so the service
cache and the checkpoint store key on the *same* hashes; these tests pin
the refactor: the checkpoint re-exports are the same objects, and the
fingerprints behave (content-sensitive, name-insensitive, count-relevant
config fields only).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import fingerprint as shared
from repro.checkpoint import fingerprint as compat
from repro.core.config import CuTSConfig
from repro.fingerprint import (
    COUNT_IRRELEVANT_FIELDS,
    CheckpointMismatchError,
    check_fingerprints,
    config_fingerprint,
    graph_fingerprint,
)
from repro.graph import from_edges, mesh_graph


# ---------------------------------------------------------------------------
# Satellite regression: checkpoint/fingerprint.py must stay a pure alias.
# ---------------------------------------------------------------------------


def test_checkpoint_reexports_are_the_same_objects():
    assert compat.graph_fingerprint is shared.graph_fingerprint
    assert compat.config_fingerprint is shared.config_fingerprint
    assert compat.check_fingerprints is shared.check_fingerprints
    assert compat.CheckpointMismatchError is shared.CheckpointMismatchError


def test_checkpoint_and_shared_agree_on_real_inputs(mesh44):
    cfg = CuTSConfig()
    assert compat.graph_fingerprint(mesh44) == graph_fingerprint(mesh44)
    assert compat.config_fingerprint(cfg) == config_fingerprint(cfg)


def test_checkpoint_package_still_exposes_the_names():
    import repro.checkpoint as cp

    assert cp.fingerprint.graph_fingerprint is shared.graph_fingerprint


# ---------------------------------------------------------------------------
# Graph fingerprints.
# ---------------------------------------------------------------------------


def test_graph_fingerprint_is_stable_and_content_keyed(mesh44):
    fp1 = graph_fingerprint(mesh44)
    fp2 = graph_fingerprint(mesh_graph(4, 4))
    assert fp1 == fp2
    assert fp1 != graph_fingerprint(mesh_graph(4, 5))
    assert len(fp1) == 64  # sha256 hex


def test_graph_fingerprint_ignores_name_but_not_labels():
    a = from_edges([(0, 1), (1, 0)], name="a")
    b = from_edges([(0, 1), (1, 0)], name="b")
    assert graph_fingerprint(a) == graph_fingerprint(b)
    labelled = a.with_labels(np.array([1, 2], dtype=np.int64))
    assert graph_fingerprint(labelled) != graph_fingerprint(a)


# ---------------------------------------------------------------------------
# Config fingerprints: count-relevant fields only.
# ---------------------------------------------------------------------------


def test_config_fingerprint_ignores_count_irrelevant_fields():
    base = config_fingerprint(CuTSConfig())
    assert config_fingerprint(
        CuTSConfig(workers=4, memory_budget_mb=64, service_queue_depth=7)
    ) == base


def test_config_fingerprint_tracks_count_relevant_fields():
    base = config_fingerprint(CuTSConfig())
    assert config_fingerprint(CuTSConfig(chunk_size=64)) != base
    assert config_fingerprint(CuTSConfig(ordering="id")) != base


def test_irrelevant_field_set_matches_the_dataclass():
    names = {f.name for f in dataclasses.fields(CuTSConfig)}
    assert COUNT_IRRELEVANT_FIELDS <= names, (
        "COUNT_IRRELEVANT_FIELDS names a field CuTSConfig no longer has"
    )


def test_check_fingerprints_raises_on_mismatch(mesh44):
    cfg = CuTSConfig()
    stored = {
        "graph": graph_fingerprint(mesh44),
        "config": config_fingerprint(cfg),
    }
    check_fingerprints(stored, dict(stored))  # identical: fine
    bad = dict(stored, graph="0" * 64)
    with pytest.raises(CheckpointMismatchError):
        check_fingerprints(bad, stored)
