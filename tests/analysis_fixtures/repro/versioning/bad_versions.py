"""Seeded versioning-package violations: swallowed journal errors
(RP008), commit/retention lock-order hazards (RP010), and overlay
arena view aliasing (RP011)."""

import threading
import time


class MatchResult:
    def __init__(self, rows=None, count=0):
        self.rows = rows
        self.count = count


def swallowed_replay(journal):
    for record in journal:
        try:
            record.apply()
        except ValueError:                    # line 19: continue drops it
            continue
    try:
        journal.sync()
    except OSError:                           # line 23: silent pass body
        pass


def counted_replay_is_fine(journal):
    malformed = 0
    for record in journal:
        try:
            record.apply()
        except ValueError:
            malformed += 1  # fine: torn record counted, not dropped
    return malformed


class CommitGate:
    """Journal and chain locks taken in both orders (the bug)."""

    def __init__(self):
        self._journal = threading.Lock()
        self._chain = threading.Lock()
        self._head = threading.Lock()

    def journal_then_chain(self):
        with self._journal:
            with self._chain:                 # line 47: cycle journal->chain
                pass

    def chain_then_journal(self):
        with self._chain:
            with self._journal:               # line 52: cycle chain->journal
                pass

    def fsync_pacing_under_head(self):
        with self._head:
            time.sleep(0.05)                  # line 57: blocks holding head

    def nested_same_order_is_fine(self):
        with self._head:
            with self._chain:  # fine: single direction, no cycle
                pass


def overlay_double_take(arena, n):
    base = arena.take("overlay", n)
    patch = arena.take("overlay", n)          # line 67: retaken while live
    return base[0] + patch[0]


def splice_rows_escape(arena, n):
    rows = arena.take("splice_rows", n)
    return MatchResult(rows=rows)             # line 73: view escapes uncopied


def copied_splice_is_fine(arena, n):
    rows = arena.take("splice_rows", n)
    return MatchResult(rows=rows.copy())  # fine: result owns its memory


def suppressed_drain(journal):
    try:
        journal.drain()
    except Exception:  # best-effort close. # repro: ignore[RP008]
        pass
