"""RP006 fixture: non-atomic writes inside the checkpoint package."""

import json
from pathlib import Path


def bare_writes(path, manifest):
    with open(path, "w") as fh:                   # line 8: bare open "w"
        json.dump(manifest, fh)
    with open(path, mode="ab") as fh:             # line 10: mode= kwarg
        fh.write(b"tail")
    Path(path).open("x").close()                  # line 12: .open("x")
    Path(path).write_text("snapshot")             # line 13: write_text
    Path(path).write_bytes(b"snapshot")           # line 14: write_bytes


def reads_are_fine(path):
    with open(path) as fh:  # fine: default mode is read
        head = fh.read(16)
    with open(path, "rb") as fh:  # fine: explicit read mode
        body = fh.read()
    text = Path(path).read_text()  # fine: read helper
    return head, body, text


def suppressed_legacy_writer(path, payload):
    # Grandfathered debug dump. # repro: ignore[RP006]
    with open(path, "w") as fh:
        fh.write(payload)
