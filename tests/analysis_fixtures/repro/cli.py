"""RP005 fixture: CLI drift — dead flags and unknown config kwargs."""

import argparse

from .core.config import CuTSConfig


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--chunk-size", type=int, default=512)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--dead-flag", type=int, default=0)      # line 12
    parser.add_argument("--renamed", dest="also_dead", type=int)  # line 13
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    config = CuTSConfig(
        chunk_size=args.chunk_size,
        workers=args.workers,
        typo_knob=3,                                              # line 22
    )
    return config
