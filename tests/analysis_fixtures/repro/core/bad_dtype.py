"""RP003 fixture: implicit dtypes and narrow integer accumulators."""

import numpy as np


def implicit_widths(n, offsets):
    frontier = np.arange(n)                       # line 7: implicit dtype
    pool = np.zeros(n)                            # line 8: implicit dtype
    counts = offsets.astype(np.int32)             # line 9: narrow dtype
    total = np.int32(0)                           # line 10: narrow dtype
    return frontier, pool, counts, total


def explicit_widths(n):
    frontier = np.arange(n, dtype=np.int64)  # fine
    mask = np.zeros(n, dtype=bool)  # fine: explicit, intentionally bool
    return frontier, mask


def suppressed_narrow(n):
    packed = np.zeros(n, dtype=np.uint8)  # repro: ignore[RP003]
    return packed
