"""RP011 fixture: ExpansionArena view-aliasing hazards."""


class MatchResult:
    def __init__(self, rows=None, count=0):
        self.rows = rows
        self.count = count


def double_take(arena, n):
    idx = arena.take("idx", n)
    tmp = arena.take("idx", n)         # line 12: 'idx' retaken while live
    return idx[0] + tmp[0]


def escaping_view(arena, n):
    rows = arena.take("rows", n)
    return MatchResult(rows=rows)      # line 18: view escapes uncopied


def write_under_slice(arena, n, k):
    buf = arena.take("buf", n)
    head = buf[:k]
    buf[0] = 1                         # line 24: write under live slice
    return head


def copied_result_is_fine(arena, n):
    rows = arena.take("rows", n)
    return MatchResult(rows=rows.copy())  # fine: result owns its memory


def rebind_is_fine(arena, n):
    scratch = arena.take("scratch", n)
    total = scratch[0]
    scratch = arena.take("scratch", n)  # fine: rebinding the same name
    return total + scratch[0]


def dynamic_names_are_unchecked(arena, name, n):
    a = arena.take(name, n)
    b = arena.take(name, n)  # fine by design: non-literal buffer name
    return a[0] + b[0]


def suppressed_overlap(arena, n):
    lo = arena.take("pair", n)
    hi = arena.take("pair", n)  # staged reuse. # repro: ignore[RP011]
    return lo[0] + hi[0]
