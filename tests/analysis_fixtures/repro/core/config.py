"""RP005 fixture: a config schema with a dead field."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CuTSConfig:
    chunk_size: int = 512
    workers: int = 1
    phantom_knob: float = 0.5  # line 10: seeded violation, read nowhere
