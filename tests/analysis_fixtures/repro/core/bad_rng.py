"""RP002 fixture: unseeded randomness and wall-clock branching."""

import random
import time as _time

import numpy as np


def unseeded_everything(n, deadline):
    weights = np.random.rand(n)                   # line 10: legacy RNG
    np.random.seed(0)                             # line 11: global seed
    rng = np.random.default_rng()                 # line 12: entropy seed
    jitter = random.random()                      # line 13: bare random
    if _time.monotonic() > deadline:              # line 14: clock branch
        return None
    return weights, rng, jitter


def seeded_is_fine(seed, deadline_ms, cost_ms):
    rng = np.random.default_rng(seed)  # fine: explicit seed
    local = random.Random(seed)  # fine: seeded instance
    if cost_ms > deadline_ms:  # fine: modeled time, not wall clock
        return None
    return rng.integers(0, 10), local.randint(0, 10)


def suppressed_clock(deadline):
    # Sanctioned wall-clock safety valve. # repro: ignore[RP002]
    if _time.monotonic() > deadline:
        return None
    return deadline
