"""RP008 fixture: a swallowed send failure in the distributed runtime."""


def ship_with_silent_retry(channel, work):
    try:
        channel.send(work)
    except ConnectionError:                       # line 7: swallowed failure
        pass
    return work
