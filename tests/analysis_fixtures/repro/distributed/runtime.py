"""RP004 fixture: dispatch gaps the totality rule must catch."""

from .protocol import MsgType


def ship_without_tracker(comm, src, dst, env, now):
    # Seeded violation: sends WORK but keeps no ack/retry bookkeeping.
    comm.send(src, dst, MsgType.WORK, env, env.words, now)     # line 8


def ship_with_tracker(comm, tracker, src, dst, env, now):
    comm.send(src, dst, MsgType.WORK, env, env.words, now)  # fine
    tracker.register(env)


def drain(comm, rank, now, tracker):
    for msg in comm.receive(rank, now, tag=MsgType.WORK):  # dispatch arm
        comm.send(rank, msg.src, "ack", msg.seq, 0, now)           # line 18
    for msg in comm.receive(rank, now, tag="ack"):                 # line 19
        tracker.ack(rank, msg.payload)
    comm.broadcast(rank, MsgType.FREE, None, 1, now)  # broadcast arm
    comm.broadcast(rank, "gone", None, 1, now)                     # line 22
