"""RP004 fixture: a message catalog with an undispatched kind."""

import enum


class MsgType(str, enum.Enum):
    WORK = "work"
    ACK = "ack"
    FREE = "free"
    PING = "ping"  # seeded violation: no dispatch arm anywhere
