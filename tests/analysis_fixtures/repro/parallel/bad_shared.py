"""RP001 fixture: worker-side writes into shared CSR views."""

import numpy as np


def corrupt_attached_graph(graph, value):
    graph.indices[0] = value                      # line 7: subscript store
    graph.indptr[1:] += 1                         # line 8: augmented store
    graph.rindices.sort()                         # line 9: mutating method
    np.add.at(graph.indices, [0, 1], 1)           # line 10: scatter write
    local = np.array([1, 2, 3], dtype=np.int64)
    local[0] = 99  # fine: plain local array, not a CSR view
    return local


def scale_counts(counts, out):
    """Accumulate scaled counts.

    ``counts`` is read-only (a view into the shared frontier); ``out``
    receives the result.
    """
    out[:] = counts * 2  # fine: out is not documented read-only
    counts[0] = 0                                 # line 23: read-only param
    counts.fill(0)                                # line 24: read-only method


def suppressed_write(graph):
    graph.indices[0] = -1  # repro: ignore[RP001]
    return graph
