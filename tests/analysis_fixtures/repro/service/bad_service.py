"""RP007 + RP010 fixture: sleeps under locks (RP010), un-timed queue waits (RP007)."""

import threading
import time
from time import sleep as nap

_lock = threading.Lock()


def sleeps_holding_locks(cond, backoff_s):
    with _lock:
        time.sleep(0.1)                           # line 12: sleep under lock
    with cond.owner_lock:
        nap(backoff_s)                            # line 14: aliased sleep
    with _lock, open("log") as fh:
        fh.readline()
        time.sleep(backoff_s)                     # line 17: multi-item with


def untimed_queue_waits(work_queue, done):
    item = work_queue.get()                       # line 21: un-timed get
    work_queue.join()                             # line 22: un-timed join
    done.queue.get(block=True)                    # line 23: timeout missing
    return item


def patient_waits_are_fine(work_queue, cond, stop):
    item = work_queue.get(timeout=0.5)  # fine: bounded wait
    work_queue.join(timeout=1.0)  # fine: bounded join
    with _lock:
        cond.wait(timeout=0.1)  # fine: condition releases the lock
    time.sleep(0.01)  # fine: pacing outside any lock
    stop.get()  # fine: receiver is not a queue
    return item


def suppressed_legacy_drain(work_queue):
    # Grandfathered shutdown drain. # repro: ignore[RP007]
    return work_queue.get()
