"""RP008/RP010 fixture: the cluster router's failure paths.

Seeds the two bug classes DESIGN.md §15 bans from
``service/cluster.py``: swallowed failover errors (RP008) and
blocking — or inconsistently ordered — work under a router lock
(RP010)."""

import threading
import time


class ClusterRouter:
    """Shard router with seeded routing/locking bugs."""

    def __init__(self):
        self._ring_lock = threading.Lock()
        self._jobs_lock = threading.Lock()
        self.failovers = 0

    def route_swallowing_failover(self, replicas):
        for rank in replicas:
            try:
                return rank.dispatch()
            except RuntimeError:          # line 24: swallowed failover
                continue
        return None

    def heal_swallowing_everything(self, ranks):
        for rank in ranks:
            try:
                rank.restart()
            except:                       # line 32: bare swallow in heal
                pass

    def rebuild_sleeping_under_ring_lock(self):
        with self._ring_lock:
            time.sleep(0.05)              # line 37: stalls every router

    def wait_unbounded_under_jobs_lock(self, job):
        with self._jobs_lock:
            job.done.wait()               # line 41: un-timed reply wait

    def ring_then_jobs(self):
        with self._ring_lock:
            with self._jobs_lock:         # line 45: cycle edge ring->jobs
                pass

    def jobs_then_ring(self):
        with self._jobs_lock:
            with self._ring_lock:         # line 50: cycle edge jobs->ring
                pass

    def failover_that_reacts(self, replicas):
        last = None
        for rank in replicas:
            try:
                return rank.dispatch()
            except RuntimeError as exc:
                self.failovers += 1  # fine: the failover is counted
                last = exc
        raise last

    def shed_reraises(self, scheduler):
        try:
            scheduler.admit()
        except MemoryError:
            raise  # fine: sheds by re-raising, never swallows

    def bounded_catchup_wait_is_fine(self, caught_up):
        with self._ring_lock:
            caught_up.wait(timeout=0.1)  # fine: bounded wait under lock

    def suppressed_legacy_drain(self, ranks):
        for rank in ranks:
            try:
                rank.drain()
            except Exception:  # shutdown drain. # repro: ignore[RP008]
                pass
