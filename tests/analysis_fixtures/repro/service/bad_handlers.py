"""RP008 fixture: swallowed exceptions on the resilience path."""


def swallowed_handlers(jobs):
    try:
        jobs.dispatch()
    except RuntimeError:                          # line 7: silent pass body
        pass
    try:
        jobs.flush()
    except (OSError, ValueError):                 # line 11: constant-only body
        ...
    for job in jobs:
        try:
            job.run()
        except Exception:                         # line 16: continue drops it
            continue
    try:
        jobs.close()
    except:                                       # line 20: bare swallow
        pass


def handled_errors_are_fine(jobs, log):
    try:
        jobs.dispatch()
    except RuntimeError as exc:
        log.warning("dispatch failed: %s", exc)  # fine: reacts to the error
    try:
        payload = jobs.load()
    except ValueError:
        payload = None  # fine: fallback assignment
    try:
        jobs.flush()
    except OSError:
        raise  # fine: re-raises
    try:
        jobs.probe()
    except KeyError:
        return None  # fine: returns a default
    return payload


def suppressed_legacy_swallow(jobs):
    try:
        jobs.drain()
    except Exception:  # historical shutdown drain. # repro: ignore[RP008]
        pass
