"""RP010 fixture: lock-order cycles, self-deadlock, blocking holds."""

import threading
import time


def _drain_slowly():
    time.sleep(0.05)  # fine here: no lock is held in this helper


class ShardPair:
    """Two shards whose locks are taken in both orders (the bug)."""

    def __init__(self):
        self._east = threading.Lock()
        self._west = threading.Lock()
        self._gate = threading.Lock()
        self._north = threading.Lock()
        self._south = threading.Lock()
        self._cond = threading.Condition()

    def east_to_west(self):
        with self._east:
            with self._west:              # line 24: cycle edge east->west
                pass

    def west_to_east(self):
        with self._west:
            with self._east:              # line 29: cycle edge west->east
                pass

    def flush_holding_gate(self):
        with self._gate:
            _drain_slowly()               # line 34: blocks via helper call

    def relock_gate(self):
        with self._gate:
            with self._gate:              # line 38: self-deadlock (Lock)
                pass

    def north_then_south(self):
        with self._north:
            with self._south:  # fine: consistent nesting order
                pass

    def also_north_then_south(self):
        with self._north:
            with self._south:  # fine: same direction, no cycle
                pass

    def paced_wait_is_fine(self):
        with self._cond:
            self._cond.wait()  # fine: wait releases the held condition

    def bounded_hold_is_fine(self, done_event):
        with self._gate:
            done_event.wait(timeout=0.1)  # fine: bounded wait under lock

    def suppressed_pacing(self):
        with self._gate:
            time.sleep(0.01)  # legacy pacing. # repro: ignore[RP010]
