"""RP009 fixture: inferred lock discipline for shared class state."""

import threading


class FlowMetrics:
    """Counters shared between handler threads and the dispatch loop."""

    def __init__(self):
        self._lock = threading.Lock()
        self.window = 64  # written only here: needs no guard
        self.served = 0
        self.dropped = 0
        self.peak = 0
        self.last_error = None

    def record(self, n):
        with self._lock:
            self.served += n
            self._bump_peak()

    def record_drop(self):
        with self._lock:
            self.dropped += 1
            self.served += 0

    def snapshot(self):
        with self._lock:
            return {"served": self.served, "dropped": self.dropped}

    def racy_reset(self):
        self.served = 0                   # line 32: unguarded write
        return self.window  # fine: immutable after __init__

    def _bump_peak(self):
        # Fine: only called with self._lock held, so the inferred
        # entry lock covers both accesses below.
        if self.served > self.peak:
            self.peak = self.served

    def note_error(self, exc):
        self.last_error = str(exc)  # fine: no majority guard (1/2 sites)

    def clear_error(self):
        with self._lock:
            self.last_error = None

    def suppressed_probe(self):
        return self.served  # vetted hot path. # repro: ignore[RP009]
