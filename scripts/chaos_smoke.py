#!/usr/bin/env python
"""Chaos smoke: randomized fault schedules must never change the count.

Runs a short seeded sweep of fault plans against the distributed runtime
and compares every count to the single-rank oracle.  Exits non-zero on
the first mismatch.  Used as a standalone CI job; run manually with e.g.

    PYTHONPATH=src python scripts/chaos_smoke.py --seeds 10 --ranks 2 4
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import CuTSConfig, CuTSMatcher
from repro.distributed import DistributedCuTS, FaultPlan
from repro.graph import cycle_graph, social_graph


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seeds", type=int, default=10, help="plans per rank count")
    ap.add_argument("--ranks", type=int, nargs="+", default=[2, 4])
    ap.add_argument("--vertices", type=int, default=90)
    ap.add_argument("--communities", type=int, default=3)
    ap.add_argument("--query-cycle", type=int, default=4)
    ap.add_argument("--chunk-size", type=int, default=32)
    args = ap.parse_args(argv)

    data = social_graph(
        args.vertices, args.communities,
        community_edges=130, seed=7,
    )
    query = cycle_graph(args.query_cycle)
    config = CuTSConfig(chunk_size=args.chunk_size)
    oracle = CuTSMatcher(data, config).match(query).count
    print(f"oracle: {oracle} embeddings of {query.name} in {data.name}")

    failures = 0
    t0 = time.perf_counter()
    for num_ranks in args.ranks:
        for seed in range(args.seeds):
            plan = FaultPlan.random(seed, num_ranks)
            res = DistributedCuTS(
                data, num_ranks, config, fault_plan=plan
            ).match(query)
            ok = res.count == oracle
            status = "ok" if ok else "MISMATCH"
            print(
                f"  ranks={num_ranks} seed={seed:3d} count={res.count} "
                f"faults={res.faults_injected} retx={res.retransmissions} "
                f"failed={res.ranks_failed} recovered={res.recovered_chunks} "
                f"[{status}]"
            )
            if not ok:
                failures += 1
    elapsed = time.perf_counter() - t0
    total = args.seeds * len(args.ranks)
    print(f"{total - failures}/{total} plans exact in {elapsed:.1f}s")
    if failures:
        print(f"FAIL: {failures} count mismatches", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
