#!/usr/bin/env python
"""Chaos smoke: randomized fault schedules must never change the count.

Runs a short seeded sweep of fault plans against the distributed runtime
and compares every count to the single-rank oracle.  Exits non-zero on
the first mismatch.  Used as a standalone CI job; run manually with e.g.

    PYTHONPATH=src python scripts/chaos_smoke.py --seeds 10 --ranks 2 4

``--kill-resume`` switches to the durability sweep instead: child
interpreters running a checkpointed search SIGKILL themselves at kill
points spread across the whole run, and every resumed run must reach
the exact oracle count:

    PYTHONPATH=src python scripts/chaos_smoke.py --kill-resume --seeds 6
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.checkpoint import CheckpointStore
from repro.core import CuTSConfig, CuTSMatcher
from repro.distributed import DistributedCuTS, FaultPlan
from repro.graph import cycle_graph, social_graph

_KILL_CHILD = """
import os, signal
from repro.core import CuTSConfig, CuTSMatcher
from repro.graph import cycle_graph, social_graph

matcher = CuTSMatcher(
    social_graph({n}, {c}, community_edges={e}, seed=7),
    CuTSConfig(chunk_size={chunk}),
)
ticks = 0

def killer(state):
    global ticks
    ticks += 1
    if ticks == {kill_at}:
        os.kill(os.getpid(), signal.SIGKILL)

matcher.on_tick = killer
matcher.match(
    cycle_graph({k}), checkpoint_dir={ckpt!r}, checkpoint_every=2
)
raise SystemExit("unreachable: the run should have been SIGKILLed")
"""


def _workload(args: argparse.Namespace):
    data = social_graph(
        args.vertices, args.communities,
        community_edges=130, seed=7,
    )
    return data, cycle_graph(args.query_cycle)


def fault_mode(args: argparse.Namespace) -> int:
    data, query = _workload(args)
    config = CuTSConfig(chunk_size=args.chunk_size)
    oracle = CuTSMatcher(data, config).match(query).count
    print(f"oracle: {oracle} embeddings of {query.name} in {data.name}")

    failures = 0
    t0 = time.perf_counter()
    for num_ranks in args.ranks:
        for seed in range(args.seeds):
            plan = FaultPlan.random(seed, num_ranks)
            res = DistributedCuTS(
                data, num_ranks, config, fault_plan=plan
            ).match(query)
            ok = res.count == oracle
            status = "ok" if ok else "MISMATCH"
            print(
                f"  ranks={num_ranks} seed={seed:3d} count={res.count} "
                f"faults={res.faults_injected} retx={res.retransmissions} "
                f"failed={res.ranks_failed} recovered={res.recovered_chunks} "
                f"[{status}]"
            )
            if not ok:
                failures += 1
    elapsed = time.perf_counter() - t0
    total = args.seeds * len(args.ranks)
    print(f"{total - failures}/{total} plans exact in {elapsed:.1f}s")
    if failures:
        print(f"FAIL: {failures} count mismatches", file=sys.stderr)
        return 1
    return 0


def kill_resume_mode(args: argparse.Namespace) -> int:
    """SIGKILL a checkpointing child at ``--seeds`` kill points spread
    over the run, resume each job, and demand the exact oracle count."""
    data, query = _workload(args)
    config = CuTSConfig(chunk_size=args.chunk_size)
    matcher = CuTSMatcher(data, config)
    oracle = matcher.match(query).count

    # Place kill points across the whole run: count one durable run's
    # expansion ticks (the engine the children run), then spread the
    # kills over [2, ticks].
    ticks = 0

    def counter(_state) -> None:
        nonlocal ticks
        ticks += 1

    matcher.on_tick = counter
    with tempfile.TemporaryDirectory(prefix="chaos-probe-") as tmp:
        matcher.match(query, checkpoint_dir=os.path.join(tmp, "probe"))
    matcher.on_tick = None
    print(
        f"oracle: {oracle} embeddings of {query.name} in {data.name} "
        f"({ticks} expansions)"
    )
    if ticks < 3:
        print("FAIL: workload too small to kill mid-run", file=sys.stderr)
        return 1
    points = sorted(
        {2 + (i * (ticks - 2)) // max(args.seeds - 1, 1)
         for i in range(args.seeds)}
    )

    env = {
        **os.environ,
        "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
    }
    failures = 0
    t0 = time.perf_counter()
    for kill_at in points:
        with tempfile.TemporaryDirectory(prefix="chaos-kill-") as tmp:
            ckpt = os.path.join(tmp, "job")
            code = _KILL_CHILD.format(
                n=args.vertices, c=args.communities, e=130,
                chunk=args.chunk_size, k=args.query_cycle,
                kill_at=kill_at, ckpt=ckpt,
            )
            child = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, timeout=300, env=env,
            )
            killed = child.returncode == -signal.SIGKILL
            snapshots = len(CheckpointStore(ckpt).snapshot_seqs())
            resumed = CuTSMatcher(data, config).match(
                query, checkpoint_dir=ckpt, resume=True
            )
            ok = killed and resumed.count == oracle
            status = "ok" if ok else "MISMATCH"
            print(
                f"  kill_at={kill_at:4d}/{ticks} rc={child.returncode} "
                f"snapshots={snapshots} resumed={resumed.count} [{status}]"
            )
            if not ok:
                failures += 1
                if child.stderr:
                    print(child.stderr.rstrip(), file=sys.stderr)
    elapsed = time.perf_counter() - t0
    print(f"{len(points) - failures}/{len(points)} kills exact in "
          f"{elapsed:.1f}s")
    if failures:
        print(f"FAIL: {failures} kill/resume mismatches", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seeds", type=int, default=10,
                    help="plans per rank count (or kill points)")
    ap.add_argument("--ranks", type=int, nargs="+", default=[2, 4])
    ap.add_argument("--vertices", type=int, default=90)
    ap.add_argument("--communities", type=int, default=3)
    ap.add_argument("--query-cycle", type=int, default=4)
    ap.add_argument("--chunk-size", type=int, default=32)
    ap.add_argument(
        "--kill-resume", action="store_true",
        help="SIGKILL checkpointing children mid-run and verify every "
        "resume reaches the exact oracle count",
    )
    args = ap.parse_args(argv)
    if args.kill_resume:
        return kill_resume_mode(args)
    return fault_mode(args)


if __name__ == "__main__":
    sys.exit(main())
