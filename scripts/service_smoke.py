"""CI smoke test for the HTTP matching service.

Boots ``python -m repro.serve`` as a real subprocess on an ephemeral
port, then drives 50 mixed requests through
:class:`repro.service.ServiceClient`:

* counting requests over three data graphs and a spread of query
  shapes, in a mix of blocking and async-poll submissions;
* one oversized query, which must be **rejected with HTTP 429** and
  reason ``oversized-query`` (admission control, not a timeout);
* one ``deadline_ms=0`` request, which must settle as **expired**
  (deadline enforcement, not a hang);
* a warm re-submission of every counting request, which must return
  identical counts and report ``cached`` (the result cache survived).

Every count is checked against a serial in-process oracle
(:class:`CuTSMatcher` on the same graphs); any mismatch, unexpected
status, or hang fails the script with a non-zero exit.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.config import CuTSConfig  # noqa: E402
from repro.core.matcher import CuTSMatcher  # noqa: E402
from repro.graph import (  # noqa: E402
    chain_graph,
    clique_graph,
    cycle_graph,
    mesh_graph,
    random_graph,
    star_graph,
)
from repro.service import ServiceClient, ServiceError  # noqa: E402

BOOT_TIMEOUT_S = 30.0
TOTAL_REQUESTS = 50

DATA_GRAPHS = {
    "mesh55": mesh_graph(5, 5),
    "mesh44": mesh_graph(4, 4),
    "gnp30": random_graph(30, 0.15, seed=41),
}

QUERIES = {
    "K3": clique_graph(3),
    "P3": chain_graph(3),
    "P4": chain_graph(4),
    "C4": cycle_graph(4),
    "S3": star_graph(3),
}


def boot_server() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0",
            "--max-query-vertices", "8",
            "--queue-depth", "64",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "serving on" in line:
            break
        if proc.poll() is not None:
            raise SystemExit(f"server died during boot: {line!r}")
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise SystemExit(f"could not parse server banner: {line!r}")
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def main() -> int:
    cfg = CuTSConfig()
    oracle = {
        (gname, qname): CuTSMatcher(g, cfg).match(q).count
        for gname, g in DATA_GRAPHS.items()
        for qname, q in QUERIES.items()
    }

    proc, base_url = boot_server()
    failures: list[str] = []
    try:
        client = ServiceClient(base_url, timeout=60.0)
        assert client.healthz()["status"] == "ok"
        fps = {
            name: client.register_graph(graph, name=name)
            for name, graph in DATA_GRAPHS.items()
        }

        # 48 counting requests: every (graph, query) pair, cold then
        # warm, alternating blocking and async submission.
        pairs = [
            (g, q) for g in DATA_GRAPHS for q in QUERIES
        ]
        plan = [
            pairs[i % len(pairs)] for i in range(TOTAL_REQUESTS - 2)
        ]
        warm_seen: set[tuple[str, str]] = set()
        for i, (gname, qname) in enumerate(plan):
            if i % 2 == 0:
                job = client.match(fps[gname], qname)
            else:
                pending = client.match(fps[gname], qname, wait=False)
                job = client.wait_job(pending["job_id"], timeout=120.0)
            if job["state"] != "done":
                failures.append(
                    f"{gname}/{qname}: state {job['state']} "
                    f"({job.get('error')})"
                )
                continue
            count = job["result"]["count"]
            if count != oracle[(gname, qname)]:
                failures.append(
                    f"{gname}/{qname}: count {count} != oracle "
                    f"{oracle[(gname, qname)]}"
                )
            if (gname, qname) in warm_seen and not job["cached"]:
                failures.append(
                    f"{gname}/{qname}: warm repeat was not served "
                    f"from the result cache"
                )
            warm_seen.add((gname, qname))

        # Request 49: oversized query -> 429 oversized-query.
        try:
            client.match(fps["mesh55"], "K9")
            failures.append("oversized K9 was accepted (expected 429)")
        except ServiceError as exc:
            if exc.status != 429 or exc.reason != "oversized-query":
                failures.append(
                    f"oversized K9: got status {exc.status} reason "
                    f"{exc.reason!r} (expected 429 oversized-query)"
                )

        # Request 50: zero deadline -> expired, never a hang.
        job = client.match(fps["mesh55"], "P3", deadline_ms=0)
        if job["state"] != "expired":
            failures.append(
                f"deadline_ms=0 settled as {job['state']} "
                f"(expected expired)"
            )

        metrics = client.metrics()
        sched = metrics["scheduler"]
        if sched["rejected"].get("oversized-query", 0) < 1:
            failures.append("scheduler did not count the 429 rejection")
        if sched["expired"] < 1:
            failures.append("scheduler did not count the expiry")
        if metrics["result_cache"]["hits"] < len(pairs):
            failures.append(
                f"result cache hits {metrics['result_cache']['hits']} < "
                f"{len(pairs)} (warm pass was recomputed?)"
            )
        print(
            f"{len(plan) + 2} requests: "
            f"{metrics['dispatcher']['requests_dispatched']} dispatched, "
            f"{metrics['result_cache']['hits']} cache hits, "
            f"{sched['rejected']} rejected, {sched['expired']} expired"
        )
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("service smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
