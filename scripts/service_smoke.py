"""CI smoke test for the HTTP matching service.

Boots ``python -m repro.serve`` as a real subprocess on an ephemeral
port, then drives 50 mixed requests through
:class:`repro.service.ServiceClient`:

* counting requests over three data graphs and a spread of query
  shapes, in a mix of blocking and async-poll submissions;
* one oversized query, which must be **rejected with HTTP 429** and
  reason ``oversized-query`` (admission control, not a timeout);
* one ``deadline_ms=0`` request, which must settle as **expired**
  (deadline enforcement, not a hang);
* a warm re-submission of every counting request, which must return
  identical counts and report ``cached`` (the result cache survived).

Every count is checked against a serial in-process oracle
(:class:`CuTSMatcher` on the same graphs); any mismatch, unexpected
status, or hang fails the script with a non-zero exit.

``--chaos`` instead runs the resilience contract against the same real
subprocess:

* **faulty load** — the server boots with a deterministic fault plan
  (injected engine exceptions, dispatcher stalls, corrupted cache
  reads, periodic pool-worker SIGKILLs) and every request is driven by
  the self-healing client; jobs that fail to an injected fault are
  resubmitted until they settle, and every settled count must equal
  the serial oracle exactly;
* **kill -9 mid-load** — a second server with ``--state-dir`` is
  SIGKILLed while the journal provably holds a ``running`` job, then
  restarted on the same directory.  Completed jobs must come back with
  their journaled counts, the in-flight-at-crash job must resurface
  ``retryable``, pending jobs must finish, and replaying every
  idempotency key must admit **zero** new work (no duplicates).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--chaos]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.config import CuTSConfig  # noqa: E402
from repro.core.matcher import CuTSMatcher  # noqa: E402
from repro.graph import (  # noqa: E402
    chain_graph,
    clique_graph,
    cycle_graph,
    mesh_graph,
    random_graph,
    star_graph,
)
from repro.service import ServiceClient, ServiceError  # noqa: E402

BOOT_TIMEOUT_S = 30.0
TOTAL_REQUESTS = 50

DATA_GRAPHS = {
    "mesh55": mesh_graph(5, 5),
    "mesh44": mesh_graph(4, 4),
    "gnp30": random_graph(30, 0.15, seed=41),
}

QUERIES = {
    "K3": clique_graph(3),
    "P3": chain_graph(3),
    "P4": chain_graph(4),
    "C4": cycle_graph(4),
    "S3": star_graph(3),
}


def boot_server(*extra_args: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0",
            "--max-query-vertices", "8",
            "--queue-depth", "64",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "serving on" in line:
            break
        if proc.poll() is not None:
            raise SystemExit(f"server died during boot: {line!r}")
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise SystemExit(f"could not parse server banner: {line!r}")
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def main() -> int:
    cfg = CuTSConfig()
    oracle = {
        (gname, qname): CuTSMatcher(g, cfg).match(q).count
        for gname, g in DATA_GRAPHS.items()
        for qname, q in QUERIES.items()
    }

    proc, base_url = boot_server()
    failures: list[str] = []
    try:
        client = ServiceClient(base_url, timeout=60.0)
        assert client.healthz()["status"] == "ok"
        fps = {
            name: client.register_graph(graph, name=name)
            for name, graph in DATA_GRAPHS.items()
        }

        # 48 counting requests: every (graph, query) pair, cold then
        # warm, alternating blocking and async submission.
        pairs = [
            (g, q) for g in DATA_GRAPHS for q in QUERIES
        ]
        plan = [
            pairs[i % len(pairs)] for i in range(TOTAL_REQUESTS - 2)
        ]
        warm_seen: set[tuple[str, str]] = set()
        for i, (gname, qname) in enumerate(plan):
            if i % 2 == 0:
                job = client.match(fps[gname], qname)
            else:
                pending = client.match(fps[gname], qname, wait=False)
                job = client.wait_job(pending["job_id"], timeout=120.0)
            if job["state"] != "done":
                failures.append(
                    f"{gname}/{qname}: state {job['state']} "
                    f"({job.get('error')})"
                )
                continue
            count = job["result"]["count"]
            if count != oracle[(gname, qname)]:
                failures.append(
                    f"{gname}/{qname}: count {count} != oracle "
                    f"{oracle[(gname, qname)]}"
                )
            if (gname, qname) in warm_seen and not job["cached"]:
                failures.append(
                    f"{gname}/{qname}: warm repeat was not served "
                    f"from the result cache"
                )
            warm_seen.add((gname, qname))

        # Request 49: oversized query -> 429 oversized-query.
        try:
            client.match(fps["mesh55"], "K9")
            failures.append("oversized K9 was accepted (expected 429)")
        except ServiceError as exc:
            if exc.status != 429 or exc.reason != "oversized-query":
                failures.append(
                    f"oversized K9: got status {exc.status} reason "
                    f"{exc.reason!r} (expected 429 oversized-query)"
                )

        # Request 50: zero deadline -> expired, never a hang.
        job = client.match(fps["mesh55"], "P3", deadline_ms=0)
        if job["state"] != "expired":
            failures.append(
                f"deadline_ms=0 settled as {job['state']} "
                f"(expected expired)"
            )

        metrics = client.metrics()
        sched = metrics["scheduler"]
        if sched["rejected"].get("oversized-query", 0) < 1:
            failures.append("scheduler did not count the 429 rejection")
        if sched["expired"] < 1:
            failures.append("scheduler did not count the expiry")
        if metrics["result_cache"]["hits"] < len(pairs):
            failures.append(
                f"result cache hits {metrics['result_cache']['hits']} < "
                f"{len(pairs)} (warm pass was recomputed?)"
            )
        print(
            f"{len(plan) + 2} requests: "
            f"{metrics['dispatcher']['requests_dispatched']} dispatched, "
            f"{metrics['result_cache']['hits']} cache hits, "
            f"{sched['rejected']} rejected, {sched['expired']} expired"
        )
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("service smoke OK")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Chaos mode
# ---------------------------------------------------------------------------

CHAOS_FAULTS = (
    "seed=3,engine_fault_prob=0.15,stall_prob=0.2,stall_ms=5,"
    "cache_corrupt_prob=0.3,worker_kill_prob=0.1"
)
CHAOS_REQUESTS = 30
CRASH_JOBS = 8


def settle_exact(client, fp, qname, expected, failures, *, attempts=10):
    """Drive one request until it settles done, resubmitting when an
    injected fault fails it; the settled count must be exact."""
    for _ in range(attempts):
        job = client.match(fp, qname, timeout_s=120.0)
        if job["state"] == "done":
            if job["result"]["count"] != expected:
                failures.append(
                    f"chaos {qname}: count {job['result']['count']} != "
                    f"oracle {expected}"
                )
            return True
        if job["state"] != "failed":
            failures.append(
                f"chaos {qname}: unexpected state {job['state']} "
                f"({job.get('error')})"
            )
            return False
    failures.append(f"chaos {qname}: still failing after {attempts} tries")
    return False


def run_faulty_load(failures: list[str]) -> None:
    """Phase 1: every fault class armed, every settled count exact."""
    cfg = CuTSConfig()
    graph = DATA_GRAPHS["mesh55"]
    oracle = {
        qname: CuTSMatcher(graph, cfg).match(q).count
        for qname, q in QUERIES.items()
    }
    proc, base_url = boot_server(
        "--faults", CHAOS_FAULTS, "--workers", "2",
        "--cache-bytes", "65536",
    )
    try:
        client = ServiceClient(base_url, timeout=120.0)
        fp = client.register_graph(graph, name="mesh55")
        names = list(QUERIES)
        for i in range(CHAOS_REQUESTS):
            qname = names[i % len(names)]
            settle_exact(client, fp, qname, oracle[qname], failures)
        metrics = client.metrics()
        fault_counts = metrics.get("faults", {})
        if not any(fault_counts.get(k, 0) for k in (
            "engine_faults", "stalls", "cache_corruptions", "worker_kills"
        )):
            failures.append(
                f"chaos: no faults actually fired ({fault_counts})"
            )
        if client.healthz()["status"] not in ("ok", "degraded"):
            failures.append("chaos: server unhealthy after faulty load")
        print(
            f"chaos load: {CHAOS_REQUESTS} requests settled exact under "
            f"faults {fault_counts}"
        )
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def wait_for_running_journal(
    state_dir: str, expected_jobs: int, timeout_s: float
) -> bool:
    """Poll the job journal until every submitted job has a durable
    record *and* at least one of them is ``running`` — only then is a
    SIGKILL guaranteed to land mid-execution with nothing lost."""
    deadline = time.monotonic() + timeout_s
    jobs_glob = os.path.join(state_dir, "jobs", "*.json")
    while time.monotonic() < deadline:
        paths = glob.glob(jobs_glob)
        running = False
        for path in paths:
            try:
                with open(path, encoding="utf-8") as fh:
                    running = running or (
                        json.load(fh).get("state") == "running"
                    )
            except (OSError, json.JSONDecodeError):
                running = running or False  # mid-replace; try again
        if len(paths) >= expected_jobs and running:
            return True
        time.sleep(0.005)
    return False


def run_crash_recovery(failures: list[str]) -> None:
    """Phase 2: kill -9 with a job provably in flight, then recover."""
    cfg = CuTSConfig()
    graph = DATA_GRAPHS["mesh55"]
    oracle = {
        qname: CuTSMatcher(graph, cfg).match(q).count
        for qname, q in QUERIES.items()
    }
    state_dir = tempfile.mkdtemp(prefix="chaos-state-")
    # Every dispatch stalls 300ms: a wide window in which the journal
    # says "running", so the SIGKILL lands mid-execution by design.
    proc, base_url = boot_server(
        "--state-dir", state_dir, "--faults",
        "seed=1,stall_prob=1,stall_ms=300",
    )
    submitted: list[tuple[str, str, str]] = []  # (job_id, qname, key)
    try:
        client = ServiceClient(base_url, timeout=60.0)
        fp = client.register_graph(graph, name="mesh55")
        names = list(QUERIES)
        for i in range(CRASH_JOBS):
            qname = names[i % len(names)]
            key = f"chaos-key-{i}"
            resp = client.match(
                fp, qname, wait=False, idempotency_key=key
            )
            submitted.append((resp["job_id"], qname, key))
        if not wait_for_running_journal(
            state_dir, len(submitted), timeout_s=30.0
        ):
            failures.append("crash: no job reached 'running' in journal")
    finally:
        proc.kill()  # SIGKILL: no shutdown hook gets to run
        proc.wait(timeout=10)

    # Restart on the same state dir, faults off.
    proc, base_url = boot_server("--state-dir", state_dir)
    try:
        client = ServiceClient(base_url, timeout=60.0)
        metrics = client.metrics()
        recovered = metrics.get("state", {})
        if recovered.get("recovered_retryable", 0) < 1:
            failures.append(
                f"crash: no retryable job resurfaced ({recovered})"
            )
        done_ids: set[str] = set()
        for job_id, qname, key in submitted:
            job = client.job(job_id)
            # Recovered pending jobs re-run under their original ids.
            deadline = time.monotonic() + 60.0
            while (
                job["state"] in ("pending", "running")
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
                job = client.job(job_id)
            if job["state"] == "done":
                if job["result"]["count"] != oracle[qname]:
                    failures.append(
                        f"crash {job_id}: recovered count "
                        f"{job['result']['count']} != oracle {oracle[qname]}"
                    )
                done_ids.add(job_id)
            elif job["state"] == "retryable":
                # The client retries under the *same* key; the server
                # re-executes exactly once and the count is exact.
                retry = client.match(
                    fp, qname, idempotency_key=key, timeout_s=120.0
                )
                if retry["id"] == job_id:
                    failures.append(
                        f"crash {job_id}: retry reused the dead job"
                    )
                if retry["state"] != "done" or (
                    retry["result"]["count"] != oracle[qname]
                ):
                    failures.append(
                        f"crash {job_id}: retry settled "
                        f"{retry['state']} ({retry.get('error')})"
                    )
            else:
                failures.append(
                    f"crash {job_id}: unexpected recovered state "
                    f"{job['state']} ({job.get('error')})"
                )
        # Zero duplicates: replaying every completed job's idempotency
        # key must admit no new work.
        admitted_before = client.metrics()["scheduler"]["admitted"]
        for job_id, qname, key in submitted:
            if job_id not in done_ids:
                continue
            replay = client.match(fp, qname, idempotency_key=key)
            if replay["id"] != job_id:
                failures.append(
                    f"crash {job_id}: key replay created {replay['id']}"
                )
        admitted_after = client.metrics()["scheduler"]["admitted"]
        if admitted_after != admitted_before:
            failures.append(
                f"crash: key replays admitted "
                f"{admitted_after - admitted_before} duplicate jobs"
            )
        print(
            f"crash recovery: {len(done_ids)}/{len(submitted)} done with "
            f"journaled counts, "
            f"{recovered.get('recovered_retryable', 0)} retryable, "
            f"{recovered.get('recovered_pending', 0)} re-enqueued, "
            f"0 duplicates"
        )
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def chaos_main() -> int:
    failures: list[str] = []
    run_faulty_load(failures)
    run_crash_recovery(failures)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("service chaos smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--chaos", action="store_true",
        help="run the fault-injection + crash-recovery contract "
        "instead of the plain smoke",
    )
    cli_args = parser.parse_args()
    sys.exit(chaos_main() if cli_args.chaos else main())
