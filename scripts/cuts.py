#!/usr/bin/env python
"""Artifact-style single-node driver (the cuTS artifact's ``cuts.py``).

Runs the full single-node evaluation grid on one simulated machine and
prints the Table 3 rows.  Equivalent to ``python -m repro experiments``
restricted to Table 3.

Usage: python scripts/cuts.py [V100|A100] [scale] [top_k]
"""
import sys

from repro.experiments import render_table, run_table3


def main() -> int:
    device = sys.argv[1] if len(sys.argv) > 1 else "V100"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    top_k = int(sys.argv[3]) if len(sys.argv) > 3 else 11
    t3 = run_table3(device, scale=scale, top_k=top_k, wall_limit_s=20.0)
    print(render_table(t3.rows(), title=f"Table 3 — {device}-sim"))
    print()
    print(render_table(t3.summary_rows(), title="Summary"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
