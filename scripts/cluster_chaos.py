#!/usr/bin/env python
"""Chaos gate for the replicated shard-routed cluster (DESIGN.md §15).

Boots a 3-rank cluster with 2-way replication, durable per-rank
journals, and real pool workers, then drives live traffic from
concurrent client threads while SIGKILLing the primary replica of the
loaded shard mid-load.  The supervisor must heal the crashed rank on
its own (catch-up from the content-addressed store *before*
re-admission to the ring).  The run fails with a non-zero exit unless
all of the following hold:

* **exactly-once** — every settled count equals the serial oracle
  (:class:`CuTSMatcher` on the same graphs); zero mismatches;
* **goodput >= 70%** — requests that settle ``done`` first try,
  over everything submitted while a rank was dying and healing;
* **no duplicated side effects** — no rank's durable journal holds
  two records for one idempotency key;
* **failover actually happened** — the router recorded at least one
  failover (otherwise the kill missed the hot path and the run
  proved nothing);
* **bounded recovery** — the loaded shard is back at full R-way
  replication within ``--recover-ticks`` supervisor ticks of the
  crash.

Usage::

    REPRO_SANITIZE=1 PYTHONPATH=src python scripts/cluster_chaos.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.config import CuTSConfig  # noqa: E402
from repro.core.matcher import CuTSMatcher  # noqa: E402
from repro.graph import (  # noqa: E402
    chain_graph,
    cycle_graph,
    mesh_graph,
    random_graph,
    star_graph,
)
from repro.service import (  # noqa: E402
    AdmissionError,
    ClusterService,
    HashRing,
    JobFailed,
)

GOODPUT_GATE = 0.70

DATA_GRAPHS = {
    "mesh55": mesh_graph(5, 5),
    "mesh44": mesh_graph(4, 4),
    "gnp30": random_graph(30, 0.15, seed=41),
}

QUERIES = [
    chain_graph(3),
    chain_graph(4),
    cycle_graph(4),
    star_graph(3),
]


def journal_files(jobs_dir: str) -> list[str]:
    """Committed records only — a SIGKILLed incarnation may leave a
    ``.tmp-*`` file from an interrupted atomic write behind."""
    return sorted(
        name
        for name in os.listdir(jobs_dir)
        if name.startswith("job-") and name.endswith(".json")
    )


def journal_duplicates(state_dir: str) -> list[str]:
    """Idempotency keys journaled more than once on any single rank."""
    dupes: list[str] = []
    for rank_dir in sorted(os.listdir(state_dir)):
        jobs_dir = os.path.join(state_dir, rank_dir, "jobs")
        if not os.path.isdir(jobs_dir):
            continue
        seen: set[str] = set()
        for name in journal_files(jobs_dir):
            with open(os.path.join(jobs_dir, name)) as fh:
                record = json.load(fh)
            key = record.get("idempotency_key")
            if key is None:
                continue
            if key in seen:
                dupes.append(f"{rank_dir}:{key}")
            seen.add(str(key))
    return dupes


def run_chaos(args) -> int:
    config = CuTSConfig(
        service_cache_bytes=0,
        service_heal_after_ticks=2,
        service_route_timeout_s=30.0,
    )
    oracle = {
        (g_name, q.name): CuTSMatcher(data, config).match(q).count
        for g_name, data in DATA_GRAPHS.items()
        for q in QUERIES
    }

    failures: list[str] = []
    outcomes = {"ok": 0, "failed": 0, "shed": 0, "mismatch": 0}
    outcomes_lock = threading.Lock()

    with tempfile.TemporaryDirectory(prefix="cluster-chaos-") as base:
        state_dir = os.path.join(base, "state")
        with ClusterService(
            config,
            ranks=args.ranks,
            replication=args.replication,
            workers=args.workers,
            state_dir=state_dir,
            auto_heal=True,
        ) as cluster:
            fps = {
                name: cluster.register_graph(data, name=name)
                for name, data in DATA_GRAPHS.items()
            }
            # The primary replica of the hottest shard is the victim:
            # the healthy ring is a pure function of the member set, so
            # the script can compute it without reaching into the
            # router's internals.
            hot = "mesh55"
            victim = HashRing(range(args.ranks)).primary_for(fps[hot])

            def drive(worker_id: int) -> None:
                for i in range(args.requests):
                    g_name = (
                        hot
                        if i % 2 == 0
                        else list(DATA_GRAPHS)[i % len(DATA_GRAPHS)]
                    )
                    query = QUERIES[(worker_id + i) % len(QUERIES)]
                    key = f"chaos-{worker_id}-{i}"
                    try:
                        result = cluster.match(
                            fps[g_name], query,
                            idempotency_key=key, timeout=120.0,
                        )
                    except AdmissionError:
                        with outcomes_lock:
                            outcomes["shed"] += 1
                        continue
                    except (JobFailed, TimeoutError):
                        with outcomes_lock:
                            outcomes["failed"] += 1
                        continue
                    expected = oracle[(g_name, query.name)]
                    with outcomes_lock:
                        if result.count == expected:
                            outcomes["ok"] += 1
                        else:
                            outcomes["mismatch"] += 1
                            failures.append(
                                f"count mismatch on {g_name}/"
                                f"{query.name}: got {result.count}, "
                                f"oracle {expected}"
                            )

            threads = [
                threading.Thread(target=drive, args=(w,), daemon=True)
                for w in range(args.clients)
            ]
            for t in threads:
                t.start()

            # Kill the hot shard's primary while the load is provably
            # live, then let the supervisor heal it unassisted.
            deadline = time.time() + 30.0
            while time.time() < deadline:
                with outcomes_lock:
                    settled = sum(outcomes.values())
                if settled >= args.clients:
                    break
                time.sleep(0.01)
            print(f"killing rank {victim} (primary of {hot}) mid-load")
            crash_t = time.time()
            cluster.crash_rank(victim)

            tick = ClusterService._SUPERVISE_POLL_S
            heal_deadline = crash_t + args.recover_ticks * tick
            healed_at = None
            while time.time() < heal_deadline:
                if (
                    cluster.ranks[victim].state == "live"
                    and cluster.replication_of(fps[hot])
                    == args.replication
                ):
                    healed_at = time.time()
                    break
                time.sleep(tick)
            if healed_at is None:
                failures.append(
                    f"rank {victim} not healed to full "
                    f"{args.replication}-way replication within "
                    f"{args.recover_ticks} supervisor ticks"
                )
            else:
                print(
                    f"rank {victim} healed after "
                    f"{(healed_at - crash_t) / tick:.0f} ticks "
                    f"({healed_at - crash_t:.2f}s)"
                )

            for t in threads:
                t.join(timeout=300.0)
            if any(t.is_alive() for t in threads):
                failures.append("client threads hung; traffic never drained")

            metrics = cluster.metrics()

        dupes = journal_duplicates(state_dir)
        if dupes:
            failures.append(
                f"duplicate journal entries (same idempotency key "
                f"executed twice on one rank): {dupes}"
            )

    total = sum(outcomes.values())
    goodput = outcomes["ok"] / total if total else 0.0
    router = metrics["router"]
    print(
        f"traffic : {outcomes['ok']}/{total} ok "
        f"({outcomes['failed']} failed, {outcomes['shed']} shed, "
        f"{outcomes['mismatch']} mismatched) -> goodput {goodput:.1%}"
    )
    print(
        f"router  : {router['routes']} routes, "
        f"{router['failovers']} failovers, {router['shed']} shed, "
        f"{router['revoked_replies']} revoked replies, "
        f"{router['heals']} heals"
    )

    if goodput < GOODPUT_GATE:
        failures.append(
            f"goodput {goodput:.1%} below the {GOODPUT_GATE:.0%} gate"
        )
    if router["failovers"] < 1:
        failures.append(
            "the crash never forced a failover — the kill missed the "
            "hot path and this run proved nothing"
        )
    if router["heals"] < 1:
        failures.append("the supervisor never healed the crashed rank")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cluster chaos gate: OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ranks", type=int, default=3)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="pool workers per rank (real processes, real SIGKILLs)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client threads",
    )
    parser.add_argument(
        "--requests", type=int, default=10,
        help="requests per client thread",
    )
    parser.add_argument(
        "--recover-ticks", type=int, default=600,
        help="supervisor ticks allowed for the crashed rank to return "
        "to full replication (bounded-recovery gate)",
    )
    return run_chaos(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
