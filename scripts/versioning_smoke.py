"""CI smoke test for versioned mutable graphs over live HTTP.

Boots ``python -m repro.serve --state-dir`` as a real subprocess, then
drives the full mutation surface through
:class:`repro.service.ServiceClient`:

* **interleaved load** — rounds of ``POST /graphs/data/edges`` commits
  (random inserts *and* deletes) interleaved with matches; every count
  is checked against a client-side oracle that applies the identical
  delta locally (:func:`repro.storage.overlay.spliced_graph` +
  :class:`CuTSMatcher`), and every commit's child fingerprint must
  equal the locally computed one (content addressing is deterministic
  across processes);
* **time travel** — after each commit, ``as_of`` the previous head
  must return the archived pre-commit count, and ``/compare`` must
  report exactly ``head - base``;
* **kill -9 mid-commit** — a hammer thread streams commits and the
  server is SIGKILLed with one provably in flight; a torn half-record
  is then appended to ``versions.jsonl`` (the mid-append crash the
  commit order makes survivable).  The restarted server must recover a
  head that is either the last acknowledged commit or the in-flight
  one — never anything else — serve exact counts for it, count the
  torn record, and accept new commits.

Usage::

    PYTHONPATH=src python scripts/versioning_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.config import CuTSConfig  # noqa: E402
from repro.core.matcher import CuTSMatcher  # noqa: E402
from repro.fingerprint import graph_fingerprint  # noqa: E402
from repro.graph import mesh_graph  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.storage.overlay import spliced_graph  # noqa: E402
from repro.versioning import EdgeDelta  # noqa: E402

from service_smoke import boot_server  # noqa: E402

QUERIES = ("P3", "C4", "S3")
LOAD_ROUNDS = 8
HAMMER_COMMITS = 40


class LocalLineage:
    """Client-side shadow of the server's version chain: the same
    deltas applied through the same splice, so every fingerprint and
    every count has an in-process oracle."""

    def __init__(self, graph, seed: int) -> None:
        self.config = CuTSConfig()
        self.rng = np.random.default_rng(seed)
        self.head = graph
        self.head_fp = graph_fingerprint(graph)
        self.graphs = {self.head_fp: graph}
        self._counts: dict[tuple[str, str], int] = {}

    def random_pairs(self) -> tuple[list[list[int]], list[list[int]]]:
        """One absent pair to insert, one present pair to delete."""
        n = self.head.num_vertices
        while True:
            u, v = (int(x) for x in self.rng.integers(0, n, size=2))
            if u != v and not self.head.has_edge(u, v):
                insert = [[u, v]]
                break
        arcs = self.head.edge_list()
        pairs = arcs[arcs[:, 0] < arcs[:, 1]]
        pick = pairs[int(self.rng.integers(0, len(pairs)))]
        return insert, [[int(pick[0]), int(pick[1])]]

    def apply(self, insert, delete):
        """Locally commit; returns the expected child fingerprint."""
        delta = EdgeDelta.build(
            inserts=insert, deletes=delete, parent=self.head, directed=False
        )
        child = spliced_graph(self.head, delta.inserts, delta.deletes)
        fp = graph_fingerprint(child)
        self.graphs[fp] = child
        self.head, self.head_fp = child, fp
        return fp

    def count(self, fp: str, qname: str) -> int:
        key = (fp, qname)
        if key not in self._counts:
            from repro.graph import chain_graph, cycle_graph, star_graph

            query = {
                "P3": chain_graph(3),
                "C4": cycle_graph(4),
                "S3": star_graph(3),
            }[qname]
            self._counts[key] = (
                CuTSMatcher(self.graphs[fp], self.config).match(query).count
            )
        return self._counts[key]


def shutdown(proc) -> None:
    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()


def run_interleaved_load(failures: list[str]) -> None:
    """Phase 1: commits interleaved with matches, everything oracled."""
    lineage = LocalLineage(mesh_graph(6, 6), seed=11)
    proc, base_url = boot_server("--max-versions", "4")
    try:
        client = ServiceClient(base_url, timeout=60.0)
        client.register_graph(lineage.head, name="data")
        for round_no in range(LOAD_ROUNDS):
            prev_fp = lineage.head_fp
            prev_count = lineage.count(prev_fp, "P3")
            insert, delete = lineage.random_pairs()
            expected_fp = lineage.apply(insert, delete)
            summary = client.mutate_edges(
                "data", insert=insert, delete=delete, directed=False
            )
            if summary["fingerprint"] != expected_fp:
                failures.append(
                    f"round {round_no}: server fingerprint "
                    f"{summary['fingerprint']} != local {expected_fp}"
                )
                return
            for qname in QUERIES:
                job = client.match("data", qname)
                want = lineage.count(expected_fp, qname)
                if job["state"] != "done" or job["result"]["count"] != want:
                    failures.append(
                        f"round {round_no} {qname}: {job.get('result')} "
                        f"!= oracle {want}"
                    )
            old = client.match("data", "P3", as_of=prev_fp)
            if old["result"]["count"] != prev_count:
                failures.append(
                    f"round {round_no}: as_of={prev_fp[:12]} returned "
                    f"{old['result']['count']} != archived {prev_count}"
                )
            cmp_out = client.compare("data", "P3", base=prev_fp)
            if cmp_out["count_delta"] != (
                cmp_out["head_count"] - cmp_out["base_count"]
            ) or cmp_out["base_count"] != prev_count:
                failures.append(f"round {round_no}: bad compare {cmp_out}")
        chain = client.versions("data")
        if len(chain) > 4 or not chain[-1]["head"]:
            failures.append(f"bad lineage shape: {chain}")
        listed = {g["name"]: g for g in client.graphs() if g["name"]}
        if listed["data"]["lineage_depth"] != LOAD_ROUNDS:
            failures.append(
                f"GET /graphs lineage_depth "
                f"{listed['data']['lineage_depth']} != {LOAD_ROUNDS}"
            )
        versioning = client.metrics()["versioning"]
        if versioning["commits"] != LOAD_ROUNDS:
            failures.append(f"commit counter drifted: {versioning}")
        print(
            f"interleaved load: {LOAD_ROUNDS} commits, "
            f"{LOAD_ROUNDS * (len(QUERIES) + 1)} oracled matches, "
            f"chain depth {listed['data']['lineage_depth']}"
        )
    finally:
        shutdown(proc)


def run_crash_mid_commit(failures: list[str]) -> None:
    """Phase 2: SIGKILL with a commit in flight; journal recovery."""
    lineage = LocalLineage(mesh_graph(6, 6), seed=23)
    state_dir = tempfile.mkdtemp(prefix="versioning-state-")
    proc, base_url = boot_server("--state-dir", state_dir)
    acked: list[str] = []
    sent: list[str] = []

    def hammer(client: ServiceClient) -> None:
        try:
            for _ in range(HAMMER_COMMITS):
                insert, delete = lineage.random_pairs()
                sent.append(lineage.apply(insert, delete))
                summary = client.mutate_edges(
                    "data", insert=insert, delete=delete, directed=False
                )
                acked.append(summary["fingerprint"])
        except Exception:
            pass  # the SIGKILL severs the connection mid-request

    try:
        client = ServiceClient(base_url, timeout=60.0)
        client.register_graph(lineage.head, name="data")
        thread = threading.Thread(target=hammer, args=(client,))
        thread.start()
        while len(acked) < HAMMER_COMMITS // 4:  # mid-stream, by design
            time.sleep(0.001)
    finally:
        proc.kill()  # SIGKILL: no shutdown hook gets to run
        proc.wait(timeout=10)
    thread.join(timeout=10)

    # The mid-append crash the commit order tolerates: a torn record
    # after the last fsynced line, with the name map one step behind.
    with open(os.path.join(state_dir, "versions.jsonl"), "a") as fh:
        fh.write('{"name": "data", "fingerpr')

    proc, base_url = boot_server("--state-dir", state_dir)
    try:
        client = ServiceClient(base_url, timeout=60.0)
        chain = client.versions("data")
        head_fp = chain[-1]["fingerprint"]
        landed = set(acked)
        in_flight = sent[len(acked)] if len(sent) > len(acked) else None
        if head_fp not in landed and head_fp != in_flight:
            failures.append(
                f"recovered head {head_fp[:12]} is neither an acked "
                f"commit nor the in-flight one"
            )
            return
        for qname in QUERIES:
            job = client.match("data", qname)
            want = lineage.count(head_fp, qname)
            if job["state"] != "done" or job["result"]["count"] != want:
                failures.append(
                    f"recovered {qname}: {job.get('result')} != "
                    f"oracle {want} on head {head_fp[:12]}"
                )
        metrics = client.metrics()
        if metrics["versioning"]["recovered_versions"] < 1:
            failures.append("no versions recovered from the journal")
        if metrics["state"]["version_records_torn"] < 1:
            failures.append("the torn journal record went uncounted")
        # The recovered head accepts new commits and the chain advances.
        lineage.head = lineage.graphs[head_fp]
        lineage.head_fp = head_fp
        insert, delete = lineage.random_pairs()
        expected_fp = lineage.apply(insert, delete)
        summary = client.mutate_edges(
            "data", insert=insert, delete=delete, directed=False
        )
        if summary["fingerprint"] != expected_fp:
            failures.append(
                f"post-recovery commit forked: {summary['fingerprint']} "
                f"!= {expected_fp}"
            )
        print(
            f"crash recovery: {len(acked)} acked commits, head "
            f"{'in-flight' if head_fp == in_flight else 'last-acked'}, "
            f"1 torn record tolerated, post-recovery commit landed"
        )
    finally:
        shutdown(proc)


def main() -> int:
    failures: list[str] = []
    run_interleaved_load(failures)
    if not failures:
        run_crash_mid_commit(failures)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("versioning smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
