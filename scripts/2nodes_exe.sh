#!/usr/bin/env bash
# Artifact-style driver: the paper's 2-node distributed runs (Figure 4).
# Mirrors the cuTS artifact's 2nodes_exe.sh, but drives the simulated
# cluster through the CLI instead of mpirun.
set -euo pipefail
for dataset in enron gowalla wikiTalk; do
    for query in q5_e10_r0 q5_e6_r8 q6_e11_r10; do
        echo "=== $dataset x $query @ 2 nodes ==="
        python -m repro match "$dataset" "$query" --ranks 2 "$@"
    done
done
