#!/usr/bin/env python
"""Distributed scaling demo (the Figure 4 / Figure 5 experiment).

Runs the Algorithm-3 distributed engine on a big synthetic graph at 1, 2
and 4 simulated V100 nodes, printing runtime, speedup, work transfers
and the per-node load balance — the paper's distributed evaluation in
miniature.

Run:  python examples/distributed_scaling.py
"""

from repro import CuTSConfig, DistributedCuTS
from repro.distributed import balance_report
from repro.graph import paper_query_set, social_graph


def main() -> None:
    data = social_graph(
        2000, 3, community_edges=6000, num_communities=250, seed=3,
        name="big-social",
    )
    query = paper_query_set(5)[8]  # a mid-density 5-vertex query
    print(f"data : {data}")
    print(f"query: {query.name} ({query.num_edges // 2} undirected edges)\n")

    cfg = CuTSConfig(chunk_size=512)
    base_ms = None
    print(f"{'nodes':>6}{'runtime_ms':>14}{'speedup':>10}{'transfers':>11}{'matches':>12}")
    print("-" * 53)
    last = None
    for p in (1, 2, 4):
        res = DistributedCuTS(data, p, cfg).match(query)
        if base_ms is None:
            base_ms = res.runtime_ms
        print(
            f"{p:>6}{res.runtime_ms:>14.4f}{base_ms / res.runtime_ms:>9.2f}x"
            f"{res.work_transfers:>11}{res.count:>12,}"
        )
        last = res

    print("\nload balance at 4 nodes (Figure 5 analogue):")
    rep = balance_report(last)
    for row in rep.rows():
        print(f"   {row['node']}: {row['runtime_ms']:.4f} ms")
    print(f"   max/mean imbalance: {rep.imbalance:.3f}")


if __name__ == "__main__":
    main()
