#!/usr/bin/env python
"""Quickstart: find all 4-cliques in a synthetic social network.

Demonstrates the one-call public API plus the information a result
carries: the embedding count, materialised matches, modeled GPU kernel
time, and the hardware-counter snapshot.

Run:  python examples/quickstart.py
"""

from repro import CuTSConfig, subgraph_isomorphism_search
from repro.graph import clique_graph, social_graph


def main() -> None:
    # A 1,000-vertex heavy-tailed graph with community structure.
    data = social_graph(
        1000, 4, community_edges=3000, num_communities=100, seed=42,
        name="demo-social",
    )
    query = clique_graph(4)

    print(f"data graph : {data}")
    print(f"query graph: {query}")

    result = subgraph_isomorphism_search(
        data, query, CuTSConfig(), materialize=True
    )

    print(f"\nembeddings found   : {result.count:,}")
    print(f"modeled kernel time: {result.time_ms:.3f} ms")
    print(f"matching order     : {result.order}")
    print(f"paths per depth    : {result.stats.paths_per_depth}")

    print("\nfirst five matches (query vertex -> data vertex):")
    for mapping in result.mappings()[:5]:
        print("   ", mapping)

    print("\nhardware counters:")
    snap = result.cost.snapshot()
    for key in ("dram_read_words", "dram_write_words", "atomic_ops",
                "instructions", "kernel_launches"):
        print(f"   {key:<18} {snap[key]:>14,.0f}")


if __name__ == "__main__":
    main()
