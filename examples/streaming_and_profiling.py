#!/usr/bin/env python
"""Streaming enumeration + kernel-trace profiling.

Two production-facing features built on the paper's chunked execution:

1. **Streaming**: the hybrid BFS-DFS writes each chunk's matches out as
   it completes, so embeddings can be consumed batch-by-batch with
   bounded memory — here we take just the first 3 batches of a large
   result set and stop.
2. **Profiling**: with ``trace_kernels=True`` every simulated launch is
   retained; the per-kernel report shows where cycles go and confirms
   the paper's "subgraph isomorphism is a memory-bound problem".

Run:  python examples/streaming_and_profiling.py
"""

from repro.core import CuTSConfig, CuTSMatcher, iter_matches
from repro.gpusim import format_trace_report
from repro.graph import cycle_graph, social_graph


def main() -> None:
    data = social_graph(
        1500, 3, community_edges=4000, num_communities=200, seed=11,
        name="stream-demo",
    )
    query = cycle_graph(4)
    print(f"data : {data}")
    print(f"query: {query}\n")

    # --- streaming: consume the first 3 batches only ------------------
    matcher = CuTSMatcher(data, CuTSConfig(chunk_size=256))
    print("first 3 batches of embeddings (batch_size=5):")
    for i, batch in enumerate(iter_matches(matcher, query, batch_size=5)):
        for row in batch:
            print("   ", dict(enumerate(row.tolist())))
        if i == 2:
            break
    total = matcher.count(query)
    print(f"(total embeddings if fully enumerated: {total:,})\n")

    # --- profiling: the per-kernel trace -------------------------------
    traced = CuTSMatcher(data, CuTSConfig(trace_kernels=True))
    result = traced.match(query)
    print("kernel trace:")
    print(format_trace_report(result.cost.trace))


if __name__ == "__main__":
    main()
