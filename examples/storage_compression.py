#!/usr/bin/env python
"""Trie-vs-naive storage (the Table 1 experiment, interactively).

Runs a 5-clique search over the enron stand-in and prints, per BFS
depth, the measured partial-path counts with the word cost of the three
intermediate-result layouts (naive flat, CSF, cuTS PA/CA trie) and the
paper's compression ratio, plus the Eq. (4)/(5) theoretical bound.

Run:  python examples/storage_compression.py
"""

from repro.core import CuTSConfig, CuTSMatcher
from repro.experiments import load_dataset
from repro.gpusim import V100, scaled_device
from repro.graph import clique_graph
from repro.storage import (
    compare_storage,
    theoretical_reduction_factor,
    theoretical_trie_bound,
)


def main() -> None:
    data = load_dataset("enron")
    query = clique_graph(5)
    print(f"data : {data}")
    print(f"query: K5 (the paper's Table 1 workload)\n")

    cfg = CuTSConfig(device=scaled_device(V100, 1 << 28))
    result = CuTSMatcher(data, cfg).match(query)
    counts = result.stats.paths_per_depth
    comp = compare_storage(counts)

    print(f"{'depth':>6}{'|P_l|':>12}{'naive':>14}{'CSF':>14}{'trie':>14}{'ratio':>8}")
    print("-" * 68)
    for lv, c in enumerate(counts):
        print(
            f"{lv + 1:>6}{c:>12,}{comp.naive[lv]:>14,}{comp.csf[lv]:>14,}"
            f"{comp.trie[lv]:>14,}{comp.compression_ratios[lv]:>8.2f}"
        )

    # Effective branching factor from the measured counts.
    if len(counts) > 1 and counts[0]:
        ds = (counts[-1] / counts[0]) ** (1 / (len(counts) - 1))
        depth = len(counts)
        print(f"\neffective branching factor ds ~= {ds:.2f}")
        print(
            f"Eq.(4) trie-slot bound   : "
            f"{2 * theoretical_trie_bound(counts[0], ds, depth):,.0f} words"
        )
        print(
            f"Eq.(5) reduction factor  : "
            f"{theoretical_reduction_factor(ds, depth):.1f}x (asymptotic)"
        )
    print(f"\ntotal matches: {result.count:,}")


if __name__ == "__main__":
    main()
