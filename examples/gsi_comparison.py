#!/usr/bin/env python
"""Head-to-head against the GSI baseline (a Table 3 cell, close up).

Runs one evaluation case on both engines, asserts they agree on the
answer, and prints the modeled runtime plus the §6.3 hardware-counter
comparison explaining *why* cuTS wins (less data movement, one pass,
fewer candidates).

Run:  python examples/gsi_comparison.py
"""

from repro.baselines import GSIMatcher
from repro.core import CuTSConfig, CuTSMatcher
from repro.experiments import load_dataset
from repro.gpusim import compare_counters, format_metric_report
from repro.graph import paper_query_set


def main() -> None:
    data = load_dataset("gowalla")
    query = paper_query_set(5)[1]
    print(f"data : {data}")
    print(f"query: {query.name}\n")

    cuts = CuTSMatcher(data, CuTSConfig()).match(query)
    gsi = GSIMatcher(data).match(query)
    assert cuts.count == gsi.count, "engines disagree!"

    print(f"matches          : {cuts.count:,} (both engines agree)")
    print(f"cuTS kernel time : {cuts.time_ms:.4f} ms")
    print(f"GSI  kernel time : {gsi.time_ms:.4f} ms")
    print(f"speedup          : {gsi.time_ms / cuts.time_ms:.1f}x\n")

    print("candidates per depth (the ordering + filtering effect):")
    print(f"   cuTS: {cuts.stats.paths_per_depth}")
    print(f"   GSI : {gsi.stats.paths_per_depth}\n")

    print(format_metric_report(compare_counters(gsi.cost, cuts.cost)))


if __name__ == "__main__":
    main()
