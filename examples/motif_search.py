#!/usr/bin/env python
"""Network-motif census — the paper's motivating application.

The cuTS introduction cites Milo et al. (Science 2002): subgraph
isomorphism identifies "network motifs that can characterize common
patterns occurring in biological networks".  This example runs a motif
census: it counts every connected 4-vertex pattern in a (synthetic)
interaction network and compares against a degree-preserving-ish random
baseline to flag over-represented motifs.

Run:  python examples/motif_search.py
"""

import numpy as np

from repro import count_occurrences
from repro.graph import atlas_graphs, from_undirected_edges, social_graph


def random_rewire(graph, seed: int):
    """A crude configuration-model baseline: shuffle edge endpoints."""
    rng = np.random.default_rng(seed)
    edges = graph.edge_list()
    und = edges[edges[:, 0] < edges[:, 1]]
    endpoints = und.ravel().copy()
    rng.shuffle(endpoints)
    rewired = endpoints.reshape(-1, 2)
    rewired = rewired[rewired[:, 0] != rewired[:, 1]]
    return from_undirected_edges(
        rewired, num_vertices=graph.num_vertices, name="rewired"
    )


def census(data) -> dict[str, int]:
    """Occurrences of every connected 4-vertex motif in ``data``."""
    return {
        motif.name: count_occurrences(data, motif)
        for motif in atlas_graphs(4)
    }


def main() -> None:
    data = social_graph(
        400, 3, community_edges=900, num_communities=50, seed=7,
        name="interactions",
    )
    print(f"network: {data}\n")
    observed = census(data)
    baseline = census(random_rewire(data, seed=1))

    print(f"{'motif':<12}{'observed':>12}{'rewired':>12}{'enrichment':>12}")
    print("-" * 48)
    for name, count in sorted(observed.items(), key=lambda kv: -kv[1]):
        base = baseline.get(name, 0)
        enrich = count / base if base else float("inf") if count else 1.0
        print(f"{name:<12}{count:>12,}{base:>12,}{enrich:>11.1f}x")

    print(
        "\nmotifs with enrichment >> 1x are over-represented relative to "
        "a randomized graph — the paper's intro use case."
    )


if __name__ == "__main__":
    main()
