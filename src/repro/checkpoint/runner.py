"""The durable job runner: checkpointed, resumable enumeration.

Drives :class:`~repro.core.matcher.CuTSMatcher`'s stepwise API with an
explicit LIFO work stack — the same worker-stack formulation the
distributed runtime and :func:`~repro.core.stream.iter_matches` use, so
counts are exactly those of :meth:`CuTSMatcher.match` — and snapshots
the stack to a :class:`~repro.checkpoint.store.CheckpointStore` every
``checkpoint_every`` expansions.

Each stack item ``(trie, step, frontier)`` is snapshotted as a
*self-contained* sub-trie (``extract_subtrie`` + the wire format of
:mod:`repro.storage.serialize`), so a snapshot is independent of any
in-memory state: a SIGKILL at any instant loses at most the work done
since the last committed snapshot, and a resumed run replays exactly
the remaining stack.  Partial counts and statistics ride in the
snapshot's meta block; modeled ``time_ms`` accumulates across restarts
(the replayed expansions are charged in the run that actually executes
them, so a resumed job's modeled time can differ slightly from an
uninterrupted run's — counts never do).

The memory governor integrates here at two points: chunk sizes come
from :meth:`~repro.core.governor.MemoryGovernor.effective_chunk`, and
past the high-water mark pending stack items are **spilled** to the
store (shallowest first — the biggest remainders) instead of the run
aborting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.matcher import CuTSMatcher
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..graph.csr import CSRGraph
from ..storage.serialize import deserialize_trie, serialize_trie
from ..storage.trie import PathTrie, TrieLevel
from .fingerprint import (
    check_fingerprints,
    config_fingerprint,
    graph_fingerprint,
)
from .store import FORMAT_VERSION, CheckpointStore

__all__ = ["run_durable"]


@dataclass
class _MemItem:
    """An in-memory work item: expand ``frontier`` through ``step``."""

    trie: PathTrie
    step: int
    frontier: np.ndarray
    words: int
    packed: np.ndarray | None = None
    """Cached :func:`_pack` buffer.  Items are immutable once pushed, so
    a buffer computed for one snapshot is reused verbatim by the next —
    only items created since the last snapshot pay serialization."""


@dataclass
class _SpillItem:
    """A work item evicted to the checkpoint store."""

    name: str
    step: int
    words: int


def _item_words(trie: PathTrie, frontier: np.ndarray) -> int:
    """Ship-equivalent footprint of one work item (trie + frontier)."""
    return trie.total_storage_words + int(frontier.size)


def _pack(item: _MemItem) -> np.ndarray:
    """Serialize an item as a self-contained sub-trie buffer (cached)."""
    if item.packed is None:
        sub = item.trie.extract_subtrie(item.trie.depth - 1, item.frontier)
        item.packed = serialize_trie(sub)
    return item.packed


def _unpack(buffer: np.ndarray, step: int) -> _MemItem:
    """Rebuild a work item from a buffer ``_pack`` produced."""
    trie = deserialize_trie(buffer)
    frontier = np.arange(trie.num_paths(), dtype=np.int64)
    return _MemItem(
        trie=trie, step=step, frontier=frontier,
        words=_item_words(trie, frontier), packed=buffer,
    )


def _fingerprints(
    matcher: CuTSMatcher, query: CSRGraph, part: int, num_parts: int
) -> dict[str, str]:
    return {
        "version": str(FORMAT_VERSION),
        "config": config_fingerprint(matcher.config),
        "data": graph_fingerprint(matcher.data),
        "query": graph_fingerprint(query),
        "shard": f"{part}/{num_parts}",
    }


def run_durable(
    matcher: CuTSMatcher,
    query: CSRGraph,
    *,
    checkpoint_dir: str,
    checkpoint_every: int | None = None,
    resume: bool = False,
    part: int = 0,
    num_parts: int = 1,
) -> MatchResult:
    """Run (or resume) a checkpointed count of ``query``'s embeddings.

    Parameters
    ----------
    matcher:
        The engine bound to the data graph.
    query:
        The query graph.
    checkpoint_dir:
        Directory for the job's manifest/snapshots; created if missing.
        A directory that already holds a job can only be reopened with
        ``resume=True`` (and matching fingerprints).
    checkpoint_every:
        Snapshot cadence in fused expansions; defaults to
        ``matcher.config.checkpoint_every``.
    resume:
        Continue from the newest committed snapshot.  A job whose
        manifest is already marked complete returns its stored result
        without re-running anything.
    part, num_parts:
        Root-interval striding, as in :meth:`CuTSMatcher.match`.

    Returns
    -------
    A count-only :class:`MatchResult` (checkpointed runs do not
    materialise embeddings).
    """
    if query.num_vertices == 0:
        raise ValueError("query graph must have at least one vertex")
    if not 0 <= part < num_parts:
        raise ValueError("need 0 <= part < num_parts")
    every = (
        matcher.config.checkpoint_every
        if checkpoint_every is None
        else int(checkpoint_every)
    )
    if every < 1:
        raise ValueError("checkpoint_every must be >= 1")

    store = CheckpointStore(checkpoint_dir)
    prints = _fingerprints(matcher, query, part, num_parts)
    manifest = store.read_manifest()
    if manifest is not None:
        if not resume:
            raise ValueError(
                f"checkpoint directory {store.directory!r} already holds a "
                "job; pass resume=True to continue it (or point at a fresh "
                "directory)"
            )
        check_fingerprints(dict(manifest.get("fingerprints", {})), prints)
        if manifest.get("complete"):
            return _completed_result(matcher, manifest)
    elif resume:
        raise ValueError(
            f"nothing to resume: {store.directory!r} has no manifest"
        )

    state = matcher.make_run_state(query)
    n_steps = state.order.num_steps
    order = tuple(state.order.sequence)
    shards = (part,) if num_parts > 1 else ()

    base_count = 0
    base_time_ms = 0.0
    base_stats = SearchStats()
    stack: list[_MemItem | _SpillItem] = []
    next_seq = 0
    spill_seq = 0
    live_spills: set[str] = set()

    snapshot = store.load_latest_snapshot() if manifest is not None else None
    if manifest is None:
        store.write_manifest(
            {
                "version": FORMAT_VERSION,
                "fingerprints": prints,
                "part": part,
                "num_parts": num_parts,
                "complete": False,
            }
        )

    if snapshot is not None:
        seq, buffers, meta = snapshot
        next_seq = seq + 1
        base_count = int(meta["count"])
        base_time_ms = float(meta["time_ms"])
        base_stats = SearchStats.from_json(meta["stats"])
        spill_seq = int(meta.get("spill_seq", 0))
        for entry in meta["layout"]:
            step = int(entry["step"])
            if entry["kind"] == "mem":
                stack.append(_unpack(buffers[int(entry["i"])], step))
            else:
                name = str(entry["name"])
                live_spills.add(name)
                stack.append(
                    _SpillItem(
                        name=name, step=step, words=int(entry["words"])
                    )
                )
    else:
        # Fresh start (or resume before the first snapshot committed).
        if query.num_vertices > matcher.data.num_vertices:
            return _finish(
                store, prints, part, num_parts, order, shards,
                count=0, time_ms=0.0, stats=SearchStats(),
                state=state, live_spills=live_spills,
            )
        trie = matcher.initial_frontier(state, part=part, num_parts=num_parts)
        roots = trie.num_paths(0)
        if n_steps == 1:
            return _finish(
                store, prints, part, num_parts, order, shards,
                count=roots, time_ms=state.cost.time_ms, stats=state.stats,
                state=state, live_spills=live_spills,
            )
        if roots:
            frontier = np.arange(roots, dtype=np.int64)
            stack.append(
                _MemItem(
                    trie=trie, step=1, frontier=frontier,
                    words=_item_words(trie, frontier),
                )
            )

    mem_words = sum(it.words for it in stack if isinstance(it, _MemItem))
    state.governor.observe_words(mem_words)
    count = 0
    expansions = 0

    def take_snapshot() -> None:
        nonlocal next_seq
        buffers: list[np.ndarray] = []
        layout: list[dict[str, object]] = []
        for it in stack:
            if isinstance(it, _MemItem):
                layout.append(
                    {"kind": "mem", "i": len(buffers), "step": it.step}
                )
                buffers.append(_pack(it))
            else:
                layout.append(
                    {
                        "kind": "spill", "name": it.name,
                        "step": it.step, "words": it.words,
                    }
                )
        merged = SearchStats.from_json(base_stats.to_json())
        merged.merge(state.stats)
        merged.record_governor(state.governor)
        store.save_snapshot(
            next_seq,
            buffers,
            {
                "layout": layout,
                "count": base_count + count,
                "time_ms": base_time_ms + state.cost.time_ms,
                "stats": merged.to_json(),
                "spill_seq": spill_seq,
            },
        )
        next_seq += 1
        store.prune_snapshots(keep=2)

    def spill_pressure() -> None:
        """Evict pending items (shallowest first) past the high-water
        mark, keeping at least the top-of-stack item in memory."""
        nonlocal mem_words, spill_seq
        if not state.governor.should_spill():
            return
        for i, it in enumerate(stack[:-1]):
            if not isinstance(it, _MemItem):
                continue
            name = store.save_spill(spill_seq, _pack(it))
            spill_seq += 1
            live_spills.add(name)
            stack[i] = _SpillItem(name=name, step=it.step, words=it.words)
            mem_words -= it.words
            state.governor.note_spill()
            state.governor.observe_words(mem_words)
            if not state.governor.should_spill():
                break

    while stack:
        popped = stack.pop()
        if isinstance(popped, _SpillItem):
            item = _unpack(store.load_spill(popped.name), popped.step)
            mem_words += item.words
        else:
            item = popped
            mem_words -= item.words
        chunk = state.governor.effective_chunk(matcher.config.chunk_size)
        frontier = item.frontier
        if frontier.size > chunk:
            rest = frontier[chunk:]
            rest_item = _MemItem(
                trie=item.trie, step=item.step, frontier=rest,
                words=_item_words(item.trie, rest),
            )
            stack.append(rest_item)
            mem_words += rest_item.words
            frontier = frontier[:chunk]
        if isinstance(popped, _SpillItem):
            mem_words -= item.words
        state.governor.observe_words(mem_words)

        pa, ca = matcher.expand_frontier(item.trie, item.step, frontier, state)
        expansions += 1
        if len(ca):
            if item.step + 1 == n_steps:
                count += len(ca)
            else:
                child = PathTrie(
                    levels=[*item.trie.levels, TrieLevel(pa=pa, ca=ca)]
                )
                child_frontier = np.arange(len(ca), dtype=np.int64)
                child_item = _MemItem(
                    trie=child, step=item.step + 1, frontier=child_frontier,
                    words=_item_words(child, child_frontier),
                )
                stack.append(child_item)
                mem_words += child_item.words
                state.governor.observe_words(mem_words)
                spill_pressure()
        if expansions % every == 0 and stack:
            take_snapshot()

    final_stats = SearchStats.from_json(base_stats.to_json())
    final_stats.merge(state.stats)
    return _finish(
        store, prints, part, num_parts, order, shards,
        count=base_count + count,
        time_ms=base_time_ms + state.cost.time_ms,
        stats=final_stats, state=state, live_spills=live_spills,
    )


def _finish(
    store: CheckpointStore,
    prints: dict[str, str],
    part: int,
    num_parts: int,
    order: tuple[int, ...],
    shards: tuple[int, ...],
    *,
    count: int,
    time_ms: float,
    stats: SearchStats,
    state: object,
    live_spills: set[str],
) -> MatchResult:
    """Commit the complete manifest and build the final result."""
    stats.record_governor(getattr(state, "governor", None))
    store.write_manifest(
        {
            "version": FORMAT_VERSION,
            "fingerprints": prints,
            "part": part,
            "num_parts": num_parts,
            "complete": True,
            "count": int(count),
            "time_ms": float(time_ms),
            "stats": stats.to_json(),
            "order": [int(q) for q in order],
        }
    )
    store.prune_snapshots(keep=0)
    for name in sorted(live_spills):
        store.delete_spill(name)
    cost = getattr(state, "cost")
    return MatchResult(
        count=int(count), matches=None, time_ms=float(time_ms),
        cost=cost, stats=stats, order=order, shards=shards,
    )


def _completed_result(
    matcher: CuTSMatcher, manifest: dict[str, object]
) -> MatchResult:
    """Instant result for a job whose manifest is marked complete."""
    from ..gpusim.cost import CostModel

    stats = SearchStats.from_json(dict(manifest["stats"]))  # type: ignore[arg-type]
    part = int(manifest.get("part", 0))  # type: ignore[arg-type]
    num_parts = int(manifest.get("num_parts", 1))  # type: ignore[arg-type]
    return MatchResult(
        count=int(manifest["count"]),  # type: ignore[arg-type]
        matches=None,
        time_ms=float(manifest["time_ms"]),  # type: ignore[arg-type]
        cost=CostModel(matcher.config.device),
        stats=stats,
        order=tuple(int(q) for q in manifest.get("order", ())),  # type: ignore[arg-type]
        shards=(part,) if num_parts > 1 else (),
    )
