"""Job fingerprints: refuse to resume against mismatched inputs.

A checkpoint is only meaningful for the exact (config, data graph,
query, shard) it was taken under — resuming a snapshot of one job
against a different graph would silently produce garbage counts.  The
manifest therefore carries SHA-256 fingerprints of all three, and
:func:`check_fingerprints` raises :class:`CheckpointMismatchError`
before any snapshot is touched when they disagree.

Fingerprints are content hashes (CSR arrays, config field values), not
file paths: the same graph loaded from a different file resumes fine.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from ..core.config import CuTSConfig
from ..graph.csr import CSRGraph

__all__ = [
    "CheckpointMismatchError",
    "check_fingerprints",
    "config_fingerprint",
    "graph_fingerprint",
]


class CheckpointMismatchError(ValueError):
    """Resume was attempted against a checkpoint of a different job."""


def graph_fingerprint(graph: CSRGraph) -> str:
    """SHA-256 over the CSR arrays (and labels, when present)."""
    h = hashlib.sha256()
    h.update(
        f"v={graph.num_vertices};e={graph.num_edges};".encode("ascii")
    )
    for arr in (graph.indptr, graph.indices, graph.rindptr, graph.rindices):
        h.update(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
    if graph.labels is not None:
        h.update(b"labels:")
        h.update(np.ascontiguousarray(graph.labels, dtype=np.int64).tobytes())
    return h.hexdigest()


def config_fingerprint(config: CuTSConfig) -> str:
    """SHA-256 over the count-relevant config fields.

    Durability knobs (budget, cadence, lease timing) and pure cost-model
    knobs are excluded: changing them between runs must not invalidate a
    checkpoint, because they cannot change *what* is enumerated.
    """
    irrelevant = {
        "memory_budget_mb",
        "checkpoint_every",
        "lease_timeout_s",
        "lease_retries",
        "trace_kernels",
        "workers",
        "oversplit",
        "ack_timeout_ms",
        "retry_backoff",
        "max_retries",
        "heartbeat_interval_ms",
        "heartbeat_timeout_ms",
    }
    h = hashlib.sha256()
    for f in dataclasses.fields(config):
        if f.name in irrelevant:
            continue
        value = getattr(config, f.name)
        h.update(f"{f.name}={value!r};".encode("utf-8"))
    return h.hexdigest()


def check_fingerprints(
    stored: dict[str, str], current: dict[str, str]
) -> None:
    """Raise :class:`CheckpointMismatchError` on any disagreement."""
    for key in sorted(set(stored) | set(current)):
        if stored.get(key) != current.get(key):
            raise CheckpointMismatchError(
                f"checkpoint fingerprint mismatch on {key!r}: the snapshot "
                f"was taken for a different {key}; refusing to resume "
                f"(stored {stored.get(key)!r}, current {current.get(key)!r})"
            )
