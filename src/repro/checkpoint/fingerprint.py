"""Compatibility shim: fingerprints moved to :mod:`repro.fingerprint`.

The checkpoint store and the matching service must key jobs identically
(a registry handle, a cache entry, and a resume manifest all name the
same graph+config by content), so the one implementation lives at the
package root.  This module re-exports it so every pre-existing
``repro.checkpoint.fingerprint`` import keeps working.
"""

from ..fingerprint import (
    CheckpointMismatchError,
    check_fingerprints,
    config_fingerprint,
    graph_fingerprint,
)

__all__ = [
    "CheckpointMismatchError",
    "check_fingerprints",
    "config_fingerprint",
    "graph_fingerprint",
]
