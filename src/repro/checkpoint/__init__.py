"""Durable jobs: atomic checkpoint/resume for long enumerations.

The paper's engines assume a run completes in one sitting; this package
makes a run **survive being killed**.  Progress snapshots reuse the
distributed work-shipping trie wire format
(:mod:`repro.storage.serialize`), commit via tmp+fsync+rename
(:mod:`repro.checkpoint.atomic`; analysis rule RP006 enforces that no
checkpoint byte is written any other way), and carry config/graph
fingerprints so a resume refuses mismatched inputs.

Entry points: ``CuTSMatcher.match(checkpoint_dir=...)`` (serial),
``ParallelMatcher.match(checkpoint_dir=...)`` (multi-core, per-shard
persistence + worker watchdog), ``--checkpoint-dir``/``--resume`` in
the CLI, and :func:`run_durable` directly.
"""

from .atomic import atomic_write_bytes, atomic_write_json
from .fingerprint import (
    CheckpointMismatchError,
    check_fingerprints,
    config_fingerprint,
    graph_fingerprint,
)
from .runner import run_durable
from .store import FORMAT_VERSION, CheckpointStore

__all__ = [
    "CheckpointMismatchError",
    "CheckpointStore",
    "FORMAT_VERSION",
    "atomic_write_bytes",
    "atomic_write_json",
    "check_fingerprints",
    "config_fingerprint",
    "graph_fingerprint",
    "run_durable",
]
