"""Atomic durable writes: the only sanctioned way to write a checkpoint.

Every byte under a checkpoint directory must land via tmp + ``fsync`` +
``os.replace`` so a crash (including SIGKILL) at any instant leaves
either the old file or the new file, never a torn one.  The temporary
file is created in the *same directory* as the target (``os.replace`` is
only atomic within a filesystem), and the directory entry itself is
fsynced after the rename so the new name survives a power cut.

Analysis rule RP006 (durable-write safety) enforces that no other module
under ``repro.checkpoint`` opens files for writing directly.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_json", "fsync_dir"]


def fsync_dir(dirname: str) -> None:
    """Flush the directory entry (best effort on exotic filesystems)."""
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform quirk
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform quirk
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *, sync_dir: bool = True) -> None:
    """Durably replace ``path`` with ``data`` (all-or-nothing).

    ``sync_dir=False`` skips the directory-entry fsync so a caller
    writing a batch (e.g. the service journal's group commit) can issue
    one :func:`fsync_dir` for the whole batch; the file contents are
    still fsynced and the replace is still atomic.
    """
    dirname = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=dirname)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if sync_dir:
        fsync_dir(dirname)


def atomic_write_json(
    path: str, payload: dict[str, Any], *, sync_dir: bool = True
) -> None:
    """Durably replace ``path`` with ``payload`` as JSON."""
    data = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
    atomic_write_bytes(path, data, sync_dir=sync_dir)
