"""On-disk layout of a durable job's checkpoint directory.

One directory per job:

``manifest.json``
    Job identity (fingerprints, shard, layout version) plus, once the
    job finishes, the final count — so resuming a *complete* job returns
    instantly without touching snapshots.
``snapshot-<seq>.npz``
    One self-contained progress snapshot: the serialized work stack
    (one :func:`~repro.storage.serialize.serialize_trie` buffer per
    in-memory item) plus a JSON meta block (partial count, stats, spill
    references) embedded as a uint8 array.  A snapshot is a **single
    file committed by rename**, so a SIGKILL mid-write leaves the
    previous snapshot intact; the newest *loadable* snapshot wins.
``spill-<seq>.npy``
    A frontier chunk evicted by the memory governor past its high-water
    mark; referenced by name from snapshot meta blocks and loaded
    lazily when the runner pops the spilled item.
``part-<part>.json``
    Multi-core mode: one completed root-interval shard (count, stats,
    modeled time), written atomically when the shard's future resolves;
    resume re-runs only the missing parts.
``hb/``
    Worker heartbeat files (mtime-stamped) for the watchdog.

All writes go through :mod:`repro.checkpoint.atomic` (analysis rule
RP006 enforces this).
"""

from __future__ import annotations

import io
import json
import os
import re
from typing import Any

import numpy as np

from .atomic import atomic_write_bytes, atomic_write_json

__all__ = ["CheckpointStore", "FORMAT_VERSION"]

FORMAT_VERSION = 1
"""Bump when the snapshot/manifest layout changes incompatibly."""

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.npz$")
_SPILL_RE = re.compile(r"^spill-(\d{8})\.npy$")
_PART_RE = re.compile(r"^part-(\d{5})\.json$")


class CheckpointStore:
    """Filesystem backend for one durable job."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        os.makedirs(self.heartbeat_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    @property
    def heartbeat_dir(self) -> str:
        return os.path.join(self.directory, "hb")

    def _snapshot_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"snapshot-{seq:08d}.npz")

    def _spill_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"spill-{seq:08d}.npy")

    def _part_path(self, part: int) -> str:
        return os.path.join(self.directory, f"part-{part:05d}.json")

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, payload: dict[str, Any]) -> None:
        atomic_write_json(self.manifest_path, payload)

    def read_manifest(self) -> dict[str, Any] | None:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
        except FileNotFoundError:
            return None
        return dict(loaded)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(
        self,
        seq: int,
        buffers: list[np.ndarray],
        meta: dict[str, Any],
    ) -> str:
        """Commit one snapshot (single atomic file); returns its path."""
        payload: dict[str, np.ndarray] = {
            "meta": np.frombuffer(
                json.dumps(meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
        }
        for i, buf in enumerate(buffers):
            payload[f"item_{i:05d}"] = np.ascontiguousarray(
                buf, dtype=np.int64
            )
        sink = io.BytesIO()
        np.savez(sink, **payload)
        path = self._snapshot_path(seq)
        atomic_write_bytes(path, sink.getvalue())
        return path

    def snapshot_seqs(self) -> list[int]:
        """Committed snapshot sequence numbers, ascending."""
        seqs = []
        for name in os.listdir(self.directory):
            m = _SNAPSHOT_RE.match(name)
            if m:
                seqs.append(int(m.group(1)))
        return sorted(seqs)

    def load_latest_snapshot(
        self,
    ) -> tuple[int, list[np.ndarray], dict[str, Any]] | None:
        """Newest loadable snapshot as ``(seq, buffers, meta)``."""
        for seq in reversed(self.snapshot_seqs()):
            try:
                with np.load(self._snapshot_path(seq)) as archive:
                    meta = json.loads(
                        bytes(archive["meta"].tobytes()).decode("utf-8")
                    )
                    names = sorted(
                        n for n in archive.files if n.startswith("item_")
                    )
                    buffers = [
                        np.asarray(archive[n], dtype=np.int64) for n in names
                    ]
            except (OSError, ValueError, KeyError):  # pragma: no cover
                continue  # torn/corrupt snapshot: fall back to the previous
            return seq, buffers, dict(meta)
        return None

    def prune_snapshots(self, keep: int = 2) -> None:
        """Drop all but the ``keep`` newest snapshots (``0`` = all)."""
        seqs = self.snapshot_seqs()
        for seq in seqs[:-keep] if keep > 0 else seqs:
            try:
                os.unlink(self._snapshot_path(seq))
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------
    # Spills
    # ------------------------------------------------------------------
    def save_spill(self, seq: int, buffer: np.ndarray) -> str:
        """Persist one spilled work item; returns its file *name*."""
        sink = io.BytesIO()
        np.save(sink, np.ascontiguousarray(buffer, dtype=np.int64))
        path = self._spill_path(seq)
        atomic_write_bytes(path, sink.getvalue())
        return os.path.basename(path)

    def load_spill(self, name: str) -> np.ndarray:
        """Load a spilled work item by the name ``save_spill`` returned."""
        if not _SPILL_RE.match(name):
            raise ValueError(f"not a spill file name: {name!r}")
        return np.asarray(
            np.load(os.path.join(self.directory, name)), dtype=np.int64
        )

    def delete_spill(self, name: str) -> None:
        if not _SPILL_RE.match(name):
            raise ValueError(f"not a spill file name: {name!r}")
        try:
            os.unlink(os.path.join(self.directory, name))
        except OSError:  # pragma: no cover - already gone
            pass

    # ------------------------------------------------------------------
    # Multi-core shard results
    # ------------------------------------------------------------------
    def save_part(self, part: int, payload: dict[str, Any]) -> None:
        """Persist one completed root-interval shard result."""
        atomic_write_json(self._part_path(part), payload)

    def load_parts(self) -> dict[int, dict[str, Any]]:
        """All persisted shard results, keyed by part id."""
        out: dict[int, dict[str, Any]] = {}
        for name in os.listdir(self.directory):
            m = _PART_RE.match(name)
            if not m:
                continue
            try:
                with open(
                    os.path.join(self.directory, name), "r", encoding="utf-8"
                ) as fh:
                    out[int(m.group(1))] = dict(json.load(fh))
            except (OSError, ValueError):  # pragma: no cover - torn file
                continue
        return out

    # ------------------------------------------------------------------
    # Heartbeats (worker watchdog)
    # ------------------------------------------------------------------
    def heartbeat_path(self, part: int) -> str:
        return os.path.join(self.heartbeat_dir, f"part-{part:05d}")
