"""High-level search API with the paper's component-composition rules.

cuTS proper assumes (weakly) connected query and data graphs.  Paper §4
(final paragraph) prescribes the general case:

* disconnected **query**: solve each weakly connected component
  independently and combine as the cross product of the component
  solutions;
* disconnected **data**: solve on each component and take the union of
  the solutions (a connected query embeds entirely inside one component).

The cross-product count over query components mirrors the paper exactly.
Note the caveat (inherent to the paper's rule): the cross product admits
assignments where two query components map to overlapping data vertices,
so it is an upper bound on the strictly injective embedding count for
disconnected queries.  For connected queries — every query the paper
evaluates — the result is exact.
"""

from __future__ import annotations

import numpy as np

from .core.config import CuTSConfig
from .core.matcher import CuTSMatcher
from .core.result import MatchResult
from .core.stats import SearchStats
from .gpusim.cost import CostModel
from .graph.components import is_weakly_connected, split_components
from .graph.csr import CSRGraph
from .parallel.matcher import ParallelMatcher, resolve_workers

__all__ = [
    "subgraph_isomorphism_search",
    "match_many",
    "count_embeddings",
    "count_automorphisms",
    "count_occurrences",
]


def _match_one(
    data: CSRGraph,
    query: CSRGraph,
    config: CuTSConfig,
    materialize: bool,
    time_limit_ms: float | None,
    workers: int,
) -> MatchResult:
    """One (connected-data, connected-query) match, serial or sharded."""
    if workers > 1:
        with ParallelMatcher(data, config, workers=workers) as matcher:
            return matcher.match(
                query, materialize=materialize, time_limit_ms=time_limit_ms
            )
    return CuTSMatcher(data, config).match(
        query, materialize=materialize, time_limit_ms=time_limit_ms
    )


def _match_on_components(
    data_parts: list[tuple[CSRGraph, np.ndarray]],
    query: CSRGraph,
    config: CuTSConfig,
    materialize: bool,
    time_limit_ms: float | None,
    workers: int = 1,
) -> MatchResult:
    """Union of a connected query's results over the data components."""
    count = 0
    time_ms = 0.0
    mappings: list[np.ndarray] = []
    cost = CostModel(config.device)
    stats = SearchStats()
    order: tuple[int, ...] = ()
    for dcomp, dmap in data_parts:
        if query.num_vertices > dcomp.num_vertices:
            continue
        res = _match_one(
            dcomp, query, config, materialize, time_limit_ms, workers
        )
        count += res.count
        time_ms += res.time_ms
        cost.merge(res.cost)
        order = res.order
        stats.merge(res.stats)
        if materialize and res.matches is not None and len(res.matches):
            mappings.append(dmap[res.matches])
    matches = None
    if materialize:
        matches = (
            np.concatenate(mappings, axis=0)
            if mappings
            else np.zeros((0, query.num_vertices), dtype=np.int64)
        )
    return MatchResult(
        count=count, matches=matches, time_ms=time_ms,
        cost=cost, stats=stats, order=order,
    )


def subgraph_isomorphism_search(
    data: CSRGraph,
    query: CSRGraph,
    config: CuTSConfig | None = None,
    *,
    materialize: bool = False,
    time_limit_ms: float | None = None,
    workers: int | str | None = None,
) -> MatchResult:
    """Find all embeddings of ``query`` in ``data`` (paper Definition 4).

    Handles disconnected inputs per the paper's composition rules; see
    the module docstring.  Materialisation is only supported for
    connected query graphs (the cross-product expansion of disconnected
    queries is combinatorial by design).

    ``workers`` selects the multi-core engine (``"auto"`` or ``0`` uses
    every CPU; ``None`` defers to ``config.workers``): each
    connected-component match is sharded over worker processes via
    :class:`~repro.parallel.ParallelMatcher` with exact, bit-identical
    counts.
    """
    config = config or CuTSConfig()
    if query.num_vertices == 0:
        raise ValueError("query graph must have at least one vertex")
    workers = resolve_workers(
        config.workers if workers is None else workers
    )

    if is_weakly_connected(data):
        data_parts: list[tuple[CSRGraph, np.ndarray]] = [
            (data, np.arange(data.num_vertices, dtype=np.int64))
        ]
    else:
        data_parts = split_components(data)

    query_components = split_components(query)
    if len(query_components) == 1:
        return _match_on_components(
            data_parts, query, config, materialize, time_limit_ms, workers
        )

    if materialize:
        raise ValueError(
            "materialize=True requires a weakly connected query graph"
        )
    # Cross product over query components (paper's rule).
    total = 1
    time_ms = 0.0
    cost = CostModel(config.device)
    stats = SearchStats()
    for qcomp, _ in query_components:
        res = _match_on_components(
            data_parts, qcomp, config, False, time_limit_ms, workers
        )
        total *= res.count
        time_ms += res.time_ms
        cost.merge(res.cost)
        if total == 0:
            break
    return MatchResult(
        count=total, matches=None, time_ms=time_ms,
        cost=cost, stats=stats, order=(),
    )


def match_many(
    data: CSRGraph,
    queries: list[CSRGraph],
    config: CuTSConfig | None = None,
    *,
    materialize: bool = False,
    time_limit_ms: float | None = None,
    workers: int | str | None = None,
) -> list[MatchResult]:
    """Match a whole batch of queries against one data graph.

    The batch goes through the service stack
    (:class:`~repro.service.MatchingService`): the data graph is loaded
    (and, under ``workers > 1``, its shared-memory segment and process
    pool built) **once**, duplicate queries coalesce to a single
    execution, and the distinct queries run as one batched pool pass
    instead of ``len(queries)`` independent engine spin-ups.  Counts are
    bit-identical to calling :func:`subgraph_isomorphism_search` per
    query on a connected data graph; results come back in input order.

    Batch-level composition rules (disconnected inputs) follow the
    per-query path: each query must be connected, and a disconnected
    data graph falls back to per-query composition.
    """
    from .service import MatchingService

    config = config or CuTSConfig()
    if not queries:
        return []
    for query in queries:
        if query.num_vertices == 0:
            raise ValueError("query graphs must have at least one vertex")
        if not is_weakly_connected(query):
            raise ValueError(
                "match_many requires weakly connected query graphs; use "
                "subgraph_isomorphism_search for the cross-product rule"
            )
    if not is_weakly_connected(data):
        # Component composition is per query; reuse the general path.
        return [
            subgraph_isomorphism_search(
                data, query, config,
                materialize=materialize,
                time_limit_ms=time_limit_ms,
                workers=workers,
            )
            for query in queries
        ]
    with MatchingService(config, workers=workers) as service:
        fingerprint = service.register_graph(data)
        return service.match_many(
            fingerprint,
            queries,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
        )


def count_embeddings(
    data: CSRGraph,
    query: CSRGraph,
    config: CuTSConfig | None = None,
    *,
    workers: int | str | None = None,
) -> int:
    """Shorthand for the embedding count (``workers`` as in
    :func:`subgraph_isomorphism_search`)."""
    return subgraph_isomorphism_search(
        data, query, config, workers=workers
    ).count


def count_automorphisms(
    query: CSRGraph,
    config: CuTSConfig | None = None,
    *,
    workers: int | str | None = None,
) -> int:
    """Automorphism count of a graph (embeddings of it into itself).

    Every distinct subgraph occurrence is found once per automorphism by
    the enumerator, so this is the normalisation constant between
    *embeddings* and *occurrences*.
    """
    return subgraph_isomorphism_search(
        query, query, config, workers=workers
    ).count


def count_occurrences(
    data: CSRGraph,
    query: CSRGraph,
    config: CuTSConfig | None = None,
    *,
    workers: int | str | None = None,
) -> int:
    """Number of distinct subgraphs of ``data`` isomorphic to ``query``
    (embeddings divided by the query's automorphism count) — the quantity
    motif-census applications report."""
    # Queries are tiny: count their automorphisms in-process.
    autos = count_automorphisms(query, config)
    embeddings = count_embeddings(data, query, config, workers=workers)
    assert embeddings % autos == 0, "embedding count must divide evenly"
    return embeddings // autos
