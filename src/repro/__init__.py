"""repro — a reproduction of cuTS (SC '21).

cuTS: Scaling Subgraph Isomorphism on Distributed Multi-GPU Systems Using
Trie Based Data Structure — Xiang, Khan, Serra, Halappanavar,
Sukumaran-Rajam.

The package implements the paper's full system in pure NumPy on a
simulated GPU / cluster substrate:

* :mod:`repro.graph` — dual-CSR graphs, generators, query sets, IO;
* :mod:`repro.storage` — naive / CSF / PA-CA-trie intermediate stores;
* :mod:`repro.gpusim` — device specs, memory, cost counters, kernels;
* :mod:`repro.core` — the cuTS engine (ordering, intersections, fused
  trie expansion, hybrid BFS-DFS chunking);
* :mod:`repro.baselines` — GSI-style comparator, DFS and networkx oracles;
* :mod:`repro.distributed` — the Algorithm-3 multi-rank runtime;
* :mod:`repro.parallel` — the multi-core engine (process-parallel
  root-interval sharding over zero-copy shared-memory graphs);
* :mod:`repro.service` — the embedded matching service (graph registry,
  batched scheduler, result cache, ``python -m repro.serve`` HTTP face);
* :mod:`repro.experiments` — drivers regenerating every paper table/figure.

Quickstart::

    from repro import subgraph_isomorphism_search, CuTSConfig
    from repro.graph import social_graph, clique_graph

    data = social_graph(1000, 3, community_edges=800, seed=1)
    result = subgraph_isomorphism_search(data, clique_graph(4))
    print(result.count, result.time_ms)
"""

from .api import (
    count_automorphisms,
    count_embeddings,
    count_occurrences,
    match_many,
    subgraph_isomorphism_search,
)
from .core import CuTSConfig, CuTSMatcher, MatchResult, SearchTimeout
from .distributed import DistributedCuTS, DistributedResult
from .gpusim import A100, V100, DeviceOOMError, DeviceSpec
from .parallel import ParallelMatcher, SharedCSR, parallel_match

__version__ = "1.0.0"

__all__ = [
    "subgraph_isomorphism_search",
    "match_many",
    "count_embeddings",
    "count_automorphisms",
    "count_occurrences",
    "CuTSConfig",
    "CuTSMatcher",
    "MatchResult",
    "SearchTimeout",
    "DistributedCuTS",
    "DistributedResult",
    "ParallelMatcher",
    "SharedCSR",
    "parallel_match",
    "DeviceSpec",
    "DeviceOOMError",
    "V100",
    "A100",
    "__version__",
]
