"""Command-line interface mirroring the cuTS artifact's entry points.

The paper's artifact exposes ``cuts.py`` (single-node runs),
``2nodes_exe.sh`` / ``4nodes_exe.sh`` (distributed runs) and
``convert_ours_to_gsi.py`` (format conversion).  This module provides the
same operations:

* ``python -m repro match DATA QUERY [--ranks N] ...`` — run a search on
  graph files (cuTS edge-list format) or named built-in datasets;
* ``python -m repro convert SRC DST`` — cuTS → GSI format conversion;
* ``python -m repro experiments [--quick]`` — regenerate all tables and
  figures (same as ``python -m repro.experiments``).

DATA accepts either a path to a cuTS-format file or one of the built-in
dataset names (``enron``, ``gowalla``, ...).  QUERY accepts a path, a
built-in query name like ``q5_e10_r0``, or a pattern shorthand like
``K5`` (clique), ``C6`` (cycle), ``P4`` (path/chain), ``S5`` (star).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .core.config import CuTSConfig
from .core.matcher import CuTSMatcher
from .distributed.faults import FaultPlan
from .distributed.runtime import DistributedCuTS
from .gpusim.device import A100, V100
from .graph.csr import CSRGraph
from .graph.generators import chain_graph, clique_graph, cycle_graph, star_graph
from .graph.io import convert_cuts_to_gsi, read_cuts_format
from .parallel.matcher import ParallelMatcher, resolve_workers

__all__ = ["main", "load_data_argument", "load_query_argument"]

_DEVICES = {"V100": V100, "A100": A100}


def load_data_argument(spec: str) -> CSRGraph:
    """Resolve a DATA argument: file path or built-in dataset name."""
    from .experiments.datasets import DATASET_NAMES, load_dataset

    if spec in DATASET_NAMES:
        return load_dataset(spec)
    path = Path(spec)
    if path.exists():
        return read_cuts_format(path)
    raise SystemExit(
        f"error: {spec!r} is neither a file nor one of {DATASET_NAMES}"
    )


def load_query_argument(spec: str) -> CSRGraph:
    """Resolve a QUERY argument: file, paper query name, or shorthand."""
    path = Path(spec)
    if path.exists():
        return read_cuts_format(path)
    makers = {"K": clique_graph, "C": cycle_graph, "P": chain_graph}
    if len(spec) >= 2 and spec[0] in makers and spec[1:].isdigit():
        return makers[spec[0]](int(spec[1:]))
    if len(spec) >= 2 and spec[0] == "S" and spec[1:].isdigit():
        return star_graph(int(spec[1:]))
    if spec.startswith("q") and "_" in spec:
        from .graph.queries import paper_query_set

        try:
            size = int(spec[1 : spec.index("_")])
        except ValueError:
            raise SystemExit(f"error: cannot parse query name {spec!r}")
        for q in paper_query_set(size):
            if q.name == spec:
                return q
        raise SystemExit(f"error: no paper query named {spec!r}")
    raise SystemExit(
        f"error: {spec!r} is not a file, paper query name (q5_e10_r0), or "
        f"shorthand (K5/C6/P4/S5)"
    )


def _parse_rank_map(pairs: list[str], what: str) -> dict[int, float]:
    """Parse repeated ``RANK:VALUE`` options into a dict."""
    out: dict[int, float] = {}
    for item in pairs:
        try:
            rank_s, value_s = item.split(":", 1)
            out[int(rank_s)] = float(value_s)
        except ValueError:
            raise SystemExit(
                f"error: {what} expects RANK:VALUE, got {item!r}"
            )
    return out


def _build_fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    try:
        plan = FaultPlan(
            seed=args.fault_seed,
            drop_prob=args.drop_prob,
            dup_prob=args.dup_prob,
            delay_prob=args.delay_prob,
            max_delay_ms=args.max_delay_ms,
            crash_at_ms=_parse_rank_map(args.crash, "--crash"),
            slowdown=_parse_rank_map(args.slow, "--slow"),
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    return None if plan.is_null else plan


def _parse_workers(spec: str) -> int:
    """Parse ``--workers``: a positive integer or ``auto`` (= cpu_count)."""
    try:
        return resolve_workers(spec)
    except ValueError:
        raise SystemExit(
            f"error: --workers expects a positive integer or 'auto', "
            f"got {spec!r}"
        )


def _cmd_match(args: argparse.Namespace) -> int:
    data = load_data_argument(args.data)
    query = load_query_argument(args.query)
    workers = _parse_workers(args.workers)
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("error: --resume requires --checkpoint-dir")
    cfg = CuTSConfig(
        device=_DEVICES[args.device],
        chunk_size=args.chunk_size,
        ordering=args.ordering,
        intersection=args.intersection,
        workers=workers,
        memory_budget_mb=args.memory_budget_mb,
        checkpoint_every=args.checkpoint_every,
    )
    print(f"data : {data}")
    print(f"query: {query}")
    if args.ranks > 1 and workers > 1:
        raise SystemExit(
            "error: --ranks (simulated distributed) and --workers "
            "(multi-core) are separate execution engines; choose one"
        )
    if workers > 1:
        t0 = time.perf_counter()
        with ParallelMatcher(data, cfg, workers=workers) as matcher:
            r = matcher.match(
                query,
                time_limit_ms=args.time_limit_ms,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
            )
        wall_s = time.perf_counter() - t0
        print(f"matches      : {r.count:,}")
        print(f"kernel time  : {r.time_ms:.4f} ms "
              f"({args.device}-sim, max over {workers} workers)")
        print(f"wall clock   : {wall_s:.3f} s on {workers} worker processes")
        print(f"paths/depth  : {r.stats.paths_per_depth}")
        if args.counters:
            for k, v in r.cost.snapshot().items():
                print(f"  {k:<26}{v:>16,.0f}" if isinstance(v, (int,)) else f"  {k:<26}{v:>16.4g}")
        return 0
    if args.ranks > 1:
        plan = _build_fault_plan(args)
        res = DistributedCuTS(data, args.ranks, cfg, fault_plan=plan).match(
            query,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
        print(f"matches      : {res.count:,}")
        print(f"runtime      : {res.runtime_ms:.4f} ms on {args.ranks} ranks")
        print(f"per-rank busy: " + ", ".join(f"{t:.4f}" for t in res.per_rank_busy_ms))
        print(f"transfers    : {res.work_transfers}")
        if plan is not None:
            print(f"faults       : {res.faults_injected}")
            print(f"retransmits  : {res.retransmissions}")
            print(f"ranks failed : {res.ranks_failed}")
            print(f"recovered    : {res.recovered_chunks}")
    else:
        r = CuTSMatcher(data, cfg).match(
            query,
            time_limit_ms=args.time_limit_ms,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
        print(f"matches      : {r.count:,}")
        print(f"kernel time  : {r.time_ms:.4f} ms ({args.device}-sim)")
        print(f"paths/depth  : {r.stats.paths_per_depth}")
        if args.counters:
            for k, v in r.cost.snapshot().items():
                print(f"  {k:<26}{v:>16,.0f}" if isinstance(v, (int,)) else f"  {k:<26}{v:>16.4g}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    convert_cuts_to_gsi(args.src, args.dst)
    print(f"wrote {args.dst}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.harness import main as harness_main

    return harness_main(["--quick"] if args.quick else [])


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.http import main as serve_main

    return serve_main(list(args.serve_args))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="cuTS reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    m = sub.add_parser("match", help="run a subgraph isomorphism search")
    m.add_argument("data", help="data graph file or built-in dataset name")
    m.add_argument("query", help="query file, paper query name, or K5/C6/P4/S5")
    m.add_argument("--ranks", type=int, default=1, help="simulated nodes")
    m.add_argument(
        "--workers", default="1", metavar="N|auto",
        help="worker processes for the multi-core engine "
        "('auto' = all CPUs; default 1 = classic in-process run)",
    )
    m.add_argument("--device", choices=("V100", "A100"), default="V100")
    m.add_argument("--chunk-size", type=int, default=512)
    m.add_argument("--ordering", choices=("max_degree", "id"), default="max_degree")
    m.add_argument(
        "--intersection", choices=("adaptive", "c", "p"), default="adaptive"
    )
    m.add_argument("--time-limit-ms", type=float, default=None)
    m.add_argument("--counters", action="store_true", help="dump hardware counters")
    d = m.add_argument_group("durability")
    d.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist progress snapshots to DIR (atomic tmp+fsync+rename); "
        "a killed run restarts from the last snapshot with --resume",
    )
    d.add_argument(
        "--resume", action="store_true",
        help="resume from the snapshots in --checkpoint-dir "
        "(refuses mismatched graph/config fingerprints)",
    )
    d.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="snapshot cadence: every N expansions (serial) or "
        "event-loop iterations (distributed); default 64",
    )
    d.add_argument(
        "--memory-budget-mb", type=int, default=0, metavar="MB",
        help="soft host-memory budget; under pressure the BFS chunk "
        "size halves and completed chunks spill to the checkpoint "
        "store (0 = unlimited)",
    )
    f = m.add_argument_group("fault injection (distributed runs)")
    f.add_argument("--fault-seed", type=int, default=0)
    f.add_argument("--drop-prob", type=float, default=0.0,
                   help="probability each work/ack message is lost")
    f.add_argument("--dup-prob", type=float, default=0.0,
                   help="probability each work/ack message is duplicated")
    f.add_argument("--delay-prob", type=float, default=0.0,
                   help="probability of extra delivery jitter")
    f.add_argument("--max-delay-ms", type=float, default=1.0)
    f.add_argument("--crash", action="append", default=[], metavar="RANK:MS",
                   help="crash RANK at simulated time MS (repeatable)")
    f.add_argument("--slow", action="append", default=[], metavar="RANK:FACTOR",
                   help="slow RANK down by FACTOR (repeatable)")
    m.set_defaults(func=_cmd_match)

    c = sub.add_parser("convert", help="convert cuTS format to GSI format")
    c.add_argument("src")
    c.add_argument("dst")
    c.set_defaults(func=_cmd_convert)

    e = sub.add_parser("experiments", help="regenerate all tables/figures")
    e.add_argument("--quick", action="store_true")
    e.set_defaults(func=_cmd_experiments)

    s = sub.add_parser(
        "serve",
        help="run the matching service over HTTP (same as "
        "python -m repro.serve); --ranks N --replication R serves a "
        "replicated shard-routed cluster",
    )
    s.add_argument(
        "serve_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="arguments forwarded to repro.serve (--port, --workers, "
        "--ranks, --replication, --preload, ...)",
    )
    s.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
