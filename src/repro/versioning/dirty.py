"""Dirty-vertex neighbourhoods: the BFS ball around a delta.

The whole incremental story rests on one locality lemma.  Let ``q`` be
a query with undirected diameter ``d``, and let an embedding of ``q``
map some query edge onto a *touched* data edge (inserted or deleted).
Every query vertex is within query-distance ``d`` of the matching
root, and an embedding maps adjacent query vertices to adjacent data
vertices, so the embedding's root lies within **undirected data-graph
distance ``d`` of a touched endpoint**.  Contrapositive: embeddings
rooted outside the radius-``d`` ball around the touched endpoints use
no touched edge — they are identical in version N and N+1.

The ball is computed over the **union** graph (parent edges ∪ child
edges): an old embedding walks deleted edges, a new one walks inserted
edges, and the union covers both, so one BFS serves both directions of
the count identity.

:class:`DirtyRegion` memoises BFS layers: one commit serves many cached
queries with different diameters, and each radius extends the frontier
at most one more hop.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph, INDEX_DTYPE

__all__ = ["DirtyRegion", "query_diameter", "undirected_neighbors"]


def _gather_segments(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> np.ndarray:
    """Concatenate the adjacency slices of ``vertices`` in one pass."""
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=INDEX_DTYPE)
    owner = np.repeat(np.arange(len(vertices), dtype=INDEX_DTYPE), counts)
    cum = np.concatenate(
        [np.zeros(1, dtype=INDEX_DTYPE), np.cumsum(counts)]
    )
    offsets = np.arange(total, dtype=INDEX_DTYPE) - cum[owner] + starts[owner]
    return indices[offsets]


def undirected_neighbors(graph: CSRGraph, vertices: np.ndarray) -> np.ndarray:
    """Unique out- plus in-neighbours of ``vertices`` (one hop of the
    underlying undirected graph)."""
    vertices = np.asarray(vertices, dtype=INDEX_DTYPE)
    if vertices.size == 0:
        return np.zeros(0, dtype=INDEX_DTYPE)
    children = _gather_segments(graph.indptr, graph.indices, vertices)
    parents = _gather_segments(graph.rindptr, graph.rindices, vertices)
    return np.unique(np.concatenate([children, parents]))


def query_diameter(query: CSRGraph) -> int:
    """Diameter of the query's underlying undirected graph.

    Queries are tiny (admission caps their vertex count), so a BFS from
    every vertex is cheap.  Unreachable pairs (a disconnected query —
    the matcher handles them as cross products) fall back to the worst
    sound radius, ``num_vertices - 1``.
    """
    n = query.num_vertices
    if n <= 1:
        return 0
    worst = 0
    for source in range(n):
        dist = np.full(n, -1, dtype=INDEX_DTYPE)
        dist[source] = 0
        frontier = np.asarray([source], dtype=INDEX_DTYPE)
        depth = 0
        while frontier.size:
            depth += 1
            nxt = undirected_neighbors(query, frontier)
            nxt = nxt[dist[nxt] < 0]
            if nxt.size == 0:
                break
            dist[nxt] = depth
            frontier = nxt
        ecc = int(dist.max()) if (dist >= 0).all() else n - 1
        worst = max(worst, ecc)
    return worst


class DirtyRegion:
    """Memoised layered BFS ball around a delta's touched vertices.

    Built once per commit over the union graph; :meth:`ball` returns
    the sorted unique vertex set within a given undirected distance of
    any seed, extending the memoised layers only as far as the largest
    radius ever asked for.
    """

    def __init__(self, graph: CSRGraph, seeds: np.ndarray) -> None:
        self.graph = graph
        seeds = np.unique(np.asarray(seeds, dtype=INDEX_DTYPE))
        seeds = seeds[seeds < graph.num_vertices]
        self._visited = np.zeros(graph.num_vertices, dtype=bool)
        self._visited[seeds] = True
        self._layers: list[np.ndarray] = [seeds]
        self._frontier = seeds
        self._balls: dict[int, np.ndarray] = {}

    def ball(self, radius: int) -> np.ndarray:
        """Sorted unique vertices within ``radius`` hops of a seed."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        cached = self._balls.get(radius)
        if cached is not None:
            return cached
        while len(self._layers) - 1 < radius and self._frontier.size:
            nxt = undirected_neighbors(self.graph, self._frontier)
            nxt = nxt[~self._visited[nxt]]
            self._visited[nxt] = True
            self._layers.append(nxt)
            self._frontier = nxt
        out = np.unique(
            np.concatenate(self._layers[: radius + 1])
        ) if self._layers else np.zeros(0, dtype=INDEX_DTYPE)
        self._balls[radius] = out
        return out
