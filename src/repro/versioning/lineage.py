"""Version lineage: immutable parent → delta → child records.

Every mutation of a named graph appends one :class:`GraphVersion` link:
the parent fingerprint, the normalised delta (or ``None`` for a
whole-graph replacement), and the content fingerprint of the child.
The service journals these links (`versions.jsonl` in the state dir) in
a strict order — child graph bytes first, then the lineage record, then
the name map — so a crash at any point leaves a recoverable prefix:

* crash after the graph write: an orphan graph, no record — the head
  stays the parent (the commit never happened);
* crash after the record: the journal names the child and its graph is
  on disk — recovery advances the head to the child even though the
  name map still says the parent (the commit happened).

:func:`recover_chains` implements exactly that rule, purely, so the
crash-consistency argument is unit-testable without a filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .delta import EdgeDelta

__all__ = [
    "GraphVersion",
    "recover_chains",
    "version_from_record",
    "version_record",
]

KIND_ROOT = "root"
KIND_DELTA = "delta"
KIND_REPLACE = "replace"
_KINDS = (KIND_ROOT, KIND_DELTA, KIND_REPLACE)


@dataclass(frozen=True)
class GraphVersion:
    """One link of a named graph's version chain."""

    name: str
    fingerprint: str
    parent: str | None
    depth: int
    kind: str
    delta: EdgeDelta | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown version kind {self.kind!r}")
        if self.kind == KIND_DELTA and self.delta is None:
            raise ValueError("a delta version link requires a delta")
        if self.kind != KIND_ROOT and self.parent is None:
            raise ValueError(f"a {self.kind} version link requires a parent")


def version_record(version: GraphVersion) -> dict[str, object]:
    """JSON-safe journal record for one lineage link."""
    return {
        "name": version.name,
        "fingerprint": version.fingerprint,
        "parent": version.parent,
        "depth": version.depth,
        "kind": version.kind,
        "delta": None if version.delta is None else version.delta.to_json(),
    }


def version_from_record(record: dict[str, object]) -> GraphVersion:
    delta = record.get("delta")
    return GraphVersion(
        name=str(record["name"]),
        fingerprint=str(record["fingerprint"]),
        parent=None if record["parent"] is None else str(record["parent"]),
        depth=int(record["depth"]),  # type: ignore[arg-type]
        kind=str(record["kind"]),
        delta=None if delta is None else EdgeDelta.from_json(delta),  # type: ignore[arg-type]
    )


def recover_chains(
    records: Iterable[dict[str, object]],
    available: set[str],
) -> tuple[dict[str, list[GraphVersion]], int]:
    """Per-name retained chains implied by a journal prefix.

    ``available`` is the set of graph fingerprints actually on disk.
    For each name the head is the **latest journal record whose child
    graph exists** (records whose graph write was lost — impossible
    under the commit order, but tolerated — are skipped, as are pruned
    versions); the chain then extends backwards through parents that
    are still available.  Returns the chains (each oldest → head) plus
    the number of malformed records skipped.
    """
    by_name: dict[str, list[GraphVersion]] = {}
    by_fp: dict[str, GraphVersion] = {}
    malformed = 0
    for record in records:
        try:
            version = version_from_record(record)
        except (KeyError, TypeError, ValueError):
            malformed += 1
            continue
        by_name.setdefault(version.name, []).append(version)
        by_fp[version.fingerprint] = version
    chains: dict[str, list[GraphVersion]] = {}
    for name, versions in by_name.items():
        head = next(
            (v for v in reversed(versions) if v.fingerprint in available),
            None,
        )
        if head is None:
            continue
        chain = [head]
        seen = {head.fingerprint}
        cursor = head
        while cursor.parent is not None and cursor.parent in available:
            parent = by_fp.get(cursor.parent)
            if parent is None or parent.fingerprint in seen:
                break
            chain.append(parent)
            seen.add(parent.fingerprint)
            cursor = parent
        chains[name] = list(reversed(chain))
    return chains, malformed
