"""Incremental re-matching across one version commit.

Count identity (see :mod:`.dirty` for the locality lemma): with ``B``
the radius-``diam(q)`` dirty ball around a delta's touched endpoints,

    count(G', q) = count(G, q)                      # the cached base
                 - count(G, q | root in B)          # old dirty share
                 + count(G', q | root in B)         # new dirty share

because embeddings rooted outside ``B`` are identical in ``G`` and
``G'``.  Both restricted terms run through the ordinary engine with a
``root_filter`` — the same kernels, the same counts, just a pruned
level-0 candidate set — so the incremental path inherits every parity
property of the full matcher, and the full re-match stays available as
an equivalence oracle (the randomised suite and the benchmark hard-gate
on it).

The same ball drives **cache promotion**: a cached count for ``G`` is
still exact for ``G'`` when *neither* version has a root candidate
inside ``B`` (both dirty shares are then provably zero).  That check —
:func:`promotion_safe` — is two degree-filter scans, no matching.
"""

from __future__ import annotations

import numpy as np

from ..core.candidates import root_candidates
from ..core.config import CuTSConfig
from ..core.ordering import build_order
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..graph.csr import CSRGraph, INDEX_DTYPE
from ..gpusim.cost import CostModel
from ..storage.overlay import spliced_graph
from .delta import EdgeDelta
from .dirty import DirtyRegion, query_diameter

__all__ = [
    "IncrementalMismatchError",
    "IncrementalUnsupported",
    "dirty_region_for",
    "incremental_match",
    "parent_graph_of",
    "promotion_safe",
    "union_graph_of",
]

_EMPTY_EDGES = np.zeros((0, 2), dtype=INDEX_DTYPE)


class IncrementalUnsupported(ValueError):
    """The request shape cannot take the incremental path (caller
    should fall back to a full re-match)."""


class IncrementalMismatchError(RuntimeError):
    """The base count is inconsistent with the delta (e.g. it was taken
    against a different version) — never silently served."""


def union_graph_of(child: CSRGraph, delta: EdgeDelta) -> CSRGraph:
    """Parent ∪ child edge set: the child with deleted edges restored."""
    if len(delta.deletes) == 0:
        return child
    return spliced_graph(child, delta.deletes, _EMPTY_EDGES)


def parent_graph_of(child: CSRGraph, delta: EdgeDelta) -> CSRGraph:
    """Reconstruct the parent's *edge set* from the child by inverting
    the delta.

    The vertex set stays the child's: endpoints that only the delta
    introduced become isolated vertices.  Isolated vertices cannot root
    any query with at least one edge, which is exactly the class the
    incremental path accepts — :func:`incremental_match` rejects
    edgeless queries for this reason.
    """
    return spliced_graph(child, delta.deletes, delta.inserts)


def dirty_region_for(child: CSRGraph, delta: EdgeDelta) -> DirtyRegion:
    """The commit's memoised dirty region (BFS over the union graph)."""
    return DirtyRegion(union_graph_of(child, delta), delta.touched())


def _root_set(
    graph: CSRGraph, query: CSRGraph, config: CuTSConfig
) -> np.ndarray:
    """Level-0 candidate set under ``config`` (sorted unique)."""
    q0 = build_order(query, config.ordering).sequence[0]
    return root_candidates(
        graph, query, q0, None,
        neighborhood_filter=config.neighborhood_filter,
    )


def promotion_safe(
    query: CSRGraph,
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    region: DirtyRegion,
    config: CuTSConfig,
) -> bool:
    """May a cached count for ``old_graph`` be re-keyed to
    ``new_graph`` unchanged?

    True when neither version has a level-0 root candidate inside the
    query's dirty ball: both dirty shares of the count identity are
    zero, so the counts are equal.  Conservative by construction —
    a ``False`` only costs a recompute, never correctness.
    """
    if query.num_edges == 0:
        # Every vertex roots an edgeless query; locality gives nothing.
        return False
    ball = region.ball(query_diameter(query))
    if ball.size == 0:
        return True
    for graph in (old_graph, new_graph):
        roots = _root_set(graph, query, config)
        if np.intersect1d(roots, ball, assume_unique=True).size:
            return False
    return True


def incremental_match(
    matcher: object,
    query: CSRGraph,
    *,
    base_result: "MatchResult | int",
    delta: EdgeDelta,
    old_matcher: object | None = None,
    region: DirtyRegion | None = None,
    wall_limit_s: float | None = None,
) -> MatchResult:
    """Exact count on ``matcher.data`` (version N+1) from a base count
    on version N plus the commit delta — re-matching only the dirty
    ball.

    Parameters
    ----------
    matcher:
        A :class:`~repro.core.matcher.CuTSMatcher` bound to the child
        graph.
    base_result:
        The full result (or bare count) previously computed on the
        parent graph under the *same* config.
    old_matcher:
        Optional matcher bound to the parent graph (the registry keeps
        retired versions hot); reconstructed from the delta when absent.
    region:
        The commit's :class:`DirtyRegion`, shared across queries when
        given.

    Returns a count-only :class:`MatchResult` whose cost/stats cover
    only the incremental work — the figure the benchmark compares
    against the full re-match.
    """
    from ..core.matcher import CuTSMatcher

    if query.num_vertices == 0:
        raise ValueError("query graph must have at least one vertex")
    if query.num_edges == 0:
        raise IncrementalUnsupported(
            "edgeless queries have no locality; run a full match"
        )
    base_count = (
        base_result.count
        if isinstance(base_result, MatchResult)
        else int(base_result)
    )
    if delta.is_empty:
        raise IncrementalUnsupported("empty delta; the base result stands")
    if region is None:
        region = dirty_region_for(matcher.data, delta)  # type: ignore[attr-defined]
    ball = region.ball(query_diameter(query))
    if old_matcher is None:
        old_matcher = CuTSMatcher(
            parent_graph_of(matcher.data, delta),  # type: ignore[attr-defined]
            matcher.config,  # type: ignore[attr-defined]
        )
    old_share = old_matcher.match(  # type: ignore[attr-defined]
        query, root_filter=ball, wall_limit_s=wall_limit_s
    )
    new_share = matcher.match(  # type: ignore[attr-defined]
        query, root_filter=ball, wall_limit_s=wall_limit_s
    )
    count = base_count - old_share.count + new_share.count
    if count < 0:
        raise IncrementalMismatchError(
            f"incremental count went negative ({base_count} - "
            f"{old_share.count} + {new_share.count}): the base result "
            f"does not belong to this lineage"
        )
    cost = CostModel(matcher.config.device)  # type: ignore[attr-defined]
    cost.merge(old_share.cost)
    cost.merge(new_share.cost)
    stats = SearchStats()
    stats.merge(old_share.stats)
    stats.merge(new_share.stats)
    return MatchResult(
        count=count,
        matches=None,
        time_ms=old_share.time_ms + new_share.time_ms,
        cost=cost,
        stats=stats,
        order=new_share.order,
    )
