"""Normalised edge deltas between graph versions.

An :class:`EdgeDelta` is the *only* way content moves between two
versions of a data graph: a set of directed edge insertions plus a set
of directed edge deletions, normalised against the parent so that
application is total — every delete names an edge the parent has, every
insert an edge it lacks, the two sets are disjoint, and self-loops and
duplicates are gone.  Normalisation happens once, in :meth:`build`;
everything downstream (the overlay splice, the dirty-ball BFS, the
journal codec) relies on it and fails loudly instead of re-checking.

Deltas are content-addressed like graphs and configs: two mutation
requests that reduce to the same normalised edge sets have the same
:meth:`fingerprint`, which is what the version journal records.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph, INDEX_DTYPE

__all__ = ["DeltaError", "EdgeDelta"]


class DeltaError(ValueError):
    """An edge delta failed normalisation (bad ids, insert/delete clash)."""


def _as_edge_array(edges: object) -> np.ndarray:
    arr = np.asarray(
        list(edges) if not isinstance(edges, np.ndarray) else edges
    )
    if arr.size == 0:
        return np.zeros((0, 2), dtype=INDEX_DTYPE)
    try:
        arr = arr.reshape(-1, 2).astype(INDEX_DTYPE, copy=False)
    except (ValueError, TypeError) as exc:
        raise DeltaError(f"edges must be (u, v) pairs: {exc}") from exc
    if arr.min() < 0:
        raise DeltaError(
            f"vertex ids must be non-negative, got {int(arr.min())}"
        )
    arr = arr[arr[:, 0] != arr[:, 1]]  # self-loops can never match
    if arr.size == 0:
        return np.zeros((0, 2), dtype=INDEX_DTYPE)
    return np.unique(arr, axis=0)


def _existing_mask(graph: CSRGraph, edges: np.ndarray) -> np.ndarray:
    """Which of ``edges`` are present in ``graph`` (out of range = absent)."""
    if len(edges) == 0:
        return np.zeros(0, dtype=bool)
    in_range = (edges[:, 0] < graph.num_vertices) & (
        edges[:, 1] < graph.num_vertices
    )
    mask = np.zeros(len(edges), dtype=bool)
    if in_range.any():
        sub = edges[in_range]
        mask[in_range] = graph.has_edges(sub[:, 0], sub[:, 1])
    return mask


@dataclass(frozen=True)
class EdgeDelta:
    """A normalised directed edge delta (see module docstring).

    Attributes
    ----------
    inserts, deletes:
        ``(K, 2)`` int64 arrays, lexicographically sorted, deduplicated,
        loop-free, mutually disjoint; every delete exists in the parent,
        every insert does not.
    num_vertices:
        Vertex count of the **child** graph: the parent's, grown to
        cover any inserted endpoint beyond it.
    """

    inserts: np.ndarray = field(repr=False)
    deletes: np.ndarray = field(repr=False)
    num_vertices: int

    @classmethod
    def build(
        cls,
        inserts: object = (),
        deletes: object = (),
        *,
        parent: CSRGraph,
        directed: bool = True,
    ) -> "EdgeDelta":
        """Normalise raw insert/delete edge lists against ``parent``.

        ``directed=False`` expands every pair ``(u, v)`` to both
        orientations first (the §2.1 undirected convention the graph
        builders use).  Inserts the parent already has and deletes it
        lacks are dropped as no-ops; an edge named on **both** sides is
        ambiguous and raises :class:`DeltaError`.
        """
        ins = _as_edge_array(inserts)
        dels = _as_edge_array(deletes)
        if not directed:
            if len(ins):
                ins = np.unique(
                    np.concatenate([ins, ins[:, ::-1]], axis=0), axis=0
                )
            if len(dels):
                dels = np.unique(
                    np.concatenate([dels, dels[:, ::-1]], axis=0), axis=0
                )
        if len(ins) and len(dels):
            width = np.int64(
                max(parent.num_vertices, int(ins.max()) + 1, int(dels.max()) + 1)
            )
            clash = np.intersect1d(
                ins[:, 0] * width + ins[:, 1],
                dels[:, 0] * width + dels[:, 1],
            )
            if clash.size:
                u, v = int(clash[0] // width), int(clash[0] % width)
                raise DeltaError(
                    f"edge ({u}, {v}) appears in both inserts and deletes"
                )
        if len(dels):
            present = _existing_mask(parent, dels)
            dels = dels[present]  # deleting a missing edge is a no-op
        if len(ins):
            ins = ins[~_existing_mask(parent, ins)]  # re-insert is a no-op
        n = parent.num_vertices
        if len(ins):
            n = max(n, int(ins.max()) + 1)
        return cls(inserts=ins, deletes=dels, num_vertices=n)

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return len(self.inserts) == 0 and len(self.deletes) == 0

    def touched(self) -> np.ndarray:
        """Sorted unique endpoints of every changed edge — the seeds of
        the dirty-ball BFS."""
        parts = [self.inserts.ravel(), self.deletes.ravel()]
        return np.unique(np.concatenate(parts)).astype(INDEX_DTYPE)

    def fingerprint(self) -> str:
        """SHA-256 over the normalised edge sets (content address)."""
        h = hashlib.sha256()
        h.update(f"n={self.num_vertices};".encode("ascii"))
        h.update(b"ins:")
        h.update(np.ascontiguousarray(self.inserts, dtype=np.int64).tobytes())
        h.update(b"del:")
        h.update(np.ascontiguousarray(self.deletes, dtype=np.int64).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        """JSON-safe form for the version journal and the HTTP surface."""
        return {
            "inserts": self.inserts.tolist(),
            "deletes": self.deletes.tolist(),
            "num_vertices": self.num_vertices,
        }

    @classmethod
    def from_json(cls, record: dict[str, object]) -> "EdgeDelta":
        ins = np.asarray(record["inserts"], dtype=INDEX_DTYPE).reshape(-1, 2)
        dels = np.asarray(record["deletes"], dtype=INDEX_DTYPE).reshape(-1, 2)
        return cls(
            inserts=ins, deletes=dels,
            num_vertices=int(record["num_vertices"]),  # type: ignore[arg-type]
        )
