"""Versioned, mutable data graphs.

This package turns the engine's immutable data graphs into
content-addressed *version chains*: an edge delta applied to version N
yields version N+1 with its own fingerprint, the parent stays servable
(time travel via ``as_of``), and the commit carries enough structure —
the normalised :class:`EdgeDelta` and its dirty BFS ball — to promote
unaffected cached results across the commit and to re-match only the
dirty region (:func:`incremental_match`), with the full re-match as the
standing equivalence oracle.

Layering: the raw CSR splice lives in :mod:`repro.storage.overlay`
(a data-structure kernel); this package owns the *policy* — delta
normalisation, lineage records, locality reasoning — and
:mod:`repro.service` wires it to the registry, caches and HTTP surface.
"""

from .delta import DeltaError, EdgeDelta
from .dirty import DirtyRegion, query_diameter, undirected_neighbors
from .incremental import (
    IncrementalMismatchError,
    IncrementalUnsupported,
    dirty_region_for,
    incremental_match,
    parent_graph_of,
    promotion_safe,
    union_graph_of,
)
from .lineage import (
    GraphVersion,
    recover_chains,
    version_from_record,
    version_record,
)

__all__ = [
    "DeltaError",
    "DirtyRegion",
    "EdgeDelta",
    "GraphVersion",
    "IncrementalMismatchError",
    "IncrementalUnsupported",
    "dirty_region_for",
    "incremental_match",
    "parent_graph_of",
    "promotion_safe",
    "query_diameter",
    "recover_chains",
    "undirected_neighbors",
    "union_graph_of",
    "version_from_record",
    "version_record",
]
