"""Kernel-trace analysis: the Nsight per-kernel timeline view.

Enable tracing on a cost model (``cost.enable_trace()``, or
``CuTSConfig(trace_kernels=True)`` on the engine) and every simulated
launch is retained as a :class:`~repro.gpusim.kernel.KernelLaunch`.
This module aggregates a trace into the reports a profiler would show:
per-kernel-name totals, the hottest launches, and the
compute-vs-memory-bound split.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernel import KernelLaunch

__all__ = ["KernelGroupStats", "group_by_kernel", "hottest_launches", "bound_split", "format_trace_report"]


@dataclass(frozen=True)
class KernelGroupStats:
    """Aggregated statistics for one kernel name."""

    name: str
    launches: int
    total_cycles: float
    total_items: int
    mean_imbalance: float
    memory_bound_launches: int

    @property
    def cycles_per_launch(self) -> float:
        return self.total_cycles / self.launches if self.launches else 0.0


def group_by_kernel(trace: list[KernelLaunch]) -> list[KernelGroupStats]:
    """Aggregate a trace by kernel name, sorted by total cycles desc."""
    groups: dict[str, list[KernelLaunch]] = {}
    for launch in trace:
        groups.setdefault(launch.name, []).append(launch)
    out = []
    for name, launches in groups.items():
        out.append(
            KernelGroupStats(
                name=name,
                launches=len(launches),
                total_cycles=sum(rec.cycles for rec in launches),
                total_items=sum(rec.num_items for rec in launches),
                mean_imbalance=(
                    sum(rec.imbalance for rec in launches) / len(launches)
                ),
                memory_bound_launches=sum(
                    1 for rec in launches if rec.memory_cycles > rec.compute_cycles
                ),
            )
        )
    out.sort(key=lambda g: -g.total_cycles)
    return out


def hottest_launches(
    trace: list[KernelLaunch], top_k: int = 10
) -> list[KernelLaunch]:
    """The ``top_k`` launches by cycle cost."""
    return sorted(trace, key=lambda rec: -rec.cycles)[:top_k]


def bound_split(trace: list[KernelLaunch]) -> tuple[float, float]:
    """Fraction of total cycles spent in (memory-bound, compute-bound)
    launches.  The paper calls subgraph isomorphism memory-bound; this is
    how the model exhibits it."""
    total = sum(rec.cycles for rec in trace)
    if total == 0:
        return (0.0, 0.0)
    mem = sum(rec.cycles for rec in trace if rec.memory_cycles > rec.compute_cycles)
    return (mem / total, (total - mem) / total)


def format_trace_report(trace: list[KernelLaunch]) -> str:
    """Fixed-width per-kernel summary (profiler style)."""
    groups = group_by_kernel(trace)
    header = (
        f"{'kernel':<24}{'launches':>9}{'cycles':>14}{'items':>12}"
        f"{'imbal':>8}{'mem-bound':>10}"
    )
    lines = [header, "-" * len(header)]
    for g in groups:
        lines.append(
            f"{g.name:<24}{g.launches:>9}{g.total_cycles:>14.0f}"
            f"{g.total_items:>12}{g.mean_imbalance:>8.2f}"
            f"{g.memory_bound_launches:>10}"
        )
    mem_frac, comp_frac = bound_split(trace)
    lines.append(
        f"cycles split: {mem_frac:.0%} memory-bound / {comp_frac:.0%} compute-bound"
    )
    return "\n".join(lines)
