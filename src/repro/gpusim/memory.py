"""Simulated device-memory manager.

Tracks named allocations against a :class:`~repro.gpusim.device.DeviceSpec`
capacity and raises :class:`DeviceOOMError` when an allocation cannot be
satisfied — the signal that turns into a "-" (failed case) entry in the
Table 3 reproduction, exactly as real GSI runs die with cudaMalloc /
kernel-launch failures.

``free_words`` is the ``cudaMemGetInfo`` analogue the paper uses to size
the trie arrays ("two big arrays whose size equals half of the free space
available in the GPU", §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceSpec

__all__ = ["DeviceOOMError", "DeviceMemory"]


class DeviceOOMError(MemoryError):
    """Raised when a simulated device allocation exceeds free memory."""

    def __init__(self, requested: int, free: int, label: str) -> None:
        super().__init__(
            f"device OOM allocating {requested} words for {label!r} "
            f"({free} words free)"
        )
        self.requested = requested
        self.free = free
        self.label = label


@dataclass
class DeviceMemory:
    """Allocation ledger for one simulated device."""

    spec: DeviceSpec
    allocations: dict[str, int] = field(default_factory=dict)
    peak_words: int = 0

    @property
    def capacity_words(self) -> int:
        return self.spec.memory_words

    @property
    def used_words(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_words(self) -> int:
        """The ``cudaMemGetInfo`` analogue."""
        return self.capacity_words - self.used_words

    def alloc(self, label: str, words: int) -> None:
        """Allocate ``words`` under ``label``; grows an existing label.

        Raises
        ------
        DeviceOOMError
            If the allocation does not fit in free memory.
        """
        if words < 0:
            raise ValueError("allocation size must be non-negative")
        if words > self.free_words:
            raise DeviceOOMError(words, self.free_words, label)
        self.allocations[label] = self.allocations.get(label, 0) + words
        self.peak_words = max(self.peak_words, self.used_words)

    def resize(self, label: str, words: int) -> None:
        """Set ``label``'s allocation to exactly ``words``."""
        if words < 0:
            raise ValueError("allocation size must be non-negative")
        current = self.allocations.get(label, 0)
        grow = words - current
        if grow > self.free_words:
            raise DeviceOOMError(grow, self.free_words, label)
        if words == 0:
            self.allocations.pop(label, None)
        else:
            self.allocations[label] = words
        self.peak_words = max(self.peak_words, self.used_words)

    def free(self, label: str) -> None:
        """Release an allocation (no-op if absent)."""
        self.allocations.pop(label, None)

    def reset(self) -> None:
        """Release everything (keeps the peak statistic)."""
        self.allocations.clear()
