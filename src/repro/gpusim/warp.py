"""Warp, virtual-warp, and work-scheduling models.

Paper §4.1.2: assigning one hardware warp per partial path wastes lanes on
low-degree graphs, so cuTS processes paths with **virtual warps** whose
width is chosen from the average degree; paths are distributed across
workers with the grid-stride pattern ``for (m = start; m < N; m +=
workers)``.  This module reproduces those mechanisms:

* :func:`select_virtual_warp_size` — the width heuristic;
* :func:`strided_worker_loads` — per-worker cycle totals for the static
  strided distribution (this is where intra-warp/intra-block imbalance
  shows up, and why the paper shuffles path placement);
* :func:`bin_paths_by_work` — the *rejected* binning strategy, kept for
  the ablation benchmark;
* :func:`idle_lane_cycles` — wasted lanes for a given warp width vs the
  real work widths.
"""

from __future__ import annotations

import numpy as np

from .device import DeviceSpec

__all__ = [
    "select_virtual_warp_size",
    "strided_worker_loads",
    "shuffled_worker_loads",
    "load_imbalance",
    "bin_paths_by_work",
    "idle_lane_cycles",
    "device_worker_count",
]


def select_virtual_warp_size(average_degree: float, warp_size: int = 32) -> int:
    """Virtual-warp width from the data graph's average degree.

    The paper sizes virtual warps "determined by the average degree of the
    node": round the average degree up to the next power of two, clamped
    to ``[2, warp_size]`` (one lane is never a warp; more than a hardware
    warp cannot be a sub-warp).
    """
    if average_degree < 0:
        raise ValueError("average_degree must be non-negative")
    width = 2
    while width < average_degree and width < warp_size:
        width <<= 1
    return min(width, warp_size)


def strided_worker_loads(
    costs: np.ndarray,
    num_workers: int,
    owners: np.ndarray | None = None,
) -> np.ndarray:
    """Per-worker totals of the grid-stride static schedule.

    Item ``m`` goes to worker ``m % num_workers`` (the kernel's
    ``start/stride`` loop).  Returns an array of length
    ``min(num_workers, ...)`` with each worker's summed cost.

    ``owners`` may carry a precomputed ``arange(len(costs)) %
    num_workers`` (or any prefix-compatible superset of it) so hot
    callers launching many small kernels skip rebuilding the identical
    ownership vector on every call; the schedule is unchanged.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return np.zeros(num_workers, dtype=np.float64)
    if owners is None:
        owners = np.arange(costs.size, dtype=np.int64) % num_workers
    else:
        owners = owners[: costs.size]
    return np.bincount(owners, weights=costs, minlength=num_workers)


def shuffled_worker_loads(
    costs: np.ndarray,
    num_workers: int,
    rng: np.random.Generator,
    owners: np.ndarray | None = None,
) -> np.ndarray:
    """Strided schedule after randomised path placement.

    The paper's fix for the id-order clustering artifact: "We randomized
    the partial path placement, and this simple strategy helped us achieve
    good intra-warp and intra thread block load balance."
    """
    costs = np.asarray(costs, dtype=np.float64)
    return strided_worker_loads(rng.permutation(costs), num_workers, owners)


def load_imbalance(worker_loads: np.ndarray) -> float:
    """Max-over-mean imbalance of a schedule (1.0 = perfectly balanced)."""
    loads = np.asarray(worker_loads, dtype=np.float64)
    if loads.size == 0:
        return 1.0
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def bin_paths_by_work(work: np.ndarray, warp_size: int = 32) -> dict[int, np.ndarray]:
    """The binning strategy cuTS evaluated and rejected (§4.1.2).

    Groups path indices into power-of-two work bins; bin ``w`` would be
    processed by virtual warps of width ``w``.  Kept for the ablation
    benchmark that shows why a single adaptive width won.
    """
    work = np.asarray(work, dtype=np.int64)
    bins: dict[int, np.ndarray] = {}
    if work.size == 0:
        return bins
    width = np.ones_like(work)
    clipped = np.clip(work, 1, warp_size)
    # Round each item's work up to a power of two <= warp_size.
    width = 2 ** np.ceil(np.log2(clipped)).astype(np.int64)
    width = np.clip(width, 1, warp_size)
    for w in np.unique(width):
        bins[int(w)] = np.nonzero(width == w)[0].astype(np.int64)
    return bins


def idle_lane_cycles(
    work_widths: np.ndarray, virtual_warp_size: int
) -> int:
    """Lane-cycles idle when items of the given work widths run on
    virtual warps of fixed width.

    An item touching ``w`` elements occupies ``ceil(w / vw)`` virtual-warp
    steps of ``vw`` lanes; the idle portion is ``steps * vw - w``.
    """
    if virtual_warp_size <= 0:
        raise ValueError("virtual_warp_size must be positive")
    w = np.asarray(work_widths, dtype=np.int64)
    if w.size == 0:
        return 0
    steps = np.ceil(np.maximum(w, 1) / virtual_warp_size)
    return int((steps * virtual_warp_size - w).sum())


def device_worker_count(
    device: DeviceSpec, virtual_warp_size: int, occupancy: float = 1.0
) -> int:
    """Concurrent virtual-warp count at the given occupancy."""
    if not 0.0 < occupancy <= 1.0:
        raise ValueError("occupancy must be in (0, 1]")
    return max(1, int(device.virtual_warp_capacity(virtual_warp_size) * occupancy))
