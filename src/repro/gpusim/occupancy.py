"""Occupancy calculation (§2.2.3).

The paper's performance-factors discussion: "Occupancy ... is defined as
the ratio of the active threads to the maximum number of threads that an
SMP can support (1024 or 2048 in modern GPUs) ... affected by
shared-memory usage, register usage, and thread block size.  Holding
more data in shared memory ... allows better data reuse; however, this
may reduce the occupancy."

:func:`occupancy` reproduces the standard calculator: resident blocks
per SM are limited by the thread budget, the shared-memory budget, the
register file, and the hardware block slots; occupancy is the resulting
active-warp fraction.  The shared-memory-vs-occupancy trade-off benchmark
uses it to quantify the §2.2.3 tension for the intersection buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["OccupancyResult", "occupancy", "max_shared_words_for_full_occupancy"]

MAX_BLOCKS_PER_SM = 32
REGISTER_FILE_PER_SM = 65_536


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel config."""

    blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    limiter: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.occupancy:.0%} ({self.active_warps_per_sm} warps/SM, "
            f"limited by {self.limiter})"
        )


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    shared_words_per_block: int = 0,
    registers_per_thread: int = 32,
) -> OccupancyResult:
    """Active-warp occupancy for a kernel configuration.

    Parameters
    ----------
    device:
        The simulated device.
    threads_per_block:
        Launch block size (must be a positive multiple of the warp size
        to avoid padding waste; non-multiples are rounded up to whole
        warps, as hardware does).
    shared_words_per_block:
        Shared-memory words each block allocates (e.g. the intersection
        buffer of §4.1.3's c-kernel).
    registers_per_thread:
        Register footprint per thread.
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if shared_words_per_block < 0 or registers_per_thread < 0:
        raise ValueError("resource usage must be non-negative")
    warps_per_block = -(-threads_per_block // device.warp_size)
    max_warps = device.max_warps_per_sm

    limits: dict[str, int] = {}
    limits["threads"] = max_warps // warps_per_block
    limits["block_slots"] = MAX_BLOCKS_PER_SM
    if shared_words_per_block > 0:
        limits["shared_memory"] = (
            device.shared_words_per_sm // shared_words_per_block
        )
    if registers_per_thread > 0:
        regs_per_block = registers_per_thread * warps_per_block * device.warp_size
        limits["registers"] = REGISTER_FILE_PER_SM // regs_per_block

    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    active_warps = min(blocks * warps_per_block, max_warps)
    return OccupancyResult(
        blocks_per_sm=blocks,
        active_warps_per_sm=active_warps,
        occupancy=active_warps / max_warps,
        limiter=limiter if blocks * warps_per_block <= max_warps else "threads",
    )


def max_shared_words_for_full_occupancy(
    device: DeviceSpec, threads_per_block: int, registers_per_thread: int = 32
) -> int:
    """Largest per-block shared allocation that keeps occupancy at 1.0.

    The §2.2.3 design question for the intersection buffer: how big may
    the shared-memory tile grow before it starts evicting resident
    blocks?
    """
    warps_per_block = -(-threads_per_block // device.warp_size)
    blocks_needed = -(-device.max_warps_per_sm // warps_per_block)
    return device.shared_words_per_sm // blocks_needed
