"""Hardware-event counters: the Nsight-Compute analogue.

Every matcher in this reproduction (cuTS core and the GSI baseline)
charges its data movement, shared-memory traffic, atomics and executed
instructions to a :class:`CostModel`.  The paper's §6.3 performance
explanation is phrased entirely in these counters ("200x lower DRAM read
traffic", "34x lower shared-memory writes", "2x lower atomics", "7x lower
instructions"), so preserving the *ratios* of these counters preserves the
paper's result shape.

Modeled kernel time is produced by :mod:`repro.gpusim.kernel` from the
counters plus the strided-schedule worker loads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from .device import DeviceSpec

__all__ = ["CostModel"]


@dataclass
class CostModel:
    """Accumulated hardware events for one device's kernels."""

    device: DeviceSpec
    dram_read_words: int = 0
    dram_write_words: int = 0
    dram_read_transactions: int = 0
    dram_write_transactions: int = 0
    shared_read_words: int = 0
    shared_write_words: int = 0
    atomic_ops: int = 0
    instructions: int = 0
    idle_lane_cycles: int = 0
    kernel_launches: int = 0
    cycles: float = 0.0
    trace: list | None = field(default=None, compare=False)

    def enable_trace(self) -> None:
        """Start retaining per-launch records (see repro.gpusim.trace)."""
        if self.trace is None:
            self.trace = []

    # ------------------------------------------------------------------
    # Charging interface
    # ------------------------------------------------------------------
    def charge_dram_read(self, words: int, *, segments: int = 1) -> None:
        """Charge a DRAM read of ``words`` spread over ``segments``
        contiguous runs.

        A contiguous run of ``w`` words costs ``ceil(w / 32)`` coalesced
        transactions; reading many scattered short segments (e.g. one
        adjacency list per virtual warp) costs at least one transaction
        per segment — which is how uncoalesced access shows up.
        """
        if words < 0 or segments < 0:
            raise ValueError("words and segments must be non-negative")
        if words == 0:
            return
        segments = max(1, segments)
        tw = self.device.transaction_words
        per_segment = words / segments
        txn = segments * max(1, math.ceil(per_segment / tw))
        self.dram_read_words += words
        self.dram_read_transactions += txn

    def charge_dram_write(self, words: int, *, segments: int = 1) -> None:
        """DRAM write; same coalescing rule as :meth:`charge_dram_read`."""
        if words < 0 or segments < 0:
            raise ValueError("words and segments must be non-negative")
        if words == 0:
            return
        segments = max(1, segments)
        tw = self.device.transaction_words
        per_segment = words / segments
        txn = segments * max(1, math.ceil(per_segment / tw))
        self.dram_write_words += words
        self.dram_write_transactions += txn

    def charge_shared(self, *, reads: int = 0, writes: int = 0) -> None:
        """Shared-memory (programmable cache) traffic in words."""
        if reads < 0 or writes < 0:
            raise ValueError("shared traffic must be non-negative")
        self.shared_read_words += reads
        self.shared_write_words += writes

    def charge_atomics(self, count: int) -> None:
        """Atomic operations (slot claiming in the trie is 1 per flush)."""
        if count < 0:
            raise ValueError("atomic count must be non-negative")
        self.atomic_ops += count

    def charge_instructions(self, count: int) -> None:
        """Executed (useful) SASS-instruction analogue."""
        if count < 0:
            raise ValueError("instruction count must be non-negative")
        self.instructions += count

    def charge_idle_lanes(self, lane_cycles: int) -> None:
        """Lane-cycles wasted to divergence / thread idling."""
        if lane_cycles < 0:
            raise ValueError("idle lane cycles must be non-negative")
        self.idle_lane_cycles += lane_cycles

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_dram_words(self) -> int:
        return self.dram_read_words + self.dram_write_words

    @property
    def time_ms(self) -> float:
        """Modeled kernel time for all accumulated cycles."""
        return self.device.cycles_to_ms(self.cycles)

    _NON_COUNTERS = ("device", "trace")

    def snapshot(self) -> dict[str, float]:
        """All counters as a plain dict (for metric reports)."""
        out: dict[str, float] = {}
        for f in fields(self):
            if f.name in self._NON_COUNTERS:
                continue
            out[f.name] = getattr(self, f.name)
        out["time_ms"] = self.time_ms
        return out

    def merge(self, other: "CostModel") -> None:
        """Accumulate another cost model's counters into this one;
        traces are concatenated when both sides retain them."""
        for f in fields(self):
            if f.name in self._NON_COUNTERS:
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        if self.trace is not None and other.trace is not None:
            self.trace.extend(other.trace)

    def reset(self) -> None:
        """Zero all counters (an enabled trace is emptied, not disabled)."""
        for f in fields(self):
            if f.name in self._NON_COUNTERS:
                continue
            setattr(self, f.name, 0.0 if f.name == "cycles" else 0)
        if self.trace is not None:
            self.trace.clear()
