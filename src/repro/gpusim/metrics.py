"""Nsight-Compute-style metric reports.

The paper's §6.3 attributes the cuTS speedup to counter ratios measured
with Nvidia Nsight Compute (DRAM traffic, shared-memory traffic, atomics,
instructions).  :func:`compare_counters` renders the same comparison for
two :class:`~repro.gpusim.cost.CostModel` snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost import CostModel

__all__ = ["MetricRatio", "compare_counters", "format_metric_report"]

_REPORTED = (
    "dram_read_words",
    "dram_write_words",
    "dram_read_transactions",
    "dram_write_transactions",
    "shared_read_words",
    "shared_write_words",
    "atomic_ops",
    "instructions",
    "idle_lane_cycles",
    "kernel_launches",
    "cycles",
    "time_ms",
)


@dataclass(frozen=True)
class MetricRatio:
    """One counter compared across two implementations."""

    metric: str
    baseline: float
    ours: float

    @property
    def reduction(self) -> float:
        """baseline / ours — "Nx lower" in the paper's phrasing."""
        if self.ours == 0:
            return float("inf") if self.baseline > 0 else 1.0
        return self.baseline / self.ours


def compare_counters(baseline: CostModel, ours: CostModel) -> list[MetricRatio]:
    """Compare every reported counter of two cost models."""
    b = baseline.snapshot()
    o = ours.snapshot()
    return [MetricRatio(m, float(b[m]), float(o[m])) for m in _REPORTED]


def format_metric_report(
    ratios: list[MetricRatio],
    baseline_name: str = "GSI",
    ours_name: str = "cuTS",
) -> str:
    """Render a fixed-width text table of counter reductions."""
    header = f"{'metric':<28}{baseline_name:>16}{ours_name:>16}{'reduction':>12}"
    lines = [header, "-" * len(header)]
    for r in ratios:
        red = "inf" if r.reduction == float("inf") else f"{r.reduction:.2f}x"
        lines.append(
            f"{r.metric:<28}{r.baseline:>16.3g}{r.ours:>16.3g}{red:>12}"
        )
    return "\n".join(lines)
