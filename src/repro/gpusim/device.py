"""Simulated GPU device specifications.

The reproduction has no CUDA device, so "kernel time" is produced by a
deterministic cost model (see :mod:`repro.gpusim.cost`).  A
:class:`DeviceSpec` carries the architecture parameters that model uses:
SM count and clock (taken from the paper's V100/A100 machines), warp
width, memory-transaction width, DRAM bandwidth, and the device-memory
capacity in 4-byte words.

Capacities are **scaled** relative to the real cards: the synthetic data
graphs are ~1/40th the size of the SNAP originals, and intermediate-result
growth is what produces the paper's out-of-memory failures, so the default
capacities are chosen to keep the cuTS-vs-GSI OOM behaviour in the same
regime (GSI dies on the hard cases, cuTS + chunking survives).  The
V100:A100 ratio (32 GB : 40 GB) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "V100", "A100", "scaled_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architecture parameters of a simulated GPU.

    Attributes
    ----------
    name:
        Display name, e.g. ``"V100-sim"``.
    num_sms:
        Streaming multiprocessor count (84 for the paper's V100 machine,
        108 for A100).
    clock_ghz:
        SM clock used to convert modeled cycles into milliseconds.
    warp_size:
        Hardware warp width (32).
    max_warps_per_sm:
        Resident-warp capacity per SM (64 on Volta/Ampere ⇒ 2048 threads).
    transaction_words:
        Words per coalesced memory transaction (128 B / 4 B = 32).
    dram_words_per_cycle:
        Aggregate DRAM bandwidth in words per SM-clock cycle.
    memory_words:
        Device global-memory capacity in words (scaled, see module doc).
    shared_words_per_sm:
        Shared-memory capacity per SM in words.
    """

    name: str
    num_sms: int
    clock_ghz: float
    warp_size: int = 32
    max_warps_per_sm: int = 64
    transaction_words: int = 32
    dram_words_per_cycle: float = 160.0
    memory_words: int = 1 << 23
    shared_words_per_sm: int = 24_576  # 96 KiB / 4 B

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError("warp_size must be a positive power of two")
        if self.memory_words <= 0:
            raise ValueError("memory_words must be positive")

    @property
    def max_resident_warps(self) -> int:
        """Device-wide resident warp capacity."""
        return self.num_sms * self.max_warps_per_sm

    def virtual_warp_capacity(self, virtual_warp_size: int) -> int:
        """How many virtual warps of the given width run concurrently.

        A virtual warp is a sub-warp slice (paper §4.1.2); ``warp_size //
        vw`` of them pack into one hardware warp.
        """
        if virtual_warp_size <= 0:
            raise ValueError("virtual_warp_size must be positive")
        vw = min(virtual_warp_size, self.warp_size)
        return self.max_resident_warps * (self.warp_size // vw)

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert modeled SM cycles to milliseconds."""
        return cycles / (self.clock_ghz * 1e6)


V100 = DeviceSpec(
    name="V100-sim",
    num_sms=84,  # paper's V100 machine reports 84 SMs
    clock_ghz=1.38,
    dram_words_per_cycle=160.0,  # ~900 GB/s at 1.38 GHz
    memory_words=1 << 23,  # scaled stand-in for 32 GB
)

A100 = DeviceSpec(
    name="A100-sim",
    num_sms=108,
    clock_ghz=1.41,
    dram_words_per_cycle=275.0,  # ~1.6 TB/s at 1.41 GHz
    memory_words=(1 << 23) + (1 << 21),  # 1.25x V100, preserving 32:40
)


def scaled_device(base: DeviceSpec, memory_words: int) -> DeviceSpec:
    """A copy of ``base`` with a different memory capacity.

    Experiments use this to sweep the memory budget (e.g. to locate the
    OOM crossover between cuTS and the GSI baseline).
    """
    return replace(base, memory_words=memory_words)
