"""Simulated GPU substrate: device specs, memory, cost model, kernels."""

from .cost import CostModel
from .device import A100, V100, DeviceSpec, scaled_device
from .kernel import LAUNCH_OVERHEAD_CYCLES, KernelLaunch, launch_kernel
from .memory import DeviceMemory, DeviceOOMError
from .metrics import MetricRatio, compare_counters, format_metric_report
from .occupancy import (
    OccupancyResult,
    max_shared_words_for_full_occupancy,
    occupancy,
)
from .trace import (
    KernelGroupStats,
    bound_split,
    format_trace_report,
    group_by_kernel,
    hottest_launches,
)
from .warp import (
    bin_paths_by_work,
    device_worker_count,
    idle_lane_cycles,
    load_imbalance,
    select_virtual_warp_size,
    shuffled_worker_loads,
    strided_worker_loads,
)

__all__ = [
    "DeviceSpec",
    "V100",
    "A100",
    "scaled_device",
    "DeviceMemory",
    "DeviceOOMError",
    "CostModel",
    "KernelLaunch",
    "launch_kernel",
    "LAUNCH_OVERHEAD_CYCLES",
    "MetricRatio",
    "compare_counters",
    "format_metric_report",
    "OccupancyResult",
    "occupancy",
    "max_shared_words_for_full_occupancy",
    "KernelGroupStats",
    "group_by_kernel",
    "hottest_launches",
    "bound_split",
    "format_trace_report",
    "select_virtual_warp_size",
    "strided_worker_loads",
    "shuffled_worker_loads",
    "load_imbalance",
    "bin_paths_by_work",
    "idle_lane_cycles",
    "device_worker_count",
]
