"""Kernel-launch timing model.

Converts the per-item work of one simulated kernel launch into cycles:

* **compute** — items are laid onto workers with the static strided
  schedule (or a shuffled one); the launch's compute time is the busiest
  worker's total, i.e. load imbalance directly lengthens the kernel
  exactly as it does on hardware;
* **memory** — the DRAM words the launch moves divided by device
  bandwidth (the memory-bound roofline; the paper stresses subgraph
  isomorphism is memory bound);
* a fixed launch overhead.

``cycles = overhead + max(compute, memory)`` is accumulated into the
:class:`~repro.gpusim.cost.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cost import CostModel
from .warp import strided_worker_loads

__all__ = ["KernelLaunch", "launch_kernel", "LAUNCH_OVERHEAD_CYCLES"]

LAUNCH_OVERHEAD_CYCLES = 2_000.0
"""Fixed per-launch overhead (driver + scheduling), in SM cycles."""


@dataclass(frozen=True)
class KernelLaunch:
    """Record of one simulated kernel launch."""

    name: str
    num_items: int
    num_workers: int
    compute_cycles: float
    memory_cycles: float
    imbalance: float

    @property
    def cycles(self) -> float:
        return LAUNCH_OVERHEAD_CYCLES + max(self.compute_cycles, self.memory_cycles)


def launch_kernel(
    cost: CostModel,
    name: str,
    item_cycles: np.ndarray,
    num_workers: int,
    dram_words: int,
    *,
    rng: np.random.Generator | None = None,
    owners: np.ndarray | None = None,
) -> KernelLaunch:
    """Simulate one kernel launch and charge its time to ``cost``.

    Parameters
    ----------
    cost:
        The cost model accumulating this device's activity.
    name:
        Kernel label (for traces).
    item_cycles:
        Per-item compute cost in cycles (one entry per partial path or
        candidate processed by the launch).
    num_workers:
        Concurrent (virtual-)warp count available to the launch.
    dram_words:
        DRAM words this launch moves (already charged to the counters by
        the caller; used here only for the bandwidth roofline).
    rng:
        If given, items are placed randomly before the strided schedule —
        the paper's randomized-placement optimisation.  If ``None`` the
        id-order static schedule is used.
    owners:
        Optional precomputed ownership vector (``arange(n) %
        num_workers`` or a prefix-compatible superset); purely a host
        fast path, the modeled schedule is identical.
    """
    item_cycles = np.asarray(item_cycles, dtype=np.float64)
    n_items = item_cycles.size
    if n_items <= num_workers:
        # At most one item per worker under the strided schedule: every
        # worker's load is a single item (or the zero pad), so the
        # busiest worker is the costliest item, the mean is
        # sum/workers, and randomised placement only permutes which
        # worker holds which single item — no observable changes.  The
        # worker-length load vector (and the shuffle draw it would
        # consume) is skipped entirely.
        if n_items:
            compute = float(item_cycles.max())
            if n_items < num_workers:
                compute = max(compute, 0.0)
            mean = float(item_cycles.sum()) / num_workers
        else:
            compute = 0.0
            mean = 0.0
    else:
        if rng is not None:
            # Randomised placement (the paper's fix for id-order
            # clustering): shuffle, then bin with the strided schedule.
            item_cycles = rng.permutation(item_cycles)
        loads = strided_worker_loads(item_cycles, num_workers, owners)
        compute = float(loads.max())
        mean = float(loads.sum()) / loads.size
    # Same values load_imbalance would produce on the binned loads.
    imbalance = compute / mean if mean != 0 else 1.0
    memory = dram_words / cost.device.dram_words_per_cycle
    launch = KernelLaunch(
        name=name,
        num_items=int(item_cycles.size),
        num_workers=num_workers,
        compute_cycles=compute,
        memory_cycles=memory,
        imbalance=imbalance,
    )
    cost.cycles += launch.cycles
    cost.kernel_launches += 1
    if cost.trace is not None:
        cost.trace.append(launch)
    return launch
