"""Kernel-launch timing model.

Converts the per-item work of one simulated kernel launch into cycles:

* **compute** — items are laid onto workers with the static strided
  schedule (or a shuffled one); the launch's compute time is the busiest
  worker's total, i.e. load imbalance directly lengthens the kernel
  exactly as it does on hardware;
* **memory** — the DRAM words the launch moves divided by device
  bandwidth (the memory-bound roofline; the paper stresses subgraph
  isomorphism is memory bound);
* a fixed launch overhead.

``cycles = overhead + max(compute, memory)`` is accumulated into the
:class:`~repro.gpusim.cost.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cost import CostModel
from .warp import load_imbalance, shuffled_worker_loads, strided_worker_loads

__all__ = ["KernelLaunch", "launch_kernel", "LAUNCH_OVERHEAD_CYCLES"]

LAUNCH_OVERHEAD_CYCLES = 2_000.0
"""Fixed per-launch overhead (driver + scheduling), in SM cycles."""


@dataclass(frozen=True)
class KernelLaunch:
    """Record of one simulated kernel launch."""

    name: str
    num_items: int
    num_workers: int
    compute_cycles: float
    memory_cycles: float
    imbalance: float

    @property
    def cycles(self) -> float:
        return LAUNCH_OVERHEAD_CYCLES + max(self.compute_cycles, self.memory_cycles)


def launch_kernel(
    cost: CostModel,
    name: str,
    item_cycles: np.ndarray,
    num_workers: int,
    dram_words: int,
    *,
    rng: np.random.Generator | None = None,
) -> KernelLaunch:
    """Simulate one kernel launch and charge its time to ``cost``.

    Parameters
    ----------
    cost:
        The cost model accumulating this device's activity.
    name:
        Kernel label (for traces).
    item_cycles:
        Per-item compute cost in cycles (one entry per partial path or
        candidate processed by the launch).
    num_workers:
        Concurrent (virtual-)warp count available to the launch.
    dram_words:
        DRAM words this launch moves (already charged to the counters by
        the caller; used here only for the bandwidth roofline).
    rng:
        If given, items are placed randomly before the strided schedule —
        the paper's randomized-placement optimisation.  If ``None`` the
        id-order static schedule is used.
    """
    item_cycles = np.asarray(item_cycles, dtype=np.float64)
    if rng is None:
        loads = strided_worker_loads(item_cycles, num_workers)
    else:
        loads = shuffled_worker_loads(item_cycles, num_workers, rng)
    compute = float(loads.max()) if loads.size else 0.0
    memory = dram_words / cost.device.dram_words_per_cycle
    launch = KernelLaunch(
        name=name,
        num_items=int(item_cycles.size),
        num_workers=num_workers,
        compute_cycles=compute,
        memory_cycles=memory,
        imbalance=load_imbalance(loads),
    )
    cost.cycles += launch.cycles
    cost.kernel_launches += 1
    if cost.trace is not None:
        cost.trace.append(launch)
    return launch
