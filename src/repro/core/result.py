"""Match results."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.cost import CostModel
from .stats import SearchStats

__all__ = ["MatchResult"]


@dataclass
class MatchResult:
    """Outcome of one subgraph-isomorphism search.

    Attributes
    ----------
    count:
        Number of monomorphism embeddings found (always exact).
    matches:
        ``(k, |V_Q|)`` matrix when materialisation was requested:
        ``matches[r, q]`` is the data vertex that query vertex ``q`` maps
        to in embedding ``r``.  ``None`` when counting only.  ``k`` may be
        smaller than ``count`` if ``max_materialized`` capped collection.
    time_ms:
        Modeled GPU kernel time (the paper's evaluation metric).
    cost:
        The full hardware-counter snapshot of the run.
    stats:
        Per-depth path counts, chunking activity, peak storage.
    order:
        The query-vertex sequence that was matched.
    """

    count: int
    matches: np.ndarray | None
    time_ms: float
    cost: CostModel
    stats: SearchStats = field(default_factory=SearchStats)
    order: tuple[int, ...] = ()

    def mappings(self) -> list[dict[int, int]]:
        """Materialised matches as query→data dictionaries."""
        if self.matches is None:
            raise ValueError("matches were not materialised (count-only run)")
        return [
            {q: int(row[q]) for q in range(len(row))} for row in self.matches
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchResult(count={self.count}, time_ms={self.time_ms:.3f}, "
            f"materialized={0 if self.matches is None else len(self.matches)})"
        )
