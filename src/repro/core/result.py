"""Match results."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.cost import CostModel
from .stats import SearchStats

__all__ = ["MatchResult"]


@dataclass
class MatchResult:
    """Outcome of one subgraph-isomorphism search.

    Attributes
    ----------
    count:
        Number of monomorphism embeddings found (always exact).
    matches:
        ``(k, |V_Q|)`` matrix when materialisation was requested:
        ``matches[r, q]`` is the data vertex that query vertex ``q`` maps
        to in embedding ``r``.  ``None`` when counting only.  ``k`` may be
        smaller than ``count`` if ``max_materialized`` capped collection.
    time_ms:
        Modeled GPU kernel time (the paper's evaluation metric).
    cost:
        The full hardware-counter snapshot of the run.
    stats:
        Per-depth path counts, chunking activity, peak storage.
    order:
        The query-vertex sequence that was matched.
    shards:
        Root-interval shard ids this result covers (sorted, unique).
        Empty for a whole-search result.  :meth:`merge` uses these to be
        **idempotent under duplicate shard delivery**: merging a result
        whose shards are already covered is a no-op, so a watchdog
        re-lease plus a slow original worker cannot double-count.
    """

    count: int
    matches: np.ndarray | None
    time_ms: float
    cost: CostModel
    stats: SearchStats = field(default_factory=SearchStats)
    order: tuple[int, ...] = ()
    shards: tuple[int, ...] = ()

    def merge(
        self, other: "MatchResult", *, max_materialized: int | None = None
    ) -> "MatchResult":
        """Associative reduction over root-interval shards.

        The level-0 candidate intervals partition the search tree, so
        interval results combine losslessly: counts **sum**, materialised
        rows **concatenate** (truncated to ``max_materialized`` — prefix
        truncation keeps the reduction associative), hardware counters
        sum via :meth:`CostModel.merge`, per-depth stats fold via
        :meth:`SearchStats.merge`.  ``time_ms`` takes the **max** of the
        two sides, modeling intervals running on concurrent devices (the
        merged ``cost.time_ms`` is the serial sum; the field models the
        makespan).

        Both sides must agree on materialisation (both ``matches is
        None`` or neither) and on the matching order.

        When both sides carry shard ids, the merge **dedupes by shard**:
        if every shard of ``other`` is already covered by ``self`` the
        merge returns ``self`` unchanged (duplicate delivery of a
        re-leased interval); a *partial* overlap is a protocol error and
        raises ``ValueError``.
        """
        if self.shards and other.shards:
            mine, theirs = set(self.shards), set(other.shards)
            overlap = mine & theirs
            if overlap == theirs:
                return self
            if overlap:
                raise ValueError(
                    f"cannot merge partially-overlapping shard sets: "
                    f"{sorted(overlap)} delivered twice"
                )
        if (self.matches is None) != (other.matches is None):
            raise ValueError(
                "cannot merge a materialised result with a count-only one"
            )
        if self.order and other.order and self.order != other.order:
            raise ValueError(
                f"cannot merge results with different matching orders: "
                f"{self.order} != {other.order}"
            )
        matches = None
        if self.matches is not None and other.matches is not None:
            matches = np.concatenate([self.matches, other.matches], axis=0)
            if max_materialized is not None and len(matches) > max_materialized:
                matches = matches[:max_materialized]
        cost = CostModel(self.cost.device)
        cost.merge(self.cost)
        cost.merge(other.cost)
        stats = SearchStats()
        stats.merge(self.stats)
        stats.merge(other.stats)
        return MatchResult(
            count=self.count + other.count,
            matches=matches,
            time_ms=max(self.time_ms, other.time_ms),
            cost=cost,
            stats=stats,
            order=self.order or other.order,
            shards=tuple(sorted({*self.shards, *other.shards})),
        )

    def mappings(self) -> list[dict[int, int]]:
        """Materialised matches as query→data dictionaries."""
        if self.matches is None:
            raise ValueError("matches were not materialised (count-only run)")
        return [
            {q: int(row[q]) for q in range(len(row))} for row in self.matches
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchResult(count={self.count}, time_ms={self.time_ms:.3f}, "
            f"materialized={0 if self.matches is None else len(self.matches)})"
        )
