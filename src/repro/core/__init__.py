"""cuTS core: ordering, candidates, intersections, the fused matcher."""

from .candidates import degree_filter_mask, root_candidates
from .config import CuTSConfig
from .estimate import (
    ComplexityEstimate,
    estimate_path_counts,
    fit_branching_factor,
    gpu_complexity,
    multi_gpu_complexity,
    predict_vs_measured,
    sequential_complexity,
    upper_bound_counts,
)
from .intersect import (
    adaptive_intersection,
    c_intersection,
    estimate_c_cost,
    estimate_p_cost,
    p_intersection,
    scatter_vector_intersection,
)
from .governor import BYTES_PER_WORD, MemoryGovernor
from .matcher import CuTSMatcher, SearchTimeout, graph_device_words
from .ordering import (
    ORDERING_STRATEGIES,
    MatchOrder,
    build_order,
    id_order,
    max_constraints_order,
    max_degree_order,
    rare_label_order,
)
from .result import MatchResult
from .stats import SearchStats
from .stream import iter_matches

__all__ = [
    "CuTSConfig",
    "CuTSMatcher",
    "SearchTimeout",
    "graph_device_words",
    "MatchResult",
    "MemoryGovernor",
    "BYTES_PER_WORD",
    "SearchStats",
    "iter_matches",
    "MatchOrder",
    "build_order",
    "max_degree_order",
    "id_order",
    "max_constraints_order",
    "rare_label_order",
    "ORDERING_STRATEGIES",
    "root_candidates",
    "degree_filter_mask",
    "scatter_vector_intersection",
    "c_intersection",
    "p_intersection",
    "adaptive_intersection",
    "estimate_c_cost",
    "estimate_p_cost",
    "ComplexityEstimate",
    "estimate_path_counts",
    "upper_bound_counts",
    "fit_branching_factor",
    "sequential_complexity",
    "gpu_complexity",
    "multi_gpu_complexity",
    "predict_vs_measured",
]
