"""The paper's §5 analytical model: predicted path counts and complexity.

Section 5 derives the sequential/GPU/multi-GPU time complexity of cuTS
from three quantities: the data graph's maximum degree ``delta``, the
per-level valid-path ratio ``sigma_l`` (valid paths / generated paths),
and the initial candidate count ``|P_1|``:

    |P_l| = |P_1| * delta^{l-1} * prod(sigma_i)              (Eq. 1)
    |P_l| = |P_1| * ds^{l-1}        with  ds = delta * sigma (Eq. 2)
    s_complexity   = O(|V_D| * |V_Q| * delta^{|V_Q|})        (§5)
    p_complexity   = s_complexity / n_SMP
    m_complexity   = p_complexity / n_GPU

This module computes those predictions two ways:

* **a-priori** from graph statistics (``delta`` and a sampled ``sigma``
  estimated from degree-filter selectivity), and
* **a-posteriori** from a measured run's per-depth counts (fitting the
  effective ``ds``),

so experiments can report predicted-vs-measured — the reproduction of
the paper's analysis section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .candidates import root_candidates
from .ordering import MatchOrder, build_order

__all__ = [
    "ComplexityEstimate",
    "estimate_path_counts",
    "upper_bound_counts",
    "fit_branching_factor",
    "sequential_complexity",
    "gpu_complexity",
    "multi_gpu_complexity",
    "predict_vs_measured",
]


@dataclass(frozen=True)
class ComplexityEstimate:
    """Predicted quantities for one (data, query) pair."""

    p1: int
    delta: int
    sigma: float
    predicted_counts: tuple[float, ...]
    sequential_ops: float
    gpu_ops: float

    @property
    def ds(self) -> float:
        """Effective branching factor ``delta * sigma`` (Eq. 2)."""
        return self.delta * self.sigma


def _sigma_estimate(
    data: CSRGraph, query: CSRGraph, order: MatchOrder
) -> float:
    """Estimate the valid-path ratio ``sigma`` from filter selectivity.

    A generated extension survives (roughly independently) the degree
    filter, the extra adjacency constraints, and injectivity.  We
    estimate the degree-filter selectivity exactly, and each extra
    adjacency constraint as the graph's edge density over the candidate
    fanout (probability a random neighbour pair closes).
    """
    n = data.num_vertices
    if n == 0:
        return 0.0
    degs = data.out_degrees
    # mean degree-filter selectivity across the non-root query vertices
    selectivities = []
    closure_probs = []
    mean_deg = max(degs.mean(), 1e-9)
    for step in range(1, order.num_steps):
        q = order.sequence[step]
        q_out = query.out_degree(q)
        q_in = query.in_degree(q)
        sel = float(
            np.mean((degs >= q_out) & (data.in_degrees >= q_in))
        )
        selectivities.append(sel)
        fwd, bwd = order.constraints_at(step)
        extra = max(0, len(fwd) + len(bwd) - 1)
        # P(two vertices adjacent | one is a neighbour's neighbour):
        # approximated by mean_degree / |V| per extra constraint.
        closure_probs.append((mean_deg / n) ** extra)
    if not selectivities:
        return 1.0
    sigma = float(np.mean(selectivities) * np.mean(closure_probs))
    return min(1.0, max(sigma, 1e-12))


def estimate_path_counts(
    data: CSRGraph, query: CSRGraph, ordering: str = "max_degree"
) -> ComplexityEstimate:
    """A-priori Eq. (2) prediction of ``|P_l|`` for every level."""
    order = build_order(query, ordering)
    roots = root_candidates(data, query, order.sequence[0])
    p1 = len(roots)
    delta = data.max_out_degree
    sigma = _sigma_estimate(data, query, order)
    ds = delta * sigma
    counts = [float(p1)]
    for _ in range(1, order.num_steps):
        counts.append(counts[-1] * ds)
    return ComplexityEstimate(
        p1=p1,
        delta=delta,
        sigma=sigma,
        predicted_counts=tuple(counts),
        sequential_ops=sequential_complexity(data, query),
        gpu_ops=gpu_complexity(data, query),
    )


def upper_bound_counts(
    data: CSRGraph, query: CSRGraph, ordering: str = "max_degree"
) -> tuple[float, ...]:
    """The strict Eq. (1) bound with ``sigma = 1``: ``|P_1| * delta^{l-1}``.

    Every generated extension is a neighbour of an existing path vertex,
    so ``|P_{l+1}| <= |P_l| * delta`` unconditionally; this sequence is a
    guaranteed over-estimate of the measured counts.
    """
    order = build_order(query, ordering)
    p1 = len(root_candidates(data, query, order.sequence[0]))
    delta = max(data.max_out_degree, data.max_in_degree)
    counts = [float(p1)]
    for _ in range(1, order.num_steps):
        counts.append(counts[-1] * delta)
    return tuple(counts)


def fit_branching_factor(measured_counts: Sequence[float]) -> float:
    """A-posteriori effective ``ds`` from measured per-depth counts.

    The geometric-mean growth ratio ``(|P_L| / |P_1|)^{1/(L-1)}`` — what
    Eq. (2) calls ``ds`` when the per-level ``sigma_i`` are folded into
    one constant.
    """
    counts = [c for c in measured_counts if c > 0]
    if len(counts) < 2:
        return 0.0
    return float((counts[-1] / counts[0]) ** (1.0 / (len(counts) - 1)))


def sequential_complexity(data: CSRGraph, query: CSRGraph) -> float:
    """§5's closed form ``O(|V_D| * |V_Q| * delta^{|V_Q|})``.

    Returned as the raw operation-count expression (no constant).
    """
    delta = max(data.max_out_degree, 1)
    return float(
        data.num_vertices * query.num_vertices * delta**query.num_vertices
    )


def gpu_complexity(
    data: CSRGraph, query: CSRGraph, num_sms: int = 84
) -> float:
    """Single-GPU complexity: the sequential count over ``n_SMP``."""
    if num_sms <= 0:
        raise ValueError("num_sms must be positive")
    return sequential_complexity(data, query) / num_sms


def multi_gpu_complexity(
    data: CSRGraph, query: CSRGraph, num_sms: int = 84, num_gpus: int = 1
) -> float:
    """Multi-GPU complexity: further divided by ``n_GPU`` (§5)."""
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    return gpu_complexity(data, query, num_sms) / num_gpus


def predict_vs_measured(
    data: CSRGraph, query: CSRGraph, measured_counts: Sequence[float]
) -> list[dict]:
    """Rows comparing the Eq. (2) prediction against a measured run.

    Rows carry the sigma-estimated Eq. (2) prediction (an estimate, not a
    bound), the strict sigma=1 Eq. (1) upper bound (guaranteed to hold),
    and whether the strict bound held at each level.
    """
    est = estimate_path_counts(data, query)
    strict = upper_bound_counts(data, query)
    rows = []
    for lv, measured in enumerate(measured_counts):
        predicted = (
            est.predicted_counts[lv]
            if lv < len(est.predicted_counts)
            else None
        )
        bound = strict[lv] if lv < len(strict) else None
        rows.append(
            {
                "depth": lv + 1,
                "measured": int(measured),
                "eq2_estimate": predicted,
                "eq1_bound": bound,
                "bound_holds": (
                    None if bound is None else bool(measured <= bound + 1e-9)
                ),
            }
        )
    return rows
