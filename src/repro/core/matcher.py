"""The cuTS single-node matcher.

This is the paper's Algorithm 1 plus the hybrid BFS–DFS chunking of
§4.1.2, vectorised: partial paths live in the PA/CA
:class:`~repro.storage.trie.PathTrie`; one *fused* expansion pass per
level generates the candidate pool from an anchor constraint's adjacency
(a coalesced CSR gather), then applies the degree filter, the remaining
edge constraints (the c-/p-intersection membership probes, realised as
vectorised binary searches), and the injectivity filter (a PA-pointer
walk), and finally compacts survivors into the next trie level — the
single-atomic write-location claim of §4.1.1.

There is no two-pass count-then-write anywhere: exactly the property the
trie buys.  When the projected frontier would overflow the trie buffer
(half of free device memory, per the paper), the frontier is split into
chunks (default 512 paths) processed depth-first to completion — the
hybrid scanning strategy.

All data movement, shared traffic, atomics and instructions are charged
to a :class:`~repro.gpusim.cost.CostModel`; per-level kernel launches are
timed with the strided virtual-warp schedule (randomised placement on by
default, as in the paper).
"""

from __future__ import annotations

import time as _time
from typing import Callable

import numpy as np

from ..gpusim.cost import CostModel
from ..gpusim.kernel import launch_kernel
from ..gpusim.memory import DeviceMemory, DeviceOOMError
from ..gpusim.warp import (
    device_worker_count,
    idle_lane_cycles,
    select_virtual_warp_size,
)
from ..graph.csr import CSRGraph
from ..storage.trie import PathTrie
from .candidates import root_candidates
from .columnar import (
    AncColumns,
    ColumnarEngine,
    Fanout,
    QueryPlan,
    slice_fanouts,
)
from .config import CuTSConfig
from .governor import MemoryGovernor
from .ordering import MatchOrder, build_order
from .result import MatchResult
from .stats import SearchStats

__all__ = ["CuTSMatcher", "SearchTimeout", "graph_device_words"]


class SearchTimeout(RuntimeError):
    """Raised when the modeled kernel time exceeds the configured limit."""


def graph_device_words(graph: CSRGraph) -> int:
    """Device words a resident CSR graph occupies (dual CSR)."""
    return 2 * (graph.num_vertices + 1) + 2 * graph.num_edges


class CuTSMatcher:
    """Single-device cuTS engine bound to one data graph.

    ``_POOL_WORKSPACE_LIMIT`` bounds one expansion's streamed candidate
    pool (a host-memory guard for the vectorised kernel; the modeled GPU
    streams the pool through shared memory, so it does not count against
    the trie buffer).

    Parameters
    ----------
    data:
        The data graph (resident in simulated device memory for the
        lifetime of the matcher).
    config:
        Engine tunables; defaults follow the paper.

    Raises
    ------
    DeviceOOMError
        If the data graph itself does not fit on the device.
    """

    _POOL_WORKSPACE_LIMIT = 8_000_000

    def __init__(self, data: CSRGraph, config: CuTSConfig | None = None) -> None:
        self.data = data
        self.config = config or CuTSConfig()
        self.memory = DeviceMemory(self.config.device)
        self.memory.alloc("data_graph", graph_device_words(data))
        # "two big arrays whose size equals half of the free space
        # available in the GPU" (§4.1.1).
        self.trie_budget_words = int(
            self.memory.free_words * self.config.trie_buffer_fraction
        )
        self.memory.alloc("trie_buffer", self.trie_budget_words)
        vw = self.config.virtual_warp_size or select_virtual_warp_size(
            data.average_out_degree, self.config.device.warp_size
        )
        self.virtual_warp_size = vw
        self.num_workers = device_worker_count(self.config.device, vw)
        # Progress hook: called once per fused expansion on the run's
        # state.  The multi-core watchdog hangs worker heartbeats off
        # this; the core engine never reads the clock through it.
        self.on_tick: Callable[["_RunState"], None] | None = None
        # Mean in-degree is the p-intersection cost estimator's constant.
        self._mean_in_degree = (
            data.num_edges / data.num_vertices if data.num_vertices else 0.0
        )
        # Columnar frontier engine: workspace arena + per-graph tables.
        # Construction is cheap (all caches lazy); runs dispatch to it
        # only when ``config.engine == "columnar"`` set a plan on state.
        self.engine = ColumnarEngine(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def match(
        self,
        query: CSRGraph,
        *,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        wall_limit_s: float | None = None,
        part: int = 0,
        num_parts: int = 1,
        checkpoint_dir: str | None = None,
        checkpoint_every: int | None = None,
        resume: bool = False,
        root_filter: np.ndarray | None = None,
        base_result: "MatchResult | int | None" = None,
        delta: object | None = None,
    ) -> MatchResult:
        """Enumerate all monomorphism embeddings of ``query`` in the data.

        Parameters
        ----------
        query:
            The (weakly connected) query graph.
        materialize:
            Collect the actual embeddings (possibly capped by
            ``config.max_materialized``); counting is always exact.
        time_limit_ms:
            Abort with :class:`SearchTimeout` when the modeled kernel
            time exceeds this bound (reproduces the paper's failed
            cases that are not memory failures).
        wall_limit_s:
            Abort with :class:`SearchTimeout` when real elapsed time
            exceeds this bound (harness safety; no paper analogue).
        part, num_parts:
            Restrict the search to the strided root-candidate interval
            ``part::num_parts`` — the distributed ``init_match`` striding
            (Algorithm 3).  Interval results over all parts reduce via
            :meth:`MatchResult.merge` to exactly the full search; this is
            how :class:`~repro.parallel.ParallelMatcher` shards one query
            across processes.
        checkpoint_dir:
            Run the job **durably**: progress snapshots are committed to
            this directory (see :mod:`repro.checkpoint`) so a killed run
            can be continued with ``resume=True`` at exactly the same
            count.  Checkpointed runs are count-only (``materialize``
            must stay ``False``) and ignore the time/wall limits.
        checkpoint_every:
            Snapshot cadence in fused expansions (default:
            ``config.checkpoint_every``).  Only with ``checkpoint_dir``.
        resume:
            Continue the job already in ``checkpoint_dir`` (fingerprints
            of config/data/query must match the manifest).
        root_filter:
            Restrict the search to embeddings whose **root** (the first
            matched query vertex) lies in this vertex set: the level-0
            candidates are intersected with it before striding.  The
            versioning subsystem passes the delta's dirty ball here.
        base_result, delta:
            Incremental re-matching across one version commit: ``self``
            must be bound to the **child** graph, ``delta`` is the
            commit's :class:`~repro.versioning.EdgeDelta` and
            ``base_result`` the full result (or bare count) previously
            computed on the parent under the same config.  Only roots
            inside the delta's dirty ball are re-matched; the retained
            share is merged in arithmetically (count-only; see
            :func:`repro.versioning.incremental_match`).

        Raises
        ------
        DeviceOOMError
            If even a single-path chunk cannot fit its expansion in the
            trie buffer.
        SearchTimeout
            See ``time_limit_ms``.
        """
        if (base_result is None) != (delta is None):
            raise ValueError(
                "incremental matching needs both base_result and delta"
            )
        if delta is not None:
            if materialize or checkpoint_dir is not None or num_parts != 1:
                raise ValueError(
                    "incremental matching is count-only, whole-search, "
                    "and not checkpointable"
                )
            # Lazy import: repro.versioning sits above the core engine
            # (mirrors the checkpoint runner import below).
            from ..versioning.incremental import incremental_match

            assert base_result is not None
            return incremental_match(
                self, query,
                base_result=base_result, delta=delta,  # type: ignore[arg-type]
                wall_limit_s=wall_limit_s,
            )
        if checkpoint_dir is not None:
            if materialize:
                raise ValueError(
                    "checkpointed runs are count-only; "
                    "materialize=True is not supported with checkpoint_dir"
                )
            from ..checkpoint.runner import run_durable

            return run_durable(
                self, query,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                resume=resume,
                part=part, num_parts=num_parts,
            )
        if resume:
            raise ValueError("resume=True requires checkpoint_dir")
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        if not 0 <= part < num_parts:
            raise ValueError("need 0 <= part < num_parts")
        cost = CostModel(self.config.device)
        if self.config.trace_kernels:
            cost.enable_trace()
        stats = SearchStats()
        rng = (
            np.random.default_rng(self.config.seed)
            if self.config.randomize_placement
            else None
        )
        order = build_order(query, self.config.ordering)
        n_steps = order.num_steps

        if query.num_vertices > self.data.num_vertices:
            empty = (
                np.zeros((0, order.num_steps), dtype=np.int64)
                if materialize
                else None
            )
            return MatchResult(
                count=0, matches=empty, time_ms=cost.time_ms, cost=cost,
                stats=stats, order=order.sequence,
            )

        roots = root_candidates(
            self.data, query, order.sequence[0], cost,
            neighborhood_filter=self.config.neighborhood_filter,
        )
        if root_filter is not None:
            roots = np.intersect1d(
                roots, np.asarray(root_filter, dtype=np.int64)
            )
        if num_parts > 1:
            roots = roots[part::num_parts]
        launch_kernel(
            cost,
            "init_match",
            np.ones(max(1, self.data.num_vertices), dtype=np.float64),
            device_worker_count(self.config.device, self.config.device.warp_size),
            2 * self.data.num_vertices + len(roots),
            rng=None,
        )
        stats.record_depth(0, len(roots))

        trie = PathTrie.from_roots(roots)
        state = _RunState(
            query=query,
            order=order,
            cost=cost,
            stats=stats,
            rng=rng,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
            trie_words=2 * len(roots),
        )
        state.max_materialized = self.config.max_materialized
        state.governor = MemoryGovernor.from_config(self.config)
        state.governor.observe_words(state.trie_words)
        state.on_tick = self.on_tick
        self._arm_engine(state, query, order)
        if wall_limit_s is not None:
            state.wall_deadline = _time.monotonic() + wall_limit_s
        stats.record_trie_words(state.trie_words)
        if state.trie_words > self.trie_budget_words:
            raise DeviceOOMError(
                state.trie_words, self.trie_budget_words, "trie_buffer"
            )

        if n_steps == 1:
            matches = roots.reshape(-1, 1).copy() if materialize else None
            count = len(roots)
        else:
            frontier = np.arange(len(roots), dtype=np.int64)
            count = self._search(trie, 1, frontier, state)
            matches = state.collected_matrix()
        stats.record_governor(state.governor)

        if matches is not None:
            # Columns are in matching order; permute to query-vertex order.
            inv = np.empty(n_steps, dtype=np.int64)
            inv[np.asarray(order.sequence, dtype=np.int64)] = np.arange(
                n_steps, dtype=np.int64
            )
            matches = np.ascontiguousarray(matches[:, inv])

        return MatchResult(
            count=count,
            matches=matches,
            time_ms=cost.time_ms,
            cost=cost,
            stats=stats,
            order=order.sequence,
        )

    def count(self, query: CSRGraph, **kwargs: object) -> int:
        """Convenience: number of embeddings only."""
        return self.match(query, **kwargs).count

    # ------------------------------------------------------------------
    # Stepwise driving API (used by the distributed runtime)
    # ------------------------------------------------------------------
    def make_run_state(
        self,
        query: CSRGraph,
        *,
        materialize: bool = False,
        time_limit_ms: float | None = None,
    ) -> "_RunState":
        """Create the per-run context for externally-driven expansion.

        The distributed runtime owns its own work stack and calls
        :meth:`expand_frontier` chunk by chunk; this builds the state
        (order, cost model, stats, rng) those calls thread through.
        """
        rng = (
            np.random.default_rng(self.config.seed)
            if self.config.randomize_placement
            else None
        )
        order = build_order(query, self.config.ordering)
        run_cost = CostModel(self.config.device)
        if self.config.trace_kernels:
            run_cost.enable_trace()
        state = _RunState(
            query=query,
            order=order,
            cost=run_cost,
            stats=SearchStats(),
            rng=rng,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
            trie_words=0,
        )
        state.max_materialized = self.config.max_materialized
        state.governor = MemoryGovernor.from_config(self.config)
        state.on_tick = self.on_tick
        self._arm_engine(state, query, order)
        return state

    def _arm_engine(
        self, state: "_RunState", query: CSRGraph, order: MatchOrder
    ) -> None:
        """Attach the configured expansion engine to a run.

        A non-``None`` ``state.plan`` routes every expansion through the
        columnar engine; ``None`` keeps the reference path (the oracle).
        """
        if self.config.engine == "columnar":
            state.plan = self.engine.plan_for(query, order)
        state.profile = self.config.profile_expansion

    def initial_frontier(
        self, state: "_RunState", *, part: int = 0, num_parts: int = 1
    ) -> PathTrie:
        """Level-0 trie from the root candidates (optionally strided).

        ``part``/``num_parts`` implement the distributed ``init_match``:
        rank ``r`` of ``P`` keeps candidates ``r::P``.
        """
        if not 0 <= part < num_parts:
            raise ValueError("need 0 <= part < num_parts")
        roots = root_candidates(
            self.data, state.query, state.order.sequence[0], state.cost,
            neighborhood_filter=self.config.neighborhood_filter,
        )
        if num_parts > 1:
            roots = roots[part::num_parts]
        launch_kernel(
            state.cost,
            "init_match",
            np.ones(max(1, self.data.num_vertices), dtype=np.float64),
            device_worker_count(self.config.device, self.config.device.warp_size),
            2 * self.data.num_vertices + len(roots),
            rng=None,
        )
        state.stats.record_depth(0, len(roots))
        return PathTrie.from_roots(roots)

    def expand_frontier(
        self,
        trie: PathTrie,
        step: int,
        frontier: np.ndarray,
        state: "_RunState",
        *,
        columns: AncColumns | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Expand ``frontier`` (paths at the trie's deepest level) through
        query step ``step``; returns ``(global parent indices, candidates)``
        without mutating the trie.  All costs are charged to ``state``.

        ``columns`` optionally supplies the frontier's materialised
        ancestor columns (one array per trie level, as produced by
        :meth:`~repro.storage.trie.PathTrie.columns_at`), letting a
        stack-driving caller carry them forward incrementally; when
        omitted they are rebuilt from the trie — which is also how a
        resumed checkpoint re-derives the expansion workspace."""
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        if state.plan is not None:
            anc = (
                columns
                if columns is not None
                else trie.columns_at(trie.depth - 1, frontier)
            )
            out = self.engine.extend(
                state.plan, anc, step, state,
                bloom=self.engine.bloom_of(anc),
            )
            assert not isinstance(out, int)
            pa_local, ca = out
        else:
            ancestors = trie.paths_at(trie.depth - 1, frontier)
            fwd, bwd = state.order.constraints_at(step)
            pa_local, ca = self._extend(ancestors, step, fwd, bwd, state)
        state.stats.record_depth(step, len(ca))
        return frontier[pa_local], ca

    # ------------------------------------------------------------------
    # Hybrid BFS-DFS search
    # ------------------------------------------------------------------
    def _search(
        self,
        trie: PathTrie,
        step: int,
        frontier: np.ndarray,
        state: "_RunState",
        anc: AncColumns | None = None,
        bloom: np.ndarray | None = None,
        fanouts: tuple[Fanout, ...] | None = None,
    ) -> int:
        """Expand ``frontier`` (paths at trie's deepest level) through
        query step ``step`` and recurse to completion.  Returns the number
        of full embeddings found below this frontier.

        ``anc`` carries the frontier's materialised ancestor columns for
        the columnar engine (maintained level-to-level by gather and
        sliced in lockstep with chunk peels, so the trie is never walked
        upward past the first call); ``bloom`` rides along with it (the
        per-path 64-bit ancestor signature the injectivity prefilter
        reads), and ``fanouts`` carries this frontier's constraint
        fanout table (chunk peels pass slices of the parent's instead of
        re-gathering the pointer tables).  ``None`` rebuilds any of the
        three — or, on the reference engine, falls back to the row-major
        ``paths_at`` walk."""
        if frontier.size == 0:
            return 0
        if (
            state.time_limit_ms is not None
            and state.cost.time_ms > state.time_limit_ms
        ):
            raise SearchTimeout(
                f"modeled time {state.cost.time_ms:.1f} ms exceeded limit "
                f"{state.time_limit_ms:.1f} ms"
            )
        if state.wall_deadline is not None:
            # Sanctioned wall-clock read: the user-facing safety limit must
            # track host time by definition, and tripping it raises rather
            # than changing any count. # repro: ignore[RP002]
            if _time.monotonic() > state.wall_deadline:
                raise SearchTimeout("wall-clock limit exceeded")

        plan = state.plan
        col_fanouts: tuple[Fanout, ...] | None = None
        ref_fanouts: tuple[tuple[str, int, int], ...] | None = None
        ancestors: np.ndarray | None = None
        fwd: tuple[int, ...] = ()
        bwd: tuple[int, ...] = ()
        if plan is not None:
            if anc is None:
                anc = trie.columns_at(trie.depth - 1, frontier)
                bloom = self.engine.bloom_of(anc)
            elif bloom is None:
                bloom = self.engine.bloom_of(anc)
            col_fanouts = (
                fanouts
                if fanouts is not None
                else self.engine.constraint_fanouts(plan, anc, step)
            )
            pool_estimate = self._estimate_pool(frontier.size, col_fanouts)
        else:
            ancestors = trie.paths_at(trie.depth - 1, frontier)
            fwd, bwd = state.order.constraints_at(step)
            ref_fanouts = self._constraint_fanouts(ancestors, fwd, bwd)
            pool_estimate = self._estimate_pool(frontier.size, ref_fanouts)

        # --- memory-pressure chunking (hybrid BFS-DFS, §4.1.2) ---------
        # The candidate pool streams through shared memory per virtual
        # warp; only *survivors* land in the trie buffer.  Each level may
        # claim an equal share of the *remaining* headroom (so deeper
        # levels of the active DFS branch always keep room), projected
        # via the survival ratio measured at this step so far
        # (conservatively 1.0 before the first probe chunk).
        remaining_levels = max(1, state.order.num_steps - step)
        # The governor's host budget tightens the effective trie budget
        # (the device budget is the hard bound; the host budget is soft).
        gov_words = state.governor.budget_words
        soft_budget_words = (
            self.trie_budget_words
            if gov_words is None
            else min(self.trie_budget_words, gov_words)
        )

        def fits(pool_fraction: float) -> bool:
            sigma = state.sigma_by_step.get(step, 1.0)
            headroom = soft_budget_words - state.trie_words
            allowance = headroom / remaining_levels
            level_words = 2 * pool_estimate * pool_fraction * sigma
            return (
                level_words <= allowance
                and pool_estimate * pool_fraction <= self._POOL_WORKSPACE_LIMIT
            )

        if not fits(1.0) and frontier.size > 1:
            # Peel chunks iteratively.  Each processed chunk refines the
            # measured survival ratio (sigma_by_step), so the remainder
            # is re-projected with real data every iteration — a run that
            # merely *looked* oversized proceeds after one probe chunk,
            # while a genuinely memory-bound run keeps chunking (bounded
            # recursion: sub-chunks only ever halve).  Ancestor columns
            # are sliced in lockstep with the frontier peel.
            total = 0
            start = 0
            n = frontier.size
            while start < n:
                rem = n - start
                if rem == 1 or fits(rem / n):
                    split = rem
                else:
                    base_chunk = state.governor.effective_chunk(
                        self.config.chunk_size
                    )
                    split = min(base_chunk, max(1, rem // 2))
                stop = start + split
                chunk_anc = None
                chunk_bloom = None
                chunk_fans = None
                if plan is not None and anc is not None:
                    chunk_anc = tuple(c[start:stop] for c in anc)
                    if bloom is not None:
                        chunk_bloom = bloom[start:stop]
                    if col_fanouts is not None:
                        chunk_fans = slice_fanouts(col_fanouts, start, stop)
                state.stats.record_chunk(step)
                total += self._search(
                    trie, step, frontier[start:stop], state,
                    chunk_anc, chunk_bloom, chunk_fans,
                )
                start = stop
            return total

        pa_local: np.ndarray | None = None
        ca: np.ndarray | None = None
        if plan is not None:
            assert anc is not None
            # Leaf steps of a count-only run need just the survivor
            # count: the level would be appended, counted, and dropped
            # — skip materialising the survivor arrays entirely.
            leaf_count_only = (
                not state.materialize
                and step + 1 == state.order.num_steps
            )
            out = self.engine.extend(
                plan, anc, step, state, col_fanouts, bloom,
                count_only=leaf_count_only,
            )
            if isinstance(out, int):
                results = out
            else:
                pa_local, ca = out
                results = len(ca)
        else:
            assert ancestors is not None
            pa_local, ca = self._extend(
                ancestors, step, fwd, bwd, state, ref_fanouts
            )
            results = len(ca)
        state.stats.record_depth(step, results)
        if pool_estimate > 0:
            # Exponential-moving survival ratio for the chunk projector.
            observed = results / pool_estimate
            prior = state.sigma_by_step.get(step)
            state.sigma_by_step[step] = (
                observed if prior is None else 0.5 * prior + 0.5 * observed
            )
        if results == 0:
            return 0

        new_words = 2 * results
        if state.trie_words + new_words > soft_budget_words:
            if frontier.size > 1:
                # Estimate was too optimistic; fall back to chunking
                # (halves at the same boundary ``np.array_split`` used).
                total = 0
                half = (frontier.size + 1) // 2
                for lo, hi in ((0, half), (half, frontier.size)):
                    if hi <= lo:
                        continue
                    chunk_anc = None
                    chunk_bloom = None
                    chunk_fans = None
                    if plan is not None and anc is not None:
                        chunk_anc = tuple(c[lo:hi] for c in anc)
                        if bloom is not None:
                            chunk_bloom = bloom[lo:hi]
                        if col_fanouts is not None:
                            chunk_fans = slice_fanouts(col_fanouts, lo, hi)
                    state.stats.record_chunk(step)
                    total += self._search(
                        trie, step, frontier[lo:hi], state,
                        chunk_anc, chunk_bloom, chunk_fans,
                    )
                return total
            if state.trie_words + new_words > self.trie_budget_words:
                # The *device* budget is a hard bound: a single path's
                # expansion that overflows it cannot be subdivided.
                raise DeviceOOMError(
                    new_words,
                    self.trie_budget_words - state.trie_words,
                    "trie_buffer",
                )
            # Over the soft host budget only, with an unsplittable
            # frontier: proceed (graceful degradation, never abort).

        if pa_local is None or ca is None:
            # Count-only leaf: the reference flow appends the level,
            # counts it, and immediately drops it — observe and record
            # the words it would have occupied, without trie mutation.
            words = state.trie_words + new_words
            state.governor.observe_words(words)
            state.stats.record_trie_words(words)
            return results

        # Parent indices are survivor compactions of this frontier —
        # in range by construction, so the PA validation scan is skipped.
        trie.append_level(frontier[pa_local], ca, validate=False)
        state.trie_words += new_words
        state.governor.observe_words(state.trie_words)
        state.stats.record_trie_words(state.trie_words)
        try:
            if step + 1 == state.order.num_steps:
                count = results
                state.collect(trie, np.arange(results, dtype=np.int64))
            else:
                # Incremental ancestor carry: the child frontier's columns
                # and Bloom signatures are the surviving parents' gathered
                # by pa_local plus the new candidate column — no upward
                # trie walk.
                child_anc: AncColumns | None = None
                child_bloom: np.ndarray | None = None
                if plan is not None and anc is not None and bloom is not None:
                    child_anc, child_bloom = self.engine.child_carry(
                        anc, bloom, pa_local, ca
                    )
                # Child frontier ids are always 0..results-1: reuse the
                # engine's shared read-only iota instead of allocating
                # (every consumer slices or gathers, never writes).
                child_frontier = (
                    self.engine.iota(results)
                    if plan is not None
                    else np.arange(results, dtype=np.int64)
                )
                count = self._search(
                    trie,
                    step + 1,
                    child_frontier,
                    state,
                    child_anc,
                    child_bloom,
                )
        finally:
            trie.drop_last_level()
            state.trie_words -= new_words
        return count

    # ------------------------------------------------------------------
    # Fused expansion kernel
    # ------------------------------------------------------------------
    def _constraint_fanouts(
        self,
        ancestors: np.ndarray,
        fwd: tuple[int, ...],
        bwd: tuple[int, ...],
    ) -> tuple[tuple[str, int, int], ...]:
        """Total adjacency fanout of every edge constraint over this
        frontier: one ``("fwd"|"bwd", j, sum-of-degrees)`` entry per
        constraint.

        Computed **once per expansion** and shared by the pool estimator,
        the anchor selection and the c-/p-intersection choice — all three
        need exactly these per-constraint degree sums.
        """
        data = self.data
        out = []
        for j in fwd:
            a = ancestors[:, j]
            out.append(
                ("fwd", j, int((data.indptr[a + 1] - data.indptr[a]).sum()))
            )
        for j in bwd:
            a = ancestors[:, j]
            out.append(
                ("bwd", j, int((data.rindptr[a + 1] - data.rindptr[a]).sum()))
            )
        return tuple(out)

    def _estimate_pool(
        self,
        num_frontier: int,
        fanouts: tuple[tuple[str, int, int], ...] | tuple[Fanout, ...],
    ) -> int:
        """Upper-bound the candidate-pool size for this frontier (the
        cheapest constraint's fanout; every constraint is a valid bound).

        Accepts both engines' fanout shapes — the total is the last
        element of either tuple form."""
        if not fanouts:
            # Unconstrained step (disconnected query component).
            return num_frontier * self.data.num_vertices
        return min(int(entry[-1]) for entry in fanouts)

    def _extend(
        self,
        ancestors: np.ndarray,
        step: int,
        fwd: tuple[int, ...],
        bwd: tuple[int, ...],
        state: "_RunState",
        fanouts: tuple[tuple[str, int, int], ...] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One fused expansion: returns (local parent indices, candidates).

        ``ancestors`` is the ``(F, step)`` matrix of the frontier's
        materialised prefixes (columns follow the matching order).
        ``fanouts`` is the per-constraint fanout table for this frontier
        (computed here when the caller has not already built it).
        """
        data = self.data
        cost = state.cost
        q_next = state.order.sequence[step]
        num_frontier = ancestors.shape[0]
        words_before = cost.dram_read_words + cost.dram_write_words

        # ----- anchor selection: cheapest constraint seeds the pool ----
        if fanouts is None:
            fanouts = self._constraint_fanouts(ancestors, fwd, bwd)
        anchor_kind, anchor_j, anchor_total = self._select_anchor(
            ancestors, fanouts
        )

        if anchor_kind == "none":
            # Disconnected query step: pool = frontier x all vertices.
            path_ids = np.repeat(
                np.arange(num_frontier, dtype=np.int64), data.num_vertices
            )
            cands = np.tile(
                np.arange(data.num_vertices, dtype=np.int64), num_frontier
            )
            pool_counts = np.full(
                num_frontier, data.num_vertices, dtype=np.int64
            )
            cost.charge_dram_read(len(cands), segments=num_frontier)
        else:
            if anchor_kind == "fwd":
                indptr, indices = data.indptr, data.indices
            else:
                indptr, indices = data.rindptr, data.rindices
            anchor_vertices = ancestors[:, anchor_j]
            starts = indptr[anchor_vertices]
            pool_counts = indptr[anchor_vertices + 1] - starts
            total = int(pool_counts.sum())
            path_ids = np.repeat(
                np.arange(num_frontier, dtype=np.int64), pool_counts
            )
            # Flat gather of all anchor adjacency slices in one pass:
            # offsets[k] = starts[path] + (k - first_k_of_path).
            cum = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(pool_counts)]
            )
            offsets = (
                np.arange(total, dtype=np.int64)
                - cum[path_ids]
                + starts[path_ids]
            )
            cands = indices[offsets]
            cost.charge_dram_read(total, segments=num_frontier)
            cost.charge_shared(writes=total)

        mask = np.ones(len(cands), dtype=bool)

        # ----- degree filter (Definition 5) -----------------------------
        q_out = state.query.out_degree(q_next)
        q_in = state.query.in_degree(q_next)
        if q_out > 0:
            mask &= (data.indptr[cands + 1] - data.indptr[cands]) >= q_out
        if q_in > 0:
            mask &= (data.rindptr[cands + 1] - data.rindptr[cands]) >= q_in
        if data.labels is not None and state.query.labels is not None:
            mask &= data.labels[cands] == state.query.labels[q_next]
        cost.charge_instructions(2 * len(cands))

        # ----- remaining edge constraints (c-/p-intersection probes) ----
        rest_fwd = tuple(j for j in fwd if not (anchor_kind == "fwd" and j == anchor_j))
        rest_bwd = tuple(j for j in bwd if not (anchor_kind == "bwd" and j == anchor_j))
        num_rest = len(rest_fwd) + len(rest_bwd)
        if num_rest and mask.any():
            kind = self._choose_intersection(
                fanouts, anchor_kind, anchor_j, int(mask.sum())
            )
            state.stats.record_intersection(kind, num_rest)
            live = np.nonzero(mask)[0]
            live_paths = path_ids[live]
            live_cands = cands[live]
            ok = np.ones(len(live), dtype=bool)
            for j in rest_fwd:
                ok &= data.has_edges(ancestors[live_paths, j], live_cands)
            for j in rest_bwd:
                ok &= data.has_edges(live_cands, ancestors[live_paths, j])
            mask[live] = ok
            self._charge_intersection(
                kind, ancestors, rest_fwd, rest_bwd, live_paths, live_cands, state
            )

        # ----- injectivity: candidate must be new on its path -----------
        if mask.any():
            live = np.nonzero(mask)[0]
            dup = np.zeros(len(live), dtype=bool)
            for col in range(ancestors.shape[1]):
                dup |= ancestors[path_ids[live], col] == cands[live]
            mask[live] = ~dup
            cost.charge_instructions(len(live) * ancestors.shape[1])

        results = int(mask.sum())
        # ----- write-out: one atomic slot claim per surviving candidate -
        cost.charge_atomics(results)
        cost.charge_dram_write(2 * results)
        cost.charge_idle_lanes(
            idle_lane_cycles(pool_counts, self.virtual_warp_size)
        )

        # ----- kernel launch timing --------------------------------------
        per_path_work = (
            np.ceil(pool_counts / self.virtual_warp_size) * (1 + num_rest) + 2.0
        )
        words_moved = (
            cost.dram_read_words + cost.dram_write_words - words_before
        )
        launch_kernel(
            cost,
            f"search_kernel_d{step}",
            per_path_work,
            self.num_workers,
            words_moved,
            rng=state.rng,
        )

        state.tick()
        return path_ids[mask], cands[mask]

    def _select_anchor(
        self,
        ancestors: np.ndarray,
        fanouts: tuple[tuple[str, int, int], ...],
    ) -> tuple[str, int, int]:
        """Pick the constraint with the smallest total fanout."""
        if not fanouts:
            return ("none", -1, ancestors.shape[0] * self.data.num_vertices)
        return min(fanouts, key=lambda entry: entry[2])

    def _choose_intersection(
        self,
        fanouts: tuple[tuple[str, int, int], ...] | tuple[Fanout, ...],
        anchor_kind: str,
        anchor_j: int,
        pool_size: int,
    ) -> str:
        """Adaptive c-vs-p choice by modeled movement (§4.1.3).

        The c-cost is the fanout of every non-anchor constraint — read
        straight off the shared fanout table instead of recomputing the
        degree sums.  Accepts both engines' fanout shapes.
        """
        if self.config.intersection in ("c", "p"):
            return self.config.intersection
        cost_c = 0
        num_rest = 0
        for entry in fanouts:
            if entry[0] == anchor_kind and entry[1] == anchor_j:
                continue
            cost_c += int(entry[-1])
            num_rest += 1
        cost_p = pool_size * self._mean_in_degree * num_rest
        return "p" if cost_p < cost_c else "c"

    def _charge_intersection(
        self,
        kind: str,
        ancestors: np.ndarray,
        rest_fwd: tuple[int, ...],
        rest_bwd: tuple[int, ...],
        live_paths: np.ndarray,
        live_cands: np.ndarray,
        state: "_RunState",
    ) -> None:
        """Charge the movement of the chosen micro-kernel (paper's
        complexity expressions, §4.1.3)."""
        data = self.data
        cost = state.cost
        if kind == "c":
            # The warp streams each constraint's children list once per
            # *path* (not per pool candidate).
            upaths = np.unique(live_paths)
            words = 0
            for j in rest_fwd:
                a = ancestors[upaths, j]
                words += int((data.indptr[a + 1] - data.indptr[a]).sum())
            for j in rest_bwd:
                a = ancestors[upaths, j]
                words += int((data.rindptr[a + 1] - data.rindptr[a]).sum())
            # Streamed coalesced loads of the other children lists, probed
            # against the shared-memory pool buffer.
            cost.charge_dram_read(words, segments=max(1, len(upaths)))
            cost.charge_shared(reads=words)
            cost.charge_instructions(words)
        else:
            # p-intersection: each live candidate's parent list is walked.
            words = int(
                (data.rindptr[live_cands + 1] - data.rindptr[live_cands]).sum()
            )
            cost.charge_dram_read(words, segments=max(1, len(live_cands)))
            cost.charge_shared(reads=len(live_cands))
            cost.charge_instructions(words)


class _RunState:
    """Mutable per-run context threaded through the recursion."""

    def __init__(
        self,
        *,
        query: CSRGraph,
        order: MatchOrder,
        cost: CostModel,
        stats: SearchStats,
        rng: np.random.Generator | None,
        materialize: bool,
        time_limit_ms: float | None,
        trie_words: int,
    ) -> None:
        self.query = query
        self.order = order
        self.cost = cost
        self.stats = stats
        self.rng = rng
        self.materialize = materialize
        self.time_limit_ms = time_limit_ms
        self.wall_deadline: float | None = None
        self.trie_words = trie_words
        self.sigma_by_step: dict[int, float] = {}
        # Columnar-engine routing: a non-None plan sends every expansion
        # through CuTSMatcher.engine; profile enables per-stage timers.
        self.plan: QueryPlan | None = None
        self.profile = False
        self.max_materialized: int | None = None
        self.governor: MemoryGovernor = MemoryGovernor()
        self.on_tick: Callable[["_RunState"], None] | None = None
        self._collected: list[np.ndarray] = []
        self._collected_count = 0

    def tick(self) -> None:
        """Invoke the progress hook, if any (called once per fused
        expansion).  Watchdog heartbeats and checkpoint cadence hang off
        this; the core engine itself never reads the clock here."""
        if self.on_tick is not None:
            self.on_tick(self)

    def collect(self, trie: PathTrie, indices: np.ndarray) -> None:
        """Materialise completed paths (writes results to host)."""
        if not self.materialize:
            return
        cap = self.max_materialized
        if cap is not None:
            room = cap - self._collected_count
            if room <= 0:
                return
            indices = indices[:room]
        paths = trie.paths_at(trie.depth - 1, indices)
        self._collected.append(paths)
        self._collected_count += len(paths)

    def collected_matrix(self) -> np.ndarray | None:
        if not self.materialize:
            return None
        if not self._collected:
            return np.zeros((0, self.order.num_steps), dtype=np.int64)
        return np.concatenate(self._collected, axis=0)
