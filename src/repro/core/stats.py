"""Search statistics collected during a match run.

The paper reports per-depth candidate counts ("785x fewer candidates than
GSI at depth 1, 26,000x at depth 2"), chunk counts, and peak storage;
:class:`SearchStats` accumulates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Mutable per-run statistics."""

    paths_per_depth: list[int] = field(default_factory=list)
    chunks_processed: int = 0
    max_chunk_depth: int = 0
    peak_trie_words: int = 0
    peak_frontier: int = 0
    intersection_calls: dict[str, int] = field(
        default_factory=lambda: {"c": 0, "p": 0}
    )
    chunk_halvings: int = 0
    spilled_chunks: int = 0
    peak_tracked_bytes: int = 0
    cancelled_at_dispatch: int = 0
    stage_wall_s: dict[str, float] = field(default_factory=dict)

    def record_depth(self, depth: int, num_paths: int) -> None:
        """Accumulate paths produced at a (0-based) depth.

        Chunked runs hit the same depth many times; counts add up to the
        BFS-equivalent totals.
        """
        while len(self.paths_per_depth) <= depth:
            self.paths_per_depth.append(0)
        self.paths_per_depth[depth] += num_paths
        self.peak_frontier = max(self.peak_frontier, num_paths)

    def record_chunk(self, depth: int) -> None:
        self.chunks_processed += 1
        self.max_chunk_depth = max(self.max_chunk_depth, depth)

    def record_trie_words(self, words: int) -> None:
        self.peak_trie_words = max(self.peak_trie_words, words)

    def record_intersection(self, kind: str, calls: int = 1) -> None:
        self.intersection_calls[kind] = (
            self.intersection_calls.get(kind, 0) + calls
        )

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock seconds spent in one expansion stage
        (anchor_gather / filter / intersection / write_out).  Only
        populated when ``CuTSConfig.profile_expansion`` is on; purely
        diagnostic, never read by the engine."""
        self.stage_wall_s[stage] = self.stage_wall_s.get(stage, 0.0) + seconds

    def record_governor(self, governor: object) -> None:
        """Fold a :class:`~repro.core.governor.MemoryGovernor`'s
        counters into this run's statistics (additive; peaks max)."""
        self.chunk_halvings += int(getattr(governor, "chunk_halvings", 0))
        self.spilled_chunks += int(getattr(governor, "spill_count", 0))
        self.peak_tracked_bytes = max(
            self.peak_tracked_bytes,
            int(getattr(governor, "peak_tracked_bytes", 0)),
        )

    def to_json(self) -> dict:
        """Plain-JSON form for checkpoint snapshots."""
        return {
            "paths_per_depth": list(self.paths_per_depth),
            "chunks_processed": self.chunks_processed,
            "max_chunk_depth": self.max_chunk_depth,
            "peak_trie_words": self.peak_trie_words,
            "peak_frontier": self.peak_frontier,
            "intersection_calls": dict(self.intersection_calls),
            "chunk_halvings": self.chunk_halvings,
            "spilled_chunks": self.spilled_chunks,
            "peak_tracked_bytes": self.peak_tracked_bytes,
            "cancelled_at_dispatch": self.cancelled_at_dispatch,
            "stage_wall_s": dict(self.stage_wall_s),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SearchStats":
        """Rebuild statistics persisted by :meth:`to_json`."""
        stats = cls()
        stats.paths_per_depth = [int(x) for x in payload["paths_per_depth"]]
        stats.chunks_processed = int(payload["chunks_processed"])
        stats.max_chunk_depth = int(payload["max_chunk_depth"])
        stats.peak_trie_words = int(payload["peak_trie_words"])
        stats.peak_frontier = int(payload["peak_frontier"])
        stats.intersection_calls = {
            str(k): int(v) for k, v in payload["intersection_calls"].items()
        }
        stats.chunk_halvings = int(payload.get("chunk_halvings", 0))
        stats.spilled_chunks = int(payload.get("spilled_chunks", 0))
        stats.peak_tracked_bytes = int(payload.get("peak_tracked_bytes", 0))
        stats.cancelled_at_dispatch = int(
            payload.get("cancelled_at_dispatch", 0)
        )
        stats.stage_wall_s = {
            str(k): float(v)
            for k, v in payload.get("stage_wall_s", {}).items()
        }
        return stats

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Fold another run's statistics into this one (associative).

        Per-depth path counts and chunk counts add (two root intervals
        partition the same search tree, so their depth totals sum to the
        serial run's); peaks take the max (intervals run concurrently,
        each on its own device/process).  Returns ``self`` for chaining.
        """
        while len(self.paths_per_depth) < len(other.paths_per_depth):
            self.paths_per_depth.append(0)
        for depth, num_paths in enumerate(other.paths_per_depth):
            self.paths_per_depth[depth] += num_paths
        self.chunks_processed += other.chunks_processed
        self.max_chunk_depth = max(self.max_chunk_depth, other.max_chunk_depth)
        self.peak_trie_words = max(self.peak_trie_words, other.peak_trie_words)
        self.peak_frontier = max(self.peak_frontier, other.peak_frontier)
        for kind, calls in other.intersection_calls.items():
            self.intersection_calls[kind] = (
                self.intersection_calls.get(kind, 0) + calls
            )
        self.chunk_halvings += other.chunk_halvings
        self.spilled_chunks += other.spilled_chunks
        self.peak_tracked_bytes = max(
            self.peak_tracked_bytes, other.peak_tracked_bytes
        )
        self.cancelled_at_dispatch += other.cancelled_at_dispatch
        for stage, seconds in other.stage_wall_s.items():
            self.stage_wall_s[stage] = (
                self.stage_wall_s.get(stage, 0.0) + seconds
            )
        return self
