"""Memory governor: a soft host-byte budget for PA/CA allocations.

The paper's hybrid BFS–DFS chunking (§4.1.2) exists because the full
frontier does not fit in device memory; the simulated device budget
(``trie_buffer_fraction`` of free device words) reproduces that.  What
the seed had no bound on at all is **host** memory: a long enumeration
with a deep stack of pending chunks grows without limit and dies on OOM
instead of degrading.

:class:`MemoryGovernor` closes that gap.  It tracks the live PA/CA
footprint of a run (in bytes; one trie word is one ``int64``), and:

* below ``soft_fraction`` of the budget it does nothing;
* past ``soft_fraction`` it **halves the BFS chunk size** — repeatedly,
  one extra halving per half-of-the-remaining-headroom consumed — so a
  run under pressure degrades smoothly toward paper-style DFS-chunked
  execution (chunk size 1 = pure DFS) instead of aborting;
* past ``high_water`` it asks the caller to **spill** completed frontier
  chunks to the checkpoint store (:meth:`should_spill`); the durable
  runner (:mod:`repro.checkpoint.runner`) honours that by serialising
  the shallow end of its work stack to disk.

The governor never changes *what* is enumerated — only the order and
granularity — so counts are bit-identical with and without a budget.
All decisions are functions of tracked bytes, never of the wall clock,
keeping the core engine deterministic (analysis rule RP002).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryGovernor", "BYTES_PER_WORD"]

BYTES_PER_WORD = 8
"""Size of one trie word (PA or CA entry): one ``int64``."""


@dataclass
class MemoryGovernor:
    """Tracks live PA/CA bytes against a soft budget.

    Parameters
    ----------
    budget_bytes:
        The soft budget; ``None`` disables governing entirely (every
        query returns the unmodified chunk size and ``should_spill`` is
        always ``False``) while still tracking the peak footprint.
    soft_fraction:
        Fraction of the budget at which chunk halving starts.
    high_water:
        Fraction of the budget past which completed frontier chunks
        should be spilled to the checkpoint store.
    """

    budget_bytes: int | None = None
    soft_fraction: float = 0.5
    high_water: float = 0.85
    tracked_bytes: int = 0
    peak_tracked_bytes: int = 0
    chunk_halvings: int = 0
    spill_count: int = 0
    forced_pressure: float | None = None

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive (or None)")
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ValueError("soft_fraction must be in (0, 1]")
        if not self.soft_fraction <= self.high_water <= 1.0:
            raise ValueError("high_water must be in [soft_fraction, 1]")

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: "object") -> "MemoryGovernor":
        """Build a governor from ``CuTSConfig.memory_budget_mb``
        (``0`` = unlimited)."""
        budget_mb = int(getattr(config, "memory_budget_mb", 0))
        budget = budget_mb * 1024 * 1024 if budget_mb > 0 else None
        return cls(budget_bytes=budget)

    @property
    def budget_words(self) -> int | None:
        """The budget expressed in trie words (``None`` = unlimited)."""
        if self.budget_bytes is None:
            return None
        return self.budget_bytes // BYTES_PER_WORD

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def observe_words(self, words: int) -> None:
        """Set the current live footprint to ``words`` trie words."""
        self.tracked_bytes = words * BYTES_PER_WORD
        if self.tracked_bytes > self.peak_tracked_bytes:
            self.peak_tracked_bytes = self.tracked_bytes

    @property
    def pressure(self) -> float:
        """Tracked bytes over budget (``0.0`` when unlimited).

        ``forced_pressure`` — set by the service fault injector to
        simulate an OOM episode — acts as a floor, so every consumer
        (admission control, degraded mode, chunk halving) reacts to a
        simulated spike exactly as it would to a real one.
        """
        base = (
            0.0
            if self.budget_bytes is None
            else self.tracked_bytes / self.budget_bytes
        )
        if self.forced_pressure is not None:
            return max(base, self.forced_pressure)
        return base

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def effective_chunk(self, base_chunk: int) -> int:
        """The BFS chunk size to use at the current pressure.

        Halves ``base_chunk`` once when pressure crosses
        ``soft_fraction``, then once more every time half of the
        remaining headroom is consumed (0.5 → 0.75 → 0.875 → ...), down
        to 1 (pure DFS).  Below the soft threshold the base chunk is
        returned untouched.
        """
        if self.budget_bytes is None:
            return base_chunk
        pressure = self.pressure
        chunk = base_chunk
        threshold = self.soft_fraction
        while pressure >= threshold and chunk > 1:
            chunk //= 2
            threshold = (1.0 + threshold) / 2.0
        chunk = max(1, chunk)
        if chunk < base_chunk:
            self.chunk_halvings += 1
        return chunk

    def should_spill(self) -> bool:
        """Whether the caller should move pending chunks to disk."""
        return self.budget_bytes is not None and self.pressure >= self.high_water

    def note_spill(self, count: int = 1) -> None:
        """Record ``count`` chunks spilled to the checkpoint store."""
        self.spill_count += count
