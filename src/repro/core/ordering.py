"""Query-vertex matching order.

Paper §4 / §4.1.2: the root is the query vertex with maximum degree
(in + out), minimum id breaking ties; each subsequent vertex is chosen
among the neighbours of the already-matched set, again by maximum degree
then minimum id.  This keeps every step connected to the partial path
(so candidate sets shrink through intersections) and minimises the
level-1 candidate count — §6.3 credits "superior query node ordering"
for much of the speedup.

The ``"id"`` ordering reproduces the naive choice GSI-class systems make
and feeds the ordering ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.degree import total_degrees

__all__ = [
    "MatchOrder",
    "max_degree_order",
    "id_order",
    "max_constraints_order",
    "rare_label_order",
    "build_order",
    "ORDERING_STRATEGIES",
]


@dataclass(frozen=True)
class MatchOrder:
    """A matching order plus the per-step adjacency constraints.

    Attributes
    ----------
    sequence:
        ``sequence[n]`` is the query vertex matched at step ``n``.
    forward_constraints:
        ``forward_constraints[n]`` lists step positions ``j < n`` with a
        query edge ``(sequence[j], sequence[n])`` — the new candidate must
        be a **child** of the data vertex matched at step ``j``.
    backward_constraints:
        positions ``j < n`` with a query edge ``(sequence[n],
        sequence[j])`` — the candidate must be a **parent** of step
        ``j``'s match.
    """

    sequence: tuple[int, ...]
    forward_constraints: tuple[tuple[int, ...], ...]
    backward_constraints: tuple[tuple[int, ...], ...]

    @property
    def num_steps(self) -> int:
        return len(self.sequence)

    def constraints_at(self, n: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(forward, backward) constraint positions for step ``n``."""
        return self.forward_constraints[n], self.backward_constraints[n]


def _constraints_for(query: CSRGraph, seq: list[int]) -> MatchOrder:
    """Derive per-step edge constraints for a fixed sequence."""
    pos = {v: i for i, v in enumerate(seq)}
    fwd: list[tuple[int, ...]] = []
    bwd: list[tuple[int, ...]] = []
    for n, v in enumerate(seq):
        f = sorted(pos[p] for p in query.parents(v) if pos[p] < n)
        b = sorted(pos[c] for c in query.children(v) if pos[c] < n)
        fwd.append(tuple(f))
        bwd.append(tuple(b))
    return MatchOrder(
        sequence=tuple(seq),
        forward_constraints=tuple(fwd),
        backward_constraints=tuple(bwd),
    )


def max_degree_order(query: CSRGraph) -> MatchOrder:
    """The paper's ordering: max-degree root, connected max-degree growth.

    Falls back to the globally max-degree unmatched vertex when the query
    is disconnected (such a step carries no adjacency constraint; the
    matcher handles it with a full degree-filtered candidate scan).
    """
    n = query.num_vertices
    if n == 0:
        return MatchOrder(sequence=(), forward_constraints=(), backward_constraints=())
    deg = total_degrees(query)
    matched = np.zeros(n, dtype=bool)
    # np.argmax breaks ties by lowest index == minimum node id, as required.
    seq = [int(np.argmax(deg))]
    matched[seq[0]] = True
    while len(seq) < n:
        # Frontier: unmatched vertices adjacent (either direction) to the
        # matched set.
        frontier = np.zeros(n, dtype=bool)
        for v in seq:
            frontier[query.children(v)] = True
            frontier[query.parents(v)] = True
        frontier &= ~matched
        pool = frontier if frontier.any() else ~matched
        candidates = np.nonzero(pool)[0]
        pick = candidates[int(np.argmax(deg[candidates]))]
        seq.append(int(pick))
        matched[pick] = True
    return _constraints_for(query, seq)


def id_order(query: CSRGraph) -> MatchOrder:
    """GSI-style ordering: vertex 0 first, then lowest-id connected growth.

    Kept connectivity-respecting (a disconnected-id order would make the
    baseline pathologically bad in a way real GSI is not); the difference
    from :func:`max_degree_order` is purely the *priority*, which is what
    the paper's candidate-count comparison isolates.
    """
    n = query.num_vertices
    if n == 0:
        return MatchOrder(sequence=(), forward_constraints=(), backward_constraints=())
    matched = np.zeros(n, dtype=bool)
    seq = [0]
    matched[0] = True
    while len(seq) < n:
        frontier = np.zeros(n, dtype=bool)
        for v in seq:
            frontier[query.children(v)] = True
            frontier[query.parents(v)] = True
        frontier &= ~matched
        pool = frontier if frontier.any() else ~matched
        pick = int(np.nonzero(pool)[0][0])
        seq.append(pick)
        matched[pick] = True
    return _constraints_for(query, seq)


def max_constraints_order(query: CSRGraph) -> MatchOrder:
    """RI-style ordering: maximise edges into the matched prefix.

    Root as in the paper (max degree, min id); each next vertex is the
    frontier vertex with the most already-matched neighbours — every
    extra constraint is one more intersection pruning the candidates —
    ties broken by degree then id.  An ordering ablation comparator.
    """
    n = query.num_vertices
    if n == 0:
        return MatchOrder(sequence=(), forward_constraints=(), backward_constraints=())
    deg = total_degrees(query)
    matched = np.zeros(n, dtype=bool)
    seq = [int(np.argmax(deg))]
    matched[seq[0]] = True
    while len(seq) < n:
        constraint_count = np.zeros(n, dtype=np.int64)
        for v in seq:
            constraint_count[query.children(v)] += 1
            constraint_count[query.parents(v)] += 1
        constraint_count[matched] = -1
        best = int(constraint_count.max())
        if best <= 0:
            pool = np.nonzero(~matched)[0]
        else:
            pool = np.nonzero(constraint_count == best)[0]
        pick = pool[int(np.argmax(deg[pool]))]
        seq.append(int(pick))
        matched[pick] = True
    return _constraints_for(query, seq)


def rare_label_order(query: CSRGraph, data: CSRGraph | None = None) -> MatchOrder:
    """QuickSI-inspired ordering: start from the rarest-label vertex.

    "QuickSI refines the query graph's searching order to access the
    vertex with the most infrequent label as fast as it can" (§3).
    Label frequencies come from the *data* graph when given (the correct
    notion of rarity), else from the query itself; unlabeled queries fall
    back to :func:`max_degree_order`.  Growth stays connected,
    prioritising rare labels then degree.
    """
    if query.labels is None:
        return max_degree_order(query)
    n = query.num_vertices
    if n == 0:
        return MatchOrder(sequence=(), forward_constraints=(), backward_constraints=())
    source = data.labels if data is not None and data.labels is not None else query.labels
    freq_map: dict[int, int] = {}
    vals, counts = np.unique(source, return_counts=True)
    freq_map = {int(v): int(c) for v, c in zip(vals, counts)}
    freqs = np.array(
        [freq_map.get(int(lab), 0) for lab in query.labels], dtype=np.int64
    )
    deg = total_degrees(query)
    matched = np.zeros(n, dtype=bool)
    # rarest label first; ties by max degree then min id
    order_key = np.lexsort((np.arange(n, dtype=np.int64), -deg, freqs))
    seq = [int(order_key[0])]
    matched[seq[0]] = True
    while len(seq) < n:
        frontier = np.zeros(n, dtype=bool)
        for v in seq:
            frontier[query.children(v)] = True
            frontier[query.parents(v)] = True
        frontier &= ~matched
        pool = np.nonzero(frontier if frontier.any() else ~matched)[0]
        best = pool[np.lexsort((pool, -deg[pool], freqs[pool]))[0]]
        seq.append(int(best))
        matched[best] = True
    return _constraints_for(query, seq)


ORDERING_STRATEGIES = ("max_degree", "id", "max_constraints", "rare_label")
"""Strategy names accepted by :func:`build_order` / ``CuTSConfig``."""


def build_order(query: CSRGraph, strategy: str) -> MatchOrder:
    """Dispatch on the ordering strategy name (see CuTSConfig.ordering)."""
    if strategy == "max_degree":
        return max_degree_order(query)
    if strategy == "id":
        return id_order(query)
    if strategy == "max_constraints":
        return max_constraints_order(query)
    if strategy == "rare_label":
        return rare_label_order(query)
    raise ValueError(f"unknown ordering strategy {strategy!r}")
