"""Degree-based candidate filtering (paper Definition 5).

A data vertex ``u`` is a candidate for query vertex ``v`` iff
``deg_out(v) <= deg_out(u)`` and ``deg_in(v) <= deg_in(u)`` — a match must
supply at least as many outgoing and incoming edges as the query demands.
(The paper states the undirected form; for bidirected graphs the two
coincide.)
"""

from __future__ import annotations

import numpy as np

from ..gpusim.cost import CostModel
from ..graph.csr import CSRGraph

__all__ = ["root_candidates", "degree_filter_mask", "neighborhood_filter_mask"]


def degree_filter_mask(
    data: CSRGraph, query: CSRGraph, q: int, vertices: np.ndarray
) -> np.ndarray:
    """Boolean mask: which ``vertices`` pass the filters for ``q``.

    Applies the Definition-5 degree filter, plus label equality when both
    graphs are labeled (the labeled-matching extension).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    q_out = query.out_degree(q)
    q_in = query.in_degree(q)
    out_ok = (data.indptr[vertices + 1] - data.indptr[vertices]) >= q_out
    in_ok = (data.rindptr[vertices + 1] - data.rindptr[vertices]) >= q_in
    mask = out_ok & in_ok
    if data.labels is not None and query.labels is not None:
        mask &= data.labels[vertices] == query.labels[q]
    return mask


def neighborhood_filter_mask(
    data: CSRGraph, query: CSRGraph, q: int, vertices: np.ndarray
) -> np.ndarray:
    """GraphQL/GADDI-style neighbourhood-degree dominance filter.

    Paper §3: "GraphQL and GADDI further prune out the candidates by
    putting neighborhood information into consideration."  A candidate
    ``v`` for query vertex ``q`` must supply, for every ``k``, at least
    ``k + 1`` out-neighbours whose out-degree reaches the ``k``-th
    largest out-degree among ``q``'s out-neighbours — otherwise some
    neighbour of ``q`` can never be matched inside ``N(v)``.

    Sound (never removes a true candidate): any embedding maps N_out(q)
    injectively into N_out(v) with degree dominance, so the counting
    condition holds.  Implemented with one ``reduceat`` pass per
    threshold (|N(q)| ≤ query size, so a handful of passes).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    q_neighbor_degs = np.sort(
        query.indptr[query.children(q) + 1] - query.indptr[query.children(q)]
    )[::-1]
    mask = np.ones(len(vertices), dtype=bool)
    if q_neighbor_degs.size == 0 or len(vertices) == 0:
        return mask
    starts = data.indptr[vertices]
    ends = data.indptr[vertices + 1]
    counts = ends - starts
    # Flatten all candidates' neighbour lists once.
    total = int(counts.sum())
    if total == 0:
        return mask & (q_neighbor_degs.size == 0)
    owner = np.repeat(np.arange(len(vertices), dtype=np.int64), counts)
    cum = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    offsets = np.arange(total, dtype=np.int64) - cum[owner] + starts[owner]
    neigh = data.indices[offsets]
    neigh_deg = data.indptr[neigh + 1] - data.indptr[neigh]
    nonempty = counts > 0
    red_idx = cum[:-1][nonempty]
    for k, threshold in enumerate(q_neighbor_degs):
        ok_flags = (neigh_deg >= threshold).astype(np.int64)
        per_candidate = np.zeros(len(vertices), dtype=np.int64)
        if red_idx.size:
            per_candidate[nonempty] = np.add.reduceat(ok_flags, red_idx)
        mask &= per_candidate >= (k + 1)
    return mask


def root_candidates(
    data: CSRGraph,
    query: CSRGraph,
    q0: int,
    cost: CostModel | None = None,
    *,
    neighborhood_filter: bool = False,
) -> np.ndarray:
    """All candidates of the root query vertex ``q0`` (Definition 5 scan).

    Charges one full-vertex-set scan to ``cost`` when given: the init
    kernel reads both degree arrays (coalesced) and writes the surviving
    candidate ids (one atomic-claimed compaction).
    """
    all_vertices = np.arange(data.num_vertices, dtype=np.int64)
    mask = degree_filter_mask(data, query, q0, all_vertices)
    out = all_vertices[mask]
    extra_words = 0
    if neighborhood_filter and len(out):
        nmask = neighborhood_filter_mask(data, query, q0, out)
        # the filter walks each surviving candidate's adjacency once
        extra_words = int(
            (data.indptr[out + 1] - data.indptr[out]).sum()
        )
        out = out[nmask]
    if cost is not None:
        n = data.num_vertices
        cost.charge_dram_read(2 * n + extra_words)  # degree arrays (+ scan)
        cost.charge_dram_write(len(out))
        cost.charge_instructions(2 * n + extra_words)
        cost.charge_atomics(max(1, len(out) // cost.device.warp_size))
    return out
