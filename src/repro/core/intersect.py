"""Intersection micro-kernels (paper Algorithm 2 / §4.1.3).

Given vertices ``a1 .. a_chi`` of the data graph, all three kernels
compute the common-children set ``∩_i children(a_i)``; they differ in the
memory they touch — which is the point of the paper's comparison:

* :func:`scatter_vector_intersection` — SpGEMM-style scatter vector;
  time/movement ``O(chi * delta)`` but ``O(|V|)`` space *per worker*,
  which rules it out on a GPU with thousands of concurrent warps;
* :func:`c_intersection` — buffer the children of ``a1`` (shared memory),
  stream every other child list against it; ``O(chi * delta)`` movement,
  ``O(delta)`` space;
* :func:`p_intersection` — buffer the children of ``a1``, then verify
  each via its **parent** list containing ``a2..a_chi``; movement
  ``O(delta + (delta-1) * delta_in)`` — cheaper when the remaining
  ``a_i`` are huge hubs but survivors are few.

:func:`adaptive_intersection` picks c- vs p- by the modeled data
movement, the paper's "we adaptively choose the intersection method".

Every kernel optionally charges a :class:`~repro.gpusim.cost.CostModel`
with its movement so the ablation benchmark reproduces the cost gap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..gpusim.cost import CostModel
from ..graph.csr import CSRGraph, INDEX_DTYPE

__all__ = [
    "scatter_vector_intersection",
    "c_intersection",
    "p_intersection",
    "adaptive_intersection",
    "estimate_c_cost",
    "estimate_p_cost",
    "fused_constraint_mask",
]


def _as_vertex_array(vertices: np.ndarray | Sequence[int]) -> np.ndarray:
    arr = np.asarray(vertices, dtype=np.int64).ravel()
    if arr.size == 0:
        raise ValueError("need at least one vertex to intersect")
    return arr


def scatter_vector_intersection(
    graph: CSRGraph,
    vertices: np.ndarray | Sequence[int],
    cost: CostModel | None = None,
    scatter: np.ndarray | None = None,
) -> np.ndarray:
    """SV kernel: count hits in an ``O(|V|)`` scatter array.

    ``scatter`` may be passed in (zeroed, length ``|V|``) to model the
    per-worker persistent buffer; it is returned zeroed again.
    """
    verts = _as_vertex_array(vertices)
    chi = len(verts)
    if scatter is not None and scatter.shape != (graph.num_vertices,):
        raise ValueError("scatter buffer must have length |V|")
    # One bincount over the concatenated child lists computes every
    # vertex's hit count in a single pass — identical to the per-vertex
    # np.add.at scatter loop it replaces, without |verts| separate
    # scatter/zero passes over the buffer.  The modeled device still
    # performs the scattered increments, so the cost charges below are
    # unchanged; a caller-provided ``scatter`` buffer (the modeled
    # per-worker O(|V|) allocation) is left zeroed, as before.
    touched = [graph.children(a) for a in verts]
    flat = np.concatenate(touched) if len(touched) > 1 else touched[0]
    moved = len(flat)
    counts = np.bincount(flat, minlength=graph.num_vertices)
    first = touched[0]
    result = first[counts[first] == chi]
    if cost is not None:
        cost.charge_dram_read(moved, segments=chi)
        # Scatter increments are one transaction each — uncoalesced.
        cost.charge_dram_write(moved, segments=max(1, moved))
        cost.charge_dram_read(len(first))  # collect pass re-reads children(a1)
        cost.charge_dram_write(len(result))
        cost.charge_instructions(2 * moved + len(first))
    return result


def c_intersection(
    graph: CSRGraph,
    vertices: np.ndarray | Sequence[int],
    cost: CostModel | None = None,
) -> np.ndarray:
    """c-kernel: shared-memory buffer of ``children(a1)``, stream the rest.

    Results are sorted (CSR adjacency is sorted and filtering preserves
    order).
    """
    verts = _as_vertex_array(vertices)
    buffer = graph.children(verts[0])
    moved = len(buffer)
    shared_writes = len(buffer)
    shared_reads = 0
    for a in verts[1:]:
        if buffer.size == 0:
            break
        kids = graph.children(a)
        moved += len(kids)
        shared_reads += len(kids)
        # Membership of each buffered element in kids — the warp streams
        # kids through registers and probes the shared buffer.
        buffer = buffer[np.isin(buffer, kids, assume_unique=True)]
    if cost is not None:
        cost.charge_dram_read(moved, segments=len(verts))
        cost.charge_shared(reads=shared_reads, writes=shared_writes)
        cost.charge_dram_write(len(buffer))
        cost.charge_instructions(moved + len(buffer))
    return np.ascontiguousarray(buffer)


def p_intersection(
    graph: CSRGraph,
    vertices: np.ndarray | Sequence[int],
    cost: CostModel | None = None,
) -> np.ndarray:
    """p-kernel: verify ``children(a1)`` via their parent lists.

    A candidate ``v`` survives iff every remaining ``a_i`` appears in
    ``parents(v)``; movement ``O(delta + survivors * delta_in)``.
    """
    verts = _as_vertex_array(vertices)
    buffer = graph.children(verts[0])
    moved = len(buffer)
    if len(verts) > 1 and buffer.size:
        rest = verts[1:]
        mask = np.ones(len(buffer), dtype=bool)
        for a in rest:
            # a in parents(v)  <=>  edge (a, v) exists.
            mask &= graph.has_edges(
                np.full(len(buffer), a, dtype=INDEX_DTYPE), buffer
            )
        # Parent-list movement: each buffered candidate's parent list is
        # scanned (up to finding the witnesses).
        moved += int(
            (graph.rindptr[buffer + 1] - graph.rindptr[buffer]).sum()
        )
        buffer = buffer[mask]
    if cost is not None:
        cost.charge_dram_read(moved, segments=1 + len(buffer))
        cost.charge_shared(writes=min(moved, len(buffer) or moved))
        cost.charge_dram_write(len(buffer))
        cost.charge_instructions(moved)
    return np.ascontiguousarray(buffer)


def estimate_c_cost(graph: CSRGraph, verts: np.ndarray) -> int:
    """Modeled word movement of :func:`c_intersection` for these inputs."""
    degs = graph.indptr[verts + 1] - graph.indptr[verts]
    return int(degs.sum())


def estimate_p_cost(graph: CSRGraph, verts: np.ndarray) -> int:
    """Modeled word movement of :func:`p_intersection` for these inputs."""
    kids = graph.children(int(verts[0]))
    in_degs = graph.rindptr[kids + 1] - graph.rindptr[kids]
    return int(len(kids) + in_degs.sum())


def fused_constraint_mask(
    graph: CSRGraph,
    lanes: Sequence[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Conjunction of edge-existence probes, one sweep for all lanes.

    Each ``(sources, targets)`` pair in ``lanes`` asks whether edge
    ``(sources[i], targets[i])`` exists; all pairs have equal length
    ``L``.  Rather than running one segmented binary search per
    constraint, the lanes are concatenated and resolved in a **single**
    segmented-searchsorted sweep over the out-CSR (a backward
    constraint is expressed by swapping its pair), then AND-reduced
    back to length ``L`` — the batched membership pass of the columnar
    expansion engine's fused filter.
    """
    if not lanes:
        raise ValueError("need at least one constraint lane")
    if len(lanes) == 1:
        src, tgt = lanes[0]
        return graph.has_edges(src, tgt)
    sources = np.concatenate([src for src, _ in lanes])
    targets = np.concatenate([tgt for _, tgt in lanes])
    flat = graph.has_edges(sources, targets)
    width = len(lanes[0][0])
    out: np.ndarray = np.logical_and.reduce(
        flat.reshape(len(lanes), width), axis=0
    )
    return out


def adaptive_intersection(
    graph: CSRGraph,
    vertices: np.ndarray | Sequence[int],
    cost: CostModel | None = None,
) -> np.ndarray:
    """Pick the cheaper of c- and p-intersection by modeled movement.

    Puts the smallest-fanout vertex first (its children seed the buffer),
    then compares the two kernels' movement estimates.
    """
    verts = _as_vertex_array(vertices)
    degs = graph.indptr[verts + 1] - graph.indptr[verts]
    order = np.argsort(degs, kind="stable")
    verts = verts[order]
    if len(verts) == 1:
        return c_intersection(graph, verts, cost)
    if estimate_p_cost(graph, verts) < estimate_c_cost(graph, verts):
        return p_intersection(graph, verts, cost)
    return c_intersection(graph, verts, cost)
