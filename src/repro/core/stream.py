"""Streaming match enumeration.

The hybrid BFS–DFS chunking (§4.1.2) writes each chunk's completed
matches out before loading the next chunk — which means results can be
*streamed*: a consumer can process embeddings batch by batch with memory
bounded by the chunk size, never holding the full (possibly huge) result
set.  :func:`iter_matches` exposes that as a generator.

The traversal is the same worker-stack formulation the distributed
runtime uses (structural trie sharing, LIFO = depth-first), driven by the
matcher's stepwise API, so counts and costs agree with
:meth:`~repro.core.matcher.CuTSMatcher.match`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graph.csr import CSRGraph
from ..storage.trie import PathTrie, TrieLevel
from .matcher import CuTSMatcher

__all__ = ["iter_matches"]

_Columns = tuple[np.ndarray, ...] | None
"""Ancestor columns carried on the work stack (None = rebuild)."""


def iter_matches(
    matcher: CuTSMatcher,
    query: CSRGraph,
    *,
    batch_size: int = 1024,
) -> Iterator[np.ndarray]:
    """Yield embeddings of ``query`` as ``(k, |V_Q|)`` batches.

    Batches have at most ``batch_size`` rows (the final one may be
    smaller); columns are in query-vertex order, exactly like
    ``MatchResult.matches``.  Peak memory is bounded by the engine's
    chunk size times the query depth, independent of the total match
    count.

    Parameters
    ----------
    matcher:
        A :class:`CuTSMatcher` bound to the data graph.
    query:
        The (weakly connected) query graph.
    batch_size:
        Maximum rows per yielded batch.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if query.num_vertices == 0:
        raise ValueError("query graph must have at least one vertex")
    state = matcher.make_run_state(query)
    n_steps = state.order.num_steps
    inv = np.empty(n_steps, dtype=np.int64)
    inv[np.asarray(state.order.sequence, dtype=np.int64)] = np.arange(
        n_steps, dtype=np.int64
    )

    if query.num_vertices > matcher.data.num_vertices:
        return

    trie = matcher.initial_frontier(state)
    roots = trie.num_paths(0)
    pending: list[np.ndarray] = []
    pending_rows = 0

    def flush(force: bool = False) -> Iterator[np.ndarray]:
        nonlocal pending, pending_rows
        while pending_rows >= batch_size or (force and pending_rows > 0):
            stacked = np.concatenate(pending, axis=0)
            out, rest = stacked[:batch_size], stacked[batch_size:]
            pending = [rest] if rest.size else []
            pending_rows = len(rest)
            yield np.ascontiguousarray(out)

    if n_steps == 1:
        if roots:
            pending.append(trie.levels[0].ca.reshape(-1, 1))
            pending_rows = roots
        yield from flush(force=True)
        return

    # Stack entries carry the frontier's materialised ancestor columns
    # for the columnar engine (None = rebuild from the trie, and always
    # None on the reference engine); columns are sliced in lockstep with
    # governor chunking and gathered forward level-to-level, mirroring
    # the recursive engine's incremental ancestor carry.
    stack: list[tuple[PathTrie, int, np.ndarray, _Columns]] = []
    if roots:
        stack.append((trie, 1, np.arange(roots, dtype=np.int64), None))
    while stack:
        item_trie, step, frontier, cols = stack.pop()
        # Governor-aware chunk sizing: under memory pressure the BFS
        # chunk shrinks (toward pure DFS), bounding the live footprint.
        chunk = state.governor.effective_chunk(matcher.config.chunk_size)
        if frontier.size > chunk:
            rest_cols = (
                tuple(c[chunk:] for c in cols) if cols is not None else None
            )
            stack.append((item_trie, step, frontier[chunk:], rest_cols))
            frontier = frontier[:chunk]
            if cols is not None:
                cols = tuple(c[:chunk] for c in cols)
        if cols is None and state.plan is not None:
            cols = item_trie.columns_at(item_trie.depth - 1, frontier)
        pa, ca = matcher.expand_frontier(
            item_trie, step, frontier, state, columns=cols
        )
        if len(ca) == 0:
            continue
        child = PathTrie(levels=[*item_trie.levels, TrieLevel(pa=pa, ca=ca)])
        state.governor.observe_words(
            child.total_storage_words + int(len(ca))
        )
        if step + 1 == n_steps:
            paths = child.paths_at(child.depth - 1)
            pending.append(paths[:, inv])
            pending_rows += len(paths)
            yield from flush()
        else:
            child_cols: _Columns = None
            if cols is not None:
                # Recover chunk-local parent positions from the global
                # indices (stream frontiers are strictly increasing).
                pa_local = np.searchsorted(frontier, pa)
                child_cols = tuple(
                    np.take(c, pa_local) for c in cols
                ) + (ca,)
            stack.append(
                (child, step + 1, np.arange(len(ca), dtype=np.int64),
                 child_cols)
            )
    yield from flush(force=True)
