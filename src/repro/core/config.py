"""Configuration for the cuTS matcher."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpusim.device import V100, DeviceSpec

__all__ = ["CuTSConfig", "IntersectionStrategy"]

IntersectionStrategy = str
"""One of ``"adaptive"``, ``"c"``, ``"p"`` (micro-kernel choice, §4.1.3)."""

_VALID_STRATEGIES = ("adaptive", "c", "p")
_VALID_ORDERINGS = ("max_degree", "id", "max_constraints", "rare_label")
_VALID_ENGINES = ("columnar", "reference")


@dataclass(frozen=True)
class CuTSConfig:
    """Tunables of the cuTS engine; defaults follow the paper.

    Attributes
    ----------
    device:
        Simulated device the kernels are charged to.
    chunk_size:
        Hybrid BFS–DFS chunk width; "we empirically found that chunk size
        of 512 achieves a good performance" (§4.1.2).
    randomize_placement:
        Shuffle partial-path placement before the strided schedule — the
        paper's intra-warp load-balance fix.  On by default.
    intersection:
        Micro-kernel selection: ``"adaptive"`` (paper default), or pin
        ``"c"`` / ``"p"`` for the ablation.
    ordering:
        Query-vertex ordering: ``"max_degree"`` (paper) or ``"id"``
        (GSI-style, kept for the ordering ablation).
    engine:
        Expansion-kernel implementation.  ``"columnar"`` (default) runs
        the allocation-free columnar frontier engine
        (:mod:`repro.core.columnar`); ``"reference"`` runs the original
        straightforward expansion path, kept as the bit-exact oracle the
        columnar engine is tested against.  Counts, materialised rows,
        modeled time and statistics are identical between the two.
    profile_expansion:
        Record per-stage wall-clock timings (anchor-gather / filter /
        intersection / write-out) of every fused expansion into
        ``SearchStats.stage_wall_s``.  Off by default — the reads cost a
        few ``perf_counter`` calls per expansion and the timings are
        diagnostic only (they never influence control flow).
    virtual_warp_size:
        Fixed virtual-warp width; ``0`` (default) derives it from the
        data graph's average degree (§4.1.2).
    trie_buffer_fraction:
        Fraction of free device memory claimed for the PA/CA arrays —
        "two big arrays whose size equals half of the free space" ⇒ 0.5.
    seed:
        Seed for the placement shuffle.
    max_materialized:
        Safety cap on materialised matches (counting is never capped).
    trace_kernels:
        Retain a per-launch kernel trace on the run's cost model (see
        :mod:`repro.gpusim.trace`).  Off by default (it grows with the
        number of launches).
    neighborhood_filter:
        Apply the GraphQL/GADDI-style neighbourhood-degree dominance
        filter to the root candidate set (§3; an optional extension —
        the paper's engine uses the plain degree filter).  Sound: never
        changes the match count, only prunes earlier.
    workers:
        Worker **processes** for the multi-core execution engine
        (:mod:`repro.parallel`): the level-0 candidate set is over-split
        into strided intervals (Algorithm 3's ``init_match`` striding,
        one CPU core playing one GPU) and interval results are merged
        exactly.  ``1`` (default) runs the classic in-process engine.
    oversplit:
        Strided intervals submitted per worker (the work queue holds
        ``oversplit * workers`` intervals), so a fast worker steals the
        slack of a slow one — the load-balance margin of §4.2.
    ack_timeout_ms:
        Grace period past the modeled round trip before a sender
        retransmits an unacknowledged work envelope (distributed
        reliability layer).
    retry_backoff:
        Multiplier applied to the retransmit interval after each
        attempt (exponential backoff).
    max_retries:
        Retransmissions allowed before the sender abandons a shipment,
        requeues the work locally, and releases its claim on the target.
    heartbeat_interval_ms:
        Simulated-time spacing of rank liveness heartbeats.
    heartbeat_timeout_ms:
        Silence past which a rank is declared crashed and recovery runs.
    memory_budget_mb:
        Soft host-memory budget (MiB) for live PA/CA allocations,
        enforced by :class:`~repro.core.governor.MemoryGovernor`: under
        pressure the BFS chunk size is halved (degrading toward pure
        DFS) and, in durable runs, completed frontier chunks are spilled
        to the checkpoint store.  ``0`` (default) = unlimited.  Counts
        are bit-identical with and without a budget.
    checkpoint_every:
        Durable-job snapshot cadence: expansions between checkpoint
        snapshots in the serial engine, event-loop iterations between
        ledger snapshots in the distributed runtime.
    lease_timeout_s:
        Worker watchdog: wall-clock silence (no heartbeat) past which a
        multi-core shard lease is considered lost and the shard is
        re-leased to another worker.
    lease_retries:
        Re-lease attempts per shard (beyond the first lease) before the
        multi-core engine gives up and raises.
    service_queue_depth:
        Matching service (:mod:`repro.service`): bound on the scheduler
        queue.  A submit past this depth is **rejected with a reason**
        (admission control), never silently dropped.
    service_batch_max:
        Maximum requests the service dispatcher coalesces into one
        batched same-graph matcher pass.
    service_cache_bytes:
        Byte budget of the service's LRU result+plan cache; entries are
        evicted least-recently-used past it, and the live cache bytes
        are charged against the memory governor.
    service_max_query_vertices:
        Admission bound on query size: requests whose query has more
        vertices are rejected as oversized.  ``0`` (default) disables
        the bound.
    service_request_timeout_s:
        Per-connection socket timeout of the HTTP face: a client that
        stalls mid-request (slowloris) is disconnected after this many
        seconds instead of pinning a handler thread forever.
    service_max_body_bytes:
        Upper bound on an HTTP request body; larger bodies are refused
        with ``413 Payload Too Large`` before being read into memory.
    service_degraded_after:
        Consecutive dispatch-loop ticks at or above the governor's
        high-water pressure before the service enters **degraded
        read-only mode** (cached count-only answers are served, all
        other work is rejected with ``503``); the same count of healthy
        ticks exits it.  Hysteresis keeps one transient spike from
        flapping the mode.
    service_ranks:
        Replicated serving (:mod:`repro.service.cluster`): number of
        ranks in the cluster.  ``1`` (default) serves from a single
        :class:`~repro.service.MatchingService` with no router.
    service_replication:
        Replicas per shard on the cluster's consistent-hash ring
        (clamped to the rank count).  A shard with fewer than a
        majority of its replicas reachable is **below quorum** and
        sheds load with ``503`` + ``Retry-After``.
    service_route_timeout_s:
        Router-side wall clock per routed attempt: a replica that has
        not answered within this window is treated as failed and the
        request fails over to the next replica (the original attempt
        is revoked — its late answer, if any, is never integrated).
    service_heal_after_ticks:
        Supervisor ticks a rank must stay crashed before the cluster
        restarts it from its durable state dir; the restarted replica
        is re-admitted to the ring only after it has caught up from
        the content-addressed graph store.
    versioning_max_versions:
        Retained versions per named graph (head included).  Mutating a
        graph past this depth prunes the oldest retained version: its
        engine closes, its cache entries drop, and ``as_of`` requests
        against it are refused as pruned.  Must be >= 1 (``1`` keeps
        only the head — time travel effectively off).
    versioning_incremental:
        Serve a result-cache miss on a freshly committed version by
        incremental re-matching from the parent's cached result
        (dirty-ball re-execution + arithmetic merge) when the request
        shape allows it.  Off, every miss is a full re-match.  Count-
        invariant: the incremental path is gated by an equivalence
        oracle and produces the same counts by construction.
    """

    device: DeviceSpec = field(default=V100)
    chunk_size: int = 512
    randomize_placement: bool = True
    intersection: IntersectionStrategy = "adaptive"
    ordering: str = "max_degree"
    engine: str = "columnar"
    profile_expansion: bool = False
    virtual_warp_size: int = 0
    trie_buffer_fraction: float = 0.5
    seed: int = 0
    max_materialized: int | None = None
    trace_kernels: bool = False
    neighborhood_filter: bool = False
    workers: int = 1
    oversplit: int = 4
    ack_timeout_ms: float = 50.0
    retry_backoff: float = 2.0
    max_retries: int = 6
    heartbeat_interval_ms: float = 25.0
    heartbeat_timeout_ms: float = 100.0
    memory_budget_mb: int = 0
    checkpoint_every: int = 64
    lease_timeout_s: float = 30.0
    lease_retries: int = 2
    service_queue_depth: int = 64
    service_batch_max: int = 16
    service_cache_bytes: int = 32 * 1024 * 1024
    service_max_query_vertices: int = 0
    service_request_timeout_s: float = 30.0
    service_max_body_bytes: int = 8 * 1024 * 1024
    service_degraded_after: int = 3
    service_ranks: int = 1
    service_replication: int = 2
    service_route_timeout_s: float = 10.0
    service_heal_after_ticks: int = 2
    versioning_max_versions: int = 4
    versioning_incremental: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.intersection not in _VALID_STRATEGIES:
            raise ValueError(
                f"intersection must be one of {_VALID_STRATEGIES}, "
                f"got {self.intersection!r}"
            )
        if self.ordering not in _VALID_ORDERINGS:
            raise ValueError(
                f"ordering must be one of {_VALID_ORDERINGS}, "
                f"got {self.ordering!r}"
            )
        if self.engine not in _VALID_ENGINES:
            raise ValueError(
                f"engine must be one of {_VALID_ENGINES}, "
                f"got {self.engine!r}"
            )
        if self.virtual_warp_size < 0:
            raise ValueError("virtual_warp_size must be >= 0 (0 = auto)")
        if not 0.0 < self.trie_buffer_fraction <= 1.0:
            raise ValueError("trie_buffer_fraction must be in (0, 1]")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.oversplit < 1:
            raise ValueError("oversplit must be >= 1")
        if self.ack_timeout_ms <= 0:
            raise ValueError("ack_timeout_ms must be positive")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat_interval_ms must be positive")
        if self.heartbeat_timeout_ms < self.heartbeat_interval_ms:
            raise ValueError(
                "heartbeat_timeout_ms must be >= heartbeat_interval_ms"
            )
        if self.memory_budget_mb < 0:
            raise ValueError("memory_budget_mb must be >= 0 (0 = unlimited)")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if self.lease_retries < 0:
            raise ValueError("lease_retries must be non-negative")
        if self.service_queue_depth < 1:
            raise ValueError("service_queue_depth must be >= 1")
        if self.service_batch_max < 1:
            raise ValueError("service_batch_max must be >= 1")
        if self.service_cache_bytes < 0:
            raise ValueError("service_cache_bytes must be >= 0 (0 = no cache)")
        if self.service_max_query_vertices < 0:
            raise ValueError(
                "service_max_query_vertices must be >= 0 (0 = unlimited)"
            )
        if self.service_request_timeout_s <= 0:
            raise ValueError("service_request_timeout_s must be positive")
        if self.service_max_body_bytes < 1024:
            raise ValueError("service_max_body_bytes must be >= 1024")
        if self.service_degraded_after < 1:
            raise ValueError("service_degraded_after must be >= 1")
        if self.service_ranks < 1:
            raise ValueError("service_ranks must be >= 1")
        if self.service_replication < 1:
            raise ValueError("service_replication must be >= 1")
        if self.service_route_timeout_s <= 0:
            raise ValueError("service_route_timeout_s must be positive")
        if self.service_heal_after_ticks < 1:
            raise ValueError("service_heal_after_ticks must be >= 1")
        if self.versioning_max_versions < 1:
            raise ValueError("versioning_max_versions must be >= 1")
