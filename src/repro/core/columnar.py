"""Columnar frontier engine: allocation-free whole-frontier expansion.

The reference expansion path (kept in
:meth:`repro.core.matcher.CuTSMatcher._extend`) is algorithmically the
paper's fused kernel, but it is *Python-rate-limited*: every expansion
re-materialises the full ancestor matrix via
:meth:`~repro.storage.trie.PathTrie.paths_at`, allocates a fresh set of
``arange``/``repeat``/mask temporaries, and makes several fancy-index
round trips plus one ``has_edges`` pass per remaining constraint.  On
the chunked regimes the simulated device budget forces (§4.1.2), an
expansion touches only a few thousand pool lanes, so interpreter and
allocator overhead — not element work — dominates the wall clock.

This module rewrites that hot path as whole-frontier *table kernels*
over reusable buffers:

* :class:`ExpansionArena` — named, geometrically-grown workspace
  buffers (pool offsets, path ids, candidate gathers, masks), so
  steady-state expansion performs no workspace heap allocation beyond
  short-lived ``np.repeat`` temporaries; survivor arrays handed to the
  trie are freshly owned.
* :class:`QueryPlan` — per-(data, query, order) static tables computed
  once per run: a fused degree+label candidate table per step (one
  boolean gather replaces up to three comparison passes), the per-step
  constraint list, the injectivity column set (live-column analysis
  over ``constraints_at``), and the columns each future step reads.
* :class:`ColumnarEngine` — the fused expansion: anchor-adjacency pool
  gather, table filter, remaining-edge probes batched into one sweep
  (a packed adjacency bitset on small graphs, the
  :func:`~repro.core.intersect.fused_constraint_mask`
  segmented-searchsorted sweep otherwise), injectivity prefiltered by a
  per-path 64-bit Bloom signature carried level-to-level, with **no
  intermediate** ``np.nonzero`` round trips.

Three structural shortcuts keep the host work sublinear in what the
modeled kernel does (the *model* is never shortcut — every counter and
RNG draw is identical to the reference path's):

* **Symmetric elision** — on a symmetric data graph (``indptr ==
  rindptr`` and ``indices == rindices``, checked once) a backward
  constraint is the same predicate as its forward twin, so mirrored
  fanouts are computed once and probes against the anchor column are
  skipped entirely (membership in the anchor's adjacency already
  implies the edge).
* **Bloom injectivity** — each path carries a 64-bit signature of its
  ancestor set (bit ``v & 63``); a candidate whose bit is absent is
  provably new, so the exact column compare runs only on the few
  suspect lanes (real duplicates plus ≈ ``d/64`` false positives).
* **Batched cost accounting** — the per-expansion ``charge_*`` calls
  collapse into one counter update with the same totals, transaction
  counts and launch arguments as the reference path's call sequence.

Equivalence with the reference engine is bit-exact: identical counts,
materialised rows, cost-model counters, statistics and modeled
``time_ms`` (the engine issues the same modeled charges and the same
RNG draw sequence).

Analyzer annotations (rules RP001/RP002): the arena *intentionally*
hands out views of mutable buffers that are overwritten by the next
expansion — callers must treat a view as dead once the expansion
returns.  No CSR array is ever written (RP001); the only wall-clock
reads are the optional ``profile_expansion`` stage timers, which are
accumulated into diagnostics and never branch control flow (RP002).
"""

from __future__ import annotations

import time as _time
from math import ceil as _ceil
from operator import itemgetter as _itemgetter
from typing import TYPE_CHECKING, Sequence, Union

import numpy as np

from ..gpusim.kernel import LAUNCH_OVERHEAD_CYCLES, launch_kernel
from ..graph.csr import CSRGraph
from .intersect import fused_constraint_mask
from .ordering import MatchOrder

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .matcher import CuTSMatcher, _RunState

__all__ = [
    "ExpansionArena",
    "QueryPlan",
    "ColumnarEngine",
    "BITSET_MAX_VERTICES",
    "slice_fanouts",
]

BITSET_MAX_VERTICES = 4096
"""Largest ``|V|`` for which the packed adjacency bitset is built.

The bitset makes every remaining-edge probe O(1) bit tests (``|V|²/8``
bytes resident, ≤ 2 MiB at this cap); larger graphs fall back to the
batched segmented-searchsorted sweep."""

Fanout = tuple[str, int, np.ndarray, np.ndarray, int]
"""One constraint's fanout over a frontier:
``(kind, step_position, starts, counts, total)`` — adjacency-offset
starts and per-path degree counts are arena views reused by the anchor
pool gather and the c-intersection charge."""

_fanout_total = _itemgetter(4)

_DTYPES = {
    "bool": np.dtype(np.bool_),
    "f8": np.dtype(np.float64),
    "i8": np.dtype(np.int64),
    "u1": np.dtype(np.uint8),  # repro: ignore[RP003] — byte masks, not ids
}


def slice_fanouts(
    fanouts: tuple[Fanout, ...], start: int, stop: int
) -> tuple[Fanout, ...]:
    """A chunk's fanout table as views of the parent frontier's.

    Chunk peels re-use the parent's gathered starts/counts (only the
    per-chunk totals are re-reduced) instead of re-gathering the CSR
    pointer table per chunk.  Safe because fanout buffers are keyed by
    step: the peeled chunk's *deeper* recursion writes other steps'
    buffers, and the chunk's own expansion consumes these views first.
    """
    return tuple(
        (kind, j, starts[start:stop], counts[start:stop],
         int(counts[start:stop].sum()))
        for kind, j, starts, counts, _total in fanouts
    )


class ExpansionArena:
    """Preallocated, geometrically-grown expansion workspace.

    One named buffer per workspace role; :meth:`take` returns a
    length-``size`` view, growing the backing array to the next power
    of two when needed.  Views are **invalidated by the next take of
    the same name** — the whole point is that thousands of expansions
    reuse the same steady-state memory.  Buffers whose contents must
    survive recursion (constraint fanouts, carried ancestor columns)
    are keyed by query step: strict DFS guarantees the same name is
    re-taken only after its previous view's readers have finished.
    Trie levels (``ca`` survivor arrays) stay freshly allocated.
    """

    __slots__ = ("_buffers", "grow_events")

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.grow_events = 0

    @property
    def capacity_bytes(self) -> int:
        """Total bytes currently held by the arena's backing buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def take(
        self, name: str, size: int, dtype: np.dtype = _DTYPES["i8"]
    ) -> np.ndarray:
        """A reusable view of ``size`` elements named ``name``.

        Contents are unspecified (callers overwrite); the view aliases
        the previous take of the same name by design.
        """
        buf = self._buffers.get(name)
        if buf is None or buf.size < size:
            capacity = 1024
            while capacity < size:
                capacity <<= 1
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
            self.grow_events += 1
        return buf[:size]


class QueryPlan:
    """Static per-run tables driving the fused columnar pass.

    Computed once per (data graph, query, order) from
    :meth:`MatchOrder.constraints_at` — the live-column analysis of the
    tentpole: which ancestor columns each step still reads, which
    columns the injectivity check may skip, and the fused degree+label
    candidate table per step.
    """

    def __init__(
        self,
        data: CSRGraph,
        query: CSRGraph,
        order: MatchOrder,
        *,
        self_loop_free: bool,
    ) -> None:
        self.order = order
        n_steps = order.num_steps
        out_deg = np.diff(data.indptr)
        in_deg = np.diff(data.rindptr)
        labeled = data.labels is not None and query.labels is not None

        # constraints[s]: ("fwd"|"bwd", j) in the reference engine's
        # order (forward first), so anchor selection tie-breaks match.
        self.constraints: list[tuple[tuple[str, int], ...]] = []
        # filter_tables[s][v]: vertex v passes step s's degree + label
        # filter — one boolean gather instead of three compare passes.
        self.filter_tables: list[np.ndarray | None] = []
        # filter_all[s]: the table is all-true (every data vertex
        # passes), so the gather itself is skipped and the whole pool
        # stays provably live into the intersection stage.
        self.filter_all: list[bool] = []
        # inj_cols[s]: ancestor columns the injectivity check must
        # compare at step s.  When the data graph has no self-loops, a
        # candidate adjacent to the vertex in a constrained column can
        # never equal it, so constraint columns are skipped; the
        # modeled instruction charge still covers all ``s`` columns.
        self.inj_cols: list[tuple[int, ...]] = []
        # live_cols[s]: columns any step >= s still reads (constraints
        # or injectivity) — the carry set for incremental ancestors.
        self.live_cols: list[tuple[int, ...]] = []
        # fan_names[s]: per-constraint (starts, counts) arena buffer
        # names, precomputed so the hot fanout pass never formats
        # strings.  Step-keyed — see :meth:`ColumnarEngine.
        # constraint_fanouts` for the aliasing argument.
        self.fan_names: list[tuple[tuple[str, str], ...]] = []

        for s in range(n_steps):
            fwd, bwd = order.constraints_at(s)
            cons = tuple(("fwd", j) for j in fwd) + tuple(
                ("bwd", j) for j in bwd
            )
            self.constraints.append(cons)
            self.fan_names.append(
                tuple(
                    (f"fan_s{s}_{kind}{j}", f"fan_c{s}_{kind}{j}")
                    for kind, j in cons
                )
            )
            if s == 0:
                self.filter_tables.append(None)
                self.filter_all.append(True)
                self.inj_cols.append(())
                continue
            q_next = order.sequence[s]
            table = np.ones(data.num_vertices, dtype=np.bool_)
            q_out = query.out_degree(q_next)
            q_in = query.in_degree(q_next)
            if q_out > 0:
                table &= out_deg >= q_out
            if q_in > 0:
                table &= in_deg >= q_in
            if labeled:
                assert data.labels is not None
                assert query.labels is not None
                table &= data.labels == query.labels[q_next]
            self.filter_tables.append(table)
            self.filter_all.append(bool(table.all()))
            skip = {j for _, j in cons} if self_loop_free else set()
            self.inj_cols.append(
                tuple(c for c in range(s) if c not in skip)
            )

        # Backward live-column analysis: a column is live at step s if
        # some step s' >= s reads it (as a probe source or through the
        # injectivity compare).  Injectivity keeps almost every column
        # live — the analysis exists to make that explicit (and to skip
        # dead columns should a future engine relax the check).
        reads: list[set[int]] = [set() for _ in range(n_steps)]
        for s in range(1, n_steps):
            reads[s].update(j for _, j in self.constraints[s])
            reads[s].update(self.inj_cols[s])
        live: set[int] = set()
        self.live_cols = [()] * n_steps
        for s in range(n_steps - 1, 0, -1):
            live |= reads[s]
            self.live_cols[s] = tuple(sorted(c for c in live if c < s))


AncColumns = tuple[np.ndarray, ...]
"""The frontier's materialised prefix, one contiguous array per level."""


class ColumnarEngine:
    """Fused columnar expansion bound to one matcher / data graph.

    Holds the workspace arena and the lazily-built per-graph tables
    (degree vectors, packed adjacency bitset, worker-ownership vector,
    symmetry flag).  The engine is pure host-side mechanism: every
    modeled charge it issues is identical to the reference expansion
    path's.
    """

    def __init__(self, matcher: "CuTSMatcher") -> None:
        self.matcher = matcher
        self.data = matcher.data
        self.arena = ExpansionArena()
        self._iota = np.arange(1024, dtype=np.int64)
        self._owners: np.ndarray | None = None
        self._vbits: np.ndarray | None = None
        self._bits: np.ndarray | None = None
        self._bits_built = False
        self._self_loop_free: bool | None = None
        self._symmetric: bool | None = None

    # ------------------------------------------------------------------
    # Cached per-graph tables
    # ------------------------------------------------------------------
    def iota(self, size: int) -> np.ndarray:
        """Read-only ``arange(size)`` view from a grown cache."""
        if self._iota.size < size:
            capacity = self._iota.size
            while capacity < size:
                capacity <<= 1
            self._iota = np.arange(capacity, dtype=np.int64)
        return self._iota[:size]

    def owners(self, size: int) -> np.ndarray:
        """Worker-ownership prefix ``arange(size) % num_workers``."""
        owners = self._owners
        if owners is None or owners.size < size:
            capacity = 1024
            while capacity < size:
                capacity <<= 1
            owners = (
                np.arange(capacity, dtype=np.int64)
                % self.matcher.num_workers
            )
            self._owners = owners
        return owners[:size]

    @property
    def self_loop_free(self) -> bool:
        """Whether the data graph provably has no self-loops (checked
        once; enables skipping constraint columns in injectivity)."""
        if self._self_loop_free is None:
            n = self.data.num_vertices
            if n == 0:
                self._self_loop_free = True
            else:
                v = np.arange(n, dtype=np.int64)
                self._self_loop_free = not bool(
                    self.data.has_edges(v, v).any()
                )
        return self._self_loop_free

    def vbits(self) -> np.ndarray:
        """Per-vertex Bloom bit table ``1 << (v & 63)`` (int64), so the
        signature build and the membership test are plain gathers."""
        vb = self._vbits
        if vb is None:
            n = max(1, self.data.num_vertices)
            vb = np.left_shift(
                np.int64(1),
                np.bitwise_and(np.arange(n, dtype=np.int64), 63),
            )
            self._vbits = vb
        return vb

    @property
    def symmetric(self) -> bool:
        """Whether the data graph's CSR equals its reverse CSR (checked
        once).  On a symmetric graph a backward constraint is the same
        predicate as its forward twin, so mirrored fanouts are shared
        and probes against the anchor column are elided — pure host
        shortcuts; the modeled charges still cover every constraint."""
        if self._symmetric is None:
            d = self.data
            self._symmetric = bool(
                np.array_equal(d.indptr, d.rindptr)
                and np.array_equal(d.indices, d.rindices)
            )
        return self._symmetric

    def _bitset(self) -> np.ndarray | None:
        """Packed row-major adjacency bitset (or None past the cap)."""
        if not self._bits_built:
            self._bits_built = True
            n = self.data.num_vertices
            if 0 < n <= BITSET_MAX_VERTICES:
                dense = np.zeros(n * n, dtype=np.bool_)
                src = np.repeat(
                    np.arange(n, dtype=np.int64), np.diff(self.data.indptr)
                )
                dense[src * n + self.data.indices] = True
                self._bits = np.packbits(dense, bitorder="little")
        return self._bits

    def plan_for(self, query: CSRGraph, order: MatchOrder) -> QueryPlan:
        """Build the static per-run tables for one query."""
        return QueryPlan(
            self.data, query, order, self_loop_free=self.self_loop_free
        )

    # ------------------------------------------------------------------
    # Ancestor carry (incremental columns + Bloom signature)
    # ------------------------------------------------------------------
    def bloom_of(self, anc: AncColumns) -> np.ndarray:
        """Per-path 64-bit Bloom signature of the ancestor set (bit
        ``v & 63`` per ancestor vertex).  Rebuilt only when columns are
        (re)materialised from the trie; otherwise carried forward by
        :meth:`child_carry`."""
        vb = self.vbits()
        m = vb.take(anc[0], mode="clip")
        for c in anc[1:]:
            np.bitwise_or(m, vb.take(c, mode="clip"), out=m)
        return m

    def child_carry(
        self,
        anc: AncColumns,
        bloom: np.ndarray,
        pa_local: np.ndarray,
        ca: np.ndarray,
    ) -> tuple[AncColumns, np.ndarray]:
        """The child frontier's carry: surviving parents' columns and
        Bloom signatures gathered by ``pa_local``, plus the new column.
        All levels (and the Bloom row) are stacked into one matrix and
        gathered with a single axis-1 take — one numpy call instead of
        one per ancestor level; the child's columns are row views of
        the result, which stays alive exactly as long as the child
        subtree references them.  ``ca`` itself is freshly owned (it is
        also a trie level)."""
        mat = np.concatenate(anc + (bloom,)).reshape(len(anc) + 1, -1)
        sub = mat.take(pa_local, mode="clip", axis=1)
        m = sub[-1]
        vbit = self.arena.take("carry_vbit", ca.shape[0])
        self.vbits().take(ca, out=vbit, mode="clip")
        np.bitwise_or(m, vbit, out=m)
        return tuple(sub[:-1]) + (ca,), m

    # ------------------------------------------------------------------
    # Fanouts (shared by pool estimate, anchor choice, c/p choice)
    # ------------------------------------------------------------------
    def constraint_fanouts(
        self, plan: QueryPlan, anc: AncColumns, step: int
    ) -> tuple[Fanout, ...]:
        """Adjacency starts/counts of every constraint over the
        frontier; arrays are arena views reused by the pool gather.
        On a symmetric graph a backward constraint shares its forward
        twin's arrays (same pointer table, same column).  Buffers are
        keyed by step so chunk peels can hold :func:`slice_fanouts`
        views across the peeled chunks' (strictly deeper) recursion."""
        data = self.data
        arena = self.arena
        sym = self.symmetric
        out: list[Fanout] = []
        done: dict[int, Fanout] = {}
        names = plan.fan_names[step]
        for idx, (kind, j) in enumerate(plan.constraints[step]):
            if sym:
                prev = done.get(j)
                if prev is not None:
                    out.append((kind, j, prev[2], prev[3], prev[4]))
                    continue
            ptr = data.indptr if kind == "fwd" else data.rindptr
            col = anc[j]
            size = col.shape[0]
            starts = arena.take(names[idx][0], size)
            counts = arena.take(names[idx][1], size)
            ptr.take(col, out=starts, mode="clip")
            ptr[1:].take(col, out=counts, mode="clip")
            np.subtract(counts, starts, out=counts)
            entry: Fanout = (kind, j, starts, counts, int(counts.sum()))
            out.append(entry)
            if sym:
                done[j] = entry
        return tuple(out)

    # ------------------------------------------------------------------
    # The fused expansion
    # ------------------------------------------------------------------
    def extend(
        self,
        plan: QueryPlan,
        anc: AncColumns,
        step: int,
        state: "_RunState",
        fanouts: tuple[Fanout, ...] | None = None,
        bloom: np.ndarray | None = None,
        count_only: bool = False,
    ) -> tuple[np.ndarray, np.ndarray] | int:
        """One fused expansion over ``anc``'s frontier at ``step``.

        Returns ``(pa_local, ca)`` — freshly-owned survivor arrays
        (local parent indices into the frontier, candidate vertices) —
        or, with ``count_only=True`` (leaf steps of a count-only run),
        just the survivor count, skipping the extraction entirely.
        Charges, statistics, and RNG draws replicate the reference
        path bit-exactly; the counters land in one batched update.
        """
        data = self.data
        cost = state.cost
        arena = self.arena
        matcher = self.matcher
        vw = matcher.virtual_warp_size
        tw = cost.device.transaction_words
        profile = state.profile
        t0 = _time.perf_counter() if profile else 0.0
        num_frontier = anc[0].shape[0] if anc else 0

        if fanouts is None:
            fanouts = self.constraint_fanouts(plan, anc, step)

        # Batched model bookkeeping: charges accumulate locally and land
        # on the cost model in one update before the launch — same
        # totals and per-charge transaction counts as the reference
        # path's charge_* call sequence.
        r_words = 0
        r_txn = 0
        sh_reads = 0
        sh_writes = 0
        instr = 0

        # ----- anchor pool gather -------------------------------------
        if not fanouts:
            # Disconnected query step: pool = frontier x all vertices.
            n = data.num_vertices
            anchor_kind, anchor_j = "none", -1
            total = num_frontier * n
            path_ids = arena.take("path_ids", total)
            path_ids.reshape(num_frontier, n)[:] = self.iota(num_frontier)[
                :, None
            ]
            cands = arena.take("cands", total)
            cands.reshape(num_frontier, n)[:] = self.iota(n)[None, :]
            pool_counts = arena.take("pool_counts", num_frontier)
            pool_counts[:] = n
            cum = None
            if total:
                r_words += total
                r_txn += num_frontier * max(
                    1, _ceil(total / num_frontier / tw)
                )
        else:
            anchor = min(fanouts, key=_fanout_total)
            anchor_kind, anchor_j, starts, pool_counts, total = anchor
            indices = data.indices if anchor_kind == "fwd" else data.rindices
            cum = arena.take("cum", num_frontier + 1)
            cum[0] = 0
            pool_counts.cumsum(out=cum[1:])
            # offsets[k] = starts[path] - cum[path] + k, flat-gathered.
            roff = arena.take("roff", num_frontier)
            np.subtract(starts, cum[:num_frontier], out=roff)
            path_ids = self.iota(num_frontier).repeat(pool_counts)
            offsets = arena.take("offsets", total)
            roff.take(path_ids, out=offsets, mode="clip")
            np.add(offsets, self.iota(total), out=offsets)
            cands = arena.take("cands", total)
            indices.take(offsets, out=cands, mode="clip")
            if total:
                r_words += total
                r_txn += num_frontier * max(
                    1, _ceil(total / num_frontier / tw)
                )
            sh_writes += total
        if profile:
            t1 = _time.perf_counter()
            state.stats.record_stage("anchor_gather", t1 - t0)
            t0 = t1

        # ----- fused degree + label table filter ----------------------
        # ``mask is None`` means "every pool lane is live" — the stages
        # below materialise a mask only at the first lane that can
        # actually die, so an all-true filter table costs nothing.
        mask: np.ndarray | None = None
        if not plan.filter_all[step]:
            table = plan.filter_tables[step]
            assert table is not None
            mask = arena.take("mask", total, _DTYPES["bool"])
            table.take(cands, out=mask, mode="clip")
        instr += 2 * total
        if profile:
            t1 = _time.perf_counter()
            state.stats.record_stage("filter", t1 - t0)
            t0 = t1

        # ----- remaining edge constraints, one batched sweep ----------
        rest = [
            entry
            for entry in fanouts
            if entry[0] != anchor_kind or entry[1] != anchor_j
        ]
        num_rest = len(rest)
        nz_paths = -1  # paths with a non-empty pool (lazily counted)
        if num_rest:
            live1 = total if mask is None else int(np.count_nonzero(mask))
            if live1:
                # Inline of CuTSMatcher._choose_intersection (same
                # arithmetic — the non-anchor entries are exactly
                # ``rest``); ``cost_c`` doubles as the c-charge's
                # degree-sum total when no pool is empty.
                cost_c = 0
                for entry in rest:
                    cost_c += entry[4]
                ci = matcher.config.intersection
                if ci == "c" or ci == "p":
                    kind = ci
                else:
                    kind = (
                        "p"
                        if live1 * matcher._mean_in_degree * num_rest
                        < cost_c
                        else "c"
                    )
                state.stats.record_intersection(kind, num_rest)
                # The c/p charge reads the *pre-probe* live set, like
                # the reference path — compute it before the probes.
                if kind == "c":
                    # Paths with >= 1 filter-surviving candidate == the
                    # unique live path set.  All-live pools reduce this
                    # to "paths with a non-empty pool"; otherwise a
                    # segment-ANY over the nondecreasing path_ids, via
                    # reduceat on the pool-offset boundaries.  A real
                    # anchor always has a cumulative-offsets table.
                    assert cum is not None
                    words = 0
                    if mask is None:
                        nz_paths = int(np.count_nonzero(pool_counts))
                        seg = max(1, nz_paths)
                        if nz_paths == num_frontier:
                            # No empty pools: the fanout totals already
                            # hold the charged per-path degree sums.
                            words = cost_c
                        else:
                            nzf = arena.take(
                                "flags", num_frontier, _DTYPES["bool"]
                            )
                            np.greater(pool_counts, 0, out=nzf)
                            for entry in rest:
                                words += int(np.sum(entry[3], where=nzf))
                    else:
                        flags = arena.take(
                            "flags", num_frontier, _DTYPES["bool"]
                        )
                        seg_starts = arena.take(
                            "seg_starts", num_frontier
                        )
                        np.minimum(
                            cum[:num_frontier], total - 1, out=seg_starts
                        )
                        raw = np.logical_or.reduceat(mask, seg_starts)
                        np.greater(pool_counts, 0, out=flags)
                        np.logical_and(flags, raw, out=flags)
                        seg = max(1, int(np.count_nonzero(flags)))
                        for entry in rest:
                            words += int(np.sum(entry[3], where=flags))
                    sh_reads += words
                else:
                    if mask is None:
                        live_cands = cands
                    else:
                        live_cands = cands.compress(mask)
                    words = int(
                        (
                            data.rindptr[live_cands + 1]
                            - data.rindptr[live_cands]
                        ).sum()
                    )
                    seg = max(1, live_cands.size)
                    sh_reads += live_cands.size
                if words:
                    r_words += words
                    r_txn += seg * max(1, _ceil(words / seg / tw))
                instr += words
                probes = rest
                if self.symmetric:
                    # Anchor-column probes are implied by pool
                    # membership (edge both ways), and a fwd/bwd pair
                    # on the same column is one predicate: probe once.
                    seen: set[int] = set()
                    pruned: list[Fanout] = []
                    for entry in rest:
                        j = entry[1]
                        if j == anchor_j or j in seen:
                            continue
                        seen.add(j)
                        pruned.append(entry)
                    probes = pruned
                if probes:
                    if mask is None:
                        mask = arena.take("mask", total, _DTYPES["bool"])
                        mask[:] = True
                    self._apply_constraints(
                        probes, anc, path_ids, cands, mask, total
                    )
        if profile:
            t1 = _time.perf_counter()
            state.stats.record_stage("intersection", t1 - t0)
            t0 = t1

        # ----- injectivity: candidate must be new on its path ---------
        live2 = total if mask is None else int(np.count_nonzero(mask))
        rejected = 0
        all_live_pre_inj = mask is None
        if live2:
            inj_cols = plan.inj_cols[step]
            if inj_cols:
                if bloom is not None:
                    # Bloom prefilter: a candidate whose bit is absent
                    # from its path's signature is provably new; the
                    # exact compare runs only on suspect lanes.
                    hit = arena.take("bloom_hit", total)
                    bloom.take(path_ids, out=hit, mode="clip")
                    bit = arena.take("bloom_bit", total)
                    self.vbits().take(cands, out=bit, mode="clip")
                    np.bitwise_and(hit, bit, out=hit)
                    if mask is None:
                        sus = hit.nonzero()[0]
                    else:
                        maybe = arena.take(
                            "bloom_maybe", total, _DTYPES["bool"]
                        )
                        np.not_equal(hit, 0, out=maybe)
                        np.logical_and(maybe, mask, out=maybe)
                        sus = maybe.nonzero()[0]
                    k = sus.size
                    if k:
                        sp = arena.take("sus_p", k)
                        path_ids.take(sus, out=sp, mode="clip")
                        sc = arena.take("sus_c", k)
                        cands.take(sus, out=sc, mode="clip")
                        # Full (cols, k) matrix compare: one gather +
                        # one broadcast equal + one ANY reduction —
                        # constant numpy-call count per expansion
                        # regardless of depth (per-column loops cost
                        # more in call overhead than the whole suspect
                        # set costs in element work).
                        eqm = self._inj_matrix(anc, inj_cols, sp, sc)
                        if mask is None and count_only:
                            # Surviving paths are injective, so a
                            # candidate equals at most one ancestor:
                            # lanes-with-a-hit == total hits, and the
                            # per-lane OR (only needed for extraction)
                            # is skipped outright.
                            rejected = int(np.count_nonzero(eqm))
                        else:
                            dup = eqm.any(axis=0)
                            rejected = int(np.count_nonzero(dup))
                            if rejected:
                                mask = self._kill(
                                    mask, sus, dup, total, count_only
                                )
                else:
                    if mask is None:
                        mask = arena.take("mask", total, _DTYPES["bool"])
                        mask[:] = True
                    src = arena.take("inj_src", total)
                    dup_m = arena.take("dup", total, _DTYPES["bool"])
                    eq = arena.take("eq", total, _DTYPES["bool"])
                    first = True
                    for col in inj_cols:
                        anc[col].take(path_ids, out=src, mode="clip")
                        if first:
                            np.equal(src, cands, out=dup_m)
                            first = False
                        else:
                            np.equal(src, cands, out=eq)
                            np.logical_or(dup_m, eq, out=dup_m)
                    np.logical_not(dup_m, out=dup_m)
                    np.logical_and(mask, dup_m, out=mask)
            # Charged for all ``step`` columns even when the self-loop
            # analysis lets the host skip constraint columns: the
            # modeled kernel still compares every ancestor.
            instr += live2 * step

        if mask is None or all_live_pre_inj:
            # The only deaths were the ``rejected`` injectivity lanes
            # (count-only pools may leave the mask unmaterialised).
            results = total - rejected
        else:
            results = int(np.count_nonzero(mask))
        # ----- write-out + batched model bookkeeping ------------------
        w_words = 2 * results
        # Integer virtual-warp steps t = ceil(c / vw); every quantity
        # below is an exact small integer, so the reference's float
        # work table is materialised only on the traced/oversubscribed
        # launch path (identical IEEE values — all products < 2^52).
        steps = arena.take("steps", num_frontier)
        np.add(pool_counts, vw - 1, out=steps)
        np.floor_divide(steps, vw, out=steps)
        # idle = sum(ceil(max(c,1)/vw)*vw - c): zero-work paths still
        # occupy one virtual-warp step each (reference semantics).
        if nz_paths < 0:
            nz_paths = int(np.count_nonzero(pool_counts))
        num_zero = num_frontier - nz_paths
        idle = int(steps.sum()) * vw - total + vw * num_zero
        cost.dram_read_words += r_words
        cost.dram_read_transactions += r_txn
        cost.dram_write_words += w_words
        if w_words:
            cost.dram_write_transactions += max(1, _ceil(w_words / tw))
        cost.shared_read_words += sh_reads
        cost.shared_write_words += sh_writes
        cost.atomic_ops += results
        cost.instructions += instr
        cost.idle_lane_cycles += idle
        num_workers = matcher.num_workers
        if cost.trace is None and num_frontier <= num_workers:
            # Inline of launch_kernel's <=1-item-per-worker schedule
            # (same cycles; the per-launch record exists only when
            # tracing, and the mean/imbalance diagnostics feed nothing
            # else).  work[i] = t[i]*(1+rest)+2 is an exact integer in
            # f8, so its max is computed without building the table.
            if num_frontier:
                compute = float(int(steps.max()) * (1 + num_rest) + 2)
            else:
                compute = 0.0
            memory = (
                (r_words + w_words) / cost.device.dram_words_per_cycle
            )
            cost.cycles += LAUNCH_OVERHEAD_CYCLES + max(compute, memory)
            cost.kernel_launches += 1
        else:
            work = arena.take("work", num_frontier, _DTYPES["f8"])
            np.multiply(steps, float(1 + num_rest), out=work)
            np.add(work, 2.0, out=work)
            launch_kernel(
                cost,
                f"search_kernel_d{step}",
                work,
                num_workers,
                r_words + w_words,
                rng=state.rng,
                owners=self.owners(num_frontier),
            )

        state.tick()
        if count_only:
            if profile:
                t1 = _time.perf_counter()
                state.stats.record_stage("write_out", t1 - t0)
            return results
        if mask is None:
            # path_ids is freshly owned (a real anchor's repeat result);
            # the arena-backed disconnected-step table must be copied.
            pa_local = path_ids if fanouts else path_ids.copy()
            ca = cands.copy()
        else:
            pa_local = path_ids.compress(mask)
            ca = cands.compress(mask)
        if profile:
            t1 = _time.perf_counter()
            state.stats.record_stage("write_out", t1 - t0)
        return pa_local, ca

    # ------------------------------------------------------------------
    def _inj_matrix(
        self,
        anc: AncColumns,
        inj_cols: tuple[int, ...],
        sp: np.ndarray,
        sc: np.ndarray,
    ) -> np.ndarray:
        """``(cols, k)`` equality matrix: every checked ancestor column
        gathered at the suspect paths ``sp``, compared against the
        suspect candidates ``sc``.  Row order follows ``inj_cols``."""
        rows = (
            anc
            if len(inj_cols) == len(anc)
            else tuple(anc[c] for c in inj_cols)
        )
        arena = self.arena
        num_rows = len(rows)
        nf = rows[0].shape[0]
        k = sp.shape[0]
        amat = arena.take("inj_amat", num_rows * nf)
        np.concatenate(rows, out=amat)
        sub = arena.take("inj_sub", num_rows * k).reshape(num_rows, k)
        amat.reshape(num_rows, nf).take(sp, out=sub, mode="clip", axis=1)
        eqm = arena.take(
            "inj_eqm", num_rows * k, _DTYPES["bool"]
        ).reshape(num_rows, k)
        np.equal(sub, sc, out=eqm)
        return eqm

    def _kill(
        self,
        mask: np.ndarray | None,
        sus: np.ndarray,
        dup: np.ndarray,
        total: int,
        count_only: bool,
    ) -> np.ndarray | None:
        """Clear the duplicate suspect lanes (``sus[dup]``) in ``mask``.
        A count-only all-live pool needs just the rejection count —
        lanes are never extracted, so the mask stays unmaterialised."""
        if mask is None and not count_only:
            mask = self.arena.take("mask", total, _DTYPES["bool"])
            mask[:] = True
        if mask is not None:
            mask[sus.compress(dup)] = False
        return mask

    # ------------------------------------------------------------------
    def _apply_constraints(
        self,
        rest: Sequence[Fanout],
        anc: AncColumns,
        path_ids: np.ndarray,
        cands: np.ndarray,
        mask: np.ndarray,
        total: int,
    ) -> None:
        """AND every remaining edge constraint into ``mask`` over the
        whole pool (no nonzero round trip; lanes already dead stay
        dead, so probing them is free of semantic effect)."""
        data = self.data
        arena = self.arena
        bits = self._bitset()
        if bits is None:
            # Batched fallback: all constraints in one segmented sweep.
            lanes: list[tuple[np.ndarray, np.ndarray]] = []
            for kind, j, _starts, _counts, _total in rest:
                src = anc[j][path_ids]
                lanes.append(
                    (src, cands) if kind == "fwd" else (cands, src)
                )
            ok = fused_constraint_mask(data, lanes)
            np.logical_and(mask, ok, out=mask)
            return
        n = data.num_vertices
        src = arena.take("probe_src", total)
        key = arena.take("probe_key", total)
        bitpos = arena.take("probe_bit", total)
        byte = arena.take("probe_byte", total, _DTYPES["u1"])
        ok = arena.take("probe_ok", total, _DTYPES["bool"])
        for kind, j, _starts, _counts, _total in rest:
            anc[j].take(path_ids, out=src, mode="clip")
            if kind == "fwd":
                np.multiply(src, n, out=key)
                np.add(key, cands, out=key)
            else:
                np.multiply(cands, n, out=key)
                np.add(key, src, out=key)
            np.bitwise_and(key, 7, out=bitpos)
            np.right_shift(key, 3, out=key)
            bits.take(key, out=byte, mode="clip")
            np.right_shift(byte, bitpos, out=key)
            np.bitwise_and(key, 1, out=key)
            np.not_equal(key, 0, out=ok)
            np.logical_and(mask, ok, out=mask)


EngineAncestors = Union[AncColumns, np.ndarray, None]
"""Ancestor carry threaded through ``_search``: columnar tuple for the
columnar engine, the 2-D matrix for the reference path, or ``None`` to
rebuild from the trie."""
