"""Comparator implementations: GSI-style BFS, DFS backtracking, networkx."""

from .dfs import dfs_count, dfs_enumerate
from .gsi import GSIMatcher
from .reference import networkx_count, networkx_embeddings

__all__ = [
    "GSIMatcher",
    "dfs_count",
    "dfs_enumerate",
    "networkx_count",
    "networkx_embeddings",
]
