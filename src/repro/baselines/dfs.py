"""Sequential DFS backtracking matcher (Ullmann-style reference).

The paper's related work (§3) describes the depth-first family (Ullmann,
VF2, ...): extend a partial embedding one query vertex at a time,
backtracking when no candidate exists; linear memory in ``|V_Q|``.  This
is our pure-Python correctness oracle — slow, simple, and obviously
right — plus the canonical representative of the DFS strategy for the
BFS-vs-DFS discussion.

Semantics match the cuTS core exactly: injective monomorphism embedding
enumeration with the Definition-5 degree filter as pruning.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.ordering import build_order
from ..graph.csr import CSRGraph

__all__ = ["dfs_count", "dfs_enumerate"]


def dfs_enumerate(
    data: CSRGraph, query: CSRGraph, *, ordering: str = "max_degree"
) -> Iterator[dict[int, int]]:
    """Yield every embedding as a query→data vertex dict.

    Assumes a weakly connected query (as cuTS does); disconnected queries
    raise via the unconstrained-step guard below only when a step has no
    matched neighbour — in which case all degree-feasible vertices are
    tried (correct, exponential, exactly like the BFS engine's fallback).
    """
    if query.num_vertices == 0:
        raise ValueError("query graph must have at least one vertex")
    if query.num_vertices > data.num_vertices:
        return
    order = build_order(query, ordering)
    seq = order.sequence
    n = len(seq)
    q_out = [query.out_degree(q) for q in seq]
    q_in = [query.in_degree(q) for q in seq]

    assignment = np.full(n, -1, dtype=np.int64)
    used: set[int] = set()

    def candidates(step: int) -> np.ndarray:
        fwd, bwd = order.constraints_at(step)
        pool: np.ndarray | None = None
        for j in fwd:
            kids = data.children(int(assignment[j]))
            pool = kids if pool is None else pool[np.isin(pool, kids)]
        for j in bwd:
            pars = data.parents(int(assignment[j]))
            pool = pars if pool is None else pool[np.isin(pool, pars)]
        if pool is None:
            pool = np.arange(data.num_vertices, dtype=np.int64)
        out_deg = data.indptr[pool + 1] - data.indptr[pool]
        in_deg = data.rindptr[pool + 1] - data.rindptr[pool]
        ok = (out_deg >= q_out[step]) & (in_deg >= q_in[step])
        if data.labels is not None and query.labels is not None:
            ok &= data.labels[pool] == query.labels[seq[step]]
        return pool[ok]

    def recurse(step: int) -> Iterator[dict[int, int]]:
        if step == n:
            yield {int(seq[i]): int(assignment[i]) for i in range(n)}
            return
        for cand in candidates(step):
            c = int(cand)
            if c in used:
                continue
            assignment[step] = c
            used.add(c)
            yield from recurse(step + 1)
            used.discard(c)
            assignment[step] = -1

    yield from recurse(0)


def dfs_count(data: CSRGraph, query: CSRGraph, **kwargs) -> int:
    """Number of embeddings, by exhaustive DFS."""
    return sum(1 for _ in dfs_enumerate(data, query, **kwargs))
