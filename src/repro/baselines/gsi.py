"""GSI-behaviour baseline matcher.

A faithful-*behaviour* reimplementation of the GSI strategy (Zeng et al.,
ICDE 2020) as the paper characterises it (§3, §6.3), run on the same
simulated device as cuTS so the comparison isolates the algorithmic
differences:

* **flat intermediate table** — every partial path stored as ``depth``
  words (:class:`~repro.storage.naive.NaivePathStore`); the table is
  rewritten each level, and old + new tables must coexist during the
  join.  This is what overflows device memory on hard cases ("GSI doesn't
  have an efficient way to store the tons of intermediate results, which
  results in memory overflow").
* **two-pass join** — a count pass computes per-path result sizes and a
  prefix sum fixes write locations, then a second pass recomputes the
  intersections and writes ("the computations and, more importantly, the
  data-movement operations are performed twice").
* **one hardware warp per candidate path** — no virtual warps, so lanes
  idle whenever the degree is below 32 and hub paths serialise whole
  warps; no randomised placement.
* **static id-based ordering** — the first query vertex, then lowest-id
  connected growth (real GSI orders by label frequency; on the unlabeled
  graphs of the paper's evaluation that degenerates to a static choice).
* **label-signature filtering only** — GSI prunes candidates through its
  vertex-signature encoding, which keys on labels; on the *unlabeled*
  graphs the paper evaluates that filter is vacuous, so the baseline
  starts from all ``|V|`` vertices and prunes purely through joins.
  This is what the paper measures: "there are cases where cuTS has more
  than 785x fewer candidates than GSI at depth 1 and 26,000x lower
  candidates at depth 2".  The degree filters can be switched back on
  via the constructor flags for ablation.

Result *semantics* are identical to cuTS — both enumerate degree-filtered
injective monomorphisms — so tests assert equal counts while the cost
counters diverge exactly the way §6.3 reports.
"""

from __future__ import annotations

import numpy as np

from ..core.candidates import root_candidates
from ..core.ordering import build_order
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..gpusim.cost import CostModel
from ..gpusim.device import V100, DeviceSpec
from ..gpusim.kernel import launch_kernel
from ..gpusim.memory import DeviceMemory, DeviceOOMError
from ..gpusim.warp import device_worker_count, idle_lane_cycles
from ..graph.csr import CSRGraph

__all__ = ["GSIMatcher"]


class GSIMatcher:
    """Single-device GSI-style BFS matcher (see module docstring)."""

    def __init__(
        self,
        data: CSRGraph,
        device: DeviceSpec = V100,
        *,
        root_degree_filter: bool = False,
        step_degree_filter: bool = False,
    ) -> None:
        self.data = data
        self.device = device
        self.root_degree_filter = root_degree_filter
        self.step_degree_filter = step_degree_filter
        self.memory = DeviceMemory(device)
        self.memory.alloc(
            "data_graph", 2 * (data.num_vertices + 1) + 2 * data.num_edges
        )
        # One full hardware warp per path.
        self.num_workers = device_worker_count(device, device.warp_size)

    # ------------------------------------------------------------------
    def match(
        self,
        query: CSRGraph,
        *,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        wall_limit_s: float | None = None,
    ) -> MatchResult:
        """BFS join over a flat table; raises ``DeviceOOMError`` when the
        intermediate table overflows (the paper's "-" failure entries)."""
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        cost = CostModel(self.device)
        stats = SearchStats()
        order = build_order(query, "id")
        n_steps = order.num_steps

        if query.num_vertices > self.data.num_vertices:
            empty = (
                np.zeros((0, n_steps), dtype=np.int64) if materialize else None
            )
            return MatchResult(
                count=0, matches=empty, time_ms=cost.time_ms, cost=cost,
                stats=stats, order=order.sequence,
            )

        if self.root_degree_filter:
            roots = root_candidates(self.data, query, order.sequence[0], cost)
        elif self.data.labels is not None and query.labels is not None:
            # GSI's signature filter IS label-based: with labeled graphs
            # it prunes the root set by label equality.
            roots = np.nonzero(
                self.data.labels == query.labels[order.sequence[0]]
            )[0].astype(np.int64)
            cost.charge_dram_read(self.data.num_vertices)
            cost.charge_dram_write(len(roots))
        else:
            # Signature filtering is label-based; unlabeled graphs pass
            # every vertex through (the paper's depth-1 candidate blowup).
            roots = np.arange(self.data.num_vertices, dtype=np.int64)
            cost.charge_dram_write(len(roots))
        launch_kernel(
            cost,
            "gsi_init",
            np.ones(max(1, self.data.num_vertices), dtype=np.float64),
            self.num_workers,
            2 * self.data.num_vertices + len(roots),
        )
        stats.record_depth(0, len(roots))
        table = roots.reshape(-1, 1)
        self.memory.resize("intermediate_table", table.size)
        stats.record_trie_words(self.memory.used_words)

        deadline = None
        if wall_limit_s is not None:
            import time as _time

            deadline = _time.monotonic() + wall_limit_s
        try:
            for step in range(1, n_steps):
                table = self._join_level(table, step, query, order, cost, stats)
                stats.record_depth(step, len(table))
                if (
                    time_limit_ms is not None
                    and cost.time_ms > time_limit_ms
                ):
                    from ..core.matcher import SearchTimeout

                    raise SearchTimeout(
                        f"modeled time {cost.time_ms:.1f} ms exceeded "
                        f"limit {time_limit_ms:.1f} ms"
                    )
                if deadline is not None:
                    import time as _time

                    if _time.monotonic() > deadline:
                        from ..core.matcher import SearchTimeout

                        raise SearchTimeout("wall-clock limit exceeded")
                if len(table) == 0:
                    break
        finally:
            self.memory.free("intermediate_table")
            self.memory.free("intermediate_table_next")

        count = len(table) if table.shape[1] == n_steps else 0
        matches = None
        if materialize:
            if count:
                inv = np.empty(n_steps, dtype=np.int64)
                inv[np.asarray(order.sequence, dtype=np.int64)] = np.arange(
                    n_steps, dtype=np.int64
                )
                matches = np.ascontiguousarray(table[:, inv])
            else:
                matches = np.zeros((0, n_steps), dtype=np.int64)
        return MatchResult(
            count=count,
            matches=matches,
            time_ms=cost.time_ms,
            cost=cost,
            stats=stats,
            order=order.sequence,
        )

    def count(self, query: CSRGraph, **kwargs) -> int:
        """Convenience: embedding count only."""
        return self.match(query, **kwargs).count

    # ------------------------------------------------------------------
    # Host-side streaming width: the join processes path slices whose
    # pooled candidate count stays below this many elements (real GSI
    # streams the join too; this is a host-RAM guard, not a model knob).
    _SLICE_POOL_LIMIT = 2_000_000

    def _join_level(
        self,
        table: np.ndarray,
        step: int,
        query: CSRGraph,
        order,
        cost: CostModel,
        stats: SearchStats,
    ) -> np.ndarray:
        """One two-pass BFS join level (streamed in path slices)."""
        num_paths = len(table)
        fwd, bwd = order.constraints_at(step)
        new_depth = table.shape[1] + 1
        capacity = self.memory.capacity_words
        words_before = cost.dram_read_words + cost.dram_write_words

        rest_fwd = fwd[1:] if fwd else ()
        rest_bwd = bwd if fwd else (bwd[1:] if bwd else ())

        slices = self._path_slices(table, fwd, bwd)
        surv_paths: list[np.ndarray] = []
        surv_cands: list[np.ndarray] = []
        results = 0
        pool_total = 0
        words_rest = 0
        pool_count_chunks: list[np.ndarray] = []
        for lo, hi in slices:
            sp, sc, wr, counts = self._join_slice(
                table, lo, hi, fwd, bwd, rest_fwd, rest_bwd, query, order, step
            )
            surv_paths.append(sp)
            surv_cands.append(sc)
            results += len(sc)
            pool_total += int(counts.sum())
            words_rest += wr
            pool_count_chunks.append(counts)
            # Cumulative device check: old table + projected new table.
            # Aborting here (before accumulating the full result) is what
            # keeps an OOM case cheap, exactly like a failed cudaMalloc.
            if table.size + new_depth * results > capacity:
                raise DeviceOOMError(
                    new_depth * results,
                    capacity - table.size,
                    "intermediate_table_next",
                )
        pool_counts = (
            np.concatenate(pool_count_chunks)
            if pool_count_chunks
            else np.zeros(0, dtype=np.int64)
        )

        # ---- two-pass cost: every read/instruction happens twice -------
        for _pass in ("count", "write"):
            cost.charge_dram_read(pool_total, segments=num_paths)
            cost.charge_dram_read(
                words_rest, segments=max(1, num_paths * max(1, len(rest_fwd) + len(rest_bwd)))
            )
            cost.charge_shared(writes=pool_total, reads=words_rest)
            cost.charge_instructions(
                pool_total * (2 + len(rest_fwd) + len(rest_bwd))
            )
            cost.charge_atomics(results)
        # Count pass writes the per-path counters; write pass copies the
        # whole prefix for every result (flat storage).
        cost.charge_dram_write(num_paths)
        cost.charge_dram_write(new_depth * results)
        # Re-reading the old table rows to copy prefixes:
        cost.charge_dram_read(table.shape[1] * results)
        cost.charge_idle_lanes(
            2 * idle_lane_cycles(pool_counts, self.device.warp_size)
        )

        # ---- memory: old + new flat tables must coexist -----------------
        self.memory.resize("intermediate_table_next", new_depth * results)
        per_path = np.ceil(pool_counts / self.device.warp_size) * (
            2 * (1 + len(rest_fwd) + len(rest_bwd))
        ) + 4.0
        words_moved = (
            cost.dram_read_words + cost.dram_write_words - words_before
        )
        launch_kernel(
            cost,
            f"gsi_join_d{step}_count",
            per_path / 2.0,
            self.num_workers,
            words_moved // 2,
        )
        launch_kernel(
            cost,
            f"gsi_join_d{step}_write",
            per_path / 2.0,
            self.num_workers,
            words_moved - words_moved // 2,
        )

        all_paths = (
            np.concatenate(surv_paths) if surv_paths else np.zeros(0, np.int64)
        )
        all_cands = (
            np.concatenate(surv_cands) if surv_cands else np.zeros(0, np.int64)
        )
        new_table = np.empty((results, new_depth), dtype=np.int64)
        new_table[:, :-1] = table[all_paths]
        new_table[:, -1] = all_cands
        self.memory.free("intermediate_table")
        self.memory.resize("intermediate_table", new_table.size)
        self.memory.free("intermediate_table_next")
        stats.record_trie_words(self.memory.used_words)
        return new_table

    # ------------------------------------------------------------------
    def _path_slices(
        self, table: np.ndarray, fwd: tuple[int, ...], bwd: tuple[int, ...]
    ) -> list[tuple[int, int]]:
        """Split path rows so each slice's pool stays under the limit."""
        num_paths = len(table)
        if num_paths == 0:
            return []
        data = self.data
        if fwd:
            anchor = table[:, fwd[0]]
            counts = data.indptr[anchor + 1] - data.indptr[anchor]
        elif bwd:
            anchor = table[:, bwd[0]]
            counts = data.rindptr[anchor + 1] - data.rindptr[anchor]
        else:
            counts = np.full(num_paths, data.num_vertices, dtype=np.int64)
        cum = np.cumsum(counts)
        slices: list[tuple[int, int]] = []
        lo = 0
        while lo < num_paths:
            base = int(cum[lo - 1]) if lo else 0
            hi = int(
                np.searchsorted(cum, base + self._SLICE_POOL_LIMIT, side="left")
            ) + 1
            hi = min(max(hi, lo + 1), num_paths)
            slices.append((lo, hi))
            lo = hi
        return slices

    def _join_slice(
        self,
        table: np.ndarray,
        lo: int,
        hi: int,
        fwd: tuple[int, ...],
        bwd: tuple[int, ...],
        rest_fwd: tuple[int, ...],
        rest_bwd: tuple[int, ...],
        query: CSRGraph,
        order,
        step: int,
    ) -> tuple[np.ndarray, np.ndarray, int, np.ndarray]:
        """Join one path slice; returns (surviving path rows — global
        indices, surviving candidates, constraint words moved, per-path
        pool counts)."""
        data = self.data
        sub = table[lo:hi]
        path_ids, cands, pool_counts = self._pool(sub, fwd, bwd)
        mask = np.ones(len(cands), dtype=bool)
        if data.labels is not None and query.labels is not None:
            mask &= data.labels[cands] == query.labels[order.sequence[step]]
        if self.step_degree_filter:
            q_next = order.sequence[step]
            q_out = query.out_degree(q_next)
            q_in = query.in_degree(q_next)
            if q_out > 0:
                mask &= (data.indptr[cands + 1] - data.indptr[cands]) >= q_out
            if q_in > 0:
                mask &= (data.rindptr[cands + 1] - data.rindptr[cands]) >= q_in
        words_rest = 0
        if (rest_fwd or rest_bwd) and mask.any():
            live = np.nonzero(mask)[0]
            lp, lc = path_ids[live], cands[live]
            up = np.unique(lp)  # children lists stream once per path
            ok = np.ones(len(live), dtype=bool)
            for j in rest_fwd:
                ok &= data.has_edges(sub[lp, j], lc)
                a = sub[up, j]
                words_rest += int((data.indptr[a + 1] - data.indptr[a]).sum())
            for j in rest_bwd:
                ok &= data.has_edges(lc, sub[lp, j])
                a = sub[up, j]
                words_rest += int((data.rindptr[a + 1] - data.rindptr[a]).sum())
            mask[live] = ok
        if mask.any():
            live = np.nonzero(mask)[0]
            dup = np.zeros(len(live), dtype=bool)
            for col in range(sub.shape[1]):
                dup |= sub[path_ids[live], col] == cands[live]
            mask[live] = ~dup
        return path_ids[mask] + lo, cands[mask], words_rest, pool_counts

    def _pool(
        self, table: np.ndarray, fwd: tuple[int, ...], bwd: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Candidate pool from the *first* constraint (no anchor choice)."""
        data = self.data
        num_paths = len(table)
        if fwd:
            indptr, indices = data.indptr, data.indices
            anchor = table[:, fwd[0]]
        elif bwd:
            indptr, indices = data.rindptr, data.rindices
            anchor = table[:, bwd[0]]
        else:
            path_ids = np.repeat(
                np.arange(num_paths, dtype=np.int64), data.num_vertices
            )
            cands = np.tile(
                np.arange(data.num_vertices, dtype=np.int64), num_paths
            )
            counts = np.full(num_paths, data.num_vertices, dtype=np.int64)
            return path_ids, cands, counts
        starts = indptr[anchor]
        counts = indptr[anchor + 1] - starts
        total = int(counts.sum())
        path_ids = np.repeat(np.arange(num_paths, dtype=np.int64), counts)
        cum = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        offsets = (
            np.arange(total, dtype=np.int64) - cum[path_ids] + starts[path_ids]
        )
        return path_ids, indices[offsets], counts
