"""Ground-truth oracle via networkx.

``DiGraphMatcher.subgraph_monomorphisms_iter`` enumerates injective maps
``data' -> query``... careful: networkx's matcher maps *G1 subgraph* onto
G2, so we instantiate it as ``DiGraphMatcher(G_data, G_query)`` and each
monomorphism dict maps data vertices to query vertices; we invert it.

Used only in tests and small-scale validation — this is the independent
implementation our engines are checked against.
"""

from __future__ import annotations

from ..graph.build import to_networkx
from ..graph.csr import CSRGraph

__all__ = ["networkx_count", "networkx_embeddings"]


def _matcher(data: CSRGraph, query: CSRGraph):
    import networkx.algorithms.isomorphism as iso

    gd = to_networkx(data)
    gq = to_networkx(query)
    node_match = None
    if data.labels is not None and query.labels is not None:
        node_match = iso.categorical_node_match("label", None)
    return iso.DiGraphMatcher(gd, gq, node_match=node_match)


def networkx_embeddings(data: CSRGraph, query: CSRGraph) -> list[dict[int, int]]:
    """All monomorphism embeddings as query→data dicts."""
    out = []
    for mapping in _matcher(data, query).subgraph_monomorphisms_iter():
        out.append({q: d for d, q in mapping.items()})
    return out


def networkx_count(data: CSRGraph, query: CSRGraph) -> int:
    """Number of monomorphism embeddings (oracle; label-aware when both
    graphs are labeled)."""
    return sum(1 for _ in _matcher(data, query).subgraph_monomorphisms_iter())
