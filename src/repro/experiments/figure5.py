"""Figure 5 reproduction: load balancing on a 4-node run (wikiTalk).

The paper plots per-node runtimes T1..T4 for the wikiTalk dataset on the
4-node V100 system and observes "our node to node runtime variation is
very low".  We run the distributed engine at 4 ranks on the wikiTalk
stand-in and report the per-rank busy times plus the spread statistics.
"""

from __future__ import annotations

from ..core.config import CuTSConfig
from ..distributed.balance import BalanceReport, balance_report
from ..distributed.runtime import DistributedCuTS
from ..graph.csr import CSRGraph
from .datasets import load_dataset
from .figure4 import default_figure4_queries

__all__ = ["run_figure5", "figure5_rows"]


def run_figure5(
    *,
    scale: float = 1.0,
    num_ranks: int = 4,
    dataset: str = "wikiTalk",
    query: CSRGraph | None = None,
    chunk_size: int = 512,
) -> BalanceReport:
    """One balanced run; returns the per-node report."""
    data = load_dataset(dataset, scale)
    if query is None:
        query = default_figure4_queries()[1]
    cfg = CuTSConfig(chunk_size=chunk_size)
    result = DistributedCuTS(data, num_ranks, cfg).match(query)
    return balance_report(result)


def figure5_rows(**kwargs) -> list[dict]:
    """Figure-5-shaped rows: T1..T4 runtimes plus the spread summary."""
    report = run_figure5(**kwargs)
    rows = report.rows()
    rows.append(
        {
            "node": "max/mean",
            "runtime_ms": round(report.imbalance, 4),
        }
    )
    return rows
