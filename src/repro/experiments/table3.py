"""Table 3 reproduction: single-node cuTS vs GSI over the full grid.

The paper's headline table: for every (data graph × query graph) case and
both machines (V100, A100), the GSI and cuTS kernel times in
milliseconds, with "-" marking runs that "did not complete successfully";
summarised by cases-handled counts and geometric-mean speedups (e.g. 386x
on A100, 312x on V100 overall; 250–430x on the road networks).

Failures here arise the same ways they do on hardware: simulated device
OOM (GSI's flat table; the dominant mode), modeled-time limits, and a
wall-clock harness guard.  Every mutually-successful case's counts are
asserted equal between the two engines — the comparison is apples to
apples by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.gsi import GSIMatcher
from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher, SearchTimeout
from ..gpusim.device import A100, V100, DeviceSpec
from ..gpusim.memory import DeviceOOMError
from .report import geomean
from .workloads import Case, paper_cases

__all__ = ["CaseResult", "Table3Result", "run_table3", "table3_rows"]

DEVICES: dict[str, DeviceSpec] = {"V100": V100, "A100": A100}


@dataclass(frozen=True)
class CaseResult:
    """One grid cell: both systems on one (dataset, query) case."""

    dataset: str
    query_name: str
    gsi_ms: float | None
    cuts_ms: float | None
    gsi_failure: str | None
    cuts_failure: str | None
    count: int | None

    @property
    def speedup(self) -> float | None:
        if self.gsi_ms is None or self.cuts_ms is None or self.cuts_ms == 0:
            return None
        return self.gsi_ms / self.cuts_ms


@dataclass(frozen=True)
class Table3Result:
    """The full grid plus the paper's summary statistics."""

    device: str
    cases: tuple[CaseResult, ...]

    @property
    def total_cases(self) -> int:
        return len(self.cases)

    @property
    def cuts_handled(self) -> int:
        return sum(1 for c in self.cases if c.cuts_ms is not None)

    @property
    def gsi_handled(self) -> int:
        return sum(1 for c in self.cases if c.gsi_ms is not None)

    @property
    def geomean_speedup(self) -> float:
        """Geomean over the mutually successful cases (paper's metric)."""
        return geomean([c.speedup for c in self.cases if c.speedup])

    def geomean_speedup_for(self, dataset: str) -> float:
        return geomean(
            [
                c.speedup
                for c in self.cases
                if c.dataset == dataset and c.speedup
            ]
        )

    def rows(self) -> list[dict]:
        out = []
        for c in self.cases:
            out.append(
                {
                    "dataset": c.dataset,
                    "query": c.query_name,
                    "GSI_ms": c.gsi_ms,
                    "cuTS_ms": c.cuts_ms,
                    "speedup": c.speedup,
                    "gsi_failure": c.gsi_failure,
                    "cuts_failure": c.cuts_failure,
                }
            )
        return out

    def summary_rows(self) -> list[dict]:
        datasets = sorted({c.dataset for c in self.cases})
        rows = [
            {
                "dataset": d,
                "cases": sum(1 for c in self.cases if c.dataset == d),
                "cuTS_handled": sum(
                    1
                    for c in self.cases
                    if c.dataset == d and c.cuts_ms is not None
                ),
                "GSI_handled": sum(
                    1
                    for c in self.cases
                    if c.dataset == d and c.gsi_ms is not None
                ),
                "geomean_speedup": self.geomean_speedup_for(d),
            }
            for d in datasets
        ]
        rows.append(
            {
                "dataset": "ALL",
                "cases": self.total_cases,
                "cuTS_handled": self.cuts_handled,
                "GSI_handled": self.gsi_handled,
                "geomean_speedup": self.geomean_speedup,
            }
        )
        return rows


def _failure_name(exc: Exception) -> str:
    if isinstance(exc, DeviceOOMError):
        return "oom"
    if isinstance(exc, SearchTimeout):
        return "timeout"
    raise exc


def run_case(
    case: Case,
    device: DeviceSpec,
    *,
    time_limit_ms: float = 60_000.0,
    wall_limit_s: float | None = 20.0,
    check_counts: bool = True,
) -> CaseResult:
    """Run both systems on one case, classifying failures."""
    cuts_ms = gsi_ms = None
    cuts_failure = gsi_failure = None
    cuts_count = gsi_count = None

    cfg = CuTSConfig(device=device)
    try:
        r = CuTSMatcher(case.data, cfg).match(
            case.query, time_limit_ms=time_limit_ms, wall_limit_s=wall_limit_s
        )
        cuts_ms, cuts_count = r.time_ms, r.count
    except (DeviceOOMError, SearchTimeout) as exc:
        cuts_failure = _failure_name(exc)

    try:
        r = GSIMatcher(case.data, device).match(
            case.query, time_limit_ms=time_limit_ms, wall_limit_s=wall_limit_s
        )
        gsi_ms, gsi_count = r.time_ms, r.count
    except (DeviceOOMError, SearchTimeout) as exc:
        gsi_failure = _failure_name(exc)

    if (
        check_counts
        and cuts_count is not None
        and gsi_count is not None
        and cuts_count != gsi_count
    ):
        raise AssertionError(
            f"count mismatch on {case.key}: cuTS={cuts_count} GSI={gsi_count}"
        )
    return CaseResult(
        dataset=case.dataset,
        query_name=case.query_name,
        gsi_ms=gsi_ms,
        cuts_ms=cuts_ms,
        gsi_failure=gsi_failure,
        cuts_failure=cuts_failure,
        count=cuts_count if cuts_count is not None else gsi_count,
    )


def run_table3(
    device_name: str = "V100",
    *,
    scale: float = 1.0,
    top_k: int = 11,
    time_limit_ms: float = 60_000.0,
    wall_limit_s: float | None = 20.0,
    datasets: tuple[str, ...] | None = None,
) -> Table3Result:
    """Run the (possibly trimmed) Table 3 grid on one simulated machine."""
    device = DEVICES[device_name]
    kwargs = {"scale": scale, "top_k": top_k}
    if datasets is not None:
        kwargs["datasets"] = datasets
    cases = paper_cases(**kwargs)
    results = tuple(
        run_case(
            c, device, time_limit_ms=time_limit_ms, wall_limit_s=wall_limit_s
        )
        for c in cases
    )
    return Table3Result(device=device_name, cases=results)


def table3_rows(device_name: str = "V100", **kwargs) -> list[dict]:
    """Paper-shaped per-case rows."""
    return run_table3(device_name, **kwargs).rows()
