"""Evaluation workloads: the paper's 198-case grid and quick subsets.

§6.2: 33 query graphs (top-11 densest connected 5-, 6-, 7-vertex graphs)
× 6 data graphs = 198 cases.  ``quick=True`` trims to the top-3 queries
per size for fast CI-style runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.csr import CSRGraph
from ..graph.queries import QUERY_SIZES, paper_query_set
from .datasets import DATASET_NAMES, load_dataset

__all__ = ["Case", "paper_cases", "query_workload"]


@dataclass(frozen=True)
class Case:
    """One (data graph, query graph) evaluation case."""

    dataset: str
    query_name: str
    data: CSRGraph
    query: CSRGraph

    @property
    def key(self) -> str:
        return f"{self.dataset}/{self.query_name}"


def query_workload(
    top_k: int = 11, seed: int = 0, sizes: tuple[int, ...] = QUERY_SIZES
) -> list[CSRGraph]:
    """The flat 33-query list (or a trimmed variant)."""
    queries: list[CSRGraph] = []
    for n in sizes:
        queries.extend(paper_query_set(n, top_k=top_k, seed=seed))
    return queries


def paper_cases(
    *,
    scale: float = 1.0,
    top_k: int = 11,
    datasets: tuple[str, ...] = DATASET_NAMES,
    sizes: tuple[int, ...] = QUERY_SIZES,
    seed: int = 0,
) -> list[Case]:
    """The full evaluation grid (198 cases at defaults)."""
    queries = query_workload(top_k=top_k, seed=seed, sizes=sizes)
    cases = []
    for name in datasets:
        data = load_dataset(name, scale)
        for q in queries:
            cases.append(
                Case(dataset=name, query_name=q.name, data=data, query=q)
            )
    return cases
