"""Table 1 reproduction: naive vs trie storage on enron + K5.

The paper tabulates, for the Enron data graph and a fully-connected
five-node query, the per-depth storage words of the naive flat layout
against the cuTS trie, with compression ratios growing from 0.5 at depth
1 to ~2.46 at depth 5.

We run the actual cuTS search on the enron stand-in, take the measured
per-depth partial-path counts ``|P_l|``, and apply both representations'
accounting (:mod:`repro.storage.accounting`).  The level-1 ratio is
exactly 0.5 by construction (the trie stores PA+CA where naive stores one
word), and the ratio must cross 1 and grow with depth — the shape claim
under test.
"""

from __future__ import annotations

from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..graph.generators import clique_graph
from ..storage.accounting import compare_storage
from .datasets import load_dataset

__all__ = ["run_table1", "table1_rows"]


def run_table1(
    scale: float = 1.0, dataset: str = "enron", query_size: int = 5
):
    """Run the search and return the :class:`StorageComparison`."""
    data = load_dataset(dataset, scale)
    query = clique_graph(query_size)
    # A large trie budget keeps the run un-chunked so per-depth counts
    # are the pure BFS |P_l| the table reports.
    from ..gpusim.device import V100, scaled_device

    cfg = CuTSConfig(device=scaled_device(V100, 1 << 28))
    result = CuTSMatcher(data, cfg).match(query)
    counts = result.stats.paths_per_depth
    return compare_storage(counts)


def table1_rows(scale: float = 1.0) -> list[dict]:
    """Paper-shaped rows: depth, naive words, our words, ratio."""
    return run_table1(scale).rows()
