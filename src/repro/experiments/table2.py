"""Table 2 reproduction: dataset properties.

Trivial but kept symmetric with the other drivers: one row per data
graph with vertex and edge counts (ours are the scaled synthetic
stand-ins; DESIGN.md documents the substitution).
"""

from __future__ import annotations

from .datasets import dataset_table

__all__ = ["table2_rows"]


def table2_rows(scale: float = 1.0) -> list[dict]:
    """Rows of the Table 2 analogue."""
    return dataset_table(scale)
