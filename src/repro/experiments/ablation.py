"""Ablations of the design choices DESIGN.md calls out.

The paper motivates several mechanisms without a dedicated table; these
sweeps quantify each on the reproduction:

* **ordering** — max-degree-first vs GSI-style id order (§4, §6.3);
* **intersection micro-kernel** — adaptive vs pinned c- vs pinned p-
  (§4.1.3);
* **randomised placement** — on vs off (§4.1.2's load-balance fix);
* **chunk size** — the hybrid BFS-DFS granularity (512 in the paper);
* **virtual-warp width** — fixed widths vs the average-degree heuristic.

Each function returns rows for the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..gpusim.device import V100
from ..graph.csr import CSRGraph
from ..graph.queries import paper_query_set
from .datasets import load_dataset

__all__ = [
    "ordering_ablation",
    "intersection_ablation",
    "placement_ablation",
    "chunk_size_ablation",
    "virtual_warp_ablation",
    "binning_ablation",
    "filter_ablation",
]


def _default_case(scale: float) -> tuple[CSRGraph, CSRGraph]:
    return load_dataset("enron", scale), paper_query_set(5)[1]


def ordering_ablation(
    scale: float = 1.0, query: CSRGraph | None = None
) -> list[dict]:
    """max_degree vs id ordering: candidates per depth and time."""
    data, default_q = _default_case(scale)
    query = query or default_q
    rows = []
    for ordering in ("max_degree", "id"):
        cfg = CuTSConfig(ordering=ordering)
        r = CuTSMatcher(data, cfg).match(query)
        rows.append(
            {
                "ordering": ordering,
                "count": r.count,
                "time_ms": r.time_ms,
                "paths_depth1": (
                    r.stats.paths_per_depth[0]
                    if r.stats.paths_per_depth
                    else 0
                ),
                "peak_frontier": r.stats.peak_frontier,
                "dram_read_words": r.cost.dram_read_words,
            }
        )
    return rows


def intersection_ablation(
    scale: float = 1.0, query: CSRGraph | None = None
) -> list[dict]:
    """adaptive vs pinned c- vs pinned p-intersection."""
    data, default_q = _default_case(scale)
    query = query or default_q
    rows = []
    for strategy in ("adaptive", "c", "p"):
        cfg = CuTSConfig(intersection=strategy)
        r = CuTSMatcher(data, cfg).match(query)
        rows.append(
            {
                "intersection": strategy,
                "count": r.count,
                "time_ms": r.time_ms,
                "dram_read_words": r.cost.dram_read_words,
                "c_calls": r.stats.intersection_calls.get("c", 0),
                "p_calls": r.stats.intersection_calls.get("p", 0),
            }
        )
    return rows


def placement_ablation(
    scale: float = 1.0, query: CSRGraph | None = None
) -> list[dict]:
    """Randomised vs id-order partial-path placement."""
    data, default_q = _default_case(scale)
    query = query or default_q
    rows = []
    for randomize in (True, False):
        cfg = CuTSConfig(randomize_placement=randomize)
        r = CuTSMatcher(data, cfg).match(query)
        rows.append(
            {
                "randomized_placement": randomize,
                "count": r.count,
                "time_ms": r.time_ms,
                "cycles": r.cost.cycles,
            }
        )
    return rows


def chunk_size_ablation(
    scale: float = 1.0,
    query: CSRGraph | None = None,
    chunk_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024, 4096),
    memory_words: int = 1 << 16,
) -> list[dict]:
    """Chunk-size sweep under a tight memory budget (forces chunking)."""
    from ..gpusim.device import scaled_device

    data, default_q = _default_case(scale)
    query = query or default_q
    device = scaled_device(V100, memory_words)
    rows = []
    for cs in chunk_sizes:
        cfg = CuTSConfig(device=device, chunk_size=cs)
        r = CuTSMatcher(data, cfg).match(query)
        rows.append(
            {
                "chunk_size": cs,
                "count": r.count,
                "time_ms": r.time_ms,
                "chunks": r.stats.chunks_processed,
                "kernel_launches": r.cost.kernel_launches,
                "peak_trie_words": r.stats.peak_trie_words,
            }
        )
    return rows


def filter_ablation(
    scale: float = 1.0, query: CSRGraph | None = None
) -> list[dict]:
    """Degree filter vs degree + neighbourhood-dominance filter.

    The optional GraphQL/GADDI-style extension (§3): counts must match;
    the interesting columns are the root candidate set size and the
    total data movement.
    """
    data, default_q = _default_case(scale)
    query = query or default_q
    rows = []
    for nf in (False, True):
        cfg = CuTSConfig(neighborhood_filter=nf)
        r = CuTSMatcher(data, cfg).match(query)
        rows.append(
            {
                "filter": "degree+neighborhood" if nf else "degree",
                "count": r.count,
                "root_candidates": (
                    r.stats.paths_per_depth[0] if r.stats.paths_per_depth else 0
                ),
                "time_ms": r.time_ms,
                "dram_read_words": r.cost.dram_read_words,
            }
        )
    return rows


def binning_ablation(
    scale: float = 1.0, query: CSRGraph | None = None
) -> list[dict]:
    """The §4.1.2 rejected strategy: work bins vs one adaptive bin.

    cuTS considered grouping partial paths into power-of-two work bins
    (each processed by a matching virtual-warp width) but rejected it:
    "we have to predict the amount of space assigned to each bin ...
    most of the bins may be empty.  The memory space assigned to empty
    bins is wasted."  This ablation measures exactly that: for each BFS
    level's true work distribution, the fraction of a uniformly-split
    buffer that the binned strategy wastes, against the single-bin
    scheme's idle-lane cost.
    """
    from ..gpusim.warp import bin_paths_by_work, idle_lane_cycles, select_virtual_warp_size

    data, default_q = _default_case(scale)
    query = query or default_q
    matcher = CuTSMatcher(data)
    r = matcher.match(query, materialize=True)
    rows: list[dict] = []
    # Reconstruct a representative per-path work distribution: the
    # out-degree of the vertex each path would expand through.
    if r.matches is not None and len(r.matches):
        work = (
            data.indptr[r.matches[:, 0] + 1] - data.indptr[r.matches[:, 0]]
        )
    else:
        work = data.out_degrees
    warp = matcher.config.device.warp_size
    bins = bin_paths_by_work(np.asarray(work), warp)
    # Uniform buffer split across all possible bin classes (1..32 pow2s).
    possible_bins = 6  # widths 1,2,4,8,16,32
    occupied = len(bins)
    wasted_fraction = (possible_bins - occupied) / possible_bins
    rows.append(
        {
            "strategy": "binned",
            "bins_occupied": occupied,
            "buffer_waste_fraction": round(wasted_fraction, 3),
            "idle_lane_cycles": int(
                sum(
                    idle_lane_cycles(np.asarray(work)[idx], width)
                    for width, idx in bins.items()
                )
            ),
        }
    )
    vw = select_virtual_warp_size(data.average_out_degree, warp)
    rows.append(
        {
            "strategy": f"single-bin (vw={vw})",
            "bins_occupied": 1,
            "buffer_waste_fraction": 0.0,
            "idle_lane_cycles": int(idle_lane_cycles(np.asarray(work), vw)),
        }
    )
    return rows


def virtual_warp_ablation(
    scale: float = 1.0,
    query: CSRGraph | None = None,
    widths: tuple[int, ...] = (0, 2, 4, 8, 16, 32),
) -> list[dict]:
    """Virtual-warp width sweep (0 = the average-degree heuristic)."""
    data, default_q = _default_case(scale)
    query = query or default_q
    rows = []
    for w in widths:
        cfg = CuTSConfig(virtual_warp_size=w)
        m = CuTSMatcher(data, cfg)
        r = m.match(query)
        rows.append(
            {
                "virtual_warp": w or f"auto({m.virtual_warp_size})",
                "count": r.count,
                "time_ms": r.time_ms,
                "idle_lane_cycles": r.cost.idle_lane_cycles,
                "workers": m.num_workers,
            }
        )
    return rows
