"""Top-level experiment harness.

``python -m repro.experiments`` regenerates every paper table and figure
at a chosen scale and prints paper-shaped text tables.  The benchmark
suite calls the same drivers; EXPERIMENTS.md records a full run.
"""

from __future__ import annotations

import sys

from .ablation import (
    binning_ablation,
    chunk_size_ablation,
    intersection_ablation,
    ordering_ablation,
    placement_ablation,
    virtual_warp_ablation,
)
from .figure2 import figure2_rows
from .figure4 import figure4_rows
from .figure5 import figure5_rows
from .hwmetrics import hwmetrics_rows
from .report import render_table
from .table1 import table1_rows
from .table2 import table2_rows
from .table3 import run_table3

__all__ = ["run_all", "main"]


def run_all(
    *,
    scale: float = 1.0,
    top_k: int = 11,
    devices: tuple[str, ...] = ("V100", "A100"),
    wall_limit_s: float | None = 20.0,
    stream=None,
) -> dict:
    """Run every experiment; returns the raw row collections."""
    out = stream or sys.stdout

    def emit(text: str) -> None:
        print(text, file=out)
        print("", file=out)

    results: dict = {}

    results["table1"] = table1_rows(scale)
    emit(render_table(results["table1"], title="Table 1 — storage: naive vs cuTS trie (enron-sim, K5)"))

    results["figure2"] = figure2_rows()
    emit(render_table(results["figure2"], title="Figure 2C — storage growth (4x4 mesh, 4-chain)"))

    results["table2"] = table2_rows(scale)
    emit(render_table(results["table2"], title="Table 2 — dataset properties (synthetic stand-ins)"))

    results["table3"] = {}
    for device in devices:
        t3 = run_table3(
            device, scale=scale, top_k=top_k, wall_limit_s=wall_limit_s
        )
        results["table3"][device] = t3
        emit(
            render_table(
                t3.summary_rows(),
                title=(
                    f"Table 3 summary — {device}-sim: cases handled & geomean "
                    f"speedup (cuTS vs GSI)"
                ),
            )
        )

    results["hwmetrics"] = hwmetrics_rows(scale=scale)
    emit(
        render_table(
            results["hwmetrics"][:14],
            title="§6.3 — hardware counters, first case (GSI vs cuTS)",
        )
    )

    results["figure4"] = figure4_rows(scale=scale)
    emit(render_table(results["figure4"], title="Figure 4 — distributed speedup vs single node"))

    results["figure5"] = figure5_rows(scale=scale)
    emit(render_table(results["figure5"], title="Figure 5 — per-node runtime, wikiTalk-sim @ 4 nodes"))

    results["ablation_ordering"] = ordering_ablation(scale)
    emit(render_table(results["ablation_ordering"], title="Ablation — query ordering"))
    results["ablation_intersection"] = intersection_ablation(scale)
    emit(render_table(results["ablation_intersection"], title="Ablation — intersection micro-kernel"))
    results["ablation_placement"] = placement_ablation(scale)
    emit(render_table(results["ablation_placement"], title="Ablation — randomized placement"))
    results["ablation_chunk"] = chunk_size_ablation(scale)
    emit(render_table(results["ablation_chunk"], title="Ablation — chunk size (tight memory)"))
    results["ablation_vw"] = virtual_warp_ablation(scale)
    emit(render_table(results["ablation_vw"], title="Ablation — virtual warp width"))
    results["ablation_binning"] = binning_ablation(scale)
    emit(
        render_table(
            results["ablation_binning"],
            title="Ablation — binning vs single-bin virtual warps (§4.1.2)",
        )
    )

    return results


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.experiments [--quick]``."""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    scale = 0.5 if quick else 1.0
    top_k = 3 if quick else 11
    run_all(scale=scale, top_k=top_k)
    return 0
