"""§6.3 hardware-metric reproduction (the Nsight Compute comparison).

The paper explains the speedup with counter ratios: up to 200x lower DRAM
read traffic, 34x lower shared-memory writes / 7x lower reads, 2x lower
atomics, 7x fewer instructions (up to 1000x in SASS on extreme cases),
and candidate-count gaps of 785x (depth 1) / 26,000x (depth 2).

:func:`run_hwmetrics` runs both engines on selected cases and emits the
per-counter reduction table plus per-depth candidate-count ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.gsi import GSIMatcher
from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..gpusim.device import V100, DeviceSpec
from ..gpusim.metrics import MetricRatio, compare_counters
from .workloads import Case, paper_cases

__all__ = ["HwComparison", "run_hwmetrics", "hwmetrics_rows"]


@dataclass(frozen=True)
class HwComparison:
    """Counter + candidate-count comparison on one case."""

    dataset: str
    query_name: str
    ratios: tuple[MetricRatio, ...]
    cuts_paths_per_depth: tuple[int, ...]
    gsi_paths_per_depth: tuple[int, ...]

    def candidate_reduction(self, depth: int) -> float:
        """GSI/cuTS candidate ratio at a (0-based) depth.

        An engine whose per-depth list is shorter pruned the whole search
        earlier — it had zero candidates from that depth on.
        """
        ours = (
            self.cuts_paths_per_depth[depth]
            if depth < len(self.cuts_paths_per_depth)
            else 0
        )
        theirs = (
            self.gsi_paths_per_depth[depth]
            if depth < len(self.gsi_paths_per_depth)
            else 0
        )
        if ours == 0:
            return float("inf") if theirs else 1.0
        return theirs / ours


def run_hwmetrics(
    cases: list[Case] | None = None,
    device: DeviceSpec = V100,
    *,
    scale: float = 1.0,
) -> list[HwComparison]:
    """Compare counters on the given (default: a small representative)
    case list; failed GSI runs are skipped (no counters to compare)."""
    if cases is None:
        all_cases = paper_cases(scale=scale, top_k=2, datasets=("enron", "roadNet-PA"))
        cases = all_cases
    out: list[HwComparison] = []
    for case in cases:
        cuts = CuTSMatcher(case.data, CuTSConfig(device=device)).match(case.query)
        try:
            gsi = GSIMatcher(case.data, device).match(case.query)
        except Exception:
            continue
        out.append(
            HwComparison(
                dataset=case.dataset,
                query_name=case.query_name,
                ratios=tuple(compare_counters(gsi.cost, cuts.cost)),
                cuts_paths_per_depth=tuple(cuts.stats.paths_per_depth),
                gsi_paths_per_depth=tuple(gsi.stats.paths_per_depth),
            )
        )
    return out


def hwmetrics_rows(**kwargs) -> list[dict]:
    """One row per (case, counter) with the reduction factor."""
    rows = []
    for comp in run_hwmetrics(**kwargs):
        for r in comp.ratios:
            rows.append(
                {
                    "dataset": comp.dataset,
                    "query": comp.query_name,
                    "metric": r.metric,
                    "GSI": r.baseline,
                    "cuTS": r.ours,
                    "reduction": r.reduction,
                }
            )
        rows.append(
            {
                "dataset": comp.dataset,
                "query": comp.query_name,
                "metric": "candidates_depth1_ratio",
                "GSI": (
                    comp.gsi_paths_per_depth[0]
                    if comp.gsi_paths_per_depth
                    else None
                ),
                "cuTS": (
                    comp.cuts_paths_per_depth[0]
                    if comp.cuts_paths_per_depth
                    else None
                ),
                "reduction": comp.candidate_reduction(0),
            }
        )
    return rows
