"""Figure 2 reproduction: storage growth for mesh data + chain query.

The paper's illustrative table (Fig. 2C) lists the candidate counts and
naive storage words per partial-path depth for a 4x4 mesh and a 4-vertex
chain.  We measure the real counts with the engine (the paper's printed
numbers are approximate — they ignore the injectivity exclusion — so
EXPERIMENTS.md reports both) and emit the same columns.
"""

from __future__ import annotations

from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..graph.generators import chain_graph, mesh_graph
from ..storage.accounting import compare_storage

__all__ = ["figure2_rows"]


def figure2_rows(rows: int = 4, cols: int = 4, chain_len: int = 4) -> list[dict]:
    """One row per depth: candidates, naive words, trie words."""
    data = mesh_graph(rows, cols)
    query = chain_graph(chain_len)
    result = CuTSMatcher(data, CuTSConfig()).match(query)
    counts = result.stats.paths_per_depth
    comparison = compare_storage(counts)
    out = []
    for depth, count in enumerate(counts, start=1):
        out.append(
            {
                "partial_path_depth": depth,
                "candidates": count,
                "naive_storage_words": comparison.naive[depth - 1],
                "trie_storage_words": comparison.trie[depth - 1],
            }
        )
    return out
