"""Plain-text table rendering for experiment outputs.

Every experiment driver returns ``list[dict]`` rows; this module renders
them as fixed-width tables (the form the paper's tables take) so the
benchmark harness can print paper-shaped output.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value", "geomean"]


def format_value(v: Any) -> str:
    """Human-friendly cell formatting."""
    if v is None:
        return "-"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e6 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:,.3f}".rstrip("0").rstrip(".")
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


def render_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[format_value(r.get(c)) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's speedup aggregation); 0 on empty."""
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
