"""Experiment drivers: one module per paper table/figure (see DESIGN.md)."""

from .ablation import (
    binning_ablation,
    chunk_size_ablation,
    filter_ablation,
    intersection_ablation,
    ordering_ablation,
    placement_ablation,
    virtual_warp_ablation,
)
from .datasets import DATASET_NAMES, all_datasets, dataset_table, load_dataset
from .figure2 import figure2_rows
from .figure4 import ScalingPoint, figure4_rows, run_figure4
from .figure5 import figure5_rows, run_figure5
from .harness import run_all
from .hwmetrics import HwComparison, hwmetrics_rows, run_hwmetrics
from .report import geomean, render_table
from .table1 import run_table1, table1_rows
from .table2 import table2_rows
from .table3 import CaseResult, Table3Result, run_case, run_table3, table3_rows
from .workloads import Case, paper_cases, query_workload

__all__ = [
    "DATASET_NAMES",
    "load_dataset",
    "all_datasets",
    "dataset_table",
    "Case",
    "paper_cases",
    "query_workload",
    "run_table1",
    "table1_rows",
    "table2_rows",
    "figure2_rows",
    "run_table3",
    "table3_rows",
    "run_case",
    "CaseResult",
    "Table3Result",
    "run_figure4",
    "figure4_rows",
    "ScalingPoint",
    "run_figure5",
    "figure5_rows",
    "run_hwmetrics",
    "hwmetrics_rows",
    "HwComparison",
    "ordering_ablation",
    "binning_ablation",
    "filter_ablation",
    "intersection_ablation",
    "placement_ablation",
    "chunk_size_ablation",
    "virtual_warp_ablation",
    "render_table",
    "geomean",
    "run_all",
]
