"""Figure 4 reproduction: distributed speedup over a single node.

The paper runs the distributed implementation on the three big datasets
(enron, gowalla, wikiTalk) on 1/2/4 single-V100 nodes and reports ~2x at
two nodes and ~3.1x at four, with occasional superlinearity.  Speedup is
measured against the one-node run of the *same* distributed code, as in
the paper ("Figure 4 shows ... speed up ... against single node").

Queries are chosen from the paper workload to produce substantial work
on each dataset (a trivial zero-match case measures only startup).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import CuTSConfig
from ..distributed.runtime import DistributedCuTS
from ..graph.csr import CSRGraph
from ..graph.queries import paper_query_set
from .datasets import load_dataset

__all__ = ["ScalingPoint", "run_figure4", "figure4_rows", "default_figure4_queries"]

RANK_COUNTS = (1, 2, 4)


@dataclass(frozen=True)
class ScalingPoint:
    """One (dataset, query, ranks) measurement."""

    dataset: str
    query_name: str
    num_ranks: int
    runtime_ms: float
    count: int
    speedup: float
    work_transfers: int


def default_figure4_queries(seed: int = 0) -> list[CSRGraph]:
    """Work-heavy queries for the scaling runs.

    The mid-density 5- and 6-vertex queries produce deep, wide frontiers
    on the social graphs (the dense ones often have zero matches on the
    sparse stand-ins and finish in microseconds).
    """
    q5 = paper_query_set(5, seed=seed)
    q6 = paper_query_set(6, seed=seed)
    return [q5[0], q5[8], q6[10]]


def run_figure4(
    *,
    scale: float = 1.0,
    rank_counts: tuple[int, ...] = RANK_COUNTS,
    datasets: tuple[str, ...] = ("enron", "gowalla", "wikiTalk"),
    queries: list[CSRGraph] | None = None,
    chunk_size: int = 512,
) -> list[ScalingPoint]:
    """Run the scaling sweep; one :class:`ScalingPoint` per cell."""
    queries = queries if queries is not None else default_figure4_queries()
    cfg = CuTSConfig(chunk_size=chunk_size)
    points: list[ScalingPoint] = []
    for ds in datasets:
        data = load_dataset(ds, scale)
        for query in queries:
            base_ms: float | None = None
            base_count: int | None = None
            for p in rank_counts:
                res = DistributedCuTS(data, p, cfg).match(query)
                if base_ms is None:
                    base_ms = res.runtime_ms
                    base_count = res.count
                elif res.count != base_count:
                    raise AssertionError(
                        f"distributed count drift on {ds}/{query.name}: "
                        f"{res.count} != {base_count} at P={p}"
                    )
                points.append(
                    ScalingPoint(
                        dataset=ds,
                        query_name=query.name,
                        num_ranks=p,
                        runtime_ms=res.runtime_ms,
                        count=res.count,
                        speedup=base_ms / res.runtime_ms if res.runtime_ms else 1.0,
                        work_transfers=res.work_transfers,
                    )
                )
    return points


def figure4_rows(**kwargs) -> list[dict]:
    """Figure-4-shaped rows: dataset, query, ranks, runtime, speedup."""
    return [
        {
            "dataset": p.dataset,
            "query": p.query_name,
            "nodes": p.num_ranks,
            "runtime_ms": p.runtime_ms,
            "speedup": p.speedup,
            "transfers": p.work_transfers,
            "count": p.count,
        }
        for p in run_figure4(**kwargs)
    ]
