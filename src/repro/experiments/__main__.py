"""``python -m repro.experiments`` — regenerate every table and figure."""

import sys

from .harness import main

if __name__ == "__main__":
    sys.exit(main())
