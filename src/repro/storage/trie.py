"""The cuTS trie: parent-array / candidate-array partial-path storage.

Paper §4.1.1: two big arrays are allocated up front — the **parent array**
(PA) stores, for every partial path at level *l*, the index of its parent
path at level *l − 1*; the **candidate array** (CA) stores the data-graph
vertex matched at level *l*.  Because the parent is stored explicitly,
children of different parents may be written interleaved (one atomic
fetch-add to claim a slot), unlike CSF which needs all children of a node
contiguous.  Shared prefixes are stored once, giving the ``l × (ds − 1)``
space reduction of Eq. (4)/(5).

Level 0 holds the root candidates; its PA entries are ``-1``.

The class below is a growable stack of ``(pa, ca)`` level pairs with
vectorised ancestor walks (`paths_at`), sub-trie extraction for the
distributed work-shipping protocol, and word-count accounting for the
Table 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrieLevel", "PathTrie"]


@dataclass(frozen=True)
class TrieLevel:
    """One level of the trie: parallel PA / CA arrays.

    ``pa[i]`` is the index of path ``i``'s parent in the previous level
    (−1 at level 0); ``ca[i]`` is the data vertex matched at this level.
    """

    pa: np.ndarray
    ca: np.ndarray

    def __post_init__(self) -> None:
        if self.pa.shape != self.ca.shape or self.pa.ndim != 1:
            raise ValueError("pa and ca must be 1-D arrays of equal length")

    @property
    def num_paths(self) -> int:
        return int(len(self.ca))

    @property
    def storage_words(self) -> int:
        """Words consumed by this level: one PA + one CA word per path."""
        return 2 * self.num_paths


@dataclass
class PathTrie:
    """A growable trie of partial paths (the cuTS intermediate store)."""

    levels: list[TrieLevel] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_roots(cls, roots: np.ndarray) -> "PathTrie":
        """Start a trie from the level-0 candidate set."""
        roots = np.ascontiguousarray(roots, dtype=np.int64)
        pa = np.full(len(roots), -1, dtype=np.int64)
        return cls(levels=[TrieLevel(pa=pa, ca=roots)])

    def append_level(
        self, pa: np.ndarray, ca: np.ndarray, *, validate: bool = True
    ) -> TrieLevel:
        """Append a new deepest level; PA must index the current deepest.

        ``validate=False`` skips the PA range scan — for internal callers
        whose parent indices are correct by construction (the expansion
        engine's survivor compaction), where the two extra reductions per
        appended level are measurable.  External writers must validate.

        Returns the created :class:`TrieLevel`.
        """
        pa = np.ascontiguousarray(pa, dtype=np.int64)
        ca = np.ascontiguousarray(ca, dtype=np.int64)
        if validate:
            if not self.levels:
                if pa.size and pa.max() >= 0:
                    raise ValueError("first level must have pa == -1")
            else:
                parent_count = self.levels[-1].num_paths
                if pa.size and (pa.min() < 0 or pa.max() >= parent_count):
                    raise ValueError(
                        f"pa out of range: parent level has {parent_count} paths"
                    )
        level = TrieLevel(pa=pa, ca=ca)
        self.levels.append(level)
        return level

    def drop_last_level(self) -> None:
        """Pop the deepest level (used when unwinding DFS chunks)."""
        if not self.levels:
            raise IndexError("trie has no levels")
        self.levels.pop()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of levels currently stored."""
        return len(self.levels)

    def num_paths(self, level: int | None = None) -> int:
        """Paths at ``level`` (default: deepest level); 0 if empty."""
        if not self.levels:
            return 0
        if level is None:
            level = len(self.levels) - 1
        return self.levels[level].num_paths

    @property
    def total_storage_words(self) -> int:
        """Σ over levels of ``2 × |P_l|`` (paper's accounting)."""
        return sum(lv.storage_words for lv in self.levels)

    def storage_words_per_level(self) -> list[int]:
        """Per-level word counts, shallowest first."""
        return [lv.storage_words for lv in self.levels]

    def paths_at(
        self, level: int, path_indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Materialise full paths ending at ``level``.

        Walks the PA pointers upward with vectorised gathers — ``level``
        gathers total, one per trie level, regardless of path count.

        Parameters
        ----------
        level:
            Level whose paths to materialise (0-based).
        path_indices:
            Optional subset of path indices at that level; defaults to all.

        Returns
        -------
        An ``(k, level + 1)`` matrix; row ``r`` is the vertex sequence of
        one partial path, shallowest level first.
        """
        if level < 0 or level >= len(self.levels):
            raise IndexError(f"level {level} out of range (depth {self.depth})")
        if path_indices is None:
            idx = np.arange(self.levels[level].num_paths, dtype=np.int64)
        else:
            idx = np.asarray(path_indices, dtype=np.int64)
        out = np.empty((len(idx), level + 1), dtype=np.int64)
        cur = idx
        for lv in range(level, -1, -1):
            out[:, lv] = self.levels[lv].ca[cur]
            cur = self.levels[lv].pa[cur]
        return out

    def ancestors_at(self, level: int, path_indices: np.ndarray) -> np.ndarray:
        """Alias of :meth:`paths_at` restricted to explicit indices."""
        return self.paths_at(level, path_indices)

    def columns_at(
        self, level: int, path_indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, ...]:
        """Ancestor *columns* of paths ending at ``level``.

        The columnar expansion engine keeps the frontier's materialised
        prefix as one contiguous array per trie level (gathers along a
        column are then unit-stride); this is :meth:`paths_at` transposed
        at the storage level — the same upward PA walk, one gather per
        level, writing each level into its own owned 1-D array.

        Returns a ``level + 1`` tuple; element ``lv`` holds the data
        vertex matched at level ``lv`` for every requested path, in
        request order.
        """
        if level < 0 or level >= len(self.levels):
            raise IndexError(f"level {level} out of range (depth {self.depth})")
        if path_indices is None:
            idx = np.arange(self.levels[level].num_paths, dtype=np.int64)
        else:
            idx = np.asarray(path_indices, dtype=np.int64)
        cols: list[np.ndarray] = [idx] * (level + 1)
        cur = idx
        for lv in range(level, -1, -1):
            cols[lv] = self.levels[lv].ca[cur]
            cur = self.levels[lv].pa[cur]
        return tuple(cols)

    # ------------------------------------------------------------------
    # Sub-trie extraction (distributed work shipping)
    # ------------------------------------------------------------------
    def extract_subtrie(self, level: int, path_indices: np.ndarray) -> "PathTrie":
        """Extract the minimal trie containing the given frontier paths.

        Used by the distributed scheduler: a busy rank ships a portion of
        its frontier *plus the trie prefix* those paths hang from (paper
        §4.2).  All ancestor paths are retained and re-indexed compactly;
        levels above ``level`` are dropped.

        Returns a new independent :class:`PathTrie` whose deepest level
        contains exactly ``path_indices`` (in order).
        """
        if level < 0 or level >= len(self.levels):
            raise IndexError(f"level {level} out of range (depth {self.depth})")
        idx = np.asarray(path_indices, dtype=np.int64)
        # Walk upward collecting the needed indices per level.
        needed: list[np.ndarray] = [None] * (level + 1)  # type: ignore[list-item]
        cur = idx
        for lv in range(level, -1, -1):
            needed[lv] = cur
            cur = self.levels[lv].pa[cur]
        # Deduplicate ancestors per level (keep the frontier level ordered
        # exactly as requested; ancestors get compacted).
        new_levels: list[TrieLevel] = []
        remap_prev: np.ndarray | None = None  # old idx -> new idx at lv-1
        for lv in range(level + 1):
            if lv < level:
                uniq, inverse = np.unique(needed[lv], return_inverse=True)
            else:
                uniq, inverse = idx, np.arange(len(idx), dtype=np.int64)
            ca = self.levels[lv].ca[uniq]
            old_pa = self.levels[lv].pa[uniq]
            if lv == 0:
                pa = np.full(len(uniq), -1, dtype=np.int64)
            else:
                assert remap_prev is not None
                pa = remap_prev[old_pa]
            new_levels.append(TrieLevel(pa=pa, ca=ca))
            # Build the remap for the next level down: old index -> new.
            remap = -np.ones(self.levels[lv].num_paths, dtype=np.int64)
            remap[uniq] = np.arange(len(uniq), dtype=np.int64)
            remap_prev = remap
        return PathTrie(levels=new_levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [lv.num_paths for lv in self.levels]
        return f"PathTrie(depth={self.depth}, paths_per_level={sizes})"
