"""Trie (de)serialisation for the distributed work-shipping protocol.

Paper §4.2: when a busy rank hands work to a free rank it must send "a
portion of its work ... along with the trie".  We serialise a
:class:`~repro.storage.trie.PathTrie` into a single flat int64 buffer —
the shape an MPI ``Send`` of one contiguous array would take — and count
its word size for the communication-cost model.

Layout: ``[depth, n_0, .., n_{d-1}, pa_0.., ca_0.., pa_1.., ca_1.., ...]``.
"""

from __future__ import annotations

import numpy as np

from .trie import PathTrie, TrieLevel

__all__ = ["serialize_trie", "deserialize_trie", "serialized_words"]


def serialize_trie(trie: PathTrie) -> np.ndarray:
    """Flatten a trie into one contiguous int64 buffer."""
    parts: list[np.ndarray] = [
        np.asarray([trie.depth], dtype=np.int64),
        np.asarray([lv.num_paths for lv in trie.levels], dtype=np.int64),
    ]
    for lv in trie.levels:
        parts.append(lv.pa)
        parts.append(lv.ca)
    if len(parts) == 2 and parts[1].size == 0:
        return parts[0].copy()
    return np.concatenate(parts)


def deserialize_trie(buffer: np.ndarray) -> PathTrie:
    """Rebuild a :class:`PathTrie` from :func:`serialize_trie` output."""
    buffer = np.asarray(buffer, dtype=np.int64)
    if buffer.size < 1:
        raise ValueError("buffer too short to contain a trie header")
    depth = int(buffer[0])
    if depth < 0:
        raise ValueError(f"negative depth {depth} in trie buffer")
    sizes = buffer[1 : 1 + depth].astype(np.int64)
    expected = 1 + depth + int(2 * sizes.sum())
    if buffer.size != expected:
        raise ValueError(
            f"trie buffer has {buffer.size} words, header implies {expected}"
        )
    levels: list[TrieLevel] = []
    pos = 1 + depth
    for n in sizes:
        n = int(n)
        pa = buffer[pos : pos + n].copy()
        ca = buffer[pos + n : pos + 2 * n].copy()
        pos += 2 * n
        levels.append(TrieLevel(pa=pa, ca=ca))
    return PathTrie(levels=levels)


def serialized_words(trie: PathTrie) -> int:
    """Words an MPI transfer of this trie would move (header included)."""
    return 1 + trie.depth + trie.total_storage_words
