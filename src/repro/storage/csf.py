"""Compressed Sparse Fibre (CSF) partial-path storage.

The middle representation of paper Fig. 3(B): a trie laid out like nested
CSR — per level a *nodeid* array plus an *index* array giving the start
of each node's children in the next level.  Space-wise it is the tightest
of the three, but children of a node must be **contiguous**, so building
a level in parallel needs either per-path serialisation or a two-pass
count-then-write — the exact drawbacks (§4.1.1) that motivated the PA/CA
trie.  We keep it for the storage-accounting comparison and as a frozen
index structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trie import PathTrie

__all__ = ["CSFLevel", "CSFStore"]


@dataclass(frozen=True)
class CSFLevel:
    """One CSF level.

    ``node_ids[i]`` is the data vertex of entry ``i``; ``child_index``
    (length ``len(node_ids) + 1``) gives the slice of entry ``i``'s
    children in the *next* level's ``node_ids``.
    """

    node_ids: np.ndarray
    child_index: np.ndarray

    @property
    def num_entries(self) -> int:
        return int(len(self.node_ids))

    @property
    def storage_words(self) -> int:
        """nodeid array + index array."""
        return int(len(self.node_ids) + len(self.child_index))


@dataclass
class CSFStore:
    """A frozen CSF trie built from a :class:`PathTrie`.

    Because CSF requires contiguous children, we *convert* from the PA/CA
    trie after a level is complete (the two-pass strategy prior work used
    at every step); sorting each level by parent index groups children.
    """

    levels: list[CSFLevel]

    @classmethod
    def from_path_trie(cls, trie: PathTrie) -> "CSFStore":
        """Convert a PA/CA trie into contiguous-children CSF form."""
        levels: list[CSFLevel] = []
        # Permutation applied to each level when sorting by parent; child
        # PA values must be remapped through the previous level's perm.
        prev_perm_inv: np.ndarray | None = None
        sorted_pas: list[np.ndarray] = []
        sorted_cas: list[np.ndarray] = []
        for lv, level in enumerate(trie.levels):
            pa = level.pa
            if lv > 0 and prev_perm_inv is not None:
                pa = prev_perm_inv[pa]
            order = np.argsort(pa, kind="stable")
            sorted_pas.append(pa[order])
            sorted_cas.append(level.ca[order])
            perm_inv = np.empty(len(order), dtype=np.int64)
            perm_inv[order] = np.arange(len(order), dtype=np.int64)
            prev_perm_inv = perm_inv
        for lv in range(len(sorted_cas)):
            node_ids = sorted_cas[lv]
            if lv + 1 < len(sorted_cas):
                counts = np.bincount(
                    sorted_pas[lv + 1], minlength=len(node_ids)
                ).astype(np.int64)
            else:
                counts = np.zeros(len(node_ids), dtype=np.int64)
            child_index = np.zeros(len(node_ids) + 1, dtype=np.int64)
            np.cumsum(counts, out=child_index[1:])
            levels.append(CSFLevel(node_ids=node_ids, child_index=child_index))
        return cls(levels=levels)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def total_storage_words(self) -> int:
        return sum(lv.storage_words for lv in self.levels)

    def paths(self) -> np.ndarray:
        """Materialise all deepest-level paths as a ``(P, depth)`` matrix."""
        if not self.levels:
            return np.zeros((0, 0), dtype=np.int64)
        # Reconstruct parent pointers from the child_index runs, then walk.
        parents: list[np.ndarray] = []
        for lv in range(self.depth):
            if lv == 0:
                parents.append(
                    np.full(self.levels[0].num_entries, -1, dtype=np.int64)
                )
            else:
                prev = self.levels[lv - 1]
                counts = np.diff(prev.child_index)
                parents.append(
                    np.repeat(
                        np.arange(prev.num_entries, dtype=np.int64), counts
                    )
                )
        deepest = self.depth - 1
        k = self.levels[deepest].num_entries
        out = np.empty((k, self.depth), dtype=np.int64)
        cur = np.arange(k, dtype=np.int64)
        for lv in range(deepest, -1, -1):
            out[:, lv] = self.levels[lv].node_ids[cur]
            cur = parents[lv][cur]
        return out
