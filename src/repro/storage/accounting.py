"""Storage accounting: the Table 1 / Eq. (3)–(5) comparison machinery.

Given per-level partial-path counts ``|P_l|`` this module computes the
word costs of the three representations and the compression ratio the
paper reports (naive / trie), plus the closed-form bounds of Eq. (4)/(5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "StorageComparison",
    "naive_words",
    "trie_words",
    "csf_words",
    "compare_storage",
    "theoretical_trie_bound",
    "theoretical_reduction_factor",
]


def naive_words(path_counts: list[int] | np.ndarray) -> list[int]:
    """Naive storage per level: ``l × |P_l|`` (1-based depth, Eq. 3)."""
    return [(lv + 1) * int(c) for lv, c in enumerate(path_counts)]


def trie_words(path_counts: list[int] | np.ndarray) -> list[int]:
    """cuTS trie storage *cumulative to* each level: ``Σ_{i<=l} 2|P_i|``.

    The trie must retain all shallower levels (parents are referenced),
    so the per-level figure the paper tabulates is the running total —
    level-1 naive 16514 vs ours 33028 in Table 1 is exactly 2× |P_1|.
    """
    out: list[int] = []
    running = 0
    for c in path_counts:
        running += 2 * int(c)
        out.append(running)
    return out


def csf_words(path_counts: list[int] | np.ndarray) -> list[int]:
    """CSF storage cumulative to each level: ids + index arrays.

    Level *i* contributes ``|P_i|`` node ids plus a ``|P_i| + 1`` child
    index array (the deepest level's index array may be omitted, but we
    count it for uniformity — it is one word per path plus one).
    """
    out: list[int] = []
    running = 0
    for c in path_counts:
        running += 2 * int(c) + 1
        out.append(running)
    return out


@dataclass(frozen=True)
class StorageComparison:
    """Per-depth storage comparison (one row per trie depth, 1-based)."""

    path_counts: tuple[int, ...]
    naive: tuple[int, ...]
    trie: tuple[int, ...]
    csf: tuple[int, ...]

    @property
    def compression_ratios(self) -> tuple[float, ...]:
        """Paper Table 1's ratio column: naive / ours, per depth."""
        return tuple(
            n / t if t else float("inf") for n, t in zip(self.naive, self.trie)
        )

    def rows(self) -> list[dict]:
        """Table rows matching the paper's Table 1 layout."""
        return [
            {
                "partial_path_depth": lv + 1,
                "naive_storage_words": self.naive[lv],
                "our_storage_words": self.trie[lv],
                "compression_ratio": self.compression_ratios[lv],
            }
            for lv in range(len(self.path_counts))
        ]


def compare_storage(path_counts: list[int] | np.ndarray) -> StorageComparison:
    """Build a :class:`StorageComparison` from per-level path counts."""
    counts = tuple(int(c) for c in path_counts)
    return StorageComparison(
        path_counts=counts,
        naive=tuple(naive_words(counts)),
        trie=tuple(trie_words(counts)),
        csf=tuple(csf_words(counts)),
    )


def theoretical_trie_bound(p1: int, ds: float, depth: int) -> float:
    """Eq. (4): ``|P_1| (ds^{l-1} − 1) / (ds − 1)`` path-slot bound.

    ``ds = δ × σ`` is the effective branching factor.  Returns the
    geometric-series bound on the number of trie *slots* (multiply by 2
    for words).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if ds == 1.0:
        return float(p1 * depth)
    return p1 * (ds**depth - 1.0) / (ds - 1.0)


def theoretical_reduction_factor(ds: float, depth: int) -> float:
    """Eq. (5)'s reduction factor ``l × (ds − 1)`` of naive over trie."""
    return depth * (ds - 1.0)
