"""Naive (traditional) flat partial-path storage.

The baseline representation the paper compares against in Table 1 and
Eq. (3): every partial path of depth *l* is materialised as *l* words, so
level *l* costs ``l × |P_l|`` words and shared prefixes are duplicated.
GSI-style matchers keep their intermediate table in this form; it is what
makes them hit the memory wall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NaivePathStore"]


@dataclass
class NaivePathStore:
    """A flat matrix of partial paths, one level at a time.

    ``paths`` is a ``(P, l)`` int64 matrix at depth ``l``; extending to
    depth ``l + 1`` rewrites the whole table (the repeated-copy behaviour
    that the trie avoids).
    """

    paths: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0), dtype=np.int64)
    )

    @classmethod
    def from_roots(cls, roots: np.ndarray) -> "NaivePathStore":
        """Start from the level-0 candidate set (depth-1 paths)."""
        roots = np.asarray(roots, dtype=np.int64)
        return cls(paths=roots.reshape(-1, 1).copy())

    @property
    def depth(self) -> int:
        """Current path length (number of matched vertices)."""
        return int(self.paths.shape[1])

    @property
    def num_paths(self) -> int:
        return int(self.paths.shape[0])

    @property
    def storage_words(self) -> int:
        """Words consumed: ``depth × num_paths`` (paper Eq. 3)."""
        return self.num_paths * self.depth

    def extend(self, parent_indices: np.ndarray, candidates: np.ndarray) -> None:
        """Extend to the next depth.

        ``parent_indices[i]`` selects the row to copy; ``candidates[i]``
        is appended to it.  The entire prefix is *copied*, which is
        exactly the duplication the trie representation removes.
        """
        parent_indices = np.asarray(parent_indices, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        if parent_indices.shape != candidates.shape:
            raise ValueError("parent_indices and candidates must align")
        new = np.empty((len(candidates), self.depth + 1), dtype=np.int64)
        new[:, : self.depth] = self.paths[parent_indices]
        new[:, self.depth] = candidates
        self.paths = new

    def materialize(self) -> np.ndarray:
        """All current paths as a ``(P, depth)`` matrix (a view)."""
        return self.paths
