"""Intermediate-result stores: naive flat, CSF, and the cuTS PA/CA trie."""

from .accounting import (
    StorageComparison,
    compare_storage,
    csf_words,
    naive_words,
    theoretical_reduction_factor,
    theoretical_trie_bound,
    trie_words,
)
from .csf import CSFLevel, CSFStore
from .naive import NaivePathStore
from .overlay import splice_adjacency, spliced_graph
from .serialize import deserialize_trie, serialize_trie, serialized_words
from .trie import PathTrie, TrieLevel

__all__ = [
    "PathTrie",
    "TrieLevel",
    "splice_adjacency",
    "spliced_graph",
    "NaivePathStore",
    "CSFStore",
    "CSFLevel",
    "StorageComparison",
    "compare_storage",
    "naive_words",
    "trie_words",
    "csf_words",
    "theoretical_trie_bound",
    "theoretical_reduction_factor",
    "serialize_trie",
    "deserialize_trie",
    "serialized_words",
]
