"""Non-mutating CSR overlay splice — the version-commit kernel.

A graph *version commit* (``repro.versioning``) must produce a child
CSR from a parent CSR plus a small edge delta **without touching the
parent's arrays**: live matches against version N stream the parent's
``indptr``/``indices`` (possibly through a shared-memory
:class:`~repro.parallel.sharedmem.SharedCSR` segment) and must never
observe a torn adjacency.  The splice here builds fresh arrays for the
child and leaves every parent array bit-identical — commit is a pure
function, isolation is structural.

The kernel itself is the adjacency analogue of the trie's single-pass
compaction: locate deletions with one vectorised binary search over the
(row, column)-encoded edge keys (rows are CSR segments, so keys are
globally sorted), mask them out, append insertions, and restore the
per-row sorted order with a single lexsort + bincount pass.  No Python
per-edge loop, O(E + Δ log Δ) work.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph, GraphFormatError, INDEX_DTYPE

__all__ = ["splice_adjacency", "spliced_graph"]


def _edge_keys(owners: np.ndarray, columns: np.ndarray, width: int) -> np.ndarray:
    """Encode (row, column) pairs as sortable scalar keys.

    ``width`` must exceed every column id; with int64 keys this caps the
    vertex count at ~3e9, far beyond the simulator's device budget.
    """
    return owners * np.int64(width) + columns


def splice_adjacency(
    indptr: np.ndarray,
    indices: np.ndarray,
    num_vertices: int,
    deletes: np.ndarray,
    inserts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Splice one CSR orientation: returns fresh ``(indptr, indices)``.

    Parameters
    ----------
    indptr, indices:
        The parent adjacency (read-only; never written).
    num_vertices:
        Vertex count of the **child** (may exceed the parent's — new
        rows are born empty).
    deletes, inserts:
        ``(K, 2)`` int64 ``(row, column)`` arrays.  Every delete must
        name an existing edge and every insert a missing one — the
        delta normaliser guarantees this; a violation here means the
        lineage is corrupt, so it raises :class:`GraphFormatError`
        rather than silently mis-splicing.
    """
    n_old = len(indptr) - 1
    if num_vertices < n_old:
        raise GraphFormatError(
            f"a version cannot shrink the vertex set ({n_old} -> {num_vertices})"
        )
    degrees = np.diff(indptr)
    owners = np.repeat(np.arange(n_old, dtype=INDEX_DTYPE), degrees)
    keys = _edge_keys(owners, indices, num_vertices)
    keep = np.ones(len(indices), dtype=bool)
    if len(deletes):
        dkeys = _edge_keys(deletes[:, 0], deletes[:, 1], num_vertices)
        pos = np.searchsorted(keys, dkeys)
        hit = (pos < len(keys)) & (keys[np.minimum(pos, len(keys) - 1)] == dkeys)
        if not hit.all():
            u, v = deletes[int(np.argmin(hit))]
            raise GraphFormatError(
                f"delta deletes edge ({int(u)}, {int(v)}) absent from the parent"
            )
        keep[pos] = False
    spliced_owners = owners[keep]
    spliced_cols = indices[keep]
    if len(inserts):
        ikeys = _edge_keys(inserts[:, 0], inserts[:, 1], num_vertices)
        pos = np.searchsorted(keys, ikeys)
        dup = (pos < len(keys)) & (keys[np.minimum(pos, len(keys) - 1)] == ikeys)
        if dup.any():
            u, v = inserts[int(np.argmax(dup))]
            raise GraphFormatError(
                f"delta inserts edge ({int(u)}, {int(v)}) already in the parent"
            )
        spliced_owners = np.concatenate([spliced_owners, inserts[:, 0]])
        spliced_cols = np.concatenate([spliced_cols, inserts[:, 1]])
        order = np.lexsort((spliced_cols, spliced_owners))
        spliced_owners = spliced_owners[order]
        spliced_cols = spliced_cols[order]
    counts = np.bincount(spliced_owners, minlength=num_vertices).astype(INDEX_DTYPE)
    new_indptr = np.zeros(num_vertices + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=new_indptr[1:])
    return new_indptr, np.ascontiguousarray(spliced_cols, dtype=INDEX_DTYPE)


def spliced_graph(
    parent: CSRGraph,
    inserts: np.ndarray,
    deletes: np.ndarray,
    num_vertices: int | None = None,
) -> CSRGraph:
    """The child :class:`CSRGraph` of ``parent`` under an edge delta.

    ``inserts``/``deletes`` are directed ``(K, 2)`` int64 edge arrays
    (already normalised: deduplicated, loop-free, disjoint, applicable
    — see :meth:`repro.versioning.EdgeDelta.build`).  Both CSR
    orientations are spliced; the parent's arrays are never mutated.
    A labelled parent cannot grow its vertex set (new vertices would
    have no label).
    """
    n_new = parent.num_vertices if num_vertices is None else num_vertices
    if parent.labels is not None and n_new > parent.num_vertices:
        raise GraphFormatError(
            "cannot grow the vertex set of a labelled graph: new "
            "vertices would carry no label"
        )
    indptr, indices = splice_adjacency(
        parent.indptr, parent.indices, n_new, deletes, inserts
    )
    rindptr, rindices = splice_adjacency(
        parent.rindptr, parent.rindices, n_new,
        deletes[:, ::-1] if len(deletes) else deletes,
        inserts[:, ::-1] if len(inserts) else inserts,
    )
    return CSRGraph(
        num_vertices=n_new,
        indptr=indptr,
        indices=indices,
        rindptr=rindptr,
        rindices=rindices,
        name=parent.name,
        labels=parent.labels,
    )
