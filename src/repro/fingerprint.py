"""Content fingerprints shared by the checkpoint store and the service.

A fingerprint names a *job input* by content, not by path or identity:
the SHA-256 of the CSR arrays for a graph, the SHA-256 of the
count-relevant config fields for a config.  Two subsystems key on them
and must agree bit-for-bit:

* **durable jobs** (:mod:`repro.checkpoint`) stamp every manifest with
  the fingerprints of the inputs the snapshot was taken under, and
  refuse to resume against anything else;
* the **matching service** (:mod:`repro.service`) keys its graph
  registry and its result/plan caches on the same fingerprints, so a
  cache entry can never be served for a graph or config that would
  enumerate differently.

Keeping one implementation here (``repro.checkpoint.fingerprint``
re-exports it) is what makes that agreement structural rather than
accidental.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from .core.config import CuTSConfig
from .graph.csr import CSRGraph

__all__ = [
    "CheckpointMismatchError",
    "COUNT_IRRELEVANT_FIELDS",
    "check_fingerprints",
    "config_fingerprint",
    "graph_fingerprint",
]


class CheckpointMismatchError(ValueError):
    """Resume was attempted against a checkpoint of a different job."""


def graph_fingerprint(graph: CSRGraph) -> str:
    """SHA-256 over the CSR arrays (and labels, when present)."""
    h = hashlib.sha256()
    h.update(
        f"v={graph.num_vertices};e={graph.num_edges};".encode("ascii")
    )
    for arr in (graph.indptr, graph.indices, graph.rindptr, graph.rindices):
        h.update(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
    if graph.labels is not None:
        h.update(b"labels:")
        h.update(np.ascontiguousarray(graph.labels, dtype=np.int64).tobytes())
    return h.hexdigest()


COUNT_IRRELEVANT_FIELDS = frozenset(
    {
        # Durability knobs: cadence and budget cannot change what is
        # enumerated, only how often progress is persisted.
        "memory_budget_mb",
        "checkpoint_every",
        "lease_timeout_s",
        "lease_retries",
        # Execution-engine shape: sharding is exact by construction.
        "trace_kernels",
        "workers",
        "oversplit",
        # Distributed reliability timing.
        "ack_timeout_ms",
        "retry_backoff",
        "max_retries",
        "heartbeat_interval_ms",
        "heartbeat_timeout_ms",
        # Serving knobs: queue shape and cache budget never reach the
        # enumerator (admission rejects whole requests, it does not
        # truncate results).
        "service_queue_depth",
        "service_batch_max",
        "service_cache_bytes",
        "service_max_query_vertices",
        "service_request_timeout_s",
        "service_max_body_bytes",
        "service_degraded_after",
        # Cluster topology: routing and replication decide *where* a
        # query runs, never what it enumerates (replicas execute the
        # same engine under the same count-relevant config).
        "service_ranks",
        "service_replication",
        "service_route_timeout_s",
        "service_heal_after_ticks",
        # Versioning: retention depth decides which *versions* remain
        # addressable, never what any one version enumerates; the
        # incremental path is equivalence-gated against the full match.
        "versioning_max_versions",
        "versioning_incremental",
    }
)
"""Config fields excluded from :func:`config_fingerprint`.

Everything listed here is provably count-invariant: changing it between
runs must not invalidate a checkpoint or miss a cache, because it cannot
change *what* is enumerated.
"""


def config_fingerprint(config: CuTSConfig) -> str:
    """SHA-256 over the count-relevant config fields.

    Fields in :data:`COUNT_IRRELEVANT_FIELDS` are excluded; everything
    else participates, so any config change that could alter counts
    yields a different fingerprint (and therefore a cache miss / resume
    refusal rather than a stale answer).
    """
    h = hashlib.sha256()
    for f in dataclasses.fields(config):
        if f.name in COUNT_IRRELEVANT_FIELDS:
            continue
        value = getattr(config, f.name)
        h.update(f"{f.name}={value!r};".encode("utf-8"))
    return h.hexdigest()


def check_fingerprints(
    stored: dict[str, str], current: dict[str, str]
) -> None:
    """Raise :class:`CheckpointMismatchError` on any disagreement."""
    for key in sorted(set(stored) | set(current)):
        if stored.get(key) != current.get(key):
            raise CheckpointMismatchError(
                f"checkpoint fingerprint mismatch on {key!r}: the snapshot "
                f"was taken for a different {key}; refusing to resume "
                f"(stored {stored.get(key)!r}, current {current.get(key)!r})"
            )
