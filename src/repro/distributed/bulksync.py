"""The rejected distributed strategy: bulk-synchronous rebalancing.

Paper §4.2 considers and rejects a first strategy before arriving at the
asynchronous protocol:

    "The first strategy is to synchronize all the compute nodes after
    each outer iteration ... exchange the number of remaining partial
    paths ... and then distribute the partial paths evenly across each
    node.  However, this strategy has two main disadvantages: i) wasted
    compute cycles [waiting at the barrier] and ii) incompatibility with
    the cuTS representation [whole tries must be shipped]."

This module implements exactly that scheme so the reproduction can
measure the argument: every rank expands its frontier one level, all
ranks barrier at the slowest rank's clock, path counts are exchanged,
and paths are redistributed evenly (shipping serialized sub-tries
whenever a rank holds more than the average).  The comparison benchmark
shows the async work-stealing runtime beating it, and the per-level
barrier time quantifies disadvantage (i) directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import CuTSConfig
from ..graph.csr import CSRGraph
from ..storage.serialize import deserialize_trie, serialize_trie
from ..storage.trie import PathTrie, TrieLevel
from .comm import NetworkModel
from .runtime import DistributedResult

__all__ = ["BulkSyncResult", "BulkSyncCuTS"]


@dataclass(frozen=True)
class BulkSyncResult:
    """Outcome of a bulk-synchronous distributed run."""

    count: int
    runtime_ms: float
    per_rank_busy_ms: tuple[float, ...]
    barrier_wait_ms: tuple[float, ...]
    words_transferred: int
    levels: int

    @property
    def num_ranks(self) -> int:
        return len(self.per_rank_busy_ms)

    @property
    def total_barrier_waste_ms(self) -> float:
        """Disadvantage (i): compute cycles wasted waiting at barriers."""
        return float(sum(self.barrier_wait_ms))

    def as_distributed_result(self) -> DistributedResult:
        """Adapter for code that consumes the async result type."""
        return DistributedResult(
            count=self.count,
            runtime_ms=self.runtime_ms,
            per_rank_clock_ms=tuple(
                b + w
                for b, w in zip(self.per_rank_busy_ms, self.barrier_wait_ms)
            ),
            per_rank_busy_ms=self.per_rank_busy_ms,
            chunks_processed=(0,) * self.num_ranks,
            work_transfers=0,
            words_transferred=self.words_transferred,
        )


class BulkSyncCuTS:
    """Level-synchronous distributed cuTS (the §4.2 strawman)."""

    def __init__(
        self,
        data: CSRGraph,
        num_ranks: int,
        config: CuTSConfig | None = None,
        network: NetworkModel | None = None,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.data = data
        self.num_ranks = num_ranks
        self.config = config or CuTSConfig()
        self.network = network or NetworkModel()

    def match(self, query: CSRGraph) -> BulkSyncResult:
        """Run the level-synchronous search to completion."""
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        from ..core.matcher import CuTSMatcher

        matchers = [
            CuTSMatcher(self.data, self.config) for _ in range(self.num_ranks)
        ]
        states = [m.make_run_state(query) for m in matchers]
        n_steps = states[0].order.num_steps

        # init_match: strided partition, as in the async engine.
        tries: list[PathTrie | None] = []
        clocks = np.zeros(self.num_ranks, dtype=np.float64)
        busy = np.zeros(self.num_ranks, dtype=np.float64)
        waits = np.zeros(self.num_ranks, dtype=np.float64)
        words_transferred = 0
        count = 0
        for r, (m, s) in enumerate(zip(matchers, states)):
            t0 = s.cost.time_ms
            trie = m.initial_frontier(s, part=r, num_parts=self.num_ranks)
            dt = s.cost.time_ms - t0
            clocks[r] += dt
            busy[r] += dt
            tries.append(trie if trie.num_paths(0) else None)

        if n_steps == 1:
            count = sum(t.num_paths(0) for t in tries if t is not None)
            return BulkSyncResult(
                count=count,
                runtime_ms=float(clocks.max()),
                per_rank_busy_ms=tuple(busy),
                barrier_wait_ms=tuple(waits),
                words_transferred=0,
                levels=1,
            )

        levels = 0
        for step in range(1, n_steps):
            levels += 1
            # --- each rank expands its frontier one level, chunk by
            # chunk (the memory constraint applies to every strategy, so
            # per-chunk launch costs are identical to the async engine's)
            chunk = self.config.chunk_size
            for r, (m, s) in enumerate(zip(matchers, states)):
                trie = tries[r]
                if trie is None:
                    continue
                size = trie.num_paths(trie.depth - 1)
                pa_parts: list[np.ndarray] = []
                ca_parts: list[np.ndarray] = []
                t0 = s.cost.time_ms
                for lo in range(0, size, chunk):
                    frontier = np.arange(
                        lo, min(lo + chunk, size), dtype=np.int64
                    )
                    pa, ca = m.expand_frontier(trie, step, frontier, s)
                    if len(ca):
                        pa_parts.append(pa)
                        ca_parts.append(ca)
                dt = s.cost.time_ms - t0
                clocks[r] += dt
                busy[r] += dt
                if not ca_parts:
                    tries[r] = None
                else:
                    tries[r] = PathTrie(
                        levels=[
                            *trie.levels,
                            TrieLevel(
                                pa=np.concatenate(pa_parts),
                                ca=np.concatenate(ca_parts),
                            ),
                        ]
                    )
            # --- barrier: everyone waits for the slowest ----------------
            barrier = float(clocks.max())
            waits += barrier - clocks
            clocks[:] = barrier
            if step == n_steps - 1:
                break
            # --- even redistribution (ships whole sub-tries) ------------
            words = self._rebalance(tries, step)
            words_transferred += words
            transfer = self.network.transfer_ms(words)
            clocks += transfer  # all ranks participate in the exchange

        count = sum(
            t.num_paths(t.depth - 1) for t in tries if t is not None
        )
        return BulkSyncResult(
            count=count,
            runtime_ms=float(clocks.max()),
            per_rank_busy_ms=tuple(busy),
            barrier_wait_ms=tuple(waits),
            words_transferred=words_transferred,
            levels=levels,
        )

    # ------------------------------------------------------------------
    def _rebalance(self, tries: list[PathTrie | None], step: int) -> int:
        """Redistribute frontier paths evenly; returns words shipped.

        Surplus ranks extract sub-tries for their excess paths, deficit
        ranks absorb them; each shipped path costs its serialized trie
        prefix — disadvantage (ii) made concrete.
        """
        sizes = np.array(
            [
                0 if t is None else t.num_paths(t.depth - 1)
                for t in tries
            ],
            dtype=np.int64,
        )
        total = int(sizes.sum())
        if total == 0:
            return 0
        target = np.full(self.num_ranks, total // self.num_ranks, dtype=np.int64)
        target[: total % self.num_ranks] += 1
        words = 0
        surplus_buffers: list[np.ndarray] = []
        for r in range(self.num_ranks):
            excess = int(sizes[r] - target[r])
            if excess > 0 and tries[r] is not None:
                t = tries[r]
                level = t.depth - 1
                keep = np.arange(sizes[r] - excess, dtype=np.int64)
                give = np.arange(sizes[r] - excess, sizes[r], dtype=np.int64)
                sub_give = t.extract_subtrie(level, give)
                buf = serialize_trie(sub_give)
                words += len(buf)
                surplus_buffers.append(buf)
                tries[r] = t.extract_subtrie(level, keep)
        # deficit ranks absorb whole buffers greedily (close enough to
        # even; exactness of the split is not what the comparison tests)
        for r in range(self.num_ranks):
            need = int(target[r] - sizes[r])
            while need > 0 and surplus_buffers:
                buf = surplus_buffers.pop()
                sub = deserialize_trie(buf)
                moved = sub.num_paths(sub.depth - 1)
                if tries[r] is None:
                    tries[r] = sub
                else:
                    tries[r] = _merge_tries(tries[r], sub)
                need -= moved
        # anything left lands on the last rank
        for buf in surplus_buffers:
            sub = deserialize_trie(buf)
            last = self.num_ranks - 1
            tries[last] = (
                sub if tries[last] is None else _merge_tries(tries[last], sub)
            )
        return words


def _merge_tries(a: PathTrie, b: PathTrie) -> PathTrie:
    """Concatenate two tries of equal depth (disjoint path sets)."""
    if a.depth != b.depth:
        raise ValueError(f"cannot merge tries of depth {a.depth} and {b.depth}")
    levels = []
    offset_prev = 0
    for lv in range(a.depth):
        pa_b = b.levels[lv].pa.copy()
        if lv > 0:
            pa_b += offset_prev
        levels.append(
            TrieLevel(
                pa=np.concatenate([a.levels[lv].pa, pa_b]),
                ca=np.concatenate([a.levels[lv].ca, b.levels[lv].ca]),
            )
        )
        offset_prev = a.levels[lv].num_paths
    return PathTrie(levels=levels)
