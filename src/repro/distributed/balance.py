"""Load-balance reporting (Figure 5).

Figure 5 plots per-node runtimes T1..T4 on the 4-node wikiTalk runs and
argues "our node to node runtime variation is very low".  This module
turns a :class:`~repro.distributed.runtime.DistributedResult` into that
table plus summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runtime import DistributedResult

__all__ = ["BalanceReport", "balance_report"]


@dataclass(frozen=True)
class BalanceReport:
    """Per-node runtime spread of one distributed run."""

    per_rank_ms: tuple[float, ...]
    mean_ms: float
    max_ms: float
    min_ms: float
    imbalance: float  # max / mean
    cov: float  # coefficient of variation

    def rows(self) -> list[dict]:
        """One row per node, Figure-5 style (T1, T2, ...)."""
        return [
            {"node": f"T{i + 1}", "runtime_ms": t}
            for i, t in enumerate(self.per_rank_ms)
        ]


def balance_report(result: DistributedResult) -> BalanceReport:
    """Summarise per-rank busy times of a distributed run."""
    busy = np.asarray(result.per_rank_busy_ms, dtype=np.float64)
    mean = float(busy.mean()) if busy.size else 0.0
    std = float(busy.std()) if busy.size else 0.0
    return BalanceReport(
        per_rank_ms=tuple(float(t) for t in busy),
        mean_ms=mean,
        max_ms=float(busy.max()) if busy.size else 0.0,
        min_ms=float(busy.min()) if busy.size else 0.0,
        imbalance=float(busy.max() / mean) if mean > 0 else 1.0,
        cov=std / mean if mean > 0 else 0.0,
    )
