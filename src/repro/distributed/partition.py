"""Initial work partitioning across ranks.

Paper Algorithm 3 line 6: ``M = init_match(Q, D, rank)`` — every rank
computes the root candidate set and keeps a stride slice.  Striding (as
opposed to block partitioning) interleaves hub and leaf candidates, which
matters because candidate ids correlate with degree in many datasets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stride_partition", "block_partition"]


def stride_partition(items: np.ndarray, rank: int, num_ranks: int) -> np.ndarray:
    """Rank ``r`` keeps ``items[r::P]`` (the paper's init_match)."""
    if not 0 <= rank < num_ranks:
        raise ValueError(f"rank {rank} out of range [0, {num_ranks})")
    return np.ascontiguousarray(np.asarray(items)[rank::num_ranks])


def block_partition(items: np.ndarray, rank: int, num_ranks: int) -> np.ndarray:
    """Contiguous block split (kept for the partitioning ablation)."""
    if not 0 <= rank < num_ranks:
        raise ValueError(f"rank {rank} out of range [0, {num_ranks})")
    items = np.asarray(items)
    bounds = np.linspace(0, len(items), num_ranks + 1).astype(np.int64)
    return np.ascontiguousarray(items[bounds[rank] : bounds[rank + 1]])
