"""Deterministic fault injection for the simulated cluster.

The paper's mini asynchronous protocol (Algorithm 3, §4.2) assumes a
perfectly reliable MPI substrate.  This module supplies the adversary:
a seeded :class:`FaultPlan` describing *what* can go wrong and a
:class:`FaultInjector` that :class:`~repro.distributed.comm.SimComm`
consults on every send to decide *when* it goes wrong.

Fault taxonomy
--------------
Message-level (applied per send, to the tags in ``FaultPlan.tags`` —
by default the ``work``/``ack`` data plane the recovery protocol is
built to survive):

* **drop** — the message is lost in flight and never delivered;
* **duplicate** — a second copy is delivered (possibly with its own
  extra delay), modelling link-level retransmit storms;
* **delay** — delivery is postponed by a uniform jitter in
  ``(0, max_delay_ms]``.

Rank-level:

* **crash** — the rank halts permanently at a fixed simulated time:
  its stack, tentative counts and in-flight state are lost;
* **slowdown** — a permanent straggler factor multiplying every
  compute advance on that rank (the rank stays correct, just slow).

Determinism: all decisions come from one ``random.Random(seed)``
consumed in event-loop order, so a given ``(plan, workload)`` pair
replays identically — the property the chaos test matrix relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of injected faults.

    ``crash_at_ms`` maps rank → simulated crash time; ``slowdown`` maps
    rank → compute multiplier (> 1 means slower).  Probabilities apply
    independently per sent message whose tag is in ``tags``.
    """

    seed: int = 0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay_ms: float = 1.0
    crash_at_ms: dict[int, float] = field(default_factory=dict)
    slowdown: dict[int, float] = field(default_factory=dict)
    tags: tuple[str, ...] = ("work", "ack")

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        for r, t in self.crash_at_ms.items():
            if t < 0:
                raise ValueError(f"crash time for rank {r} must be >= 0")
        for r, f in self.slowdown.items():
            if f < 1.0:
                raise ValueError(
                    f"slowdown factor for rank {r} must be >= 1, got {f}"
                )

    @property
    def is_null(self) -> bool:
        """Whether this plan injects nothing at all."""
        return (
            self.drop_prob == 0.0
            and self.dup_prob == 0.0
            and self.delay_prob == 0.0
            and not self.crash_at_ms
            and not self.slowdown
        )

    @classmethod
    def random(
        cls,
        seed: int,
        num_ranks: int,
        *,
        drop_prob: float = 0.1,
        dup_prob: float = 0.1,
        delay_prob: float = 0.2,
        max_delay_ms: float = 5.0,
        crash_prob: float = 0.3,
        crash_horizon_ms: float = 50.0,
        slow_prob: float = 0.2,
        max_slowdown: float = 4.0,
        max_crashes: int | None = None,
    ) -> "FaultPlan":
        """A randomized chaos schedule for ``num_ranks`` ranks.

        At most ``max_crashes`` ranks crash (default ``num_ranks - 1``,
        so at least one rank always survives and the distributed count
        stays recoverable).
        """
        rng = random.Random(seed)
        if max_crashes is None:
            max_crashes = num_ranks - 1
        crash_at: dict[int, float] = {}
        candidates = list(range(num_ranks))
        rng.shuffle(candidates)
        for r in candidates:
            if len(crash_at) >= max_crashes:
                break
            if rng.random() < crash_prob:
                crash_at[r] = rng.uniform(0.0, crash_horizon_ms)
        slowdown = {
            r: rng.uniform(1.5, max_slowdown)
            for r in range(num_ranks)
            if r not in crash_at and rng.random() < slow_prob
        }
        return cls(
            seed=seed,
            drop_prob=rng.uniform(0.0, drop_prob),
            dup_prob=rng.uniform(0.0, dup_prob),
            delay_prob=rng.uniform(0.0, delay_prob),
            max_delay_ms=max_delay_ms,
            crash_at_ms=crash_at,
            slowdown=slowdown,
        )


class FaultInjector:
    """Runtime oracle for a :class:`FaultPlan`.

    ``message_fate`` is consulted once per :meth:`SimComm.send`; it
    returns the list of extra delivery delays — ``[]`` means the
    message is dropped, two entries mean it is duplicated.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.drops = 0
        self.duplicates = 0
        self.delays = 0

    # -- message faults -------------------------------------------------
    def message_fate(self, tag: str) -> list[float]:
        plan = self.plan
        if tag not in plan.tags:
            return [0.0]
        if plan.drop_prob and self._rng.random() < plan.drop_prob:
            self.drops += 1
            return []
        deliveries = [self._jitter()]
        if plan.dup_prob and self._rng.random() < plan.dup_prob:
            self.duplicates += 1
            deliveries.append(self._jitter())
        return deliveries

    def _jitter(self) -> float:
        plan = self.plan
        if plan.delay_prob and self._rng.random() < plan.delay_prob:
            self.delays += 1
            return self._rng.uniform(0.0, plan.max_delay_ms)
        return 0.0

    # -- rank faults ----------------------------------------------------
    def crash_time(self, rank: int) -> float | None:
        return self.plan.crash_at_ms.get(rank)

    def slowdown(self, rank: int) -> float:
        return self.plan.slowdown.get(rank, 1.0)

    @property
    def message_faults(self) -> int:
        return self.drops + self.duplicates + self.delays
