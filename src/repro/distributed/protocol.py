"""Free/busy bookkeeping and reliability state of the mini asynchronous
protocol (§4.2), hardened against an unreliable substrate.

The paper: "we developed a mini asynchronous protocol, built on top of
the MPI framework ... we ensure that only one busy node sends data to a
given free node, and a given busy node only sends data to one free node."

:class:`FreeNodeRegistry` enforces exactly that pairing: a free node can
be *claimed* by at most one busy sender until it receives the work and is
marked busy again, and a busy sender holding an outstanding claim may not
claim a second target.  Claims can also be *released* (empty shipment,
ack timeout, crashed peer) so a failed transfer never leaks the target.

On top of that, three pieces of reliability state let the runtime keep
exactly-once work accounting over a faulty network:

* :class:`WorkEnvelope` — a sequence-numbered work message whose buffers
  each carry provenance (:class:`BufferMeta`): which contiguous interval
  of which origin rank's root partition the work descends from, plus a
  re-execution generation.
* :class:`ShipmentTracker` — the sender-side in-flight ledger (for
  timeout/retransmit), the receiver-side dedup set (``seen``) and the
  revocation set that keeps an abandoned-and-requeued envelope from ever
  being integrated twice.
* :class:`StrideLedger` — per root-interval accounting: how many live
  work items descend from the interval (``pending``), tentative
  per-rank embedding counts, and the committed total once an interval's
  subtree is fully explored.  A crash discards the tentative state of
  every interval the dead rank touched and re-executes those intervals
  from the root, so the final count is exact whenever one rank survives.

The shared-state ledgers stand in for protocol metadata that a real MPI
implementation would piggyback on messages (the same simplification the
seed already made for :class:`FreeNodeRegistry`'s free/busy knowledge).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "MsgType",
    "FreeNodeRegistry",
    "BufferMeta",
    "WorkEnvelope",
    "Shipment",
    "ShipmentTracker",
    "StrideLedger",
]


class MsgType(str, enum.Enum):
    """Catalog of every message kind the protocol puts on the wire.

    A ``str`` subclass so members compare equal to the legacy tag
    literals (``MsgType.WORK == "work"``) and pass unchanged through
    :class:`~repro.distributed.comm.SimComm` and
    :class:`~repro.distributed.faults.FaultPlan.tags` filters.

    Totality contract (machine-checked by analysis rule RP004): every
    member must have a dispatch arm in ``runtime.py``/``worker.py``, and
    every point-to-point kind must be drained by a matching
    ``receive``/``peek``.  ``FREE`` and ``HEARTBEAT`` are broadcast
    kinds whose knowledge is modeled through the shared-state ledgers
    (see the module docstring) rather than per-message receives.
    """

    WORK = "work"
    """A :class:`WorkEnvelope` shipped point-to-point to a claimed free
    rank; acked, deduplicated, and retransmitted."""

    ACK = "ack"
    """Receiver's acknowledgement of a ``WORK`` envelope (payload: the
    envelope's ``seq``)."""

    FREE = "free"
    """Broadcast by a rank that ran out of work (Algorithm 3's free
    announcement); consumed via :class:`FreeNodeRegistry`."""

    HEARTBEAT = "hb"
    """Periodic liveness broadcast; silence past the timeout triggers
    crash recovery."""


@dataclass
class FreeNodeRegistry:
    """Cluster-wide free/busy state (the protocol's shared knowledge)."""

    num_ranks: int
    free_since: dict[int, float] = field(default_factory=dict)
    claimed_by: dict[int, int] = field(default_factory=dict)
    outstanding_claim: dict[int, int] = field(default_factory=dict)
    transfers: int = 0

    def announce_free(self, rank: int, time: float) -> None:
        """A rank broadcast that it finished all its work."""
        self._check(rank)
        self.free_since.setdefault(rank, time)

    def is_free(self, rank: int) -> bool:
        return rank in self.free_since

    def claim_free(self, sender: int, time: float) -> int | None:
        """A busy ``sender`` claims the earliest-free unclaimed rank.

        Returns the claimed rank, or ``None`` when no free rank is
        visible at ``time`` (broadcast latency is approximated by the
        announcement time itself) or the sender already holds a claim.
        """
        self._check(sender)
        if sender in self.outstanding_claim:
            return None
        candidates = [
            (t, r)
            for r, t in self.free_since.items()
            if r != sender and r not in self.claimed_by and t <= time
        ]
        if not candidates:
            return None
        _, target = min(candidates)
        self.claimed_by[target] = sender
        self.outstanding_claim[sender] = target
        self.transfers += 1
        return target

    def mark_busy(self, rank: int) -> None:
        """A rank received work: it is no longer free; claims resolve."""
        self._check(rank)
        self.free_since.pop(rank, None)
        sender = self.claimed_by.pop(rank, None)
        if sender is not None:
            self.outstanding_claim.pop(sender, None)

    def release_claim(
        self,
        sender: int,
        expected_target: int | None = None,
        *,
        cancel_transfer: bool = True,
    ) -> bool:
        """Undo ``sender``'s outstanding claim without a completed transfer.

        Used when a ship produced no buffers, when the ack for a shipment
        timed out past its retry budget, or when either endpoint crashed.
        The target goes back to the claimable pool and, by default, the
        ``transfers`` counter is rolled back so it only counts transfers
        that actually moved work.  Returns whether a claim was released.
        """
        self._check(sender)
        target = self.outstanding_claim.get(sender)
        if target is None:
            return False
        if expected_target is not None and target != expected_target:
            return False
        del self.outstanding_claim[sender]
        self.claimed_by.pop(target, None)
        if cancel_transfer:
            self.transfers -= 1
        return True

    def drop_rank(self, rank: int) -> int | None:
        """Remove a crashed ``rank`` from all registry state.

        Releases the claim *on* the dead rank (returning the claimant so
        the caller can reconcile its shipment) and any claim *held by*
        the dead rank.
        """
        self._check(rank)
        self.free_since.pop(rank, None)
        claimant = self.claimed_by.pop(rank, None)
        if claimant is not None:
            self.outstanding_claim.pop(claimant, None)
        target = self.outstanding_claim.pop(rank, None)
        if target is not None:
            self.claimed_by.pop(target, None)
        return claimant

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")


# ----------------------------------------------------------------------
# Reliable work shipping
# ----------------------------------------------------------------------

StrideKey = tuple[int, int, int]
"""``(origin_rank, lo, hi)`` — a contiguous interval of the origin
rank's root-candidate rows.  Root frontiers are only ever sliced
contiguously (chunking and surplus splits both take prefixes), so every
work item at any depth descends from exactly one such interval."""


@dataclass(frozen=True)
class BufferMeta:
    """Provenance of one serialized trie buffer inside an envelope."""

    origin: int
    lo: int
    hi: int
    gen: int

    @property
    def key(self) -> StrideKey:
        return (self.origin, self.lo, self.hi)


@dataclass(frozen=True)
class WorkEnvelope:
    """A sequence-numbered work message (the unit of ack/retransmit)."""

    seq: int
    src: int
    buffers: tuple[np.ndarray, ...]
    metas: tuple[BufferMeta, ...]
    words: int


@dataclass
class Shipment:
    """Sender-side record of one in-flight (unacked) envelope."""

    envelope: WorkEnvelope
    dst: int
    first_sent_ms: float
    next_retry_ms: float
    retry_interval_ms: float
    attempts: int = 0

    @property
    def key(self) -> tuple[int, int]:
        return (self.envelope.src, self.envelope.seq)


@dataclass
class ShipmentTracker:
    """Cluster-wide exactly-once bookkeeping for shipped work.

    ``in_flight`` is the union of the per-sender ledgers; ``seen`` is
    the union of the per-receiver dedup logs; ``revoked`` marks
    envelopes whose work was requeued at the sender after the retry
    budget ran out (or after the destination died) — a late-arriving
    copy of a revoked envelope must be acked but never integrated.
    """

    in_flight: dict[tuple[int, int], Shipment] = field(default_factory=dict)
    seen: set[tuple[int, int]] = field(default_factory=set)
    revoked: set[tuple[int, int]] = field(default_factory=set)
    retransmissions: int = 0

    def __post_init__(self) -> None:
        self._seq = itertools.count()

    def next_seq(self) -> int:
        return next(self._seq)

    def register(self, shipment: Shipment) -> None:
        self.in_flight[shipment.key] = shipment

    def ack(self, src: int, seq: int) -> None:
        self.in_flight.pop((src, seq), None)

    def entries_from(self, rank: int) -> list[Shipment]:
        return [s for s in self.in_flight.values() if s.envelope.src == rank]

    def entries_to(self, rank: int) -> list[Shipment]:
        return [s for s in self.in_flight.values() if s.dst == rank]

    def next_deadline_from(self, rank: int) -> float | None:
        deadlines = [
            s.next_retry_ms
            for s in self.in_flight.values()
            if s.envelope.src == rank
        ]
        return min(deadlines) if deadlines else None

    def mark_seen(self, src: int, seq: int) -> None:
        self.seen.add((src, seq))

    def is_seen(self, src: int, seq: int) -> bool:
        return (src, seq) in self.seen

    def revoke(self, src: int, seq: int) -> None:
        self.revoked.add((src, seq))

    def is_revoked(self, src: int, seq: int) -> bool:
        return (src, seq) in self.revoked


@dataclass
class _StrideEntry:
    pending: int = 0
    gen: int = 0
    committed: bool = False
    count: int = 0
    tentative: dict[int, int] = field(default_factory=dict)
    holders: set[int] = field(default_factory=set)


@dataclass
class StrideLedger:
    """Exact embedding accounting per root interval.

    Invariant: for an uncommitted entry, ``pending`` equals the number
    of live work items descending from the interval — on any stack or
    in flight between ranks (an in-flight chunk is represented by the
    sender's ledger copy until the receiver integrates it, never by
    both for accounting purposes).  When ``pending`` reaches zero the
    interval's subtree is fully explored and its tentative counts are
    committed (replicated, in protocol terms), making them immune to
    later crashes of the ranks that computed them.
    """

    entries: dict[StrideKey, _StrideEntry] = field(default_factory=dict)
    committed_total: int = 0
    uncommitted: int = 0
    recovered_intervals: int = 0
    stale_discards: int = 0

    # -- lifecycle ------------------------------------------------------
    def open(self, key: StrideKey, rank: int, *, gen: int = 0) -> None:
        entry = _StrideEntry(pending=1, gen=gen)
        entry.holders.add(rank)
        self.entries[key] = entry
        self.uncommitted += 1

    def accepts(self, key: StrideKey, gen: int) -> bool:
        """Whether a buffer with this provenance is still current."""
        entry = self.entries.get(key)
        return entry is not None and not entry.committed and entry.gen == gen

    def split_root(self, key: StrideKey, mid: int, gen: int, rank: int) -> bool:
        """Replace interval ``key`` by ``[lo, mid)`` and ``[mid, hi)``.

        Called when a depth-1 work item's frontier is sliced (chunking
        or surplus split) — the only way root intervals subdivide.
        """
        entry = self.entries.get(key)
        if entry is None or entry.committed or entry.gen != gen:
            return False
        origin, lo, hi = key
        if not lo < mid < hi:
            return False
        del self.entries[key]
        self.uncommitted -= 1
        for sub in ((origin, lo, mid), (origin, mid, hi)):
            self.open(sub, rank, gen=gen)
        return True

    def add_pending(self, key: StrideKey, gen: int, delta: int) -> None:
        entry = self.entries.get(key)
        if entry is None or entry.committed or entry.gen != gen:
            return
        entry.pending += delta

    def add_holder(self, key: StrideKey, gen: int, rank: int) -> None:
        entry = self.entries.get(key)
        if entry is not None and not entry.committed and entry.gen == gen:
            entry.holders.add(rank)

    def finish_item(self, key: StrideKey, gen: int, rank: int, count: int) -> None:
        """One work item of ``key`` fully expanded, yielding ``count``
        embeddings; commits the interval when it was the last one."""
        entry = self.entries.get(key)
        if entry is None or entry.committed or entry.gen != gen:
            return
        if count:
            entry.tentative[rank] = entry.tentative.get(rank, 0) + count
            entry.holders.add(rank)
        entry.pending -= 1
        if entry.pending <= 0:
            entry.committed = True
            entry.count = sum(entry.tentative.values())
            entry.tentative.clear()
            entry.holders.clear()
            self.committed_total += entry.count
            self.uncommitted -= 1

    # -- crash recovery -------------------------------------------------
    def begin_recovery(self, failed_rank: int) -> list[StrideKey]:
        """Invalidate every uncommitted interval the dead rank touched.

        Bumps each dirty interval's generation (so stale in-flight
        buffers are discarded on arrival), clears its tentative state,
        and returns the keys for root re-execution via
        :meth:`RankWorker.adopt_root_intervals`.
        """
        dirty = [
            key
            for key, e in self.entries.items()
            if not e.committed and failed_rank in e.holders
        ]
        for key in dirty:
            entry = self.entries[key]
            entry.gen += 1
            entry.pending = 0
            entry.tentative.clear()
            entry.holders.clear()
        self.recovered_intervals += len(dirty)
        return dirty

    def adopt(self, key: StrideKey, rank: int) -> int:
        """Register the re-executed root item for ``key``; returns the
        generation the new item must carry."""
        entry = self.entries[key]
        entry.pending += 1
        entry.holders.add(rank)
        return entry.gen

    def gen_of(self, key: StrideKey) -> int:
        return self.entries[key].gen

    # -- checkpoint/resume ----------------------------------------------
    def committed_intervals(self) -> list[tuple[int, int, int, int]]:
        """Every committed interval as ``(origin, lo, hi, count)``.

        This is the ledger's durable state: committed intervals are
        immune to crashes by construction, so they are exactly what a
        checkpoint snapshot persists and what a resumed run preloads.
        """
        return [
            (key[0], key[1], key[2], entry.count)
            for key, entry in sorted(self.entries.items())
            if entry.committed
        ]

    def preload_committed(
        self, intervals: list[tuple[int, int, int, int]]
    ) -> None:
        """Seed the ledger with intervals committed by a previous run.

        Used on checkpoint resume *before* ``init_partition``: workers
        then open (and re-execute) only the gaps between these.
        """
        for origin, lo, hi, count in intervals:
            key: StrideKey = (int(origin), int(lo), int(hi))
            if key in self.entries:
                raise ValueError(
                    f"cannot preload {key}: interval already present"
                )
            entry = _StrideEntry(pending=0, committed=True, count=int(count))
            self.entries[key] = entry
            self.committed_total += int(count)

    # -- termination ----------------------------------------------------
    def all_committed(self) -> bool:
        return self.uncommitted == 0
