"""Free/busy bookkeeping of the mini asynchronous protocol (§4.2).

The paper: "we developed a mini asynchronous protocol, built on top of
the MPI framework ... we ensure that only one busy node sends data to a
given free node, and a given busy node only sends data to one free node."

:class:`FreeNodeRegistry` enforces exactly that pairing: a free node can
be *claimed* by at most one busy sender until it receives the work and is
marked busy again, and a busy sender holding an outstanding claim may not
claim a second target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FreeNodeRegistry"]


@dataclass
class FreeNodeRegistry:
    """Cluster-wide free/busy state (the protocol's shared knowledge)."""

    num_ranks: int
    free_since: dict[int, float] = field(default_factory=dict)
    claimed_by: dict[int, int] = field(default_factory=dict)
    outstanding_claim: dict[int, int] = field(default_factory=dict)
    transfers: int = 0

    def announce_free(self, rank: int, time: float) -> None:
        """A rank broadcast that it finished all its work."""
        self._check(rank)
        self.free_since.setdefault(rank, time)

    def is_free(self, rank: int) -> bool:
        return rank in self.free_since

    def claim_free(self, sender: int, time: float) -> int | None:
        """A busy ``sender`` claims the earliest-free unclaimed rank.

        Returns the claimed rank, or ``None`` when no free rank is
        visible at ``time`` (broadcast latency is approximated by the
        announcement time itself) or the sender already holds a claim.
        """
        self._check(sender)
        if sender in self.outstanding_claim:
            return None
        candidates = [
            (t, r)
            for r, t in self.free_since.items()
            if r != sender and r not in self.claimed_by and t <= time
        ]
        if not candidates:
            return None
        _, target = min(candidates)
        self.claimed_by[target] = sender
        self.outstanding_claim[sender] = target
        self.transfers += 1
        return target

    def mark_busy(self, rank: int) -> None:
        """A rank received work: it is no longer free; claims resolve."""
        self._check(rank)
        self.free_since.pop(rank, None)
        sender = self.claimed_by.pop(rank, None)
        if sender is not None:
            self.outstanding_claim.pop(sender, None)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")
