"""The distributed cuTS runtime: Algorithm 3 as a discrete-event run,
hardened to survive an unreliable substrate.

Every rank executes its own chunked search without synchronisation; at
chunk boundaries a busy rank checks whether some rank has broadcast
"free" and, if so, ships it roughly half of its pending work together
with the trie prefix (the paper's mini asynchronous protocol, with the
pairing rule "only one busy node sends data to a given free node, and a
given busy node only sends data to one free node").

The event loop always advances the actionable rank with the smallest
simulated clock, so causality is respected: a rank can only be seen as
free by ranks whose clocks have passed its free-broadcast arrival.

Reliability layer (on by default, ``reliable=False`` restores the
idealized seed protocol):

* every ``work`` message is a sequence-numbered
  :class:`~repro.distributed.protocol.WorkEnvelope`; receivers ack and
  deduplicate by ``(src, seq)``, senders keep an in-flight ledger and
  retransmit with exponential backoff after ``ack_timeout_ms``; when the
  retry budget runs out the sender requeues the work locally and the
  claim on the free rank is released instead of leaking;
* ranks heartbeat every ``heartbeat_interval_ms``; a rank silent for
  ``heartbeat_timeout_ms`` is declared crashed, its unacked shipments
  are requeued from the sender ledgers, and every root interval it
  touched is re-executed from scratch on the detecting rank (per-interval
  accounting lives in :class:`~repro.distributed.protocol.StrideLedger`),
  so the final count is exact whenever at least one rank survives;
* faults (message drop/duplicate/delay, rank crash/straggler) come from
  a seeded :class:`~repro.distributed.faults.FaultPlan`.

The reproduction target is Figure 4 (speedup over one node at 2/4 nodes)
and Figure 5 (per-node runtimes T1..T4 under load balancing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..checkpoint.fingerprint import (
    check_fingerprints,
    config_fingerprint,
    graph_fingerprint,
)
from ..checkpoint.store import FORMAT_VERSION, CheckpointStore
from ..core.config import CuTSConfig
from ..graph.csr import CSRGraph
from .comm import NetworkModel, SimComm
from .faults import FaultInjector, FaultPlan
from .protocol import (
    FreeNodeRegistry,
    MsgType,
    Shipment,
    ShipmentTracker,
    StrideLedger,
    WorkEnvelope,
)
from .worker import RankWorker

__all__ = ["DistributedResult", "DistributedCuTS"]


@dataclass(frozen=True)
class DistributedResult:
    """Outcome of one distributed search.

    ``faults_injected``/``retransmissions``/``ranks_failed``/
    ``recovered_chunks`` report the fault-tolerance machinery's work;
    they are all zero on a clean run.
    """

    count: int
    runtime_ms: float
    per_rank_clock_ms: tuple[float, ...]
    per_rank_busy_ms: tuple[float, ...]
    chunks_processed: tuple[int, ...]
    work_transfers: int
    words_transferred: int
    faults_injected: int = 0
    retransmissions: int = 0
    ranks_failed: int = 0
    recovered_chunks: int = 0

    @property
    def num_ranks(self) -> int:
        return len(self.per_rank_clock_ms)

    @property
    def busy_imbalance(self) -> float:
        """Max-over-mean of per-rank busy time (Figure 5's statistic)."""
        busy = np.asarray(self.per_rank_busy_ms)
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else 1.0


class DistributedCuTS:
    """Multi-rank cuTS over a simulated cluster.

    Parameters
    ----------
    data:
        The data graph (replicated on every rank, as in the paper).
    num_ranks:
        Cluster size (the paper evaluates 1, 2 and 4 V100 nodes).
    config:
        Per-rank engine configuration (including the ack/retry and
        heartbeat knobs of the reliability layer).
    network:
        Interconnect cost model.
    fault_plan:
        Optional seeded fault schedule (requires ``reliable=True``).
    reliable:
        When ``False``, run the seed's idealized protocol with no acks,
        heartbeats, or ledgers — kept for the overhead benchmark and as
        an escape hatch on a substrate known to be lossless.
    """

    def __init__(
        self,
        data: CSRGraph,
        num_ranks: int,
        config: CuTSConfig | None = None,
        network: NetworkModel | None = None,
        *,
        steal_fraction: float = 0.5,
        steal_order: str = "shallow",
        fault_plan: FaultPlan | None = None,
        reliable: bool = True,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if fault_plan is not None and not reliable:
            raise ValueError("fault injection requires the reliable runtime")
        self.data = data
        self.num_ranks = num_ranks
        self.config = config or CuTSConfig()
        self.network = network or NetworkModel()
        self.steal_fraction = steal_fraction
        self.steal_order = steal_order
        self.fault_plan = fault_plan
        self.reliable = reliable

    def _fingerprints(self, query: CSRGraph) -> dict[str, str]:
        return {
            "version": str(FORMAT_VERSION),
            "mode": "distributed",
            "config": config_fingerprint(self.config),
            "data": graph_fingerprint(self.data),
            "query": graph_fingerprint(query),
            "num_ranks": str(self.num_ranks),
        }

    def match(
        self,
        query: CSRGraph,
        *,
        max_events: int = 10_000_000,
        checkpoint_dir: str | None = None,
        resume: bool = False,
    ) -> DistributedResult:
        """Run the distributed search to completion.

        With ``checkpoint_dir``, the :class:`StrideLedger`'s committed
        intervals — the exact, crash-immune portion of the count — are
        snapshotted every ``config.checkpoint_every`` event-loop
        iterations (and before the ``max_events`` safety valve trips).
        ``resume=True`` preloads those intervals and re-executes only
        the uncommitted gaps of each rank's root partition, reaching the
        same final count as an uninterrupted run.
        """
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        store: CheckpointStore | None = None
        preloaded: list[tuple[int, int, int, int]] = []
        next_seq = 0
        if checkpoint_dir is not None:
            if not self.reliable:
                raise ValueError(
                    "checkpointing requires the reliable runtime "
                    "(the StrideLedger is the durable state)"
                )
            store = CheckpointStore(checkpoint_dir)
            prints = self._fingerprints(query)
            manifest = store.read_manifest()
            if manifest is not None:
                if not resume:
                    raise ValueError(
                        f"checkpoint directory {store.directory!r} already "
                        "holds a job; pass resume=True to continue it"
                    )
                check_fingerprints(
                    dict(manifest.get("fingerprints", {})), prints
                )
                if manifest.get("complete"):
                    stored = dict(manifest["result"])
                    for key in (
                        "per_rank_clock_ms", "per_rank_busy_ms",
                        "chunks_processed",
                    ):
                        stored[key] = tuple(stored[key])
                    return DistributedResult(**stored)
                snap = store.load_latest_snapshot()
                if snap is not None:
                    seq, _buffers, meta = snap
                    next_seq = seq + 1
                    preloaded = [
                        (int(o), int(lo), int(hi), int(c))
                        for o, lo, hi, c in meta["committed"]
                    ]
            else:
                if resume:
                    raise ValueError(
                        f"nothing to resume: {store.directory!r} has no "
                        "manifest"
                    )
                store.write_manifest(
                    {
                        "version": FORMAT_VERSION,
                        "fingerprints": prints,
                        "complete": False,
                    }
                )
        injector = (
            FaultInjector(self.fault_plan)
            if self.fault_plan is not None and not self.fault_plan.is_null
            else None
        )
        self._injector = injector
        comm = SimComm(self.num_ranks, self.network, injector)
        registry = FreeNodeRegistry(self.num_ranks)
        tracker = ShipmentTracker()
        ledger = StrideLedger() if self.reliable else None
        self._dead: set[int] = set()
        self._failed: set[int] = set()
        self._requeued_chunks = 0
        self._next_hb = [self.config.heartbeat_interval_ms] * self.num_ranks
        workers = [
            RankWorker(
                rank=r,
                data=self.data,
                query=query,
                config=self.config,
                steal_fraction=self.steal_fraction,
                steal_order=self.steal_order,
                slowdown=injector.slowdown(r) if injector else 1.0,
                ledger=ledger,
            )
            for r in range(self.num_ranks)
        ]
        if preloaded:
            assert ledger is not None
            ledger.preload_committed(preloaded)
        committed_by_rank: dict[int, list[tuple[int, int]]] = {}
        for origin, lo, hi, _count in preloaded:
            committed_by_rank.setdefault(origin, []).append((lo, hi))
        for w in workers:
            w.init_partition(
                self.num_ranks, committed=committed_by_rank.get(w.rank)
            )
            if not w.has_work():
                registry.announce_free(w.rank, w.clock_ms)
                comm.broadcast(w.rank, MsgType.FREE, None, 1, w.clock_ms)

        def snapshot() -> None:
            nonlocal next_seq
            assert store is not None and ledger is not None
            store.save_snapshot(
                next_seq,
                [],
                {
                    "committed": [
                        list(iv) for iv in ledger.committed_intervals()
                    ],
                    "committed_total": ledger.committed_total,
                    "events": events,
                },
            )
            next_seq += 1
            store.prune_snapshots(keep=2)

        events = 0
        while True:
            if ledger is not None and ledger.all_committed():
                break
            if events >= max_events:
                # Snapshot-then-raise: the safety valve doubles as the
                # in-process kill analogue for resume testing — whatever
                # was committed so far survives.
                if store is not None:
                    snapshot()
                raise RuntimeError("distributed event loop exceeded max_events")
            actor = self._next_actor(workers, comm, tracker)
            if actor is None:
                break
            events += 1
            if store is not None and events % self.config.checkpoint_every == 0:
                snapshot()
            w, wake_time = actor
            w.clock_ms = max(w.clock_ms, wake_time)
            if self.reliable:
                self._maybe_heartbeat(w, comm)
                self._service_shipments(w, comm, tracker, registry)
                self._detect_failures(
                    w, workers, comm, tracker, registry, ledger
                )
            if not w.has_work():
                # Idle rank waking up to receive shipped work (or to
                # heartbeat / service its in-flight ledger).
                self._drain_work(w, comm, registry, tracker)
                continue
            w.process_one_chunk()
            self._drain_work(w, comm, registry, tracker)  # opportunistic
            if w.has_work() and w.has_surplus():
                target = registry.claim_free(w.rank, w.clock_ms)
                if target is not None:
                    self._ship(w, target, comm, tracker, registry)
            if not w.has_work():
                registry.announce_free(w.rank, w.clock_ms)
                comm.broadcast(w.rank, MsgType.FREE, None, 1, w.clock_ms)

        if ledger is not None:
            count = ledger.committed_total
            recovered = ledger.recovered_intervals + self._requeued_chunks
        else:
            count = sum(wk.count for wk in workers)
            recovered = 0
        faults = 0
        if injector is not None:
            faults = (
                injector.message_faults
                + len(self._dead)
                + len(injector.plan.slowdown)
            )
        result = DistributedResult(
            count=count,
            runtime_ms=max(wk.clock_ms for wk in workers),
            per_rank_clock_ms=tuple(wk.clock_ms for wk in workers),
            per_rank_busy_ms=tuple(wk.busy_ms for wk in workers),
            chunks_processed=tuple(wk.chunks_processed for wk in workers),
            work_transfers=registry.transfers,
            words_transferred=comm.words_sent,
            faults_injected=faults,
            retransmissions=tracker.retransmissions,
            ranks_failed=len(self._dead),
            recovered_chunks=recovered,
        )
        if store is not None:
            store.write_manifest(
                {
                    "version": FORMAT_VERSION,
                    "fingerprints": self._fingerprints(query),
                    "complete": True,
                    "result": {
                        "count": result.count,
                        "runtime_ms": result.runtime_ms,
                        "per_rank_clock_ms": list(result.per_rank_clock_ms),
                        "per_rank_busy_ms": list(result.per_rank_busy_ms),
                        "chunks_processed": list(result.chunks_processed),
                        "work_transfers": result.work_transfers,
                        "words_transferred": result.words_transferred,
                        "faults_injected": result.faults_injected,
                        "retransmissions": result.retransmissions,
                        "ranks_failed": result.ranks_failed,
                        "recovered_chunks": result.recovered_chunks,
                    },
                }
            )
            store.prune_snapshots(keep=0)
        return result

    # ------------------------------------------------------------------
    def _crash_time(self, rank: int) -> float | None:
        return self._injector.crash_time(rank) if self._injector else None

    def _next_actor(
        self, workers: list[RankWorker], comm: SimComm, tracker: ShipmentTracker
    ) -> tuple[RankWorker, float] | None:
        """The live rank with the earliest next action (work, message
        arrival, heartbeat, or retransmit deadline).

        A rank whose next action would start at or past its planned crash
        time is marked dead instead of acting — crashes take effect at
        chunk boundaries.
        """
        best: tuple[float, int, RankWorker] | None = None
        for w in workers:
            if w.rank in self._dead:
                continue
            if w.has_work():
                wake = w.clock_ms
            else:
                times = []
                pending = comm.peek(w.rank, tag=MsgType.WORK)
                if pending:
                    times.append(min(m.arrival_time for m in pending))
                if self.reliable:
                    times.append(self._next_hb[w.rank])
                    deadline = tracker.next_deadline_from(w.rank)
                    if deadline is not None:
                        times.append(deadline)
                if not times:
                    continue
                wake = max(w.clock_ms, min(times))
            crash = self._crash_time(w.rank)
            if crash is not None and wake >= crash:
                self._dead.add(w.rank)
                continue
            if best is None or (wake, w.rank) < best[:2]:
                best = (wake, w.rank, w)
        if best is None:
            return None
        return best[2], best[0]

    # ------------------------------------------------------------------
    def _maybe_heartbeat(self, w: RankWorker, comm: SimComm) -> None:
        if w.clock_ms >= self._next_hb[w.rank]:
            comm.broadcast(w.rank, MsgType.HEARTBEAT, None, 0, w.clock_ms)
            self._next_hb[w.rank] = (
                w.clock_ms + self.config.heartbeat_interval_ms
            )

    def _service_shipments(
        self,
        w: RankWorker,
        comm: SimComm,
        tracker: ShipmentTracker,
        registry: FreeNodeRegistry,
    ) -> None:
        """Drain acks for ``w``'s shipments, then retransmit or abandon
        anything overdue."""
        for msg in comm.receive(w.rank, w.clock_ms, tag=MsgType.ACK):
            tracker.ack(w.rank, msg.payload)
        for ship in tracker.entries_from(w.rank):
            if ship.next_retry_ms > w.clock_ms:
                continue
            src, seq = ship.key
            if ship.attempts >= self.config.max_retries:
                # Retry budget exhausted.  Unless the receiver provably
                # integrated the envelope (only the acks were lost), take
                # the work back and free the claimed rank for others.
                tracker.in_flight.pop(ship.key, None)
                if not tracker.is_seen(src, seq):
                    tracker.revoke(src, seq)
                    requeued = w.requeue_buffers(
                        ship.envelope.buffers, ship.envelope.metas
                    )
                    registry.release_claim(w.rank, ship.dst)
                    self._requeued_chunks += requeued
                continue
            comm.send(
                w.rank, ship.dst, MsgType.WORK, ship.envelope,
                ship.envelope.words, w.clock_ms,
            )
            ship.attempts += 1
            ship.next_retry_ms = w.clock_ms + ship.retry_interval_ms * (
                self.config.retry_backoff ** ship.attempts
            )
            tracker.retransmissions += 1

    def _detect_failures(
        self,
        w: RankWorker,
        workers: list[RankWorker],
        comm: SimComm,
        tracker: ShipmentTracker,
        registry: FreeNodeRegistry,
        ledger: StrideLedger,
    ) -> None:
        """Declare ranks whose heartbeats stopped past the timeout.

        The heartbeat sender is modeled as a background thread that beats
        until the crash instant, so a rank is suspected exactly when the
        observer's clock passes ``crash_time + heartbeat_timeout_ms``
        (deep in a long chunk a rank still beats — no false positives).
        """
        if self._injector is None:
            return
        for r in sorted(self._dead):
            if r in self._failed:
                continue
            crash = self._injector.crash_time(r)
            if crash is None or w.clock_ms - crash <= self.config.heartbeat_timeout_ms:
                continue
            self._recover(r, w, workers, comm, tracker, registry, ledger)

    def _recover(
        self,
        r: int,
        detector: RankWorker,
        workers: list[RankWorker],
        comm: SimComm,
        tracker: ShipmentTracker,
        registry: FreeNodeRegistry,
        ledger: StrideLedger,
    ) -> None:
        """Recover from the crash of rank ``r`` (observed by ``detector``).

        1. invalidate every uncommitted root interval the dead rank
           touched (generation bump discards stale in-flight work);
        2. purge descendants of those intervals from surviving stacks;
        3. reconcile the shipment ledgers: unacked work shipped *to* the
           dead rank is requeued at its (live) senders, the dead rank's
           own in-flight shipments are dropped (their intervals are dirty
           by construction);
        4. re-execute the dirty intervals from the root on the detector —
           normal work stealing then redistributes the load.
        """
        self._failed.add(r)
        registry.drop_rank(r)
        dirty = set(ledger.begin_recovery(r))
        for wk in workers:
            if wk.rank in self._dead:
                continue
            had_work = wk.has_work()
            wk.purge_intervals(dirty)
            if had_work and not wk.has_work():
                registry.announce_free(wk.rank, wk.clock_ms)
                comm.broadcast(wk.rank, MsgType.FREE, None, 1, wk.clock_ms)
        for ship in tracker.entries_to(r):
            tracker.in_flight.pop(ship.key, None)
            src, seq = ship.key
            if tracker.is_seen(src, seq):
                continue  # integrated pre-crash; covered by the dirty set
            tracker.revoke(src, seq)
            if src in self._dead:
                continue  # sender died too; its own recovery covers this
            srcw = workers[src]
            requeued = srcw.requeue_buffers(
                ship.envelope.buffers, ship.envelope.metas
            )
            registry.release_claim(src, r)
            self._requeued_chunks += requeued
            if requeued and srcw.has_work():
                registry.mark_busy(src)
        for ship in tracker.entries_from(r):
            tracker.in_flight.pop(ship.key, None)
            src, seq = ship.key
            if not tracker.is_seen(src, seq):
                tracker.revoke(src, seq)
        if dirty:
            detector.adopt_root_intervals(sorted(dirty))
            if detector.has_work():
                registry.mark_busy(detector.rank)

    # ------------------------------------------------------------------
    def _drain_work(
        self,
        w: RankWorker,
        comm: SimComm,
        registry: FreeNodeRegistry,
        tracker: ShipmentTracker,
    ) -> None:
        """Deliver any work messages that have arrived at ``w``."""
        msgs = comm.receive(w.rank, w.clock_ms, tag=MsgType.WORK)
        for msg in msgs:
            env: WorkEnvelope = msg.payload
            if not self.reliable:
                w.receive_work(list(env.buffers))
                registry.mark_busy(w.rank)
                continue
            comm.send(w.rank, env.src, MsgType.ACK, env.seq, 0, w.clock_ms)
            if tracker.is_seen(env.src, env.seq) or tracker.is_revoked(
                env.src, env.seq
            ):
                continue  # duplicate or revoked: ack again, integrate never
            tracker.mark_seen(env.src, env.seq)
            if w.integrate_envelope(env) > 0:
                registry.mark_busy(w.rank)

    def _ship(
        self,
        src: RankWorker,
        dst_rank: int,
        comm: SimComm,
        tracker: ShipmentTracker,
        registry: FreeNodeRegistry,
    ) -> None:
        """Serialize and send ~half of ``src``'s work to ``dst_rank``."""
        buffers, metas = src.pop_surplus_with_meta()
        if not buffers:
            # The claim made in match() must not leak: without buffers the
            # free rank would stay claimed forever and the transfer
            # counter would over-count.
            registry.release_claim(src.rank, dst_rank)
            return
        words = int(sum(len(b) for b in buffers))
        env = WorkEnvelope(
            seq=tracker.next_seq() if self.reliable else 0,
            src=src.rank,
            buffers=tuple(buffers),
            metas=tuple(metas),
            words=words,
        )
        comm.send(src.rank, dst_rank, MsgType.WORK, env, words, src.clock_ms)
        if self.reliable:
            # First retry after the modeled round trip plus the grace
            # timeout; exponential backoff after that.
            interval = (
                self.network.transfer_ms(words)
                + self.network.transfer_ms(0)
                + self.config.ack_timeout_ms
            )
            tracker.register(
                Shipment(
                    envelope=env,
                    dst=dst_rank,
                    first_sent_ms=src.clock_ms,
                    next_retry_ms=src.clock_ms + interval,
                    retry_interval_ms=interval,
                )
            )
        # The send itself is asynchronous; the sender only pays the
        # injection overhead.
        src.clock_ms += self.network.latency_ms
