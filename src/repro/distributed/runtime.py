"""The distributed cuTS runtime: Algorithm 3 as a discrete-event run.

Every rank executes its own chunked search without synchronisation; at
chunk boundaries a busy rank checks whether some rank has broadcast
"free" and, if so, ships it roughly half of its pending work together
with the trie prefix (the paper's mini asynchronous protocol, with the
pairing rule "only one busy node sends data to a given free node, and a
given busy node only sends data to one free node").

The event loop always advances the actionable rank with the smallest
simulated clock, so causality is respected: a rank can only be seen as
free by ranks whose clocks have passed its free-broadcast arrival.

The reproduction target is Figure 4 (speedup over one node at 2/4 nodes)
and Figure 5 (per-node runtimes T1..T4 under load balancing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import CuTSConfig
from ..graph.csr import CSRGraph
from .comm import NetworkModel, SimComm
from .protocol import FreeNodeRegistry
from .worker import RankWorker

__all__ = ["DistributedResult", "DistributedCuTS"]


@dataclass(frozen=True)
class DistributedResult:
    """Outcome of one distributed search."""

    count: int
    runtime_ms: float
    per_rank_clock_ms: tuple[float, ...]
    per_rank_busy_ms: tuple[float, ...]
    chunks_processed: tuple[int, ...]
    work_transfers: int
    words_transferred: int

    @property
    def num_ranks(self) -> int:
        return len(self.per_rank_clock_ms)

    @property
    def busy_imbalance(self) -> float:
        """Max-over-mean of per-rank busy time (Figure 5's statistic)."""
        busy = np.asarray(self.per_rank_busy_ms)
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else 1.0


class DistributedCuTS:
    """Multi-rank cuTS over a simulated cluster.

    Parameters
    ----------
    data:
        The data graph (replicated on every rank, as in the paper).
    num_ranks:
        Cluster size (the paper evaluates 1, 2 and 4 V100 nodes).
    config:
        Per-rank engine configuration.
    network:
        Interconnect cost model.
    """

    def __init__(
        self,
        data: CSRGraph,
        num_ranks: int,
        config: CuTSConfig | None = None,
        network: NetworkModel | None = None,
        *,
        steal_fraction: float = 0.5,
        steal_order: str = "shallow",
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.data = data
        self.num_ranks = num_ranks
        self.config = config or CuTSConfig()
        self.network = network or NetworkModel()
        self.steal_fraction = steal_fraction
        self.steal_order = steal_order

    def match(self, query: CSRGraph, *, max_events: int = 10_000_000) -> DistributedResult:
        """Run the distributed search to completion."""
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        comm = SimComm(self.num_ranks, self.network)
        registry = FreeNodeRegistry(self.num_ranks)
        workers = [
            RankWorker(
                rank=r,
                data=self.data,
                query=query,
                config=self.config,
                steal_fraction=self.steal_fraction,
                steal_order=self.steal_order,
            )
            for r in range(self.num_ranks)
        ]
        for w in workers:
            w.init_partition(self.num_ranks)
            if not w.has_work():
                registry.announce_free(w.rank, w.clock_ms)
                comm.broadcast(w.rank, "free", None, 1, w.clock_ms)

        events = 0
        while events < max_events:
            events += 1
            actor = self._next_actor(workers, comm)
            if actor is None:
                break
            w, wake_time = actor
            if not w.has_work():
                # Idle rank waking up to receive shipped work.
                w.clock_ms = max(w.clock_ms, wake_time)
                self._drain_work(w, comm, registry)
                continue
            w.process_one_chunk()
            self._drain_work(w, comm, registry)  # opportunistic
            if w.has_work() and w.has_surplus():
                target = registry.claim_free(w.rank, w.clock_ms)
                if target is not None:
                    self._ship(w, target, comm)
            if not w.has_work():
                registry.announce_free(w.rank, w.clock_ms)
                comm.broadcast(w.rank, "free", None, 1, w.clock_ms)
        else:  # pragma: no cover - safety valve
            raise RuntimeError("distributed event loop exceeded max_events")

        return DistributedResult(
            count=sum(w.count for w in workers),
            runtime_ms=max(w.clock_ms for w in workers),
            per_rank_clock_ms=tuple(w.clock_ms for w in workers),
            per_rank_busy_ms=tuple(w.busy_ms for w in workers),
            chunks_processed=tuple(w.chunks_processed for w in workers),
            work_transfers=registry.transfers,
            words_transferred=comm.words_sent,
        )

    # ------------------------------------------------------------------
    def _next_actor(
        self, workers: list[RankWorker], comm: SimComm
    ) -> tuple[RankWorker, float] | None:
        """The rank with the earliest next action (work or message)."""
        best: tuple[float, int, RankWorker] | None = None
        for w in workers:
            if w.has_work():
                key = (w.clock_ms, w.rank, w)
            else:
                pending = comm.peek(w.rank, tag="work")
                if not pending:
                    continue
                arrival = min(m.arrival_time for m in pending)
                key = (max(arrival, w.clock_ms), w.rank, w)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:
            return None
        return best[2], best[0]

    def _drain_work(
        self, w: RankWorker, comm: SimComm, registry: FreeNodeRegistry
    ) -> None:
        """Deliver any work messages that have arrived at ``w``."""
        msgs = comm.receive(w.rank, w.clock_ms, tag="work")
        for msg in msgs:
            w.receive_work(msg.payload)
            registry.mark_busy(w.rank)

    def _ship(self, src: RankWorker, dst_rank: int, comm: SimComm) -> None:
        """Serialize and send ~half of ``src``'s work to ``dst_rank``."""
        buffers = src.pop_surplus()
        if not buffers:
            return
        words = int(sum(len(b) for b in buffers))
        comm.send(src.rank, dst_rank, "work", buffers, words, src.clock_ms)
        # The send itself is asynchronous; the sender only pays the
        # injection overhead.
        src.clock_ms += self.network.latency_ms
