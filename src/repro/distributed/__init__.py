"""Distributed cuTS: simulated MPI, Algorithm-3 scheduler, load balance,
fault injection and crash recovery."""

from .balance import BalanceReport, balance_report
from .bulksync import BulkSyncCuTS, BulkSyncResult
from .comm import Message, NetworkModel, SimComm
from .faults import FaultInjector, FaultPlan
from .partition import block_partition, stride_partition
from .protocol import (
    BufferMeta,
    FreeNodeRegistry,
    Shipment,
    ShipmentTracker,
    StrideLedger,
    WorkEnvelope,
)
from .runtime import DistributedCuTS, DistributedResult
from .worker import RankWorker, WorkItem

__all__ = [
    "DistributedCuTS",
    "DistributedResult",
    "BulkSyncCuTS",
    "BulkSyncResult",
    "RankWorker",
    "WorkItem",
    "SimComm",
    "Message",
    "NetworkModel",
    "FaultPlan",
    "FaultInjector",
    "FreeNodeRegistry",
    "BufferMeta",
    "WorkEnvelope",
    "Shipment",
    "ShipmentTracker",
    "StrideLedger",
    "stride_partition",
    "block_partition",
    "BalanceReport",
    "balance_report",
]
