"""Distributed cuTS: simulated MPI, Algorithm-3 scheduler, load balance."""

from .balance import BalanceReport, balance_report
from .bulksync import BulkSyncCuTS, BulkSyncResult
from .comm import Message, NetworkModel, SimComm
from .partition import block_partition, stride_partition
from .protocol import FreeNodeRegistry
from .runtime import DistributedCuTS, DistributedResult
from .worker import RankWorker, WorkItem

__all__ = [
    "DistributedCuTS",
    "DistributedResult",
    "BulkSyncCuTS",
    "BulkSyncResult",
    "RankWorker",
    "WorkItem",
    "SimComm",
    "Message",
    "NetworkModel",
    "FreeNodeRegistry",
    "stride_partition",
    "block_partition",
    "BalanceReport",
    "balance_report",
]
