"""Per-rank worker: a chunked, stealable cuTS search.

Each rank owns a full copy of the data graph (paper §4.2 — only partial
paths move between nodes), a simulated device, and a LIFO stack of
:class:`WorkItem` chunks.  Popping from the deep end gives the DFS side
of the hybrid scan (bounded memory); every processed chunk is a natural
point to check for free ranks, exactly Algorithm 3's chunk loop.

Work shipping uses structural sharing: a :class:`~repro.storage.trie
.PathTrie` level list is immutable, so a child work item extends its
parent's trie by one level without copying, and
:meth:`~repro.storage.trie.PathTrie.extract_subtrie` +
:func:`~repro.storage.serialize.serialize_trie` produce the flat buffer
that "sends the trie along with the work".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..graph.csr import CSRGraph
from ..storage.serialize import deserialize_trie, serialize_trie
from ..storage.trie import PathTrie, TrieLevel

__all__ = ["WorkItem", "RankWorker"]


@dataclass(frozen=True)
class WorkItem:
    """A frontier chunk awaiting expansion.

    Invariant: ``trie.depth == step`` — the deepest trie level holds the
    paths of query step ``step - 1`` and ``frontier`` indexes into it.
    """

    trie: PathTrie
    step: int
    frontier: np.ndarray

    def __post_init__(self) -> None:
        if self.trie.depth != self.step:
            raise ValueError(
                f"work item invariant violated: trie depth {self.trie.depth}"
                f" != step {self.step}"
            )


@dataclass
class RankWorker:
    """One simulated compute node of the distributed run.

    ``steal_fraction`` controls how much pending work a busy rank ships
    to a free one (paper: "a portion of its work"; default half).
    ``steal_order`` picks which end of the stack is shipped: ``"shallow"``
    (big subtrees, the default — they amortise the transfer) or
    ``"deep"`` (small, nearly-finished chunks; kept for the ablation).
    """

    rank: int
    data: CSRGraph
    query: CSRGraph
    config: CuTSConfig
    steal_fraction: float = 0.5
    steal_order: str = "shallow"
    clock_ms: float = 0.0
    busy_ms: float = 0.0
    count: int = 0
    chunks_processed: int = 0
    chunks_received: int = 0
    chunks_sent: int = 0
    stack: list[WorkItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.steal_fraction < 1.0:
            raise ValueError("steal_fraction must be in (0, 1)")
        if self.steal_order not in ("shallow", "deep"):
            raise ValueError("steal_order must be 'shallow' or 'deep'")
        self.matcher = CuTSMatcher(self.data, self.config)
        self.state = self.matcher.make_run_state(self.query)
        self._num_steps = self.state.order.num_steps

    # ------------------------------------------------------------------
    def init_partition(self, num_ranks: int) -> None:
        """``init_match``: compute root candidates, keep the rank stride."""
        t0 = self.state.cost.time_ms
        trie = self.matcher.initial_frontier(
            self.state, part=self.rank, num_parts=num_ranks
        )
        self._advance(t0)
        roots = trie.num_paths(0)
        if roots == 0:
            return
        if self._num_steps == 1:
            self.count += roots
            return
        self.stack.append(
            WorkItem(
                trie=trie,
                step=1,
                frontier=np.arange(roots, dtype=np.int64),
            )
        )

    def has_work(self) -> bool:
        return bool(self.stack)

    # ------------------------------------------------------------------
    def process_one_chunk(self) -> None:
        """Pop one chunk (≤ chunk_size paths), expand it one level."""
        if not self.stack:
            raise RuntimeError(f"rank {self.rank} has no work")
        item = self.stack.pop()
        chunk_size = self.config.chunk_size
        if item.frontier.size > chunk_size:
            # Take the first chunk, push the remainder back (deep end).
            rest = WorkItem(
                trie=item.trie,
                step=item.step,
                frontier=item.frontier[chunk_size:],
            )
            self.stack.append(rest)
            item = WorkItem(
                trie=item.trie,
                step=item.step,
                frontier=item.frontier[:chunk_size],
            )
        t0 = self.state.cost.time_ms
        pa, ca = self.matcher.expand_frontier(
            item.trie, item.step, item.frontier, self.state
        )
        self._advance(t0)
        self.chunks_processed += 1
        if len(ca) == 0:
            return
        if item.step + 1 == self._num_steps:
            self.count += len(ca)
            return
        child = PathTrie(
            levels=[*item.trie.levels, TrieLevel(pa=pa, ca=ca)]
        )
        self.stack.append(
            WorkItem(
                trie=child,
                step=item.step + 1,
                frontier=np.arange(len(ca), dtype=np.int64),
            )
        )

    def _advance(self, t0: float) -> None:
        dt = self.state.cost.time_ms - t0
        self.clock_ms += dt
        self.busy_ms += dt

    # ------------------------------------------------------------------
    # Work shipping
    # ------------------------------------------------------------------
    def has_surplus(self) -> bool:
        """Whether this rank can spare work for a free node."""
        return len(self.stack) > 1 or (
            len(self.stack) == 1
            and self.stack[0].frontier.size > self.config.chunk_size
        )

    def pop_surplus(self) -> list[np.ndarray]:
        """Extract ~``steal_fraction`` of pending work as serialised trie
        buffers.

        Returns flat int64 buffers; the matching steps are implicit
        (``trie.depth`` of each buffer).
        """
        if not self.stack:
            return []
        if len(self.stack) == 1:
            # Split the lone item's frontier.
            item = self.stack.pop()
            give_n = max(1, int(item.frontier.size * self.steal_fraction))
            give_n = min(give_n, item.frontier.size - 1)
            keep = WorkItem(
                trie=item.trie, step=item.step, frontier=item.frontier[give_n:]
            )
            give = WorkItem(
                trie=item.trie, step=item.step, frontier=item.frontier[:give_n]
            )
            self.stack.append(keep)
            outgoing = [give]
        else:
            num_give = max(1, int(len(self.stack) * self.steal_fraction))
            num_give = min(num_give, len(self.stack) - 1)
            if self.steal_order == "shallow":
                outgoing = self.stack[:num_give]  # big subtrees
                self.stack = self.stack[num_give:]
            else:
                outgoing = self.stack[-num_give:]  # nearly-done chunks
                self.stack = self.stack[:-num_give]
        buffers = []
        for item in outgoing:
            sub = item.trie.extract_subtrie(item.trie.depth - 1, item.frontier)
            buffers.append(serialize_trie(sub))
        self.chunks_sent += len(buffers)
        return buffers

    def receive_work(self, buffers: list[np.ndarray]) -> None:
        """Integrate shipped tries: "adjust depth and other parameters and
        begin processing of received work" (Algorithm 3)."""
        for buf in buffers:
            trie = deserialize_trie(buf)
            step = trie.depth
            frontier = np.arange(
                trie.num_paths(trie.depth - 1), dtype=np.int64
            )
            if frontier.size == 0:
                continue
            if step >= self._num_steps:
                # Shipped completed embeddings (shouldn't happen; guard).
                self.count += frontier.size
                continue
            self.stack.append(WorkItem(trie=trie, step=step, frontier=frontier))
            self.chunks_received += 1
